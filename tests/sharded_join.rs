//! Key-sharded join replies under adversarial churn.
//!
//! The sharded handshake's liveness contract: a joiner holds its join open
//! until **every** shard's reply quorum is met, and the shared join timer
//! re-fires inquiries (escalating to the full-reply fallback) for shards
//! still short. These tests drain exactly one shard below quorum mid-join
//! and assert the join re-inquires and completes — after the re-inquiry
//! round for the synchronous protocol, after GST for the eventually
//! synchronous one.

use dynareg::churn::{ChurnDriver, LeaveSelector, NoChurn};
use dynareg::net::delay::{Asynchronous, EventuallySynchronous, Synchronous};
use dynareg::sim::{IdSource, NodeId, RegisterId, Span, Time};
use dynareg::testkit::{
    shard_of_node, EsFactory, OpAction, RateWorkload, Scenario, ShardConfig, SpaceOf, SyncFactory,
    World, WorldConfig, WriterPolicy,
};
use dynareg::verify::{OpKind, SpaceReport};
use dynareg_core::es::EsConfig;
use dynareg_core::space::{RegisterSpaceProcess, SpaceEffect, SpaceMsg};
use dynareg_core::sync::{SyncConfig, SyncMsg};

const GROUPS: u32 = 2;
const KEYS: u32 = 4;

fn quiet_workload() -> Box<RateWorkload> {
    // No client traffic: isolate the join handshake.
    Box::new(RateWorkload::new(Span::ticks(1_000_000), 0.0))
}

fn no_churn(n: usize) -> ChurnDriver {
    ChurnDriver::new(
        Box::new(NoChurn),
        LeaveSelector::Random,
        IdSource::starting_at(n as u64),
    )
}

/// The bootstrap members of one responder shard.
fn shard_members(n: usize, shard: u32) -> Vec<NodeId> {
    (0..n as u64)
        .map(NodeId::from_raw)
        .filter(|&id| shard_of_node(id, GROUPS) == shard)
        .collect()
}

/// Synchronous protocol, fully scripted: every shard-1 responder leaves
/// before the joiner's inquiry goes out, so shard 1's reply quorum cannot
/// be met in the first 2δ window. The shared join timer must withhold
/// shard 1's keys, re-fire a full inquiry, and complete the join one
/// round later — with shard 1's registers populated by the fallback
/// replies of the surviving (other-shard) responders.
#[test]
fn draining_one_shard_below_quorum_mid_join_refires_and_completes() {
    let delta = Span::ticks(3);
    let n = 8;
    let factory = SpaceOf::new(SyncFactory::new(SyncConfig::new(delta)), KEYS)
        .with_shards(ShardConfig::new(GROUPS).with_reinquire_every(delta.times(4)));
    let mut world = World::new(
        factory,
        WorldConfig {
            n,
            initial: 77,
            delay: Box::new(Synchronous::new(delta)),
            churn: no_churn(n),
            workload: quiet_workload(),
            seed: 11,
            trace: false,
            writer_policy: WriterPolicy::FixedProtected,
            writers: 1,
        },
    );
    // Joiner enters at t=5: waits δ (t=8), inquires, 2δ window ends t=14.
    world.schedule_join(Time::at(5));
    // Adversarial churn plan: every shard-1 responder leaves at t=6,
    // before the inquiry broadcast exists. Shard 1 goes to zero repliers —
    // below any quorum — while shard 0 stays intact.
    let drained = shard_members(n, 1);
    assert!(
        !drained.is_empty() && drained.len() < n,
        "both shards must be inhabited for the scenario to mean anything"
    );
    for &id in &drained {
        world.schedule_leave(Time::at(6), id);
    }
    world.run_until(Time::at(60));

    // The join completed — but not in the fast path. Fast path: enter(5) →
    // δ wait(8) → 2δ window(14). The first window closed with shard 1
    // short, so completion had to wait for the re-fired (full) inquiry and
    // the re-armed 2δ window: strictly later than t=14.
    let join = world
        .key_history(RegisterId::ZERO)
        .ops()
        .iter()
        .find(|r| matches!(r.kind, OpKind::Join) && r.invoked_at == Time::at(5))
        .expect("the scripted join is recorded")
        .clone();
    let completed = join.completed_at.expect("starved join still completes");
    assert!(
        completed > Time::at(14),
        "completion at {completed} means shard 1 was never withheld"
    );

    // The space activated every key at one instant (a join is live iff all
    // shards answered), and every key is clean.
    let report = SpaceReport::check(world.space_history());
    assert!(report.joins_consistent, "{}", report.summary());
    assert!(
        report.all_regular() && report.all_live(),
        "{}",
        report.summary()
    );

    // The re-inquiry is visible on the wire under its own label — the
    // operational signal that a shard quorum starved.
    let full_inquiries = world
        .network()
        .sent_by_label()
        .find(|(label, _)| *label == "INQUIRY_FULL")
        .map_or(0, |(_, count)| count);
    assert!(
        full_inquiries > 0,
        "the fallback re-inquiry is labeled INQUIRY_FULL"
    );

    // The starved shard's registers were populated by the full-reply
    // fallback, not left at ⊥: a local read on a shard-1 key returns the
    // initial value (a ⊥ read would be flagged as fabricated).
    let joiner = join.node;
    let shard1_key = (0..KEYS)
        .map(RegisterId::from_raw)
        .find(|k| k.as_raw() % GROUPS == 1)
        .expect("some key lives in shard 1");
    world.invoke(joiner, OpAction::Read.on_key(shard1_key));
    let read = world
        .key_history(shard1_key)
        .completed_reads()
        .next()
        .expect("the post-join read completes locally");
    assert_eq!(
        format!("{:?}", read.kind),
        "Read { returned: Some(Some(77)) }"
    );
}

/// ES protocol over an eventually synchronous network: churn drains shard
/// 1 below the (shard-sized) join quorum right after the joiner's inquiry;
/// pre-GST the heavy-tailed network keeps starving it, and the space's
/// re-inquiry timer keeps re-firing the full fallback until a post-GST
/// round completes the join.
#[test]
fn es_sharded_join_starved_pre_gst_completes_after_gst() {
    let delta = Span::ticks(3);
    let n = 6;
    let gst = Time::at(30);
    // Shard-sized join quorum: 2 of the ≈3 members of a shard. Reads and
    // write acks would still need the full majority of 4.
    let cfg = EsConfig::new(n).with_join_quorum(2);
    let factory = SpaceOf::new(EsFactory::new(cfg), KEYS)
        .with_shards(ShardConfig::new(GROUPS).with_reinquire_every(delta.times(4)));
    // Pre-GST the network is effectively unusable (every message takes
    // 25–30 ticks), so no pre-GST inquiry round can gather a quorum.
    let pre = Asynchronous::new(Span::ticks(25), 1.2, Span::ticks(30));
    let mut world = World::new(
        factory,
        WorldConfig {
            n,
            initial: 5,
            delay: Box::new(EventuallySynchronous::new(gst, delta, pre)),
            churn: no_churn(n),
            workload: quiet_workload(),
            seed: 3,
            trace: false,
            writer_policy: WriterPolicy::FixedProtected,
            writers: 1,
        },
    );
    // Leaves are applied before joins within a tick: shard 1 is already
    // down to a single member — below the join quorum of two — when the
    // joiner enters and broadcasts its inquiry.
    world.schedule_join(Time::at(2));
    let shard1 = shard_members(n, 1);
    assert!(
        shard1.len() >= 2,
        "need at least two shard-1 members to drain"
    );
    for &id in &shard1[1..] {
        world.schedule_leave(Time::at(2), id);
    }
    world.run_until(Time::at(150));

    let join = world
        .key_history(RegisterId::ZERO)
        .ops()
        .iter()
        .find(|r| matches!(r.kind, OpKind::Join))
        .expect("the scripted join is recorded")
        .clone();
    let completed = join
        .completed_at
        .expect("the join completes once GST restores timeliness");
    assert!(
        completed > gst,
        "completion at {completed} ought to wait out the pre-GST starvation (gst = {gst})"
    );
    let report = SpaceReport::check(world.space_history());
    assert!(report.joins_consistent, "{}", report.summary());
    assert!(report.all_live(), "{}", report.summary());
}

/// Scenario-level sharded runs stay green under churn, and the key-count
/// independence of the physical message count survives sharding (one
/// inquiry, one — smaller — reply per responder).
#[test]
fn sharded_scenarios_under_churn_stay_green_per_key() {
    let report = Scenario::synchronous(60, Span::ticks(3))
        .keys(16)
        .join_shards(4)
        .zipf(1.0)
        .churn_rate(0.005)
        .reads_per_tick(2.0)
        .duration(Span::ticks(180))
        .seed(0xBA1D)
        .run();
    assert_eq!(report.keys, 16);
    assert_eq!(report.shards, 4);
    assert!(report.presence.total_arrivals() > 60, "churn ran");
    assert!(report.all_keys_safe(), "{}", report.summary());
    assert!(report.all_keys_live(), "{}", report.summary());
    assert!(
        report.summary().contains("shards=4"),
        "{}",
        report.summary()
    );

    // Per-key message accounting (ROADMAP open item): the keyed counters
    // sum to the space-wide ones and carry per-key latency histograms.
    let total: u64 = (0..16)
        .map(|k| report.key_reads_completed(RegisterId::from_raw(k)))
        .sum();
    assert_eq!(total, report.metrics.counter("ops.read_completed"));
    assert!(total > 0);
    let anchor = RegisterId::from_raw(0);
    assert!(
        report.key_reads_completed(anchor) > 0,
        "Zipf favours the anchor key"
    );
    let lat = report
        .key_read_latency(anchor)
        .expect("anchor key read latency");
    assert_eq!(lat.count(), report.key_reads_completed(anchor));
    assert_eq!(lat.max(), Some(0), "sync reads are local at every key");
}

/// The ES protocol multiplexed over sharded joins also stays green under
/// churn (quorum-per-shard joins, majority reads).
#[test]
fn sharded_es_scenario_under_churn_stays_green_per_key() {
    let report = Scenario::eventually_synchronous(12, Span::ticks(3), Time::ZERO)
        .keys(8)
        .join_shards(2)
        .zipf(0.8)
        .churn_fraction_of_bound(0.5)
        .reads_per_tick(1.5)
        .duration(Span::ticks(360))
        .seed(7)
        .run();
    assert_eq!(report.shards, 2);
    assert!(report.all_keys_safe(), "{}", report.summary());
    assert!(report.all_keys_live(), "{}", report.summary());
    assert!(report.total_reads_checked() > 40);
}

/// The feature's core claim, asserted on the wire: a factory-built
/// sharded responder answers a (non-full) inquiry with a reply of
/// exactly `K/G` payload entries — the legacy reply carries all `K` —
/// and a full re-inquiry falls back to the `K`-entry legacy transfer.
#[test]
fn sharded_reply_payload_is_k_over_g_on_the_wire() {
    use dynareg::testkit::SpaceFactory;

    let keys = 16;
    let groups = 4;
    let reply_entries = |factory: &SpaceOf<SyncFactory>, full: bool| -> usize {
        let mut responder = factory.space_bootstrap(NodeId::from_raw(0), 0);
        let effects = responder.on_message(
            Time::at(1),
            NodeId::from_raw(9),
            SpaceMsg::JoinAll {
                inner: SyncMsg::Inquiry,
                full,
            },
        );
        let [SpaceEffect::Send { msg, .. }] = effects.as_slice() else {
            panic!("one physical reply regardless of sharding, got {effects:?}");
        };
        msg.payload_count()
    };

    let sync = SyncFactory::new(SyncConfig::new(Span::ticks(3)));
    let legacy = SpaceOf::new(sync, keys);
    let sharded = SpaceOf::new(sync, keys).with_shards(ShardConfig::new(groups));
    assert_eq!(reply_entries(&legacy, false), keys as usize);
    assert_eq!(
        reply_entries(&sharded, false),
        (keys / groups) as usize,
        "a sharded reply carries exactly K/G entries"
    );
    assert_eq!(
        reply_entries(&sharded, true),
        keys as usize,
        "the full-fallback re-inquiry restores the legacy K-entry transfer"
    );
}

/// Sharding divides the join payload: with `G` groups each responder's
/// batch carries `K/G` entries, so the total payload entries transferred
/// per join drop by ≈ `G` while the message count stays key-independent.
#[test]
fn sharded_replies_shrink_payload_not_message_count() {
    let run = |shards: u32| {
        Scenario::synchronous(30, Span::ticks(3))
            .keys(16)
            .join_shards(shards)
            .churn_rate(0.01)
            .reads_per_tick(0.0)
            .write_every(Span::ticks(1_000_000)) // joins only
            .duration(Span::ticks(120))
            .seed(7)
            .run()
    };
    let full = run(1);
    let sharded = run(4);
    assert!(full.presence.total_arrivals() > 45, "churn ran");
    assert_eq!(
        full.presence.total_arrivals(),
        sharded.presence.total_arrivals(),
        "same membership schedule (same seed, same churn draws)"
    );
    // Sharded joins may add the occasional full-fallback round under
    // concurrent joins, but the count stays within a few percent — far
    // from the 4× payload reduction.
    let (a, b) = (full.total_messages as f64, sharded.total_messages as f64);
    assert!(
        (b - a).abs() / a < 0.1,
        "message counts diverged: full={a} sharded={b}"
    );
}
