//! Tests of the simulation runtime itself: scripted membership, fault
//! plans, effect interpretation, and the bookkeeping the experiments rely
//! on.

use dynareg::churn::{ChurnDriver, ConstantRate, LeaveSelector, NoChurn};
use dynareg::core::sync::SyncConfig;
use dynareg::net::delay::{Fixed, Synchronous};
use dynareg::net::{DelayFault, FaultPlan};
use dynareg::sim::{IdSource, NodeId, Span, Time};
use dynareg::testkit::{
    OpAction, RateWorkload, ScriptedWorkload, SyncFactory, World, WorldConfig, WriterPolicy,
};
use dynareg::verify::LivenessChecker;

fn base_world(n: usize, workload: Box<dyn dynareg::testkit::Workload>) -> World<SyncFactory> {
    World::new(
        SyncFactory::new(SyncConfig::new(Span::ticks(3))),
        WorldConfig {
            n,
            initial: 0,
            delay: Box::new(Synchronous::new(Span::ticks(3))),
            churn: ChurnDriver::new(
                Box::new(NoChurn),
                LeaveSelector::Random,
                IdSource::starting_at(n as u64),
            ),
            workload,
            seed: 1,
            trace: true,
            writer_policy: WriterPolicy::FixedProtected,
            writers: 1,
        },
    )
}

#[test]
fn scripted_joins_enter_and_complete() {
    let mut w = base_world(4, Box::new(ScriptedWorkload::new()));
    w.schedule_join(Time::at(5));
    w.schedule_join(Time::at(5));
    w.schedule_join(Time::at(9));
    w.run_until(Time::at(40));
    assert_eq!(w.presence().total_arrivals(), 7);
    assert_eq!(w.metrics().counter("ops.join_completed"), 3);
    assert_eq!(
        w.presence().present_count(),
        7,
        "scripted joins are additive"
    );
}

#[test]
fn scripted_leaves_remove_and_excuse() {
    let script = ScriptedWorkload::new().at(Time::at(4), NodeId::from_raw(1), OpAction::Read);
    let mut w = base_world(4, Box::new(script));
    w.schedule_leave(Time::at(10), NodeId::from_raw(1));
    w.run_until(Time::at(30));
    assert_eq!(w.presence().present_count(), 3);
    let live = LivenessChecker::check(w.history());
    assert!(live.is_ok(), "{live}"); // the read completed before the leave
    assert_eq!(w.history().left_at(NodeId::from_raw(1)), Some(Time::at(10)));
}

#[test]
fn leave_of_absent_node_is_ignored() {
    let mut w = base_world(3, Box::new(ScriptedWorkload::new()));
    w.schedule_leave(Time::at(5), NodeId::from_raw(1));
    w.schedule_leave(Time::at(8), NodeId::from_raw(1)); // already gone: no-op
    w.run_until(Time::at(20));
    assert_eq!(w.presence().present_count(), 2);
}

#[test]
fn starved_recipient_blocks_only_its_own_ops() {
    // ES-style starvation doesn't apply to sync local reads; use delay
    // faults on a write instead: the writer still completes after δ because
    // sync writes wait on a local timer, proving faults only affect wires.
    let script = ScriptedWorkload::new().at(Time::at(5), NodeId::from_raw(0), OpAction::Write(1));
    let mut w = base_world(4, Box::new(script));
    w.set_faults(FaultPlan::none().with(DelayFault::starve_recipient(
        NodeId::from_raw(2),
        Time::ZERO,
        Time::MAX,
        Span::ticks(100_000),
    )));
    w.run_until(Time::at(30));
    assert_eq!(w.metrics().counter("ops.write_completed"), 1);
    // p2 never received the WRITE: its copy is stale — visible via a direct
    // read effect if we invoke one (legal: value concurrent? no — write
    // completed; but p2's read would be stale!). The fault plan is an
    // asynchrony adversary: the sync protocol's correctness explicitly
    // assumes it away. We assert the mechanics, not the verdict.
    let trace = w.trace().render();
    assert!(trace.contains("p0 broadcast WRITE"));
}

#[test]
fn workload_skips_busy_and_inactive_targets() {
    // Script a read on a node that is still joining: skipped and counted.
    let script = ScriptedWorkload::new().at_arrival(Time::at(6), 0, OpAction::Read);
    let mut w = base_world(4, Box::new(script));
    w.schedule_join(Time::at(5)); // join completes at 8 (δ) or 14 (3δ) — not by 6
    w.run_until(Time::at(30));
    assert_eq!(w.metrics().counter("workload.skipped"), 1);
    assert_eq!(w.metrics().counter("ops.read_completed"), 0);
}

#[test]
fn concurrent_write_requests_respect_per_key_capacity() {
    // Two writes scripted at the same tick on different nodes against the
    // same key: with the default one-writer cap, the second finds the key
    // at capacity and is counted under `ops.skipped_busy` (the paper's
    // no-concurrent-writes assumption, enforced per key).
    let script = ScriptedWorkload::new()
        .at(Time::at(5), NodeId::from_raw(0), OpAction::Write(1))
        .at(Time::at(5), NodeId::from_raw(1), OpAction::Write(2));
    let mut w = base_world(4, Box::new(script));
    w.run_until(Time::at(30));
    assert_eq!(w.metrics().counter("ops.write_completed"), 1);
    assert_eq!(w.metrics().counter("ops.skipped_busy"), 1);
    assert_eq!(w.metrics().counter("workload.skipped"), 0);
}

#[test]
fn gauges_track_population_every_tick() {
    let mut w = base_world(6, Box::new(RateWorkload::new(Span::ticks(9), 0.5)));
    w.run_until(Time::at(50));
    let present = w.metrics().histogram("gauge.present").unwrap();
    assert_eq!(present.count(), 51, "one sample per tick incl. t=0");
    assert_eq!(present.min(), Some(6));
}

#[test]
fn message_stats_are_label_accurate() {
    let script = ScriptedWorkload::new().at(Time::at(3), NodeId::from_raw(0), OpAction::Write(1));
    let mut w = base_world(5, Box::new(script));
    w.run_until(Time::at(20));
    let stats: std::collections::BTreeMap<&str, u64> = w.network().sent_by_label().collect();
    assert_eq!(
        stats.get("WRITE"),
        Some(&5),
        "one broadcast to five present nodes"
    );
    assert_eq!(stats.get("INQUIRY"), None, "nobody joined, nobody inquired");
}

#[test]
fn churned_world_drops_messages_to_departed() {
    let mut w = World::new(
        SyncFactory::new(SyncConfig::new(Span::ticks(4))),
        WorldConfig {
            n: 10,
            initial: 0,
            delay: Box::new(Fixed::new(Span::ticks(4))), // slow: leaves beat deliveries
            churn: ChurnDriver::new(
                Box::new(ConstantRate::new(0.08)),
                LeaveSelector::Random,
                IdSource::starting_at(10),
            ),
            workload: Box::new(RateWorkload::new(Span::ticks(8), 1.0).stopping_at(Time::at(80))),
            seed: 3,
            trace: false,
            writer_policy: WriterPolicy::FixedProtected,
            writers: 1,
        },
    );
    w.protect(NodeId::from_raw(0));
    w.run_until(Time::at(100));
    assert!(
        w.network().dropped_to_departed() > 0,
        "slow messages must race departures and lose sometimes"
    );
}
