//! Lemma 5's termination machinery, exercised at the state-machine level:
//! concurrent joiners help each other finish through the DL_PREV channel.
//!
//! The proof's chain: a blocked joiner `p_i` receives the INQUIRY of a
//! later joiner `p_j`; being inactive, `p_i` postpones a reply *and* sends
//! `DL_PREV(i, 0)` so that `p_j`, upon activating, sends `p_i` the value it
//! obtained — `p_i`'s missing vote arrives through a process that entered
//! the system *after* `p_i` did. Churn, the villain everywhere else, is
//! what keeps the supply of helpers coming.

use dynareg::core::es::{EsConfig, EsMsg, EsRegister, Timestamp};
use dynareg::core::{Effect, RegisterProcess};
use dynareg::sim::{NodeId, OpId, Time};

fn nid(i: u64) -> NodeId {
    NodeId::from_raw(i)
}

fn reply(v: u64, sn: i64, r_sn: u64) -> EsMsg<u64> {
    EsMsg::Reply {
        value: Some(v),
        ts: Timestamp { sn, writer: 0 },
        r_sn,
    }
}

/// The full Lemma 5 chain, step by step.
#[test]
fn blocked_joiner_completes_through_a_later_joiner() {
    let cfg = EsConfig::new(5); // quorum = 3
    let mut pi: EsRegister<u64> = EsRegister::new_joiner(nid(10), cfg, OpId::from_raw(1));
    let mut pj: EsRegister<u64> = EsRegister::new_joiner(nid(11), cfg, OpId::from_raw(2));

    // p_i enters; only two actives answer (a third reply was lost to a
    // departure): p_i is stuck one vote short of its quorum.
    pi.on_enter(Time::at(1));
    pi.on_message(Time::at(2), nid(0), reply(7, 1, 0));
    pi.on_message(Time::at(2), nid(1), reply(7, 1, 0));
    assert!(!pi.is_active(), "two of three votes: blocked");

    // p_j enters later; its INQUIRY reaches p_i, which postpones a reply
    // and promises DL_PREV(i, 0).
    pj.on_enter(Time::at(5));
    let effects = pi.on_message(Time::at(6), nid(11), EsMsg::Inquiry { r_sn: 0 });
    assert_eq!(
        effects,
        vec![Effect::Send {
            to: nid(11),
            msg: EsMsg::DlPrev { r_sn: 0 }
        }]
    );
    // p_j records the promise.
    pj.on_message(Time::at(7), nid(10), EsMsg::DlPrev { r_sn: 0 });

    // p_j gathers its own quorum from the actives and activates…
    pj.on_message(Time::at(8), nid(0), reply(7, 1, 0));
    pj.on_message(Time::at(8), nid(1), reply(7, 1, 0));
    let done = pj.on_message(Time::at(8), nid(2), reply(7, 1, 0));
    assert!(done.contains(&Effect::JoinComplete));
    // …and honours the DL_PREV promise: a REPLY to p_i with r_sn = 0.
    let to_pi: Vec<_> = done
        .iter()
        .filter(|e| {
            matches!(e, Effect::Send { to, msg: EsMsg::Reply { r_sn: 0, .. } } if *to == nid(10))
        })
        .collect();
    assert_eq!(to_pi.len(), 1, "activation must answer the promised joiner");

    // That reply is p_i's third vote: it activates.
    let done = pi.on_message(Time::at(9), nid(11), reply(7, 1, 0));
    assert!(done.contains(&Effect::JoinComplete));
    assert!(pi.is_active());
    assert_eq!(pi.local_value(), Some(&7));
}

/// The reading variant (Figure 4 line 14): an *active, reading* process
/// answering an inquiry also sends DL_PREV tagged with its own pending
/// read, so the joiner's eventual value feeds the reader's quorum.
#[test]
fn reader_recruits_joiner_votes() {
    let cfg = EsConfig::new(5);
    let mut reader: EsRegister<u64> = EsRegister::new_bootstrap(nid(0), cfg, 0);
    reader.on_read(Time::at(1), OpId::from_raw(1)); // read_sn = 1
    reader.on_message(Time::at(2), nid(1), reply(0, 0, 1));
    reader.on_message(Time::at(2), nid(2), reply(0, 0, 1));
    assert!(!dynareg::core::completions(&reader.on_message(
        Time::at(3),
        nid(9),
        EsMsg::Inquiry { r_sn: 0 }
    ))
    .iter()
    .any(|_| true));

    // The reply to the inquiry came with DL_PREV(read_sn = 1); the joiner
    // will eventually answer with r_sn = 1, which counts toward the read.
    let done = reader.on_message(Time::at(4), nid(9), reply(0, 0, 1));
    let completed = dynareg::core::completions(&done);
    assert_eq!(completed.len(), 1, "the joiner's vote completed the read");
}

/// Stale DL_PREV promises are harmless: replies tagged with an old request
/// number are ignored by the filter of Figure 4 line 19.
#[test]
fn stale_promise_replies_are_filtered() {
    let cfg = EsConfig::new(5);
    let mut reader: EsRegister<u64> = EsRegister::new_bootstrap(nid(0), cfg, 0);
    // First read completes normally.
    reader.on_read(Time::at(1), OpId::from_raw(1));
    for i in 1..=3 {
        reader.on_message(Time::at(2), nid(i), reply(0, 0, 1));
    }
    // Second read in flight.
    reader.on_read(Time::at(5), OpId::from_raw(2)); // read_sn = 2
                                                    // A joiner honours an old promise with r_sn = 1: no effect.
    let effects = reader.on_message(Time::at(6), nid(9), reply(0, 0, 1));
    assert!(effects.is_empty());
    // Fresh votes still complete the second read.
    reader.on_message(Time::at(7), nid(1), reply(0, 0, 2));
    reader.on_message(Time::at(7), nid(2), reply(0, 0, 2));
    let done = reader.on_message(Time::at(7), nid(3), reply(0, 0, 2));
    assert_eq!(dynareg::core::completions(&done).len(), 1);
}
