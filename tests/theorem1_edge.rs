//! Theorem 1's churn bound, probed *at* the edge: `c = 1/(3δ)` is safe,
//! `c` just above it is not.
//!
//! Two complementary probes:
//!
//! * a **deterministic** minimal construction (Lemma 2's worst case): the
//!   whole informed population turns over at one leave per `period` ticks
//!   while a joiner's 3δ pipeline is in flight. With `n = 3` that is churn
//!   rate `c = 1/(3·period)`, so `period = δ` sits exactly on the paper's
//!   bound and `period = δ − 1` sits just above it. On the bound the last
//!   informed process survives long enough to answer the joiner's INQUIRY;
//!   one tick of extra churn and every copy of the register leaves the
//!   system before the INQUIRY lands — the joiner adopts the initial value
//!   and its later read is a regularity violation the checker must flag.
//!
//! * a **stochastic** end-to-end sweep at exactly `c = 1/(3δ)` under the
//!   worst-case adversary (all delays exactly δ, active-first eviction,
//!   migrating writer): safety must hold across sizes, deltas and seeds.

use dynareg::churn::{ChurnDriver, LeaveSelector, NoChurn};
use dynareg::core::sync::SyncConfig;
use dynareg::net::delay::Fixed;
use dynareg::sim::{IdSource, NodeId, Span, Time};
use dynareg::testkit::{
    OpAction, Scenario, ScriptedWorkload, SyncFactory, World, WorldConfig, WriterPolicy,
};
use dynareg::verify::{ConsistencyReport, RegularityChecker};

/// Runs the Lemma 2 worst case: `n = 3` bootstrap processes, a write, then
/// one joiner entering while the entire informed population leaves at one
/// departure per `period` ticks (churn rate `c = 1/(3·period)`). Every
/// message takes the full legal `δ`. Returns the regularity verdict of the
/// joiner's post-join read.
fn informed_turnover(delta: u64, period: u64) -> ConsistencyReport<Option<u64>> {
    let writer = NodeId::from_raw(0);
    let t_write = 10;
    // The joiner enters after the write completed, so the written value is
    // the unique legal return of a quiescent read.
    let t_enter = t_write + delta + 1;
    let script = ScriptedWorkload::new()
        .at(Time::at(t_write), writer, OpAction::Write(1))
        // Read by the joiner (arrival #0) once its 3δ join pipeline is done.
        .at_arrival(Time::at(t_enter + 3 * delta + 2), 0, OpAction::Read);
    let mut world = World::new(
        SyncFactory::new(SyncConfig::new(Span::ticks(delta))),
        WorldConfig {
            n: 3,
            initial: 0,
            delay: Box::new(Fixed::new(Span::ticks(delta))),
            churn: ChurnDriver::new(
                Box::new(NoChurn),
                LeaveSelector::Random,
                IdSource::starting_at(3),
            ),
            workload: Box::new(script),
            seed: 0,
            trace: false,
            writer_policy: WriterPolicy::FixedProtected,
            writers: 1,
        },
    );
    world.schedule_join(Time::at(t_enter));
    for i in 0..3u64 {
        world.schedule_leave(Time::at(t_enter + i * period), NodeId::from_raw(i));
    }
    world.run_until(Time::at(t_enter + 6 * delta));
    let report = RegularityChecker::check(world.history());
    assert_eq!(report.checked_reads, 1, "the scripted read must run");
    report
}

/// Table rows: at the bound the read is fresh; one tick of extra churn and
/// the checker flags the stale read. Sharp at every δ.
#[test]
fn bound_is_sharp_in_the_deterministic_worst_case() {
    for delta in [3u64, 4, 5, 6] {
        // period = δ  ⇒  c = 1/(3δ): exactly the Theorem 1 bound.
        let at_bound = informed_turnover(delta, delta);
        assert!(
            at_bound.is_ok(),
            "δ={delta}: read must be fresh at c = 1/(3δ): {at_bound}"
        );

        // period = δ−1  ⇒  c = 1/(3(δ−1)) > 1/(3δ): just above the bound.
        let above = informed_turnover(delta, delta - 1);
        assert_eq!(
            above.violation_count(),
            1,
            "δ={delta}: the checker must flag the stale read just above the bound: {above}"
        );
        let violation = &above.violations[0];
        assert_eq!(
            violation.returned, None,
            "δ={delta}: the read returns the joiner's empty copy — every written copy left"
        );
    }
}

/// End-to-end at exactly `c = 1/(3δ)` under the worst-case adversary:
/// Theorem 1 safety holds across the table.
#[test]
fn safety_holds_at_the_bound_end_to_end() {
    for &(n, delta) in &[(15usize, 3u64), (24, 4), (30, 5)] {
        for seed in 0..3 {
            let report = Scenario::synchronous(n, Span::ticks(delta))
                .worst_case_delays()
                .migrating_writer()
                .leave_selector(LeaveSelector::ActiveFirst)
                .churn_fraction_of_bound(1.0)
                .duration(Span::ticks(300))
                .reads_per_tick(2.0)
                .seed(seed)
                .run();
            assert!(
                report.safety.is_ok(),
                "n={n} δ={delta} seed={seed}: {}",
                report.safety
            );
        }
    }
}
