//! Theorem 2: no protocol implements a regular register in a *fully
//! asynchronous* dynamic system.
//!
//! An impossibility theorem cannot be "run", but its two constructive
//! faces can: any protocol must either trust time (and lose safety when
//! delays exceed whatever it assumed) or wait for evidence (and lose
//! liveness when evidence never arrives). We exercise both protocols of
//! the paper under unbounded delays and watch each fail on its own side.

use dynareg::sim::{Span, Time};
use dynareg::testkit::Scenario;

/// Safety face: the synchronous protocol configured for bound `δ̂` but run
/// over heavy-tailed delays (up to 8·δ̂) serves stale or ⊥ values — its
/// waits expire before the traffic arrives.
#[test]
fn timeout_protocol_loses_safety_under_async_delays() {
    let mut total_violations = 0;
    for seed in 0..10 {
        let report = Scenario::synchronous_over_async(15, Span::ticks(3), 8)
            .churn_fraction_of_bound(0.8)
            .duration(Span::ticks(400))
            .reads_per_tick(2.0)
            .seed(seed)
            .run();
        total_violations += report.safety.violation_count();
    }
    assert!(
        total_violations > 0,
        "heavy-tailed delays must produce stale/⊥ reads across 10 seeds"
    );
}

/// The same protocol on the same parameters but a *synchronous* network is
/// clean — pinpointing asynchrony (not churn, not load) as the killer.
#[test]
fn control_run_on_synchronous_network_is_clean() {
    for seed in 0..10 {
        let report = Scenario::synchronous(15, Span::ticks(3))
            .churn_fraction_of_bound(0.8)
            .duration(Span::ticks(400))
            .reads_per_tick(2.0)
            .seed(seed)
            .run();
        assert!(report.safety.is_ok(), "seed={seed}: {}", report.safety);
    }
}

/// Liveness face: the quorum protocol never lies, but an asynchronous
/// adversary may starve one process's incoming traffic indefinitely —
/// legal when no delay bound exists — and that process's operations then
/// never return although it stays in the system.
#[test]
fn quorum_protocol_loses_liveness_under_async_starvation() {
    use dynareg::net::{DelayFault, FaultPlan};
    use dynareg::sim::NodeId;

    let victim = NodeId::from_raw(0); // churn-protected: stays forever
    let report = Scenario::es_over_async(15, Span::ticks(3), 10)
        .churn_fraction_of_bound(1.0)
        .duration(Span::ticks(600))
        .drain(Span::ticks(200))
        .faults(FaultPlan::none().with(DelayFault::starve_recipient(
            victim,
            Time::ZERO,
            Time::MAX,
            Span::ticks(1_000_000),
        )))
        .seed(3)
        .run();
    // Safety still holds — quorums cannot be wrong, only late…
    assert!(report.safety.is_ok(), "{}", report.safety);
    // …but the starved victim's operation never completes.
    assert!(
        !report.liveness.is_ok(),
        "expected stuck operations, got {}",
        report.liveness
    );
    assert!(report
        .liveness
        .stuck_ops
        .iter()
        .all(|&op| report.history.get(op).unwrap().node == victim));
}

/// Without the worst-case adversary, stochastic asynchrony alone does not
/// starve the quorums — Lemma 5's mutual-help keeps joins and reads
/// terminating (slowly). The impossibility needs the adversary.
#[test]
fn stochastic_asynchrony_alone_is_survivable() {
    let report = Scenario::es_over_async(15, Span::ticks(3), 10)
        .churn_fraction_of_bound(1.0)
        .duration(Span::ticks(600))
        .drain(Span::ticks(200))
        .seed(3)
        .run();
    assert!(report.safety.is_ok(), "{}", report.safety);
    assert!(report.liveness.is_ok(), "{}", report.liveness);
}

/// The ES protocol's control run: same churn, synchronous network ⇒ live.
#[test]
fn quorum_control_run_is_live() {
    let report = Scenario::eventually_synchronous(15, Span::ticks(3), Time::ZERO)
        .churn_fraction_of_bound(0.5)
        .duration(Span::ticks(500))
        .reads_per_tick(1.0)
        .seed(3)
        .run();
    assert!(report.liveness.is_ok(), "{}", report.liveness);
}

/// The asymmetry the theorem's proof leans on: stretching the assumed
/// bound helps but can never suffice — for any configured δ̂ there is a
/// delay distribution that defeats it. (We show monotonicity, not a
/// proof: the bigger the tail cap relative to δ̂, the more violations.)
#[test]
fn no_finite_bound_is_enough() {
    let violations_at = |cap: u64| -> usize {
        (0..8)
            .map(|seed| {
                Scenario::synchronous_over_async(15, Span::ticks(3), cap)
                    .churn_fraction_of_bound(0.8)
                    .duration(Span::ticks(400))
                    .reads_per_tick(2.0)
                    .seed(seed)
                    .run()
                    .safety
                    .violation_count()
            })
            .sum()
    };
    let mild = violations_at(2);
    let wild = violations_at(16);
    assert!(
        wild > mild,
        "fatter tails must hurt more (mild={mild}, wild={wild})"
    );
}
