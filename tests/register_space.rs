//! Keyed register-space runs: many registers over one churn substrate.
//!
//! The headline acceptance case: a **256-key Zipf workload on a
//! 1000-node churning world** runs through `RegisterSpace`, per-key
//! regularity/liveness checks all green, with the shared join handshake
//! batching each joiner's state transfer into one inquiry and one reply
//! per responder.

use dynareg::sim::{RegisterId, Span};
use dynareg::testkit::{OpAction, Scenario};
use dynareg::verify::SpaceReport;

/// 256 keys × 1000 nodes under churn: every key's register is regular and
/// live. (Churn is modest so the K·n state transfer per join keeps debug
/// runtime sane; the release-mode `exp_space_throughput` binary runs the
/// heavy version.)
#[test]
fn zipf_256_keys_on_a_churning_1000_node_world_is_regular_per_key() {
    let report = Scenario::synchronous(1000, Span::ticks(3))
        .keys(256)
        .zipf(1.0)
        .churn_rate(0.0004) // ≈ 0.4 joins/tick in absolute terms
        .reads_per_tick(6.0)
        .duration(Span::ticks(90))
        .seed(0xBA1D)
        .run();
    assert_eq!(report.keys, 256);
    assert_eq!(report.extra_keys.len(), 255);
    assert!(
        report.presence.total_arrivals() > 1010,
        "churn actually ran (arrivals = {})",
        report.presence.total_arrivals()
    );
    // Zipf traffic reached a broad slice of the key space…
    let touched = usize::from(report.reads_checked() > 0)
        + report
            .extra_keys
            .iter()
            .filter(|k| k.safety.checked_reads > 0 || k.history.write_count() > 0)
            .count();
    assert!(touched > 48, "only {touched} keys saw traffic");
    assert!(
        report.total_reads_checked() > 200,
        "space-wide reads were checked"
    );
    // …and every key is green.
    assert!(report.all_keys_safe(), "{}", report.summary());
    assert!(report.all_keys_live(), "{}", report.summary());
    assert_eq!(report.total_violations(), 0);
    assert_eq!(report.worst_key().1, 0, "worst key has no violations");
}

/// The shared handshake is what makes 256 keys affordable: joins cost one
/// `JoinAll` inquiry and one batched reply per responder — the same
/// *message count* as a single-register join — instead of `2k` messages.
#[test]
fn shared_join_handshake_keeps_message_count_key_independent() {
    let run = |keys: u32| {
        Scenario::synchronous(30, Span::ticks(3))
            .keys(keys)
            .churn_rate(0.01)
            .reads_per_tick(0.0)
            .write_every(Span::ticks(1_000_000)) // joins only: isolate the handshake
            .duration(Span::ticks(120))
            .seed(7)
            .run()
    };
    let one = run(1);
    let sixteen = run(16);
    assert!(one.presence.total_arrivals() > 45, "churn ran");
    // Same membership schedule (same seed, same churn draws), so the join
    // traffic is comparable; the 16-key space pays the same number of
    // physical messages as the 1-key world.
    assert_eq!(
        one.presence.total_arrivals(),
        sixteen.presence.total_arrivals()
    );
    assert_eq!(
        one.total_messages, sixteen.total_messages,
        "the handshake is shared, not per key"
    );
}

/// Per-key histories are genuinely independent: traffic lands on the keys
/// the workload addressed, writes serialize within each key, and untouched
/// keys stay pristine.
#[test]
fn keyed_scripted_invocations_land_on_their_registers() {
    use dynareg::churn::{ChurnDriver, LeaveSelector, NoChurn};
    use dynareg::net::delay::Synchronous;
    use dynareg::sim::{IdSource, NodeId, Time};
    use dynareg::testkit::{
        ScriptedWorkload, SpaceOf, SyncFactory, World, WorldConfig, WriterPolicy,
    };
    use dynareg_core::sync::SyncConfig;

    let k = RegisterId::from_raw;
    let script = ScriptedWorkload::new()
        .at(
            Time::at(2),
            NodeId::from_raw(0),
            OpAction::Write(10).on_key(k(3)),
        )
        .at(
            Time::at(9),
            NodeId::from_raw(0),
            OpAction::Write(11).on_key(k(1)),
        )
        .at(
            Time::at(14),
            NodeId::from_raw(2),
            OpAction::Read.on_key(k(3)),
        )
        .at(
            Time::at(15),
            NodeId::from_raw(4),
            OpAction::Read.on_key(k(0)),
        );
    let mut world = World::new(
        SpaceOf::new(SyncFactory::new(SyncConfig::new(Span::ticks(2))), 4),
        WorldConfig {
            n: 6,
            initial: 0,
            delay: Box::new(Synchronous::new(Span::ticks(2))),
            churn: ChurnDriver::new(
                Box::new(NoChurn),
                LeaveSelector::Random,
                IdSource::starting_at(6),
            ),
            workload: Box::new(script),
            seed: 3,
            trace: false,
            writer_policy: WriterPolicy::FixedProtected,
            writers: 1,
        },
    );
    world.run_until(Time::at(40));
    assert_eq!(world.key_count(), 4);

    let space = world.space_history();
    assert_eq!(space.key(k(3)).write_count(), 1);
    assert_eq!(space.key(k(1)).write_count(), 1);
    assert_eq!(space.key(k(0)).write_count(), 0);
    assert_eq!(
        space.key(k(2)).ops().len(),
        0,
        "untouched key stays pristine"
    );
    // The key-3 read observed key 3's write, the key-0 read the initial value.
    let report = SpaceReport::check(space);
    assert!(
        report.all_regular() && report.all_live(),
        "{}",
        report.summary()
    );
    let read3 = space
        .key(k(3))
        .completed_reads()
        .next()
        .expect("read on r3");
    assert_eq!(
        format!("{:?}", read3.kind),
        "Read { returned: Some(Some(10)) }"
    );
}

/// The quorum-based ES protocol also multiplexes: a keyed ES run under
/// churn stays regular and live on every key.
#[test]
fn keyed_es_space_is_regular_per_key() {
    use dynareg::sim::Time;
    let report = Scenario::eventually_synchronous(11, Span::ticks(3), Time::ZERO)
        .keys(8)
        .zipf(0.8)
        .churn_fraction_of_bound(0.5)
        .reads_per_tick(2.0)
        .duration(Span::ticks(400))
        .seed(2)
        .run();
    assert_eq!(report.keys, 8);
    assert!(report.all_keys_safe(), "{}", report.summary());
    assert!(report.all_keys_live(), "{}", report.summary());
    assert!(report.total_reads_checked() > 50);
    assert!(report.summary().contains("keys=8"), "{}", report.summary());
}

/// Addressing a key outside the world's space is a caller bug, not a
/// silent drop.
#[test]
#[should_panic(expected = "outside this world's")]
fn out_of_space_key_panics() {
    use dynareg::churn::{ChurnDriver, LeaveSelector, NoChurn};
    use dynareg::net::delay::Synchronous;
    use dynareg::sim::{IdSource, NodeId, Time};
    use dynareg::testkit::{RateWorkload, SyncFactory, World, WorldConfig, WriterPolicy};
    use dynareg_core::sync::SyncConfig;

    let mut world = World::new(
        SyncFactory::new(SyncConfig::new(Span::ticks(2))),
        WorldConfig {
            n: 3,
            initial: 0,
            delay: Box::new(Synchronous::new(Span::ticks(2))),
            churn: ChurnDriver::new(
                Box::new(NoChurn),
                LeaveSelector::Random,
                IdSource::starting_at(3),
            ),
            workload: Box::new(RateWorkload::new(Span::ticks(4), 0.0)),
            seed: 1,
            trace: false,
            writer_policy: WriterPolicy::FixedProtected,
            writers: 1,
        },
    );
    world.run_until(Time::at(5));
    world.invoke(
        NodeId::from_raw(1),
        OpAction::Read.on_key(RegisterId::from_raw(9)),
    );
}
