//! Smoke test for the facade's documented quickstart path: the
//! `Scenario::synchronous(…).run()` example from `dynareg`'s crate docs
//! must succeed, and — because every stochastic choice flows through the
//! seeded [`dynareg::sim::DetRng`] — two runs with the same seed must be
//! bit-identical in every reported quantity.

use dynareg::sim::Span;
use dynareg::testkit::Scenario;

fn quickstart() -> dynareg::testkit::RunReport {
    // Keep in lockstep with the doc example in src/lib.rs.
    Scenario::synchronous(20, Span::ticks(4))
        .churn_fraction_of_bound(0.5)
        .duration(Span::ticks(400))
        .seed(1)
        .run()
}

/// The crate-docs example holds: regular and live under half the bound.
#[test]
fn quickstart_report_is_clean() {
    let report = quickstart();
    assert!(report.safety.is_ok(), "{}", report.safety);
    assert_eq!(report.liveness.incomplete_stayer_count(), 0);
    assert!(report.reads_checked() > 0, "the workload issued reads");
}

/// Same seed, same everything: the quickstart run replays identically.
#[test]
fn quickstart_is_deterministic_across_runs() {
    let (a, b) = (quickstart(), quickstart());
    assert_eq!(a.total_messages, b.total_messages);
    assert_eq!(a.messages, b.messages);
    assert_eq!(a.reads_checked(), b.reads_checked());
    assert_eq!(a.safety.violation_count(), b.safety.violation_count());
    assert_eq!(a.liveness.completed, b.liveness.completed);
    assert_eq!(
        a.presence.total_arrivals(),
        b.presence.total_arrivals(),
        "churn schedule replays identically"
    );
    assert_eq!(a.summary(), b.summary());
}

/// And a different seed actually changes the run (the seed is not inert).
#[test]
fn quickstart_seed_matters() {
    let a = quickstart();
    let c = Scenario::synchronous(20, Span::ticks(4))
        .churn_fraction_of_bound(0.5)
        .duration(Span::ticks(400))
        .seed(2)
        .run();
    assert_ne!(
        (a.total_messages, a.liveness.completed),
        (c.total_messages, c.liveness.completed),
        "different seeds should produce observably different runs"
    );
}
