//! Tests of the beyond-the-paper extensions: multi-writer timestamps
//! (§7's "permit any process to write at any time") and crash injection
//! (§7's "process failures in a dynamic system" — which §2.1 already notes
//! collapses to leaves).

use dynareg::core::es::{EsConfig, EsMsg, EsRegister, Timestamp};
use dynareg::core::{completions, OpOutcome, RegisterProcess};
use dynareg::sim::{NodeId, OpId, Span, Time};
use dynareg::testkit::Scenario;

fn nid(i: u64) -> NodeId {
    NodeId::from_raw(i)
}

fn oid(i: u64) -> OpId {
    OpId::from_raw(i)
}

/// Two writers that both observed sn = 0 write concurrently; all replicas
/// converge on the same winner — ordered by (sn, writer-id) — regardless
/// of delivery order. This is the property bare sequence numbers lack.
#[test]
fn concurrent_writes_converge_on_every_replica() {
    let w3 = EsMsg::Write {
        value: 333u64,
        ts: Timestamp { sn: 1, writer: 3 },
    };
    let w7 = EsMsg::Write {
        value: 777u64,
        ts: Timestamp { sn: 1, writer: 7 },
    };
    // Replica A sees w3 then w7; replica B sees w7 then w3.
    let mut a = EsRegister::new_bootstrap(nid(0), EsConfig::new(5), 0u64);
    a.on_message(Time::at(1), nid(3), w3.clone());
    a.on_message(Time::at(2), nid(7), w7.clone());
    let mut b = EsRegister::new_bootstrap(nid(1), EsConfig::new(5), 0u64);
    b.on_message(Time::at(1), nid(7), w7);
    b.on_message(Time::at(2), nid(3), w3);
    assert_eq!(a.local_value(), b.local_value());
    assert_eq!(a.local_value(), Some(&777), "higher writer id wins the tie");
    assert_eq!(a.local_ts(), b.local_ts());
}

/// A full interleaved double-write at the state-machine level: writer A and
/// writer B run their read-then-write phases interleaved; both complete
/// and every participant ends on the same (value, timestamp).
#[test]
fn interleaved_multi_writer_rounds_serialize() {
    let cfg = EsConfig::new(3); // quorum = 2
    let mut wa = EsRegister::new_bootstrap(nid(1), cfg, 0u64);
    let mut wb = EsRegister::new_bootstrap(nid(2), cfg, 0u64);
    let mut observer = EsRegister::new_bootstrap(nid(3), cfg, 0u64);

    // Both writers start; both phase-1 reads observe sn = 0.
    wa.on_write(Time::at(1), oid(1), 100);
    wb.on_write(Time::at(1), oid(2), 200);
    let reply0 = |r_sn| EsMsg::Reply {
        value: Some(0u64),
        ts: Timestamp::INITIAL,
        r_sn,
    };
    for (w, r_sn) in [(&mut wa, 1u64), (&mut wb, 1u64)] {
        w.on_message(Time::at(2), nid(3), reply0(r_sn));
        w.on_message(Time::at(2), nid(4), reply0(r_sn));
    }
    // Both produced ⟨1, id⟩ writes; deliver both to the observer and to
    // each other (cross-delivery), then ack to completion.
    let ts_a = Timestamp { sn: 1, writer: 1 };
    let ts_b = Timestamp { sn: 1, writer: 2 };
    let wa_msg = EsMsg::Write {
        value: 100,
        ts: ts_a,
    };
    let wb_msg = EsMsg::Write {
        value: 200,
        ts: ts_b,
    };
    observer.on_message(Time::at(3), nid(1), wa_msg.clone());
    observer.on_message(Time::at(3), nid(2), wb_msg.clone());
    wa.on_message(Time::at(3), nid(2), wb_msg);
    wb.on_message(Time::at(3), nid(1), wa_msg);
    // Acks complete both writes.
    for (w, ts, op) in [(&mut wa, ts_a, oid(1)), (&mut wb, ts_b, oid(2))] {
        w.on_message(Time::at(4), nid(3), EsMsg::Ack { ts });
        let done = w.on_message(Time::at(4), nid(4), EsMsg::Ack { ts });
        assert_eq!(completions(&done), vec![(op, OpOutcome::WriteOk)]);
    }
    // Everyone converged on writer 2's value (⟨1,2⟩ > ⟨1,1⟩).
    assert_eq!(observer.local_value(), Some(&200));
    assert_eq!(wa.local_value(), Some(&200));
    assert_eq!(wb.local_value(), Some(&200));
}

/// Crash injection: §2.1 — "considering a crash as an unplanned leave, the
/// model can take them into account without additional assumption". A
/// writer crashing mid-write (evicted by churn while unprotected) leaves
/// an abandoned write; the register remains regular and later writes
/// proceed.
#[test]
fn writer_crash_mid_write_is_survivable() {
    let mut clean = 0;
    for seed in 0..6 {
        let report = Scenario::synchronous(20, Span::ticks(4))
            .migrating_writer() // writers are evictable (after their write returns)
            .churn_fraction_of_bound(0.8)
            .duration(Span::ticks(400))
            .seed(seed)
            .run();
        assert!(report.safety.is_ok(), "seed={seed}: {}", report.safety);
        clean += 1;
    }
    assert_eq!(clean, 6);
}

/// Timestamps are strictly ordered and `next_for` is monotone — the
/// multi-writer serialization backbone.
#[test]
fn timestamp_algebra() {
    let mut prev = Timestamp::BOTTOM;
    for (sn, writer) in [(0i64, 0u64), (0, 5), (1, 0), (1, 9), (2, 1)] {
        let t = Timestamp { sn, writer };
        assert!(t > prev, "{t} should follow {prev}");
        prev = t;
    }
    let t = Timestamp { sn: 4, writer: 2 };
    assert!(t.next_for(nid(1)) > t);
    assert_eq!(t.next_for(nid(999)).sn, t.sn + 1);
    assert_eq!(t.next_for(nid(999)).writer, 999);
}

/// The atomic extension composes with churn: inversions stay at zero even
/// while members come and go.
#[test]
fn atomic_extension_survives_churn() {
    let report = Scenario::es_atomic(11, Span::ticks(3), Time::ZERO)
        .churn_fraction_of_bound(0.5)
        .duration(Span::ticks(500))
        .reads_per_tick(2.0)
        .seed(13)
        .run();
    assert!(report.atomicity.is_ok(), "{}", report.atomicity);
    assert_eq!(report.inversions(), 0);
    assert!(report.presence.total_arrivals() > 11, "churn actually ran");
}
