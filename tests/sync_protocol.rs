//! End-to-end tests of the synchronous protocol (Figures 1–2, Theorem 1).

use dynareg::churn::LeaveSelector;
use dynareg::sim::Span;
use dynareg::testkit::Scenario;

/// Theorem 1: under `c ≤ 1/(3δ)` the protocol implements a regular
/// register — across deltas, sizes and seeds.
#[test]
fn regular_and_live_under_the_bound() {
    for &(n, delta) in &[(10usize, 2u64), (25, 4), (40, 6)] {
        for seed in 0..3 {
            let report = Scenario::synchronous(n, Span::ticks(delta))
                .churn_fraction_of_bound(0.5)
                .duration(Span::ticks(300))
                .reads_per_tick(1.5)
                .seed(seed)
                .run();
            assert!(
                report.safety.is_ok(),
                "n={n} δ={delta} seed={seed}: {}",
                report.safety
            );
            assert!(
                report.liveness.is_ok(),
                "n={n} δ={delta} seed={seed}: {}",
                report.liveness
            );
        }
    }
}

/// §3.3's design goal: reads are purely local — zero latency, and the READ
/// label never appears on the wire.
#[test]
fn reads_are_free() {
    let report = Scenario::synchronous(20, Span::ticks(4))
        .churn_fraction_of_bound(0.5)
        .duration(Span::ticks(300))
        .reads_per_tick(3.0)
        .seed(7)
        .run();
    assert!(report.reads_checked() > 100);
    assert_eq!(report.liveness.read_latency.max(), Some(0));
    assert!(report.messages.iter().all(|(label, _)| *label != "READ"));
}

/// Write latency is exactly δ (Figure 2 line 02's `wait(δ)`), and join
/// latency is δ (fast path: a WRITE arrived during the initial wait) or 3δ
/// (inquiry path) — nothing else.
#[test]
fn operation_latencies_match_figure_1_and_2() {
    let delta = 5u64;
    let report = Scenario::synchronous(20, Span::ticks(delta))
        .churn_fraction_of_bound(0.5)
        .duration(Span::ticks(400))
        .seed(3)
        .run();
    let w = &report.liveness.write_latency;
    assert_eq!((w.min(), w.max()), (Some(delta), Some(delta)));
    let joins = &report.liveness.join_latency;
    assert!(joins.count() > 10, "churn produced joins");
    assert_eq!(joins.min(), Some(delta), "fast path takes exactly δ");
    assert_eq!(
        joins.max(),
        Some(3 * delta),
        "inquiry path takes exactly 3δ"
    );
    // Either plateau is allowed, nothing in between except the two values.
    for q in [0.1, 0.5, 0.9] {
        let v = joins.quantile(q).unwrap();
        assert!(
            v == delta || v == 3 * delta,
            "join latency {v} is neither δ nor 3δ"
        );
    }
}

/// Churn keeps the population constant (the paper's model) while turning
/// over a substantial fraction of it.
#[test]
fn population_is_constant_with_real_turnover() {
    let n = 24;
    let report = Scenario::synchronous(n, Span::ticks(3))
        .churn_fraction_of_bound(0.8)
        .duration(Span::ticks(500))
        .seed(5)
        .run();
    let present = report.metrics.histogram("gauge.present").unwrap();
    assert_eq!(present.min(), Some(n as u64));
    assert_eq!(present.max(), Some(n as u64));
    assert!(
        report.presence.total_departures() > n,
        "the initial population churned through at least once"
    );
}

/// Adversarial victim selection below the bound is still safe (Theorem 1
/// holds for any adversary within the churn constraint).
#[test]
fn adversarial_selectors_below_bound_are_safe() {
    for selector in [
        LeaveSelector::OldestFirst,
        LeaveSelector::NewestFirst,
        LeaveSelector::ActiveFirst,
    ] {
        let report = Scenario::synchronous(20, Span::ticks(4))
            .worst_case_delays()
            .migrating_writer()
            .churn_fraction_of_bound(0.75)
            .leave_selector(selector)
            .duration(Span::ticks(400))
            .seed(11)
            .run();
        assert!(
            report.safety.is_ok(),
            "selector {selector:?}: {}",
            report.safety
        );
    }
}

/// Beyond the bound under the worst-case adversary, the active population
/// collapses (Lemma 2's floor hits zero): the failure is availability, and
/// the join pipeline swallows the system.
#[test]
fn beyond_bound_availability_collapses() {
    let below = Scenario::synchronous(30, Span::ticks(4))
        .worst_case_delays()
        .migrating_writer()
        .churn_fraction_of_bound(0.5)
        .leave_selector(LeaveSelector::ActiveFirst)
        .duration(Span::ticks(400))
        .seed(1)
        .run();
    let above = Scenario::synchronous(30, Span::ticks(4))
        .worst_case_delays()
        .migrating_writer()
        .churn_fraction_of_bound(2.0)
        .leave_selector(LeaveSelector::ActiveFirst)
        .duration(Span::ticks(400))
        .seed(1)
        .run();
    let mean = |r: &dynareg::testkit::RunReport| {
        r.metrics.histogram("gauge.active").unwrap().mean().unwrap()
    };
    assert!(mean(&below) > 10.0, "below bound the active set is healthy");
    assert!(mean(&above) < 5.0, "above bound it collapses");
    assert_eq!(
        above.metrics.histogram("gauge.active").unwrap().min(),
        Some(0),
        "the active set empties entirely"
    );
    assert!(above.reads_checked() < below.reads_checked() / 5);
}

/// Determinism across the whole stack: same scenario + seed ⇒ identical
/// message counts, identical verdicts, identical latencies.
#[test]
fn same_seed_same_everything() {
    let run = |seed| {
        Scenario::synchronous(15, Span::ticks(3))
            .churn_fraction_of_bound(0.6)
            .duration(Span::ticks(250))
            .seed(seed)
            .run()
    };
    let (a, b) = (run(99), run(99));
    assert_eq!(a.total_messages, b.total_messages);
    assert_eq!(a.messages, b.messages);
    assert_eq!(a.reads_checked(), b.reads_checked());
    assert_eq!(
        a.liveness.join_latency.mean(),
        b.liveness.join_latency.mean()
    );
    let c = run(100);
    assert_ne!(
        a.total_messages, c.total_messages,
        "different seed, different run"
    );
}
