//! The register-space redesign's load-bearing property: a **1-key
//! `RegisterSpace` world is byte-identical to the legacy single-register
//! world** — same histories (op ids, instants, values), same membership
//! totals, same message counts, same verdicts — across seeds, protocols
//! (sync + ES) and churn plans.
//!
//! `ScenarioSpec::run()` takes the solo fast path (raw protocol messages,
//! the pre-redesign engine); `ScenarioSpec::run_spaced()` forces the same
//! spec through the `RegisterSpace` multiplexer and its `SpaceMsg` wire
//! layer. Their event-stream digests must collide exactly.

use dynareg::churn::LeaveSelector;
use dynareg::fleet::run_digest;
use dynareg::sim::{Span, Time};
use dynareg::testkit::{RunReport, Scenario};
use proptest::prelude::*;

/// Full observable equality, not just the digest: histories render
/// identically, message totals and per-label streams match, and all three
/// verdicts agree.
fn assert_equivalent(solo: &RunReport, spaced: &RunReport) {
    assert_eq!(solo.keys, 1);
    assert_eq!(spaced.keys, 1);
    assert_eq!(
        format!("{:?}", solo.history.ops()),
        format!("{:?}", spaced.history.ops()),
        "op streams diverge"
    );
    assert_eq!(
        solo.total_messages, spaced.total_messages,
        "message counts diverge"
    );
    assert_eq!(
        solo.messages, spaced.messages,
        "per-label message streams diverge"
    );
    assert_eq!(
        solo.presence.total_arrivals(),
        spaced.presence.total_arrivals()
    );
    assert_eq!(
        solo.presence.total_departures(),
        spaced.presence.total_departures()
    );
    assert_eq!(solo.safety.is_ok(), spaced.safety.is_ok());
    assert_eq!(solo.inversions(), spaced.inversions());
    assert_eq!(
        solo.liveness.incomplete_stayer_count(),
        spaced.liveness.incomplete_stayer_count()
    );
    assert_eq!(
        run_digest(solo),
        run_digest(spaced),
        "event-stream digests diverge"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Sync protocol: any (n, δ, churn plan, seed) produces digest-identical
    /// solo and 1-key-space runs.
    #[test]
    fn one_key_sync_space_equals_legacy_world(
        n in 5usize..20,
        delta in 2u64..6,
        churn_plan in 0usize..3,
        seed in 0u64..1_000_000,
    ) {
        let base = Scenario::synchronous(n, Span::ticks(delta))
            .duration(Span::ticks(180))
            .seed(seed);
        let base = match churn_plan {
            0 => base,                                    // static membership
            1 => base.churn_fraction_of_bound(0.5),       // the paper's model
            _ => base
                .churn_poisson(0.01)
                .leave_selector(LeaveSelector::ActiveFirst), // bursty adversary
        };
        let spec = base.into_spec();
        assert_equivalent(&spec.run(), &spec.run_spaced());
    }

    /// ES protocol (quorum joins, DL_PREV mutual help, ack chains): the
    /// shared handshake's fan-in/fan-out must not change a single event.
    #[test]
    fn one_key_es_space_equals_legacy_world(
        n in 5usize..14,
        gst in 0u64..120,
        churn in 0usize..2,
        seed in 0u64..1_000_000,
    ) {
        let base = Scenario::eventually_synchronous(n, Span::ticks(3), Time::at(gst))
            .duration(Span::ticks(300))
            .seed(seed);
        let base = if churn == 0 { base } else { base.churn_fraction_of_bound(0.5) };
        let spec = base.into_spec();
        assert_equivalent(&spec.run(), &spec.run_spaced());
    }
}

/// The **shard-config plumbing at `G = 1`** is the other equivalence
/// oracle this suite pins: a multi-key world built through
/// `SpaceOf::with_shards(ShardConfig::new(1))` must observe exactly what
/// the legacy constructor path (no shard config attached) observes — the
/// sharded joiner bookkeeping, batch filtering and fallback machinery are
/// all conditioned on `groups > 1` and may not leak a single event. CI
/// additionally `cmp`s `exp_space_throughput --shards 1` against
/// `--legacy` digests.
mod sharded_g1 {
    use dynareg::churn::{ChurnDriver, ConstantRate, LeaveSelector};
    use dynareg::net::delay::Synchronous;
    use dynareg::sim::{IdSource, NodeId, Span, Time};
    use dynareg::testkit::{
        EsFactory, RegisterSpaceProcess, ShardConfig, SpaceFactory, SpaceOf, SyncFactory, World,
        WorldConfig, WriterPolicy, ZipfKeys, ZipfWorkload,
    };
    use dynareg_core::es::EsConfig;
    use dynareg_core::sync::SyncConfig;
    use proptest::prelude::*;

    /// Everything observable about a keyed world: every key's op stream,
    /// the membership totals, and the per-label message streams.
    fn observe<F>(
        factory: F,
        n: usize,
        keys: u32,
        churn: f64,
        seed: u64,
    ) -> (String, u64, u64, Vec<(&'static str, u64)>)
    where
        F: SpaceFactory,
        F::Proc: RegisterSpaceProcess<Val = u64>,
    {
        let delta = Span::ticks(3);
        let mut world = World::new(
            factory,
            WorldConfig {
                n,
                initial: 0,
                delay: Box::new(Synchronous::new(delta)),
                churn: ChurnDriver::new(
                    Box::new(ConstantRate::new(churn)),
                    LeaveSelector::Random,
                    IdSource::starting_at(n as u64),
                ),
                workload: Box::new(
                    ZipfWorkload::new(ZipfKeys::new(keys, 1.0), delta.times(3), 1.0)
                        .stopping_at(Time::at(130)),
                ),
                seed,
                trace: false,
                writer_policy: WriterPolicy::FixedProtected,
                writers: 1,
            },
        );
        world.protect(NodeId::from_raw(0));
        world.run_until(Time::at(160));
        let (space, presence, _metrics, _trace, network) = world.into_space_outputs();
        let mut ops = String::new();
        for (_, h) in space.iter() {
            ops.push_str(&format!("{:?}", h.ops()));
        }
        (
            ops,
            presence.total_arrivals() as u64,
            network.total_sent(),
            network.sent_by_label().collect(),
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn g1_sync_space_equals_legacy_constructor_path(
            n in 5usize..16,
            keys in 2u32..6,
            churn_plan in 0usize..3,
            seed in 0u64..1_000_000,
        ) {
            let churn = [0.0, 0.01, 0.03][churn_plan];
            let f = SyncFactory::new(SyncConfig::new(Span::ticks(3)));
            let legacy = observe(SpaceOf::new(f, keys), n, keys, churn, seed);
            let sharded = observe(
                SpaceOf::new(f, keys).with_shards(ShardConfig::new(1)),
                n,
                keys,
                churn,
                seed,
            );
            prop_assert_eq!(legacy, sharded);
        }
    }

    #[test]
    fn g1_es_space_equals_legacy_constructor_path() {
        for seed in 0..4 {
            let f = EsFactory::new(EsConfig::new(9));
            let legacy = observe(SpaceOf::new(f, 4), 9, 4, 0.005, seed);
            let sharded = observe(
                SpaceOf::new(f, 4).with_shards(ShardConfig::new(1)),
                9,
                4,
                0.005,
                seed,
            );
            assert_eq!(legacy, sharded);
        }
    }
}

/// The multi-writer drive's two contracts: `writers = 1` is the legacy
/// single-writer world **exactly** (digest-identical — the roster and the
/// per-(node, key) availability query reduce to the old fixed writer and
/// global write slot), and `writers = N` ES runs **converge**: once the
/// last write completes, every reader returns the same value — the ES
/// protocol's competing `(sn, writer)` timestamps pick a single winner
/// however the writes raced.
mod multi_writer {
    use super::*;
    use dynareg::verify::OpKind;

    /// The values of every read invoked after the last write completed —
    /// the post-quiescence suffix where convergence must hold. `None`
    /// when the run has no such reads (the final write outlived the final
    /// read invocation), which makes the convergence claim vacuous.
    fn quiescent_reads(report: &RunReport) -> Option<Vec<Option<u64>>> {
        let ops = report.history.ops();
        let end = ops
            .iter()
            .filter(|r| matches!(r.kind, OpKind::Write { .. }))
            .filter_map(|r| r.completed_at)
            .max()?;
        let finals: Vec<Option<u64>> = ops
            .iter()
            .filter(|r| r.invoked_at > end)
            .filter_map(|r| match r.kind {
                OpKind::Read { returned } => returned,
                _ => None,
            })
            .collect();
        if finals.is_empty() {
            None
        } else {
            Some(finals)
        }
    }

    /// Asserts the convergence claim on a finished multi-writer run:
    /// regularity holds, and (when the run has a post-quiescence suffix)
    /// every reader returns one single written value.
    fn assert_converged(report: &RunReport) -> Result<bool, String> {
        if !report.safety.is_ok() {
            return Err(format!("regularity lost: {}", report.safety));
        }
        let Some(finals) = quiescent_reads(report) else {
            return Ok(false);
        };
        if !finals.windows(2).all(|w| w[0] == w[1]) {
            return Err(format!("post-quiescence readers disagree: {finals:?}"));
        }
        // The register value is `Option<u64>` (`None` = the initial ⊥);
        // a converged post-quiescence read is always a written `Some`.
        let winner = finals[0];
        let written = report
            .history
            .ops()
            .iter()
            .any(|r| matches!(r.kind, OpKind::Write { value, .. } if value == winner));
        if !written {
            return Err(format!("converged value {winner:?} was never written"));
        }
        Ok(true)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Explicitly requesting one writer must not perturb a single
        /// event: the digest pins `writers(1) ≡ default` across seeds and
        /// churn plans (CI additionally `cmp`s the bench digests).
        #[test]
        fn one_writer_request_is_digest_identical_to_default(
            n in 5usize..16,
            delta in 2u64..5,
            churn_plan in 0usize..3,
            seed in 0u64..1_000_000,
        ) {
            let base = || {
                let b = Scenario::synchronous(n, Span::ticks(delta))
                    .duration(Span::ticks(160))
                    .seed(seed);
                match churn_plan {
                    0 => b,
                    1 => b.churn_fraction_of_bound(0.5),
                    _ => b.churn_poisson(0.01),
                }
            };
            let default = base().into_spec().run();
            let pinned = base().writers(1).into_spec().run();
            prop_assert_eq!(run_digest(&default), run_digest(&pinned));
        }

        /// N concurrent ES writers on one key: regularity holds under the
        /// hybrid write order and, after the last write completes, every
        /// reader observes one single value.
        #[test]
        fn concurrent_es_writers_converge_to_one_value_at_every_reader(
            writers in 2usize..5,
            churn_plan in 0usize..3,
            seed in 0u64..1_000_000,
        ) {
            let base = Scenario::eventually_synchronous(10, Span::ticks(3), Time::ZERO)
                .duration(Span::ticks(320))
                .reads_per_tick(2.0)
                .write_every(Span::ticks(4))
                .quiesce_writes(Span::ticks(40))
                .writers(writers)
                .seed(seed);
            let base = match churn_plan {
                0 => base,
                1 => base.churn_fraction_of_bound(0.4),
                _ => base.churn_poisson(0.005),
            };
            let report = base.into_spec().run();
            if churn_plan == 0 {
                // Static membership: the whole roster is present, so the
                // drive really is multi-writer.
                let writer_nodes: std::collections::BTreeSet<_> = report
                    .history
                    .ops()
                    .iter()
                    .filter(|r| matches!(r.kind, OpKind::Write { .. }))
                    .map(|r| r.node)
                    .collect();
                prop_assert_eq!(writer_nodes.len(), writers, "roster writers all drove");
            }
            // Convergence may be vacuous for a given seed (the final
            // write can outlive the final read invocation); the fixed-
            // seed companion below pins non-vacuous coverage.
            prop_assert!(assert_converged(&report).is_ok());
        }
    }

    /// Deterministic companion to the proptest: hand-picked seeds whose
    /// runs are guaranteed to carry a post-quiescence read suffix, so
    /// the convergence claim is checked non-vacuously on every CI run.
    #[test]
    fn convergence_suffix_is_exercised_on_fixed_seeds() {
        let mut exercised = 0;
        for writers in 2usize..5 {
            for seed in 0..6u64 {
                let report = Scenario::eventually_synchronous(10, Span::ticks(3), Time::ZERO)
                    .duration(Span::ticks(320))
                    .reads_per_tick(2.0)
                    .write_every(Span::ticks(4))
                    .quiesce_writes(Span::ticks(40))
                    .writers(writers)
                    .churn_fraction_of_bound(0.4)
                    .seed(seed)
                    .into_spec()
                    .run();
                match assert_converged(&report) {
                    Ok(true) => exercised += 1,
                    Ok(false) => {}
                    Err(e) => panic!("W={writers} seed={seed}: {e}"),
                }
            }
        }
        assert!(
            exercised >= 9,
            "convergence suffix vacuous almost everywhere ({exercised}/18)"
        );
    }
}

/// The atomic extension's write-back broadcasts also round-trip the space
/// layer unchanged.
#[test]
fn one_key_atomic_space_equals_legacy_world() {
    for seed in 0..4 {
        let spec = Scenario::es_atomic(9, Span::ticks(2), Time::ZERO)
            .duration(Span::ticks(250))
            .reads_per_tick(2.0)
            .seed(seed)
            .into_spec();
        assert_equivalent(&spec.run(), &spec.run_spaced());
    }
}

/// The Figure 3(a) ablation (skip-join-wait) exercises the joiner's
/// enter-time inquiry through the shared handshake.
#[test]
fn one_key_nowait_space_equals_legacy_world() {
    for seed in 0..4 {
        let spec = Scenario::synchronous_without_join_wait(10, Span::ticks(3))
            .churn_fraction_of_bound(0.4)
            .duration(Span::ticks(200))
            .seed(seed)
            .into_spec();
        assert_equivalent(&spec.run(), &spec.run_spaced());
    }
}
