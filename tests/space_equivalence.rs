//! The register-space redesign's load-bearing property: a **1-key
//! `RegisterSpace` world is byte-identical to the legacy single-register
//! world** — same histories (op ids, instants, values), same membership
//! totals, same message counts, same verdicts — across seeds, protocols
//! (sync + ES) and churn plans.
//!
//! `ScenarioSpec::run()` takes the solo fast path (raw protocol messages,
//! the pre-redesign engine); `ScenarioSpec::run_spaced()` forces the same
//! spec through the `RegisterSpace` multiplexer and its `SpaceMsg` wire
//! layer. Their event-stream digests must collide exactly.

use dynareg::churn::LeaveSelector;
use dynareg::fleet::run_digest;
use dynareg::sim::{Span, Time};
use dynareg::testkit::{RunReport, Scenario};
use proptest::prelude::*;

/// Full observable equality, not just the digest: histories render
/// identically, message totals and per-label streams match, and all three
/// verdicts agree.
fn assert_equivalent(solo: &RunReport, spaced: &RunReport) {
    assert_eq!(solo.keys, 1);
    assert_eq!(spaced.keys, 1);
    assert_eq!(
        format!("{:?}", solo.history.ops()),
        format!("{:?}", spaced.history.ops()),
        "op streams diverge"
    );
    assert_eq!(
        solo.total_messages, spaced.total_messages,
        "message counts diverge"
    );
    assert_eq!(
        solo.messages, spaced.messages,
        "per-label message streams diverge"
    );
    assert_eq!(
        solo.presence.total_arrivals(),
        spaced.presence.total_arrivals()
    );
    assert_eq!(
        solo.presence.total_departures(),
        spaced.presence.total_departures()
    );
    assert_eq!(solo.safety.is_ok(), spaced.safety.is_ok());
    assert_eq!(solo.inversions(), spaced.inversions());
    assert_eq!(
        solo.liveness.incomplete_stayer_count(),
        spaced.liveness.incomplete_stayer_count()
    );
    assert_eq!(
        run_digest(solo),
        run_digest(spaced),
        "event-stream digests diverge"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Sync protocol: any (n, δ, churn plan, seed) produces digest-identical
    /// solo and 1-key-space runs.
    #[test]
    fn one_key_sync_space_equals_legacy_world(
        n in 5usize..20,
        delta in 2u64..6,
        churn_plan in 0usize..3,
        seed in 0u64..1_000_000,
    ) {
        let base = Scenario::synchronous(n, Span::ticks(delta))
            .duration(Span::ticks(180))
            .seed(seed);
        let base = match churn_plan {
            0 => base,                                    // static membership
            1 => base.churn_fraction_of_bound(0.5),       // the paper's model
            _ => base
                .churn_poisson(0.01)
                .leave_selector(LeaveSelector::ActiveFirst), // bursty adversary
        };
        let spec = base.into_spec();
        assert_equivalent(&spec.run(), &spec.run_spaced());
    }

    /// ES protocol (quorum joins, DL_PREV mutual help, ack chains): the
    /// shared handshake's fan-in/fan-out must not change a single event.
    #[test]
    fn one_key_es_space_equals_legacy_world(
        n in 5usize..14,
        gst in 0u64..120,
        churn in 0usize..2,
        seed in 0u64..1_000_000,
    ) {
        let base = Scenario::eventually_synchronous(n, Span::ticks(3), Time::at(gst))
            .duration(Span::ticks(300))
            .seed(seed);
        let base = if churn == 0 { base } else { base.churn_fraction_of_bound(0.5) };
        let spec = base.into_spec();
        assert_equivalent(&spec.run(), &spec.run_spaced());
    }
}

/// The **shard-config plumbing at `G = 1`** is the other equivalence
/// oracle this suite pins: a multi-key world built through
/// `SpaceOf::with_shards(ShardConfig::new(1))` must observe exactly what
/// the legacy constructor path (no shard config attached) observes — the
/// sharded joiner bookkeeping, batch filtering and fallback machinery are
/// all conditioned on `groups > 1` and may not leak a single event. CI
/// additionally `cmp`s `exp_space_throughput --shards 1` against
/// `--legacy` digests.
mod sharded_g1 {
    use dynareg::churn::{ChurnDriver, ConstantRate, LeaveSelector};
    use dynareg::net::delay::Synchronous;
    use dynareg::sim::{IdSource, NodeId, Span, Time};
    use dynareg::testkit::{
        EsFactory, RegisterSpaceProcess, ShardConfig, SpaceFactory, SpaceOf, SyncFactory, World,
        WorldConfig, WriterPolicy, ZipfKeys, ZipfWorkload,
    };
    use dynareg_core::es::EsConfig;
    use dynareg_core::sync::SyncConfig;
    use proptest::prelude::*;

    /// Everything observable about a keyed world: every key's op stream,
    /// the membership totals, and the per-label message streams.
    fn observe<F>(
        factory: F,
        n: usize,
        keys: u32,
        churn: f64,
        seed: u64,
    ) -> (String, u64, u64, Vec<(&'static str, u64)>)
    where
        F: SpaceFactory,
        F::Proc: RegisterSpaceProcess<Val = u64>,
    {
        let delta = Span::ticks(3);
        let mut world = World::new(
            factory,
            WorldConfig {
                n,
                initial: 0,
                delay: Box::new(Synchronous::new(delta)),
                churn: ChurnDriver::new(
                    Box::new(ConstantRate::new(churn)),
                    LeaveSelector::Random,
                    IdSource::starting_at(n as u64),
                ),
                workload: Box::new(
                    ZipfWorkload::new(ZipfKeys::new(keys, 1.0), delta.times(3), 1.0)
                        .stopping_at(Time::at(130)),
                ),
                seed,
                trace: false,
                writer_policy: WriterPolicy::FixedProtected,
            },
        );
        world.protect(NodeId::from_raw(0));
        world.run_until(Time::at(160));
        let (space, presence, _metrics, _trace, network) = world.into_space_outputs();
        let mut ops = String::new();
        for (_, h) in space.iter() {
            ops.push_str(&format!("{:?}", h.ops()));
        }
        (
            ops,
            presence.total_arrivals() as u64,
            network.total_sent(),
            network.sent_by_label().collect(),
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn g1_sync_space_equals_legacy_constructor_path(
            n in 5usize..16,
            keys in 2u32..6,
            churn_plan in 0usize..3,
            seed in 0u64..1_000_000,
        ) {
            let churn = [0.0, 0.01, 0.03][churn_plan];
            let f = SyncFactory::new(SyncConfig::new(Span::ticks(3)));
            let legacy = observe(SpaceOf::new(f, keys), n, keys, churn, seed);
            let sharded = observe(
                SpaceOf::new(f, keys).with_shards(ShardConfig::new(1)),
                n,
                keys,
                churn,
                seed,
            );
            prop_assert_eq!(legacy, sharded);
        }
    }

    #[test]
    fn g1_es_space_equals_legacy_constructor_path() {
        for seed in 0..4 {
            let f = EsFactory::new(EsConfig::new(9));
            let legacy = observe(SpaceOf::new(f, 4), 9, 4, 0.005, seed);
            let sharded = observe(
                SpaceOf::new(f, 4).with_shards(ShardConfig::new(1)),
                9,
                4,
                0.005,
                seed,
            );
            assert_eq!(legacy, sharded);
        }
    }
}

/// The atomic extension's write-back broadcasts also round-trip the space
/// layer unchanged.
#[test]
fn one_key_atomic_space_equals_legacy_world() {
    for seed in 0..4 {
        let spec = Scenario::es_atomic(9, Span::ticks(2), Time::ZERO)
            .duration(Span::ticks(250))
            .reads_per_tick(2.0)
            .seed(seed)
            .into_spec();
        assert_equivalent(&spec.run(), &spec.run_spaced());
    }
}

/// The Figure 3(a) ablation (skip-join-wait) exercises the joiner's
/// enter-time inquiry through the shared handshake.
#[test]
fn one_key_nowait_space_equals_legacy_world() {
    for seed in 0..4 {
        let spec = Scenario::synchronous_without_join_wait(10, Span::ticks(3))
            .churn_fraction_of_bound(0.4)
            .duration(Span::ticks(200))
            .seed(seed)
            .into_spec();
        assert_equivalent(&spec.run(), &spec.run_spaced());
    }
}
