//! End-to-end tests of the eventually synchronous protocol (Figures 4–6,
//! Theorems 3 & 4).

use dynareg::sim::{Span, Time};
use dynareg::testkit::Scenario;

/// Theorems 3 + 4 with GST = 0 (synchronous from the start): safe and live.
#[test]
fn regular_and_live_when_synchronous_from_start() {
    for &n in &[9usize, 15, 21] {
        let report = Scenario::eventually_synchronous(n, Span::ticks(3), Time::ZERO)
            .churn_fraction_of_bound(0.5)
            .duration(Span::ticks(400))
            .seed(n as u64)
            .run();
        assert!(report.safety.is_ok(), "n={n}: {}", report.safety);
        assert!(report.liveness.is_ok(), "n={n}: {}", report.liveness);
    }
}

/// Theorem 4's essence: safety holds *regardless* of synchrony — even with
/// a late GST, no read is ever stale (operations may be slow, never wrong).
#[test]
fn safety_never_depends_on_gst() {
    for gst in [0u64, 100, 300] {
        let report = Scenario::eventually_synchronous(15, Span::ticks(3), Time::at(gst))
            .churn_fraction_of_bound(0.5)
            .duration(Span::ticks(700))
            .drain(Span::ticks(250))
            .seed(2)
            .run();
        assert!(report.safety.is_ok(), "gst={gst}: {}", report.safety);
    }
}

/// Theorem 3: operations invoked before GST terminate once the system
/// stabilizes (given a generous post-GST drain).
#[test]
fn liveness_resumes_after_gst() {
    let report = Scenario::eventually_synchronous(15, Span::ticks(3), Time::at(200))
        .churn_fraction_of_bound(0.5)
        .duration(Span::ticks(700))
        .drain(Span::ticks(300))
        .seed(4)
        .run();
    assert!(report.liveness.is_ok(), "{}", report.liveness);
    assert!(report.liveness.completed > 50);
}

/// Reads pay a quorum round-trip: strictly positive latency, READ and
/// REPLY messages on the wire (contrast with the synchronous protocol).
#[test]
fn reads_cost_a_quorum_round() {
    let report = Scenario::eventually_synchronous(11, Span::ticks(3), Time::ZERO)
        .duration(Span::ticks(300))
        .reads_per_tick(1.0)
        .seed(5)
        .run();
    assert!(report.liveness.read_latency.min().unwrap() >= 1);
    let labels: Vec<&str> = report.messages.iter().map(|(l, _)| *l).collect();
    assert!(labels.contains(&"READ"));
    assert!(labels.contains(&"REPLY"));
    assert!(labels.contains(&"ACK"));
}

/// The DL_PREV mutual-help machinery exists on the wire whenever joins
/// overlap (Lemma 5's termination channel).
#[test]
fn dl_prev_flows_between_concurrent_joiners() {
    let report = Scenario::eventually_synchronous(15, Span::ticks(3), Time::ZERO)
        .churn_fraction_of_bound(1.0) // more concurrent joins
        .duration(Span::ticks(500))
        .seed(6)
        .run();
    let dl_prev = report
        .messages
        .iter()
        .find(|(l, _)| *l == "DL_PREV")
        .map(|(_, c)| *c)
        .unwrap_or(0);
    assert!(dl_prev > 0, "concurrent joins must exchange DL_PREV");
}

/// The write's phase-1 read (Figure 6 line 01) means every write costs two
/// quorum rounds: write latency is at least twice the read latency floor.
#[test]
fn writes_cost_two_quorum_rounds() {
    let report = Scenario::eventually_synchronous(11, Span::ticks(3), Time::ZERO)
        .duration(Span::ticks(400))
        .seed(7)
        .run();
    let read_min = report.liveness.read_latency.min().unwrap();
    let write_min = report.liveness.write_latency.min().unwrap();
    assert!(
        write_min >= 2 * read_min,
        "write {write_min} should cost at least two rounds of {read_min}"
    );
}

/// The atomic extension eliminates new/old inversions entirely and makes
/// reads cost two rounds (ABD shape).
#[test]
fn atomic_extension_kills_inversions() {
    let atomic = Scenario::es_atomic(9, Span::ticks(2), Time::ZERO)
        .duration(Span::ticks(400))
        .reads_per_tick(3.0)
        .write_every(Span::ticks(4))
        .seed(8)
        .run();
    assert!(atomic.atomicity.is_ok(), "{}", atomic.atomicity);
    assert_eq!(atomic.inversions(), 0);
    assert!(
        atomic.messages.iter().any(|(l, _)| *l == "WRITE_BACK"),
        "write-backs must appear on the wire"
    );
}

/// The paper's §1 inversion figure is a real behaviour of regular
/// registers, not a theoretical curiosity: the synchronous protocol's
/// local reads invert readily while a write's broadcast wave is in flight
/// (two replicas see the WRITE at different instants). The same load on
/// the atomic ES variant has zero inversions — that is exactly the
/// regular/atomic gap.
#[test]
fn regular_registers_admit_inversions_where_atomic_does_not() {
    let mut sync_inversions = 0;
    for seed in 0..10 {
        let report = Scenario::synchronous(10, Span::ticks(6))
            .duration(Span::ticks(300))
            .reads_per_tick(5.0)
            .write_every(Span::ticks(12))
            .seed(seed)
            .run();
        // Regular semantics must still hold even when inversions occur.
        assert!(report.safety.is_ok(), "seed={seed}: {}", report.safety);
        sync_inversions += report.inversions();
    }
    assert!(
        sync_inversions > 0,
        "read-heavy synchronous load should exhibit inversions"
    );

    let mut atomic_inversions = 0;
    for seed in 0..5 {
        let report = Scenario::es_atomic(10, Span::ticks(6), Time::ZERO)
            .duration(Span::ticks(300))
            .reads_per_tick(5.0)
            .write_every(Span::ticks(12))
            .seed(seed)
            .run();
        atomic_inversions += report.inversions();
    }
    assert_eq!(
        atomic_inversions, 0,
        "the ABD write-back forbids inversions"
    );
}

/// Deterministic reproduction for the ES protocol too.
#[test]
fn es_same_seed_same_run() {
    let run = |seed| {
        Scenario::eventually_synchronous(11, Span::ticks(3), Time::at(50))
            .churn_fraction_of_bound(0.5)
            .duration(Span::ticks(400))
            .seed(seed)
            .run()
    };
    let (a, b) = (run(12), run(12));
    assert_eq!(a.total_messages, b.total_messages);
    assert_eq!(a.messages, b.messages);
}
