//! Deterministic reproduction of the paper's Figure 3: why the join
//! operation must `wait(δ)` before inquiring.
//!
//! The schedule (δ = 4, all delays legal, i.e. ≤ δ):
//!
//! ```text
//! t=10  p0 (writer) broadcasts WRITE(1); the wave takes the full δ,
//!       reaching p1, p2 at t=14; the write completes at t=14.
//! t=11  pᵢ enters the system — too late for the WRITE broadcast.
//! t=14  p0 leaves (it is allowed to: its write has returned).
//! ```
//!
//! Without the line-02 wait (Figure 3a), pᵢ inquires immediately at t=11:
//! its INQUIRY reaches p1, p2 at t=12 — *before* their WRITE delivery — so
//! both reply the old value 0; the copy addressed to p0 (delayed the full
//! δ) arrives after p0 left. pᵢ joins believing 0 and a later read returns
//! 0 although write(1) completed at t=14: a regularity violation.
//!
//! With the wait (Figure 3b), pᵢ inquires at t=15; by then p1, p2 hold 1
//! and the join adopts it. Same network, same adversary, correct register.

use dynareg::churn::{ChurnDriver, LeaveSelector, NoChurn};
use dynareg::core::sync::SyncConfig;
use dynareg::net::delay::Fixed;
use dynareg::net::{DelayFault, FaultAction, FaultPlan};
use dynareg::sim::{IdSource, NodeId, Span, Time};
use dynareg::testkit::{OpAction, ScriptedWorkload, SyncFactory, World, WorldConfig, WriterPolicy};
use dynareg::verify::{LivenessChecker, RegularityChecker};

const DELTA: u64 = 4;

fn figure3_world(config: SyncConfig) -> World<SyncFactory> {
    let p0 = NodeId::from_raw(0);
    let script = ScriptedWorkload::new()
        .at(Time::at(10), p0, OpAction::Write(1))
        // Read well after both the write completed and the join finished
        // (whichever join path was taken).
        .at_arrival(Time::at(30), 0, OpAction::Read);
    let mut world = World::new(
        SyncFactory::new(config),
        WorldConfig {
            n: 3,
            initial: 0,
            delay: Box::new(Fixed::new(Span::ticks(1))),
            churn: ChurnDriver::new(
                Box::new(NoChurn),
                LeaveSelector::Random,
                IdSource::starting_at(3),
            ),
            workload: Box::new(script),
            seed: 0,
            trace: true,
            writer_policy: WriterPolicy::FixedProtected,
            writers: 1,
        },
    );
    world.set_faults(
        FaultPlan::none()
            // The WRITE wave takes the full δ.
            .with(DelayFault {
                from: Some(p0),
                to: None,
                from_time: Time::at(10),
                until_time: Time::at(11),
                action: FaultAction::SetDelay(Span::ticks(DELTA)),
            })
            // The joiner's INQUIRY towards p0 also takes the full δ —
            // arriving after p0 has left.
            .with(DelayFault {
                from: None,
                to: Some(p0),
                from_time: Time::at(11),
                until_time: Time::at(20),
                action: FaultAction::SetDelay(Span::ticks(DELTA)),
            }),
    );
    world.schedule_join(Time::at(11));
    world.schedule_leave(Time::at(14), NodeId::from_raw(0));
    world.run_until(Time::at(40));
    world
}

/// Figure 3(a): without the wait, the joiner serves a stale value after
/// the write completed — a regularity violation.
#[test]
fn without_wait_the_read_is_stale() {
    let world = figure3_world(SyncConfig::without_join_wait(Span::ticks(DELTA)));
    let report = RegularityChecker::check(world.history());
    assert_eq!(report.checked_reads, 1);
    assert_eq!(report.violation_count(), 1, "{report}");
    let violation = &report.violations[0];
    assert_eq!(violation.returned, Some(0), "the stale pre-write value");
    assert!(violation.explanation.contains("legal values are {write#0}"));
}

/// Figure 3(b): with the wait, the same adversarial schedule is harmless.
#[test]
fn with_wait_the_read_is_fresh() {
    let world = figure3_world(SyncConfig::new(Span::ticks(DELTA)));
    let report = RegularityChecker::check(world.history());
    assert_eq!(report.checked_reads, 1);
    assert!(report.is_ok(), "{report}");
    // And liveness holds for everyone who stayed.
    let live = LivenessChecker::check(world.history());
    assert!(live.is_ok(), "{live}");
}

/// The mechanism, not just the verdict: without the wait the joiner
/// completes its join *earlier* (2δ after entry instead of 3δ) — speed is
/// exactly what the ablation buys, at the price of correctness.
#[test]
fn ablation_trades_join_latency_for_safety() {
    let fast = figure3_world(SyncConfig::without_join_wait(Span::ticks(DELTA)));
    let safe = figure3_world(SyncConfig::new(Span::ticks(DELTA)));
    let join_latency = |w: &World<SyncFactory>| {
        LivenessChecker::check(w.history())
            .join_latency
            .max()
            .expect("one join completed")
    };
    assert_eq!(join_latency(&fast), 2 * DELTA);
    assert_eq!(join_latency(&safe), 3 * DELTA);
}

/// The trace shows the causal story: stale replies arrive before the
/// inquirer's deadline, the fresh copy towards p0 is dropped.
#[test]
fn trace_exhibits_the_race() {
    let world = figure3_world(SyncConfig::without_join_wait(Span::ticks(DELTA)));
    let trace = world.trace().render();
    assert!(trace.contains("p0 broadcast WRITE"));
    assert!(trace.contains("drop INQUIRY to departed p0"));
    assert!(trace.contains("p1000000 becomes active"));
}
