//! Lemma 2: under constant churn `c`, every window of length `3δ` retains
//! at least `n(1 − 3δc)` processes active throughout — and that quantity is
//! positive exactly when `c ≤ 1/(3δ)` (up to integer effects).

use dynareg::churn::{analysis, LeaveSelector};
use dynareg::sim::{Span, Time};
use dynareg::testkit::Scenario;

fn measured_window_min(
    c_fraction: f64,
    selector: LeaveSelector,
    n: usize,
    delta: u64,
    seed: u64,
) -> (usize, f64) {
    let delta = Span::ticks(delta);
    let report = Scenario::synchronous(n, delta)
        .worst_case_delays()
        .migrating_writer()
        .churn_fraction_of_bound(c_fraction)
        .leave_selector(selector)
        .duration(Span::ticks(400))
        .seed(seed)
        .run();
    let window = delta.times(3);
    // Skip the warmup (bootstrap is all-active) and the drain (churn quiet):
    // measure the steady interval.
    let min =
        analysis::window_active_minimum(&report.presence, Time::at(50), Time::at(300), window)
            .expect("interval long enough");
    let bound = analysis::lemma2_steady_bound(n, delta, report.churn_rate);
    (min, bound)
}

/// The *pipeline-corrected* floor `n(1−6δc)` holds for every selector,
/// across churn levels. (The paper's `n(1−3δc)` assumes all `n` processes
/// are active at window start — exact at τ = 0, optimistic in steady
/// state; see `EXPERIMENTS.md` E4.)
#[test]
fn measured_minimum_dominates_the_steady_bound() {
    for selector in [
        LeaveSelector::Random,
        LeaveSelector::OldestFirst,
        LeaveSelector::ActiveFirst,
    ] {
        for fraction in [0.25, 0.5, 0.75, 1.0] {
            for seed in 0..3 {
                let (min, bound) = measured_window_min(fraction, selector, 30, 4, seed);
                assert!(
                    min as f64 >= bound.floor(),
                    "{selector:?} f={fraction} seed={seed}: measured {min} < bound {bound:.2}"
                );
            }
        }
    }
}

/// The paper's original bound *is* exact at τ = 0, where the whole
/// population is active: the window starting at the origin satisfies
/// `|A(0, 3δ)| ≥ n(1−3δc)`.
#[test]
fn paper_bound_holds_at_the_origin() {
    for fraction in [0.25, 0.5, 0.75] {
        for seed in 0..3 {
            let delta = Span::ticks(4);
            let report = Scenario::synchronous(30, delta)
                .worst_case_delays()
                .migrating_writer()
                .churn_fraction_of_bound(fraction)
                .leave_selector(LeaveSelector::ActiveFirst)
                .duration(Span::ticks(100))
                .seed(seed)
                .run();
            let at_origin = report
                .presence
                .active_count_throughout(Time::ZERO, Time::ZERO + delta.times(3));
            let bound = analysis::lemma2_bound(30, delta, report.churn_rate);
            assert!(
                at_origin as f64 >= bound.floor(),
                "f={fraction} seed={seed}: |A(0,3δ)| = {at_origin} < {bound:.2}"
            );
        }
    }
}

/// The corrected bound is *tight* under the adversarial selector: the
/// measured minimum hugs the floor, while random churn sits well above it.
#[test]
fn adversarial_selector_approaches_the_floor() {
    let (adversarial, bound) = measured_window_min(0.5, LeaveSelector::ActiveFirst, 30, 4, 1);
    let (random, _) = measured_window_min(0.5, LeaveSelector::Random, 30, 4, 1);
    assert!(
        (adversarial as f64) <= bound + 6.0,
        "adversarial minimum {adversarial} should hug the floor {bound:.1}"
    );
    assert!(
        random >= adversarial,
        "random churn ({random}) is no worse than the adversary ({adversarial})"
    );
}

/// At `c` above the threshold the floor is vacuous (zero) and the
/// adversary can indeed empty every window.
#[test]
fn beyond_threshold_windows_can_empty() {
    let (min, bound) = measured_window_min(2.0, LeaveSelector::ActiveFirst, 30, 4, 1);
    assert_eq!(bound, 0.0);
    assert_eq!(min, 0, "the adversary empties some 3δ window entirely");
}

/// The threshold formulas match the paper's expressions.
#[test]
fn threshold_formulas() {
    assert!((analysis::sync_churn_threshold(Span::ticks(4)) - 1.0 / 12.0).abs() < 1e-12);
    assert!((analysis::es_churn_threshold(Span::ticks(4), 30) - 1.0 / 360.0).abs() < 1e-12);
    // And the bound interpolates linearly in c.
    let half = analysis::lemma2_bound(30, Span::ticks(4), 0.5 / 12.0);
    assert!((half - 15.0).abs() < 1e-9);
}

/// Realized churn matches nominal churn (the constant-rate driver is
/// exact, fractional accumulation included).
#[test]
fn realized_churn_matches_nominal() {
    let report = Scenario::synchronous(30, Span::ticks(4))
        .churn_fraction_of_bound(0.7)
        .duration(Span::ticks(400))
        .seed(9)
        .run();
    let realized = analysis::realized_churn_rate(&report.presence, 30, Time::at(1), Time::at(300));
    let nominal = report.churn_rate;
    assert!(
        (realized - nominal).abs() / nominal < 0.05,
        "realized {realized:.5} vs nominal {nominal:.5}"
    );
}
