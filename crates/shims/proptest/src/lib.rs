//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! the slice of the proptest API its test suites use: the [`proptest!`]
//! macro (with an optional `#![proptest_config(..)]` header), range / tuple /
//! `prop::collection::vec` / `prop::sample::select` / `prop::bool::ANY`
//! strategies, `.prop_map`, and the `prop_assert!` family.
//!
//! Differences from real proptest, by design:
//!
//! * **no shrinking** — a failing case reports its exact inputs instead of a
//!   minimized counterexample;
//! * **deterministic generation** — each test function derives its RNG seed
//!   from its own name, so a failure reproduces on every run and in CI;
//! * the number of cases honours `ProptestConfig::with_cases` and the
//!   `PROPTEST_CASES` environment variable (env wins), defaulting to 64.

#![forbid(unsafe_code)]

use std::fmt;

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no intermediate value tree: a strategy
    /// generates final values directly and nothing shrinks.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f` (mirror of
        /// `Strategy::prop_map`).
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of its payload.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl<T: ::rand::SampleUniform> Strategy for ::std::ops::Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.sample_range(self.start, T::one_below(self.end))
        }
    }

    impl<T: ::rand::SampleUniform> Strategy for ::std::ops::RangeInclusive<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.sample_range(*self.start(), *self.end())
        }
    }

    macro_rules! impl_strategy_for_tuple {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_strategy_for_tuple!(A);
    impl_strategy_for_tuple!(A, B);
    impl_strategy_for_tuple!(A, B, C);
    impl_strategy_for_tuple!(A, B, C, D);
    impl_strategy_for_tuple!(A, B, C, D, E);
    impl_strategy_for_tuple!(A, B, C, D, E, F);
}

pub mod test_runner {
    //! Deterministic case generation and failure plumbing.

    use std::fmt;

    /// Number of cases to run when neither the config header nor the
    /// `PROPTEST_CASES` environment variable says otherwise.
    pub const DEFAULT_CASES: u32 = 64;

    /// Per-suite configuration (mirror of `proptest::test_runner::Config`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// How many random cases each test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running exactly `cases` cases (unless overridden by the
        /// `PROPTEST_CASES` environment variable).
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }

        /// The case count after applying the environment override.
        pub fn effective_cases(&self) -> u32 {
            match std::env::var("PROPTEST_CASES") {
                Ok(v) => v.parse().unwrap_or(self.cases),
                Err(_) => self.cases,
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: DEFAULT_CASES,
            }
        }
    }

    /// A failed property (mirror of `TestCaseError::Fail`).
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        /// Builds a failure with the given explanation.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError { msg: msg.into() }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.msg)
        }
    }

    /// The generator handed to strategies. Deterministic: seeded from the
    /// test's identity so failures reproduce run-over-run.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: ::rand::rngs::SmallRng,
    }

    impl TestRng {
        /// RNG for the named test. Same name, same stream, every run.
        pub fn for_test(file: &str, name: &str) -> Self {
            // FNV-1a over file + name.
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in file.bytes().chain([0u8]).chain(name.bytes()) {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01B3);
            }
            TestRng {
                inner: <::rand::rngs::SmallRng as ::rand::SeedableRng>::seed_from_u64(h),
            }
        }

        /// Uniform sample from the inclusive range `[lo, hi]`.
        pub fn sample_range<T: ::rand::SampleUniform>(&mut self, lo: T, hi: T) -> T {
            T::sample_inclusive(&mut self.inner, lo, hi)
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            ::rand::Rng::next_u64(&mut self.inner)
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The type of [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Generates `true` and `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length (mirror of
    /// `proptest::collection::SizeRange`).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates a `Vec` whose length lies in `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.sample_range(self.size.min, self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    /// Picks uniformly among the given items.
    ///
    /// # Panics
    /// Panics (at generation time) if `items` is empty.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        Select { items }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.items.is_empty(), "select requires at least one item");
            let i = rng.sample_range(0usize, self.items.len() - 1);
            self.items[i].clone()
        }
    }
}

pub mod num {
    //! Numeric strategy aliases (ranges already implement
    //! [`crate::strategy::Strategy`] directly; this module exists for path
    //! compatibility).
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirror of the `prop` module alias exposed by the real prelude.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::num;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

#[doc(hidden)]
pub fn __format_failure(
    test: &str,
    case: u32,
    inputs: &dyn fmt::Debug,
    err: &test_runner::TestCaseError,
) -> String {
    format!("proptest '{test}' failed at case {case}\n  inputs: {inputs:?}\n  cause: {err}")
}

/// Defines property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let cases = config.effective_cases();
                let mut rng =
                    $crate::test_runner::TestRng::for_test(file!(), stringify!($name));
                for case in 0..cases {
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let inputs = format!(
                        concat!($("  ", stringify!($arg), " = {:?}\n",)+),
                        $(&$arg,)+
                    );
                    let outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest '{}' failed at case {}/{}\ninputs:\n{}cause: {}",
                            stringify!($name), case, cases, inputs, e,
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds (mirror of proptest's
/// `prop_assert!`). Must be used inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), l, r
        );
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 5u64..10, y in 0.0f64..1.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(0u8..3, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 3));
        }

        #[test]
        fn select_picks_members(
            s in prop::sample::select(vec!["a", "b", "c"]),
            flag in prop::bool::ANY,
        ) {
            prop_assert!(["a", "b", "c"].contains(&s));
            let _ = flag;
        }

        #[test]
        fn prop_map_applies(
            pair in (0u64..10, 0u64..10).prop_map(|(a, b)| a + b),
        ) {
            prop_assert!(pair < 20);
        }

        #[test]
        fn trailing_comma_and_eq(a in 1usize..4,) {
            prop_assert_eq!(a * 2 / 2, a);
            prop_assert_ne!(a, 0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = crate::collection::vec(0u64..1000, 5..20);
        let a: Vec<u64> = {
            let mut rng = TestRng::for_test("f", "t");
            strat.generate(&mut rng)
        };
        let b: Vec<u64> = {
            let mut rng = TestRng::for_test("f", "t");
            strat.generate(&mut rng)
        };
        assert_eq!(a, b);
    }

    #[test]
    fn env_var_overrides_cases() {
        let cfg = crate::test_runner::ProptestConfig::with_cases(7);
        assert_eq!(cfg.cases, 7);
        // Note: other tests in this binary read PROPTEST_CASES too, but any
        // case count keeps them valid, so the temporary override is benign.
        std::env::set_var("PROPTEST_CASES", "11");
        assert_eq!(cfg.effective_cases(), 11, "env var must win");
        std::env::set_var("PROPTEST_CASES", "not-a-number");
        assert_eq!(cfg.effective_cases(), 7, "garbage falls back to config");
        std::env::remove_var("PROPTEST_CASES");
        assert_eq!(cfg.effective_cases(), 7, "unset falls back to config");
    }
}
