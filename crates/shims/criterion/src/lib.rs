//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the slice of the criterion API its benches use: [`Criterion`],
//! [`BenchmarkGroup`] (`sample_size`, `bench_function`, `finish`),
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical machinery it takes a configurable
//! number of timed samples per benchmark and prints min / mean / max
//! per-iteration wall time. Like real criterion, when cargo's test runner
//! invokes a bench target (`cargo test` passes `--test`) every benchmark
//! body runs exactly once as a smoke test, keeping `cargo test -q` fast.

#![forbid(unsafe_code)]
// The bench harness IS the wall-clock timing machinery; it sits below the
// determinism boundary (detlint skips shims for the same reason).
#![allow(clippy::disallowed_methods)]

use std::time::{Duration, Instant};

/// How a batched iteration's per-batch input size should be chosen. The
/// shim runs one input per batch regardless; the variants exist for API
/// compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: real criterion batches many per allocation.
    SmallInput,
    /// Large inputs: one per batch.
    LargeInput,
    /// Exactly one input per iteration.
    PerIteration,
}

/// Times closures handed to [`BenchmarkGroup::bench_function`].
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` `iters` times and records total wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Runs `routine` over fresh inputs from `setup`; only the routine is
    /// timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// The benchmark manager handed to every `criterion_group!` target.
#[derive(Debug)]
pub struct Criterion {
    default_samples: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().collect();
        Criterion {
            default_samples: 10,
            // Like real criterion: measure only under `cargo bench` (which
            // passes `--bench`); any other invocation — `cargo test` passes
            // `--test` — smoke-runs each benchmark once.
            test_mode: !args.iter().any(|a| a == "--bench"),
        }
    }
}

impl Criterion {
    /// Configures the Criterion-wide default sample count.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.default_samples = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: self.default_samples,
            criterion: self,
        }
    }

    /// Benchmarks `routine` outside any group.
    pub fn bench_function<R>(&mut self, id: impl Into<String>, routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let samples = self.default_samples;
        let test_mode = self.test_mode;
        run_one(&id.into(), samples, test_mode, routine);
        self
    }
}

/// A named set of benchmarks sharing a sample count.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark in the group takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Times `routine` under `<group>/<id>`.
    pub fn bench_function<R>(&mut self, id: impl Into<String>, routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.samples, self.criterion.test_mode, routine);
        self
    }

    /// Ends the group (drop would do; mirrors the criterion API).
    pub fn finish(self) {}
}

fn run_one<R: FnMut(&mut Bencher)>(label: &str, samples: usize, test_mode: bool, mut routine: R) {
    if test_mode {
        // Smoke-run: one iteration, no reporting beyond success.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        routine(&mut b);
        println!("bench {label}: ok (test mode)");
        return;
    }
    let samples = samples.max(1);
    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        routine(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / b.iters.max(1) as f64);
    }
    let min = per_iter.iter().copied().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().copied().fold(0.0_f64, f64::max);
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!(
        "bench {label}: [{} {} {}] over {samples} samples",
        fmt_time(min),
        fmt_time(mean),
        fmt_time(max)
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a benchmark group: a function that runs each target against a
/// shared [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("iter", |b| b.iter(|| 1 + 1));
        group.bench_function("iter_batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn group_and_bencher_run() {
        let mut c = Criterion {
            default_samples: 2,
            test_mode: true,
        };
        target(&mut c);
        c.bench_function("top_level", |b| b.iter(|| 2 * 2));
    }

    #[test]
    fn time_formatting() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-6).ends_with(" µs"));
        assert!(fmt_time(2e-9).ends_with(" ns"));
    }
}
