//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! the narrow slice of the `rand` 0.9 API that `dynareg-sim` actually uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `random::<T>()` / `random_range(..)`.
//!
//! `SmallRng` here is xoshiro256++ seeded through SplitMix64 — the same
//! construction the real `rand` crate uses on 64-bit targets — so streams
//! are high-quality and, most importantly for this workspace, fully
//! deterministic for a given seed.

#![forbid(unsafe_code)]

use std::ops::{Bound, RangeBounds};

/// Types that can be sampled uniformly from their "natural" distribution
/// (full integer range; `[0, 1)` for floats). Mirror of `rand`'s
/// `StandardUniform`.
pub trait Standard: Sized {
    /// Draws one sample from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types that support uniform sampling from a sub-range. Mirror of
/// `rand`'s `SampleUniform`.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform sample from the **inclusive** range `[lo, hi]`.
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// The value immediately below `hi`, used to convert an exclusive upper
    /// bound into an inclusive one. For floats this is `hi` itself (the
    /// sampling formula already excludes the top).
    fn one_below(hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "random_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128);
                if span == u128::from(u64::MAX) {
                    return rng.next_u64() as $t;
                }
                // Debiased multiply-shift (Lemire) over a u64 draw.
                let bound = (span as u64) + 1;
                let threshold = bound.wrapping_neg() % bound;
                loop {
                    let x = rng.next_u64();
                    let m = (x as u128) * (bound as u128);
                    if (m as u64) >= threshold {
                        return lo.wrapping_add((m >> 64) as $t);
                    }
                }
            }
            fn one_below(hi: Self) -> Self {
                hi.checked_sub(1).expect("random_range: empty exclusive range")
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "random_range: empty range");
                let u = <$t as Standard>::sample(rng);
                lo + (hi - lo) * u
            }
            fn one_below(hi: Self) -> Self {
                hi
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// The random-number-generator trait: one required method, everything else
/// derived. Mirror of `rand::Rng`.
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a value of type `T` from its natural distribution.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from `range` (`lo..hi` or `lo..=hi`).
    fn random_range<T: SampleUniform, B: RangeBounds<T>>(&mut self, range: B) -> T
    where
        Self: Sized,
    {
        let lo = match range.start_bound() {
            Bound::Included(&v) => v,
            Bound::Excluded(_) => unreachable!("ranges never exclude their start"),
            Bound::Unbounded => panic!("random_range requires a bounded start"),
        };
        let hi = match range.end_bound() {
            Bound::Included(&v) => v,
            Bound::Excluded(&v) => T::one_below(v),
            Bound::Unbounded => panic!("random_range requires a bounded end"),
        };
        T::sample_inclusive(self, lo, hi)
    }
}

/// Seedable generators. Mirror of `rand::SeedableRng`, reduced to the
/// 64-bit entry point this workspace uses.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// xoshiro256++ — small, fast, and statistically strong; seeded via
    /// SplitMix64 exactly like `rand`'s 64-bit `SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_are_in_range() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x: u64 = rng.random_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = rng.random_range(0..=3);
            assert!(y <= 3);
        }
    }

    #[test]
    fn full_range_does_not_loop_forever() {
        let mut rng = SmallRng::seed_from_u64(1);
        let _: u64 = rng.random_range(0..u64::MAX);
        let _: u64 = rng.random_range(0..=u64::MAX);
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.random_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!(
                (9_000..11_000).contains(&c),
                "bucket count {c} far from 10k"
            );
        }
    }
}
