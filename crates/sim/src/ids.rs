//! Identity newtypes for the infinite-arrival model.
//!
//! The paper (§2.1) assumes the *infinite arrival model* of Merritt &
//! Taubenfeld: infinitely many uniquely-identified processes
//! `Π = {…, pᵢ, pⱼ, pₖ, …}` may join over a run, and a process that leaves
//! and comes back must do so under a *new* name. [`IdSource`] hands out
//! fresh, never-reused [`NodeId`]s to honour that rule.

use std::fmt;

/// Unique identifier of a process (node) in the infinite arrival model.
///
/// Never reused within a run: re-entering the system means a fresh id
/// (paper §2.1, "if a process wants to re-enter the system, it has to enter
/// it as a new process").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u64);

/// Unique identifier of a client-visible operation (join, read or write)
/// recorded in a history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId(u64);

/// Identifier of a pending timer set by a protocol actor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(u64);

/// Identifier of one register in a keyed register *space*.
///
/// The paper implements a single anonymous register; the register-space
/// layer (see `dynareg-core`'s `space` module) multiplexes many of them
/// over one churn substrate, and every client-facing operation addresses a
/// `(RegisterId, op)` pair. Keys are dense small integers `0..k`: a space
/// with `k` keys owns exactly the registers `r0 … r(k−1)`, and key `0` is
/// the *anchor* every single-register API is sugar for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegisterId(u32);

impl RegisterId {
    /// The anchor key: the register every single-register API addresses.
    pub const ZERO: RegisterId = RegisterId(0);

    /// Builds a register id from a raw index.
    pub const fn from_raw(raw: u32) -> RegisterId {
        RegisterId(raw)
    }

    /// The raw index behind this id.
    pub const fn as_raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for RegisterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl NodeId {
    /// Builds a node id from a raw index. Intended for tests and for the
    /// initial population `p₀ … p_{n−1}`; simulation code should draw fresh
    /// ids from [`IdSource`].
    pub const fn from_raw(raw: u64) -> NodeId {
        NodeId(raw)
    }

    /// The raw index behind this id.
    pub const fn as_raw(self) -> u64 {
        self.0
    }
}

impl OpId {
    /// Builds an operation id from a raw index (tests / history tooling).
    pub const fn from_raw(raw: u64) -> OpId {
        OpId(raw)
    }

    /// The raw index behind this id.
    pub const fn as_raw(self) -> u64 {
        self.0
    }
}

impl TimerId {
    /// Builds a timer id from a raw index.
    pub const fn from_raw(raw: u64) -> TimerId {
        TimerId(raw)
    }

    /// The raw index behind this id.
    pub const fn as_raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

impl fmt::Display for TimerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "timer{}", self.0)
    }
}

/// A monotone source of fresh identifiers.
///
/// One [`IdSource`] per identifier kind per run guarantees global uniqueness
/// without coordination — the simulation is single-threaded by design.
///
/// # Example
///
/// ```
/// use dynareg_sim::IdSource;
/// let mut src = IdSource::starting_at(100);
/// let a = src.fresh_node();
/// let b = src.fresh_node();
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone, Default)]
pub struct IdSource {
    next: u64,
}

impl IdSource {
    /// A source starting at zero.
    pub fn new() -> IdSource {
        IdSource { next: 0 }
    }

    /// A source whose first issued raw value is `first`. Useful to keep the
    /// initial population `0..n` distinct from churn arrivals `n..`.
    pub fn starting_at(first: u64) -> IdSource {
        IdSource { next: first }
    }

    fn bump(&mut self) -> u64 {
        let v = self.next;
        self.next += 1;
        v
    }

    /// Issues a fresh node id, never issued before by this source.
    pub fn fresh_node(&mut self) -> NodeId {
        NodeId(self.bump())
    }

    /// Issues a fresh operation id.
    pub fn fresh_op(&mut self) -> OpId {
        OpId(self.bump())
    }

    /// Issues a fresh timer id.
    pub fn fresh_timer(&mut self) -> TimerId {
        TimerId(self.bump())
    }

    /// The raw value the next issued id will carry.
    pub fn peek_next(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn ids_are_never_reused() {
        let mut src = IdSource::new();
        let ids: BTreeSet<NodeId> = (0..1000).map(|_| src.fresh_node()).collect();
        assert_eq!(ids.len(), 1000);
    }

    #[test]
    fn starting_at_offsets_first_id() {
        let mut src = IdSource::starting_at(7);
        assert_eq!(src.fresh_node(), NodeId::from_raw(7));
        assert_eq!(src.peek_next(), 8);
    }

    #[test]
    fn display_forms() {
        assert_eq!(NodeId::from_raw(3).to_string(), "p3");
        assert_eq!(OpId::from_raw(4).to_string(), "op4");
        assert_eq!(TimerId::from_raw(5).to_string(), "timer5");
        assert_eq!(RegisterId::from_raw(6).to_string(), "r6");
    }

    #[test]
    fn register_ids_are_dense_and_ordered() {
        assert_eq!(RegisterId::ZERO, RegisterId::from_raw(0));
        assert!(RegisterId::from_raw(1) < RegisterId::from_raw(2));
        assert_eq!(RegisterId::from_raw(7).as_raw(), 7);
    }

    #[test]
    fn mixed_kinds_share_counter_but_types_differ() {
        let mut src = IdSource::new();
        let n = src.fresh_node();
        let o = src.fresh_op();
        assert_eq!(n.as_raw(), 0);
        assert_eq!(o.as_raw(), 1);
    }
}
