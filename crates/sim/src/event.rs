//! The deterministic event queue at the heart of the simulator.
//!
//! Determinism contract: events are delivered in non-decreasing [`Time`]
//! order, and events scheduled for the *same* instant are delivered in the
//! order they were scheduled (FIFO). Together with [`crate::DetRng`] this
//! makes a whole run a pure function of `(scenario, seed)`, which is what
//! lets the experiment harness attribute every safety violation to a
//! reproducible schedule.
//!
//! # Implementation: a tick wheel
//!
//! The paper's time model is integer ticks and message delays are bounded
//! by `δ`, so almost every event lands within a few dozen ticks of the
//! current instant. [`EventQueue`] exploits that shape: a *tick wheel* of
//! [`WHEEL_SLOTS`] one-tick buckets covers the near future, giving O(1)
//! schedule and pop on the hot path (a `BinaryHeap` pays O(log n) per
//! operation against a three-way comparator). Each bucket keeps per-class
//! FIFO lanes, so the (time, class, seq) total order is positional rather
//! than compared. The rare far-future event (long timers, `Time::MAX`
//! sentinels) parks in a sorted overflow map and migrates into the wheel
//! as the cursor approaches — a two-level hierarchy in the style of
//! hashed-and-hierarchical timing wheels.
//!
//! [`HeapEventQueue`] preserves the original heap implementation as a
//! behavioural reference model for the equivalence property tests.

use std::cell::Cell;
use std::collections::{BTreeMap, VecDeque};

use crate::time::Time;

/// Number of one-tick buckets in the near wheel. Events further than this
/// from the cursor go to the overflow level. 256 comfortably covers the
/// protocols' `3δ` horizons for any realistic `δ` while keeping the wheel
/// a few KiB.
const WHEEL_SLOTS: u64 = 256;

/// An event drawn from the queue: the instant it fires at and its payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledEvent<E> {
    /// The instant at which the event fires.
    pub time: Time,
    /// Ordering class within the instant (lower fires first).
    pub class: u8,
    /// Monotone sequence number assigned at scheduling time; exposes the
    /// deterministic tie-break order for debugging.
    pub seq: u64,
    /// The event payload.
    pub payload: E,
}

/// One wheel bucket: per-class FIFO lanes, kept sorted by class.
///
/// A lane that drains keeps its (empty) deque: the slot recycles every
/// [`WHEEL_SLOTS`] ticks and the same ordering classes come back, so the
/// allocation is reused instead of churned.
#[derive(Debug)]
struct Bucket<E> {
    lanes: Vec<(u8, VecDeque<(u64, E)>)>,
    len: usize,
}

impl<E> Default for Bucket<E> {
    fn default() -> Self {
        Bucket {
            lanes: Vec::new(),
            len: 0,
        }
    }
}

impl<E> Bucket<E> {
    fn push(&mut self, class: u8, seq: u64, payload: E) {
        self.len += 1;
        // Deliveries (class 0) dominate and sort first: hit lane 0 without
        // a search.
        if let Some((c, lane)) = self.lanes.first_mut() {
            if *c == class {
                lane.push_back((seq, payload));
                return;
            }
        }
        match self.lanes.binary_search_by_key(&class, |&(c, _)| c) {
            Ok(i) => self.lanes[i].1.push_back((seq, payload)),
            Err(i) => {
                let mut lane = VecDeque::new();
                lane.push_back((seq, payload));
                self.lanes.insert(i, (class, lane));
            }
        }
    }

    /// Removes the earliest (class, seq) event; the bucket must be
    /// non-empty.
    fn pop(&mut self) -> (u8, u64, E) {
        debug_assert!(self.len > 0);
        self.len -= 1;
        for (class, lane) in &mut self.lanes {
            if let Some((seq, payload)) = lane.pop_front() {
                return (*class, seq, payload);
            }
        }
        unreachable!("bucket len counted an event but no lane held one");
    }
}

/// A priority queue of timestamped events with stable FIFO ordering at equal
/// timestamps, refinable by an *ordering class*.
///
/// Classes solve a semantic boundary problem of discrete time: the paper's
/// `wait(2δ)` must observe messages whose worst-case latency lands them at
/// *exactly* the deadline. The runtime therefore schedules message
/// deliveries in a lower class than timer expiries (and timer expiries lower
/// than the once-per-unit churn/workload tick), so at any single instant
/// the order is: deliveries → timers → tick. Within a class, FIFO.
///
/// # Example
///
/// ```
/// use dynareg_sim::{EventQueue, Time};
///
/// let mut q = EventQueue::new();
/// q.schedule(Time::at(5), "b");
/// q.schedule(Time::at(5), "c"); // same instant: FIFO after "b"
/// q.schedule(Time::at(1), "a");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
/// assert_eq!(order, ["a", "b", "c"]);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    /// The near level: `WHEEL_SLOTS` one-tick buckets; the bucket for
    /// instant `t` is `wheel[t % WHEEL_SLOTS]`.
    wheel: Vec<Bucket<E>>,
    /// Events in the wheel (cheap emptiness/`len` bookkeeping).
    wheel_len: usize,
    /// Absolute tick of the start of the wheel's window. Invariants:
    /// `cursor == watermark` between operations, every queued event at
    /// `t < cursor + WHEEL_SLOTS` is in the wheel, and everything at or
    /// beyond that horizon is in `overflow`.
    cursor: u64,
    /// The far level: events at or beyond the wheel horizon, in exact
    /// (time, class, seq) order.
    overflow: BTreeMap<(u64, u8, u64), E>,
    next_seq: u64,
    /// Largest time ever popped; used to enforce the no-time-travel check.
    watermark: Time,
    popped: u64,
    /// Memo for [`EventQueue::peek_time`]: `Some(t)` means the earliest
    /// pending event fires at `t`; `None` means "recompute".
    peek_cache: Cell<Option<Time>>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            wheel: (0..WHEEL_SLOTS).map(|_| Bucket::default()).collect(),
            wheel_len: 0,
            cursor: 0,
            overflow: BTreeMap::new(),
            next_seq: 0,
            watermark: Time::ZERO,
            popped: 0,
            peek_cache: Cell::new(None),
        }
    }

    /// First instant *not* covered by the wheel's current window.
    fn horizon(&self) -> u64 {
        self.cursor.saturating_add(WHEEL_SLOTS)
    }

    /// Schedules `payload` to fire at `time` in the default class (0).
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the latest popped event: scheduling
    /// into the past would break the simulation's causal order. (Scheduling
    /// *at* the current instant is allowed and common: zero-delay local
    /// computation, the paper's "processing times … are negligible".)
    pub fn schedule(&mut self, time: Time, payload: E) -> u64 {
        self.schedule_class(time, 0, payload)
    }

    /// Schedules `payload` to fire at `time` in ordering class `class`
    /// (lower classes fire first within an instant).
    ///
    /// # Panics
    /// Panics if `time` is in the past (see [`EventQueue::schedule`]).
    pub fn schedule_class(&mut self, time: Time, class: u8, payload: E) -> u64 {
        assert!(
            time >= self.watermark,
            "event scheduled at {time} before current time {}",
            self.watermark
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let t = time.ticks();
        if t < self.horizon() {
            self.wheel[(t % WHEEL_SLOTS) as usize].push(class, seq, payload);
            self.wheel_len += 1;
        } else {
            self.overflow.insert((t, class, seq), payload);
        }
        if let Some(cached) = self.peek_cache.get() {
            if time < cached {
                self.peek_cache.set(Some(time));
            }
        } else if self.len() == 1 {
            self.peek_cache.set(Some(time));
        }
        seq
    }

    /// Moves overflow events that now fit the window into the wheel.
    /// Migrated events land in slots the cursor has not reached yet, and
    /// arrive in (time, class, seq) order, so lane FIFO order is preserved.
    fn migrate_overflow(&mut self) {
        let horizon = self.horizon();
        while let Some((&(t, class, seq), _)) = self.overflow.first_key_value() {
            if t >= horizon {
                break;
            }
            let payload = self.overflow.pop_first().expect("head exists").1;
            self.wheel[(t % WHEEL_SLOTS) as usize].push(class, seq, payload);
            self.wheel_len += 1;
        }
    }

    /// Removes and returns the earliest event, or `None` when the queue is
    /// empty.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        if self.wheel_len == 0 {
            if self.overflow.is_empty() {
                return None;
            }
            // Nothing near: jump the cursor straight to the first far event
            // and pull everything that fits into the window.
            self.cursor = self.overflow.first_key_value().expect("non-empty").0 .0;
            self.migrate_overflow();
        }
        if self.wheel_len == 0 {
            // Only reachable when the horizon saturates at `Time::MAX` and
            // the head event sits exactly on it: serve overflow directly.
            let ((t, class, seq), payload) = self.overflow.pop_first().expect("non-empty");
            return Some(self.emit(Time::at(t), class, seq, payload));
        }
        // A preceding peek_time() already located the next event: jump the
        // cursor straight there instead of re-walking empty buckets (the
        // runtime peeks before every pop to honour its end-of-run bound).
        // Any overflow event earlier than the new horizon migrates in one
        // batch; nothing can land behind the jump target because the wheel
        // held an event at it.
        if let Some(t) = self.peek_cache.get() {
            if t < Time::at(self.horizon()) && t.ticks() > self.cursor {
                self.cursor = t.ticks();
                self.migrate_overflow();
            }
        }
        // The wheel holds the earliest event within WHEEL_SLOTS of the
        // cursor: walk to the first non-empty bucket, migrating far events
        // as the window slides.
        loop {
            let slot = (self.cursor % WHEEL_SLOTS) as usize;
            if self.wheel[slot].len > 0 {
                let (class, seq, payload) = self.wheel[slot].pop();
                self.wheel_len -= 1;
                return Some(self.emit(Time::at(self.cursor), class, seq, payload));
            }
            self.cursor += 1;
            self.migrate_overflow();
        }
    }

    fn emit(&mut self, time: Time, class: u8, seq: u64, payload: E) -> ScheduledEvent<E> {
        debug_assert!(time >= self.watermark);
        self.watermark = time;
        self.popped += 1;
        self.peek_cache.set(None);
        ScheduledEvent {
            time,
            class,
            seq,
            payload,
        }
    }

    /// The instant of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        if self.is_empty() {
            return None;
        }
        if let Some(t) = self.peek_cache.get() {
            return Some(t);
        }
        let t = if self.wheel_len > 0 {
            // Scan the window from the cursor; bounded by WHEEL_SLOTS and
            // in practice by the gap to the next event.
            let mut t = self.cursor;
            loop {
                if self.wheel[(t % WHEEL_SLOTS) as usize].len > 0 {
                    break Time::at(t);
                }
                t += 1;
            }
        } else {
            Time::at(self.overflow.first_key_value().expect("non-empty").0 .0)
        };
        self.peek_cache.set(Some(t));
        Some(t)
    }

    /// Current simulated time: the timestamp of the last popped event.
    pub fn now(&self) -> Time {
        self.watermark
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.wheel_len + self.overflow.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.popped
    }
}

/// The original `BinaryHeap`-backed event queue, kept as the *reference
/// model* for the tick wheel: property tests drive both with identical
/// schedule/pop scripts and require identical pop sequences. Not part of
/// the public API surface (the simulator always runs the wheel).
#[doc(hidden)]
#[derive(Debug)]
pub struct HeapEventQueue<E> {
    heap: std::collections::BinaryHeap<HeapEntry<E>>,
    next_seq: u64,
    watermark: Time,
    popped: u64,
}

#[derive(Debug)]
struct HeapEntry<E> {
    time: Time,
    class: u8,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.class == other.class && self.seq == other.seq
    }
}
impl<E> Eq for HeapEntry<E> {}

impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: earliest (time, class, seq) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.class.cmp(&self.class))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> Default for HeapEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapEventQueue<E> {
    /// Creates an empty reference queue.
    pub fn new() -> HeapEventQueue<E> {
        HeapEventQueue {
            heap: std::collections::BinaryHeap::new(),
            next_seq: 0,
            watermark: Time::ZERO,
            popped: 0,
        }
    }

    /// Mirror of [`EventQueue::schedule`].
    pub fn schedule(&mut self, time: Time, payload: E) -> u64 {
        self.schedule_class(time, 0, payload)
    }

    /// Mirror of [`EventQueue::schedule_class`].
    pub fn schedule_class(&mut self, time: Time, class: u8, payload: E) -> u64 {
        assert!(
            time >= self.watermark,
            "event scheduled at {time} before current time {}",
            self.watermark
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry {
            time,
            class,
            seq,
            payload,
        });
        seq
    }

    /// Mirror of [`EventQueue::pop`].
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        let entry = self.heap.pop()?;
        self.watermark = entry.time;
        self.popped += 1;
        Some(ScheduledEvent {
            time: entry.time,
            class: entry.class,
            seq: entry.seq,
            payload: entry.payload,
        })
    }

    /// Mirror of [`EventQueue::peek_time`].
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.time)
    }

    /// Mirror of [`EventQueue::now`].
    pub fn now(&self) -> Time {
        self.watermark
    }

    /// Mirror of [`EventQueue::len`].
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Mirror of [`EventQueue::is_empty`].
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Mirror of [`EventQueue::delivered`].
    pub fn delivered(&self) -> u64 {
        self.popped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Span;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Time::at(10), 'x');
        q.schedule(Time::at(2), 'y');
        q.schedule(Time::at(7), 'z');
        let order: Vec<char> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, ['y', 'z', 'x']);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Time::at(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_tracks_last_pop() {
        let mut q = EventQueue::new();
        q.schedule(Time::at(4), ());
        assert_eq!(q.now(), Time::ZERO);
        q.pop();
        assert_eq!(q.now(), Time::at(4));
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(Time::at(9), ());
        q.pop();
        q.schedule(Time::at(3), ());
    }

    #[test]
    fn zero_delay_rescheduling_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(Time::at(5), 1);
        q.pop();
        q.schedule(Time::at(5), 2); // same instant: fine
        assert_eq!(q.pop().unwrap().payload, 2);
    }

    #[test]
    fn classes_order_within_an_instant() {
        let mut q = EventQueue::new();
        q.schedule_class(Time::at(5), 2, "tick");
        q.schedule_class(Time::at(5), 1, "timer");
        q.schedule_class(Time::at(5), 0, "deliver-late-seq");
        q.schedule_class(Time::at(4), 2, "earlier-tick");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, ["earlier-tick", "deliver-late-seq", "timer", "tick"]);
    }

    #[test]
    fn same_class_stays_fifo() {
        let mut q = EventQueue::new();
        q.schedule_class(Time::at(5), 1, 1);
        q.schedule_class(Time::at(5), 1, 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, [1, 2]);
    }

    #[test]
    fn len_and_delivered_track_counts() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(Time::at(1), ());
        q.schedule(Time::at(2), ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.delivered(), 1);
    }

    #[test]
    fn far_events_cross_the_wheel_horizon() {
        let mut q = EventQueue::new();
        q.schedule(Time::at(WHEEL_SLOTS * 10 + 3), "far");
        q.schedule(Time::at(2), "near");
        q.schedule(Time::at(WHEEL_SLOTS + 1), "mid");
        assert_eq!(q.peek_time(), Some(Time::at(2)));
        let order: Vec<&str> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, ["near", "mid", "far"]);
        assert_eq!(q.now(), Time::at(WHEEL_SLOTS * 10 + 3));
    }

    #[test]
    fn same_slot_different_cycles_do_not_collide() {
        // t and t + WHEEL_SLOTS map to the same slot index; the horizon
        // check must keep the later event in overflow until the window
        // slides past the earlier one.
        let mut q = EventQueue::new();
        q.schedule(Time::at(7), "now");
        q.schedule(Time::at(7 + WHEEL_SLOTS), "next-cycle");
        q.schedule(Time::at(7 + 2 * WHEEL_SLOTS), "cycle-after");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, ["now", "next-cycle", "cycle-after"]);
    }

    #[test]
    fn time_max_sentinel_is_schedulable() {
        let mut q = EventQueue::new();
        q.schedule(Time::MAX, "never");
        q.schedule(Time::at(1), "soon");
        assert_eq!(q.pop().unwrap().payload, "soon");
        assert_eq!(q.peek_time(), Some(Time::MAX));
        let e = q.pop().unwrap();
        assert_eq!(e.payload, "never");
        assert_eq!(e.time, Time::MAX);
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_schedule_pop_keeps_fifo_across_migration() {
        let mut q = EventQueue::new();
        let far = Time::at(WHEEL_SLOTS + 50);
        q.schedule_class(far, 1, "scheduled-first"); // parks in overflow
        q.schedule(Time::at(WHEEL_SLOTS + 20), "advancer");
        q.pop(); // cursor jumps; far event migrates into the wheel
        q.schedule_class(far, 1, "scheduled-second"); // direct wheel insert
        let order: Vec<&str> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, ["scheduled-first", "scheduled-second"]);
    }

    #[test]
    fn peek_cache_tracks_cheaper_schedules() {
        let mut q = EventQueue::new();
        q.schedule(Time::at(100), 1);
        assert_eq!(q.peek_time(), Some(Time::at(100)));
        q.schedule(Time::at(40), 2); // cheaper than the cached peek
        assert_eq!(q.peek_time(), Some(Time::at(40)));
        q.schedule(Time::at(60), 3); // later than the cached peek
        assert_eq!(q.peek_time(), Some(Time::at(40)));
    }

    #[test]
    fn reference_heap_queue_matches_on_a_smoke_script() {
        let mut wheel = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        let script = [(5u64, 2u8), (5, 0), (1, 1), (700, 0), (5, 0), (1, 1)];
        for (i, &(t, class)) in script.iter().enumerate() {
            wheel.schedule_class(Time::at(t), class, i);
            heap.schedule_class(Time::at(t), class, i);
        }
        loop {
            let (a, b) = (wheel.pop(), heap.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn watermark_equals_cursor_between_operations() {
        let mut q = EventQueue::new();
        q.schedule(Time::at(30), ());
        q.schedule(Time::at(600), ());
        q.pop();
        // Scheduling at the watermark must land in a valid wheel slot even
        // though the first pop advanced the cursor.
        q.schedule(Time::at(30) + Span::ticks(0), ());
        assert_eq!(q.pop().unwrap().time, Time::at(30));
        assert_eq!(q.pop().unwrap().time, Time::at(600));
    }
}
