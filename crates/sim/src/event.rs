//! The deterministic event queue at the heart of the simulator.
//!
//! Determinism contract: events are delivered in non-decreasing [`Time`]
//! order, and events scheduled for the *same* instant are delivered in the
//! order they were scheduled (FIFO). Together with [`crate::DetRng`] this
//! makes a whole run a pure function of `(scenario, seed)`, which is what
//! lets the experiment harness attribute every safety violation to a
//! reproducible schedule.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Time;

/// An event drawn from the queue: the instant it fires at and its payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledEvent<E> {
    /// The instant at which the event fires.
    pub time: Time,
    /// Ordering class within the instant (lower fires first).
    pub class: u8,
    /// Monotone sequence number assigned at scheduling time; exposes the
    /// deterministic tie-break order for debugging.
    pub seq: u64,
    /// The event payload.
    pub payload: E,
}

/// Internal heap entry — ordered so that `BinaryHeap` (a max-heap) pops the
/// *earliest* (time, class, seq) first.
#[derive(Debug)]
struct Entry<E> {
    time: Time,
    class: u8,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.class == other.class && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: earliest (time, class, seq) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.class.cmp(&self.class))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of timestamped events with stable FIFO ordering at equal
/// timestamps, refinable by an *ordering class*.
///
/// Classes solve a semantic boundary problem of discrete time: the paper's
/// `wait(2δ)` must observe messages whose worst-case latency lands them at
/// *exactly* the deadline. The runtime therefore schedules message
/// deliveries in a lower class than timer expiries (and timer expiries lower
/// than the once-per-unit churn/workload tick), so at any single instant
/// the order is: deliveries → timers → tick. Within a class, FIFO.
///
/// # Example
///
/// ```
/// use dynareg_sim::{EventQueue, Time};
///
/// let mut q = EventQueue::new();
/// q.schedule(Time::at(5), "b");
/// q.schedule(Time::at(5), "c"); // same instant: FIFO after "b"
/// q.schedule(Time::at(1), "a");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
/// assert_eq!(order, ["a", "b", "c"]);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    /// Largest time ever popped; used to enforce the no-time-travel check.
    watermark: Time,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            watermark: Time::ZERO,
            popped: 0,
        }
    }

    /// Schedules `payload` to fire at `time` in the default class (0).
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the latest popped event: scheduling
    /// into the past would break the simulation's causal order. (Scheduling
    /// *at* the current instant is allowed and common: zero-delay local
    /// computation, the paper's "processing times … are negligible".)
    pub fn schedule(&mut self, time: Time, payload: E) -> u64 {
        self.schedule_class(time, 0, payload)
    }

    /// Schedules `payload` to fire at `time` in ordering class `class`
    /// (lower classes fire first within an instant).
    ///
    /// # Panics
    /// Panics if `time` is in the past (see [`EventQueue::schedule`]).
    pub fn schedule_class(&mut self, time: Time, class: u8, payload: E) -> u64 {
        assert!(
            time >= self.watermark,
            "event scheduled at {time} before current time {}",
            self.watermark
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time,
            class,
            seq,
            payload,
        });
        seq
    }

    /// Removes and returns the earliest event, or `None` when the queue is
    /// empty.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.watermark);
        self.watermark = entry.time;
        self.popped += 1;
        Some(ScheduledEvent {
            time: entry.time,
            class: entry.class,
            seq: entry.seq,
            payload: entry.payload,
        })
    }

    /// The instant of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.time)
    }

    /// Current simulated time: the timestamp of the last popped event.
    pub fn now(&self) -> Time {
        self.watermark
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.popped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Time::at(10), 'x');
        q.schedule(Time::at(2), 'y');
        q.schedule(Time::at(7), 'z');
        let order: Vec<char> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, ['y', 'z', 'x']);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Time::at(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_tracks_last_pop() {
        let mut q = EventQueue::new();
        q.schedule(Time::at(4), ());
        assert_eq!(q.now(), Time::ZERO);
        q.pop();
        assert_eq!(q.now(), Time::at(4));
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(Time::at(9), ());
        q.pop();
        q.schedule(Time::at(3), ());
    }

    #[test]
    fn zero_delay_rescheduling_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(Time::at(5), 1);
        q.pop();
        q.schedule(Time::at(5), 2); // same instant: fine
        assert_eq!(q.pop().unwrap().payload, 2);
    }

    #[test]
    fn classes_order_within_an_instant() {
        let mut q = EventQueue::new();
        q.schedule_class(Time::at(5), 2, "tick");
        q.schedule_class(Time::at(5), 1, "timer");
        q.schedule_class(Time::at(5), 0, "deliver-late-seq");
        q.schedule_class(Time::at(4), 2, "earlier-tick");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, ["earlier-tick", "deliver-late-seq", "timer", "tick"]);
    }

    #[test]
    fn same_class_stays_fifo() {
        let mut q = EventQueue::new();
        q.schedule_class(Time::at(5), 1, 1);
        q.schedule_class(Time::at(5), 1, 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, [1, 2]);
    }

    #[test]
    fn len_and_delivered_track_counts() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(Time::at(1), ());
        q.schedule(Time::at(2), ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.delivered(), 1);
    }
}
