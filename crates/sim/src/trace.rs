//! Structured run traces.
//!
//! A [`TraceLog`] is an append-only record of everything observable that
//! happened in a run: membership transitions, message events, operation
//! boundaries. Checkers consume histories (see `dynareg-verify`); traces are
//! for humans debugging a failing schedule and for determinism tests
//! (same seed ⇒ byte-identical trace rendering).

use std::fmt;

use crate::ids::{NodeId, OpId};
use crate::time::Time;

/// One observable occurrence in a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A process entered the system (started its join; listening mode).
    Enter {
        /// The entering process.
        node: NodeId,
    },
    /// A process became active (its join operation returned).
    Activate {
        /// The newly active process.
        node: NodeId,
    },
    /// A process left the system (voluntarily or by crash — the model does
    /// not distinguish, paper §2.1).
    Leave {
        /// The departing process.
        node: NodeId,
    },
    /// A message was sent (unicast) or broadcast.
    Send {
        /// Sender.
        from: NodeId,
        /// Recipient (`None` for broadcast).
        to: Option<NodeId>,
        /// Protocol-level message label, e.g. `"INQUIRY"`.
        label: &'static str,
        /// Scheduled delivery instant (for unicast) — broadcasts record one
        /// `Send` and per-recipient `Deliver`s.
        deliver_at: Option<Time>,
    },
    /// A message was delivered to a process.
    Deliver {
        /// Recipient.
        to: NodeId,
        /// Original sender.
        from: NodeId,
        /// Protocol-level message label.
        label: &'static str,
    },
    /// A message was dropped because its recipient left before delivery.
    Drop {
        /// The departed recipient.
        to: NodeId,
        /// Protocol-level message label.
        label: &'static str,
    },
    /// A client operation was invoked on a process.
    Invoke {
        /// The invoking process.
        node: NodeId,
        /// Operation id (links to the history).
        op: OpId,
        /// Operation label, e.g. `"read"`, `"write"`, `"join"`.
        label: &'static str,
    },
    /// A client operation returned.
    Complete {
        /// The process on which the operation completes.
        node: NodeId,
        /// Operation id.
        op: OpId,
    },
    /// Free-form protocol annotation (e.g. "quorum reached").
    Note {
        /// The annotating process.
        node: NodeId,
        /// Message text.
        text: String,
    },
}

/// A timestamped trace entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// When the event occurred.
    pub time: Time,
    /// What occurred.
    pub event: TraceEvent,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use TraceEvent::*;
        write!(f, "[{}] ", self.time)?;
        match &self.event {
            Enter { node } => write!(f, "{node} enters (listening)"),
            Activate { node } => write!(f, "{node} becomes active"),
            Leave { node } => write!(f, "{node} leaves"),
            Send {
                from,
                to: Some(to),
                label,
                deliver_at,
            } => match deliver_at {
                Some(t) => write!(f, "{from} -> {to} {label} (delivers {t})"),
                None => write!(f, "{from} -> {to} {label}"),
            },
            Send {
                from,
                to: None,
                label,
                ..
            } => write!(f, "{from} broadcast {label}"),
            Deliver { to, from, label } => write!(f, "{to} <- {from} {label}"),
            Drop { to, label } => write!(f, "drop {label} to departed {to}"),
            Invoke { node, op, label } => write!(f, "{node} invokes {label} ({op})"),
            Complete { node, op } => write!(f, "{node} completes {op}"),
            Note { node, text } => write!(f, "{node}: {text}"),
        }
    }
}

/// Append-only trace of a run, with optional capacity-bounded retention.
///
/// With a capacity limit the log is a true **ring buffer** (a flight
/// recorder): once full, each new entry overwrites the oldest in place —
/// O(1) per record, where the seed implementation paid an O(n)
/// `Vec::remove(0)` shift per entry. [`TraceLog::entries`] always yields
/// oldest-first regardless of where the ring's write head sits.
///
/// # Example
///
/// ```
/// use dynareg_sim::trace::{TraceLog, TraceEvent};
/// use dynareg_sim::{NodeId, Time};
///
/// let mut log = TraceLog::enabled();
/// log.record(Time::at(1), TraceEvent::Enter { node: NodeId::from_raw(9) });
/// assert_eq!(log.len(), 1);
/// assert!(log.render().contains("p9 enters"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    entries: Vec<TraceEntry>,
    /// Ring head: index of the **oldest** retained entry. Always 0 until
    /// the capacity limit is first hit.
    start: usize,
    enabled: bool,
    dropped: u64,
    capacity: Option<usize>,
}

impl TraceLog {
    /// A recording trace with unbounded retention.
    pub fn enabled() -> TraceLog {
        TraceLog {
            entries: Vec::new(),
            start: 0,
            enabled: true,
            dropped: 0,
            capacity: None,
        }
    }

    /// A disabled trace: `record` is a no-op. Experiments use this to avoid
    /// paying memory for traces nobody reads.
    pub fn disabled() -> TraceLog {
        TraceLog {
            entries: Vec::new(),
            start: 0,
            enabled: false,
            dropped: 0,
            capacity: None,
        }
    }

    /// A recording trace retaining only the most recent `cap` entries.
    pub fn with_capacity_limit(cap: usize) -> TraceLog {
        TraceLog {
            entries: Vec::new(),
            start: 0,
            enabled: true,
            dropped: 0,
            capacity: Some(cap),
        }
    }

    /// Whether the log is recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event at `time` (no-op when disabled).
    pub fn record(&mut self, time: Time, event: TraceEvent) {
        if !self.enabled {
            return;
        }
        if let Some(cap) = self.capacity {
            if cap == 0 {
                self.dropped += 1;
                return;
            }
            if self.entries.len() >= cap {
                self.entries[self.start] = TraceEntry { time, event };
                self.start = (self.start + 1) % cap;
                self.dropped += 1;
                return;
            }
        }
        self.entries.push(TraceEntry { time, event });
    }

    /// All retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries[self.start..]
            .iter()
            .chain(self.entries[..self.start].iter())
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries are retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// How many entries were evicted due to the capacity limit.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Entries concerning a specific node (as actor or counterpart),
    /// oldest first.
    pub fn for_node(&self, node: NodeId) -> Vec<&TraceEntry> {
        use TraceEvent::*;
        self.entries()
            .filter(|e| match &e.event {
                Enter { node: n } | Activate { node: n } | Leave { node: n } => *n == node,
                Send { from, to, .. } => *from == node || *to == Some(node),
                Deliver { to, from, .. } => *to == node || *from == node,
                Drop { to, .. } => *to == node,
                Invoke { node: n, .. } | Complete { node: n, .. } | Note { node: n, .. } => {
                    *n == node
                }
            })
            .collect()
    }

    /// Renders the whole trace, one entry per line. Deterministic given a
    /// deterministic run, so it doubles as a determinism test fixture.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in self.entries() {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u64) -> NodeId {
        NodeId::from_raw(i)
    }

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = TraceLog::disabled();
        log.record(Time::ZERO, TraceEvent::Enter { node: n(1) });
        assert!(log.is_empty());
    }

    #[test]
    fn capacity_limit_evicts_oldest() {
        let mut log = TraceLog::with_capacity_limit(2);
        for i in 0..5 {
            log.record(Time::at(i), TraceEvent::Enter { node: n(i) });
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 3);
        assert_eq!(log.entries().next().unwrap().time, Time::at(3));
    }

    #[test]
    fn ring_keeps_order_across_many_wraps() {
        let mut log = TraceLog::with_capacity_limit(3);
        for i in 0..11 {
            log.record(Time::at(i), TraceEvent::Enter { node: n(i) });
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 8);
        let times: Vec<Time> = log.entries().map(|e| e.time).collect();
        assert_eq!(times, vec![Time::at(8), Time::at(9), Time::at(10)]);
        // render and for_node follow the same oldest-first order.
        let rendered = log.render();
        assert_eq!(rendered.lines().count(), 3);
        assert!(rendered.starts_with("[t8]"));
        let hits = log.for_node(n(9));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].time, Time::at(9));
    }

    #[test]
    fn zero_capacity_ring_retains_nothing_but_counts() {
        let mut log = TraceLog::with_capacity_limit(0);
        log.record(Time::at(1), TraceEvent::Enter { node: n(1) });
        log.record(Time::at(2), TraceEvent::Enter { node: n(2) });
        assert!(log.is_empty());
        assert_eq!(log.dropped(), 2);
    }

    #[test]
    fn for_node_filters_both_directions() {
        let mut log = TraceLog::enabled();
        log.record(
            Time::at(1),
            TraceEvent::Send {
                from: n(1),
                to: Some(n(2)),
                label: "REPLY",
                deliver_at: Some(Time::at(3)),
            },
        );
        log.record(
            Time::at(3),
            TraceEvent::Deliver {
                to: n(2),
                from: n(1),
                label: "REPLY",
            },
        );
        log.record(Time::at(4), TraceEvent::Leave { node: n(3) });
        assert_eq!(log.for_node(n(2)).len(), 2);
        assert_eq!(log.for_node(n(3)).len(), 1);
        assert_eq!(log.for_node(n(4)).len(), 0);
    }

    #[test]
    fn render_is_line_per_entry() {
        let mut log = TraceLog::enabled();
        log.record(Time::at(2), TraceEvent::Activate { node: n(7) });
        log.record(
            Time::at(2),
            TraceEvent::Note {
                node: n(7),
                text: "quorum reached".into(),
            },
        );
        let rendered = log.render();
        assert_eq!(rendered.lines().count(), 2);
        assert!(rendered.contains("[t2] p7 becomes active"));
        assert!(rendered.contains("p7: quorum reached"));
    }

    #[test]
    fn display_covers_broadcast_and_drop() {
        let e1 = TraceEntry {
            time: Time::at(1),
            event: TraceEvent::Send {
                from: n(1),
                to: None,
                label: "WRITE",
                deliver_at: None,
            },
        };
        let e2 = TraceEntry {
            time: Time::at(2),
            event: TraceEvent::Drop {
                to: n(4),
                label: "WRITE",
            },
        };
        assert_eq!(e1.to_string(), "[t1] p1 broadcast WRITE");
        assert_eq!(e2.to_string(), "[t2] drop WRITE to departed p4");
    }
}
