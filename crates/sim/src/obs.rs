//! Observability configuration and recorders.
//!
//! Three building blocks shared by every layer above the simulator:
//!
//! * [`ObsConfig`] — the single switch for the whole observability layer.
//!   **Off by default and provably free**: an instrumented-off run consumes
//!   no randomness and perturbs no event ordering, so its event-stream
//!   digest is byte-identical to an uninstrumented build (the same
//!   discipline as `FaultPlan::has_chaos`).
//! * [`Timeseries`] — a columnar per-tick gauge recorder with a stable
//!   JSONL export (`dynareg-timeseries/1`) and a round-trip parser.
//! * [`TickProfile`] — wall-clock accounting per simulator phase
//!   (delivery, timers, churn, workload, gauge sampling), the measurement
//!   base for the multi-core tick refactor. Wall-clock never feeds back
//!   into simulated time, so profiling cannot change a run either.

use std::fmt;
use std::time::Duration;

/// Master switch for the observability layer.
///
/// Everything defaults to off; [`ObsConfig::off()`] is `Default`. Each
/// knob is independent so experiments pay only for what they read.
///
/// # Example
///
/// ```
/// use dynareg_sim::obs::ObsConfig;
/// assert!(ObsConfig::off().is_off());
/// assert!(!ObsConfig::full().is_off());
/// assert_eq!(ObsConfig::default(), ObsConfig::off());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ObsConfig {
    /// Record causal operation spans (phase transitions plus the message
    /// sequence ids each op sent/received) and the per-message fate log
    /// that `why_stuck` chains are built from.
    pub spans: bool,
    /// Sample gauges into a [`Timeseries`] every `n` ticks (`None` = off).
    pub timeseries_every: Option<u64>,
    /// Keep a flight recorder: a ring buffer retaining the most recent
    /// `n` trace entries, auto-dumped when a run fails a verdict.
    pub flight_recorder: Option<usize>,
    /// Measure wall-clock time per tick phase into a [`TickProfile`].
    pub tick_profile: bool,
}

impl ObsConfig {
    /// Everything off — the default, and guaranteed digest-neutral.
    pub const fn off() -> ObsConfig {
        ObsConfig {
            spans: false,
            timeseries_every: None,
            flight_recorder: None,
            tick_profile: false,
        }
    }

    /// Every recorder on, with debugging-friendly defaults: per-tick
    /// timeseries and a 4096-entry flight recorder.
    pub const fn full() -> ObsConfig {
        ObsConfig {
            spans: true,
            timeseries_every: Some(1),
            flight_recorder: Some(4096),
            tick_profile: true,
        }
    }

    /// Whether every recorder is disabled.
    pub const fn is_off(&self) -> bool {
        !self.spans
            && self.timeseries_every.is_none()
            && self.flight_recorder.is_none()
            && !self.tick_profile
    }
}

/// Schema tag written on the first line of every timeseries export.
pub const TIMESERIES_SCHEMA: &str = "dynareg-timeseries/1";

/// Columnar per-tick gauge recorder.
///
/// Rows are appended on a fixed cadence (`every` ticks); each row is the
/// sampled tick plus one `u64` per column. Column names are fixed by the
/// first row and identical for every row after it — the buffer is
/// columnar so a long run costs one `Vec<u64>` per gauge, not one
/// allocation per sample.
///
/// # Export format (`dynareg-timeseries/1`)
///
/// JSONL: a header object, then one object per row.
///
/// ```text
/// {"schema":"dynareg-timeseries/1","every":5,"columns":["active","inflight"]}
/// {"t":0,"v":[20,3]}
/// {"t":5,"v":[21,7]}
/// ```
///
/// # Example
///
/// ```
/// use dynareg_sim::obs::Timeseries;
/// let mut ts = Timeseries::new(5);
/// assert!(ts.due(0) && !ts.due(3) && ts.due(10));
/// ts.push_row(0, &[("active", 20), ("inflight", 3)]);
/// let jsonl = ts.to_jsonl();
/// assert_eq!(Timeseries::parse_jsonl(&jsonl).unwrap(), ts);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timeseries {
    every: u64,
    columns: Vec<String>,
    ticks: Vec<u64>,
    /// Column-major sample storage: `values[c][r]` is column `c` at row `r`.
    values: Vec<Vec<u64>>,
}

impl Timeseries {
    /// An empty recorder sampling every `every` ticks (`every == 0` is
    /// treated as 1).
    pub fn new(every: u64) -> Timeseries {
        Timeseries {
            every: every.max(1),
            columns: Vec::new(),
            ticks: Vec::new(),
            values: Vec::new(),
        }
    }

    /// The sampling cadence in ticks.
    pub fn every(&self) -> u64 {
        self.every
    }

    /// Whether `tick` is on the sampling cadence.
    pub fn due(&self, tick: u64) -> bool {
        tick.is_multiple_of(self.every)
    }

    /// Appends one row of `(column, value)` gauges sampled at `tick`. The
    /// first row fixes the column set; later rows must present the same
    /// columns in the same order.
    pub fn push_row(&mut self, tick: u64, row: &[(&str, u64)]) {
        if self.columns.is_empty() && self.values.is_empty() {
            self.columns = row.iter().map(|&(name, _)| name.to_string()).collect();
            self.values = vec![Vec::new(); row.len()];
        }
        debug_assert_eq!(self.columns.len(), row.len(), "column set must be stable");
        self.ticks.push(tick);
        for (i, (col, &(name, value))) in self.values.iter_mut().zip(row).enumerate() {
            debug_assert_eq!(self.columns[i], name, "column order must be stable");
            col.push(value);
        }
    }

    /// Column names, in row order.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Number of rows recorded.
    pub fn len(&self) -> usize {
        self.ticks.len()
    }

    /// Whether no rows were recorded.
    pub fn is_empty(&self) -> bool {
        self.ticks.is_empty()
    }

    /// Iterates rows as `(tick, values)` with `values` in column order.
    pub fn rows(&self) -> impl Iterator<Item = (u64, Vec<u64>)> + '_ {
        self.ticks.iter().enumerate().map(|(r, &t)| {
            let vals = self.values.iter().map(|col| col[r]).collect();
            (t, vals)
        })
    }

    /// The full column for `name`, if recorded.
    pub fn column(&self, name: &str) -> Option<&[u64]> {
        let i = self.columns.iter().position(|c| c == name)?;
        Some(&self.values[i])
    }

    /// Serializes to `dynareg-timeseries/1` JSONL (header line + one line
    /// per row). Deterministic: same recorder, same bytes.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"schema\":\"{TIMESERIES_SCHEMA}\",\"every\":{},\"columns\":[",
            self.every
        ));
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{c}\""));
        }
        out.push_str("]}\n");
        for (t, vals) in self.rows() {
            out.push_str(&format!("{{\"t\":{t},\"v\":["));
            for (i, v) in vals.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&v.to_string());
            }
            out.push_str("]}\n");
        }
        out
    }

    /// Parses a `dynareg-timeseries/1` JSONL export back into a recorder.
    /// Exists so tests (and external tooling) can round-trip the artifact;
    /// the grammar is exactly what [`Timeseries::to_jsonl`] emits.
    pub fn parse_jsonl(text: &str) -> Result<Timeseries, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty timeseries export")?;
        let expect = |hay: &str, tag: &str| -> Result<(), String> {
            if hay.contains(tag) {
                Ok(())
            } else {
                Err(format!("header missing `{tag}`: {hay}"))
            }
        };
        expect(header, TIMESERIES_SCHEMA)?;
        let every: u64 = field(header, "\"every\":")?
            .parse()
            .map_err(|e| format!("bad `every`: {e}"))?;
        let cols_raw = field(header, "\"columns\":[")?;
        let columns: Vec<String> = if cols_raw.is_empty() {
            Vec::new()
        } else {
            cols_raw
                .split(',')
                .map(|c| c.trim_matches('"').to_string())
                .collect()
        };
        let mut ts = Timeseries {
            every,
            columns: columns.clone(),
            ticks: Vec::new(),
            values: vec![Vec::new(); columns.len()],
        };
        for (i, line) in lines.enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let t: u64 = field(line, "\"t\":")?
                .parse()
                .map_err(|e| format!("row {i}: bad tick: {e}"))?;
            let vals_raw = field(line, "\"v\":[")?;
            let vals: Vec<u64> = if vals_raw.is_empty() {
                Vec::new()
            } else {
                vals_raw
                    .split(',')
                    .map(|v| v.parse().map_err(|e| format!("row {i}: bad value: {e}")))
                    .collect::<Result<_, _>>()?
            };
            if vals.len() != ts.columns.len() {
                return Err(format!(
                    "row {i}: {} values for {} columns",
                    vals.len(),
                    ts.columns.len()
                ));
            }
            ts.ticks.push(t);
            for (col, v) in ts.values.iter_mut().zip(vals) {
                col.push(v);
            }
        }
        Ok(ts)
    }
}

/// Extracts the text after `key` up to the next `]`, `}` or `,` boundary
/// appropriate for the value shape (`[`-prefixed keys read to `]`).
fn field(line: &str, key: &str) -> Result<String, String> {
    let start = line
        .find(key)
        .ok_or_else(|| format!("missing `{key}` in `{line}`"))?
        + key.len();
    let rest = &line[start..];
    let end = if key.ends_with('[') {
        rest.find(']')
            .ok_or_else(|| format!("unterminated `{key}`"))?
    } else {
        rest.find([',', '}'])
            .ok_or_else(|| format!("unterminated `{key}`"))?
    };
    Ok(rest[..end].to_string())
}

/// The simulator phase a slice of wall-clock time is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TickPhase {
    /// Message delivery (unicast and broadcast fan-out expansion).
    Deliver,
    /// Protocol timer firings.
    Timer,
    /// Membership movement: scripted enter/leave plus stochastic churn.
    Churn,
    /// Client workload generation (op invocations).
    Workload,
    /// Gauge sampling and checker feed (window samples, timeseries rows).
    Sample,
}

/// Wall-clock accounting per tick phase.
///
/// Purely diagnostic: durations are measured around the simulator's
/// dispatch sites and never influence simulated time, so profiles vary
/// run-to-run while the event stream stays byte-identical.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TickProfile {
    /// Seconds spent delivering messages.
    pub deliver_secs: f64,
    /// Seconds spent firing protocol timers.
    pub timer_secs: f64,
    /// Seconds spent applying scripted membership and stochastic churn.
    pub churn_secs: f64,
    /// Seconds spent generating client workload.
    pub workload_secs: f64,
    /// Seconds spent sampling gauges / feeding checker windows.
    pub sample_secs: f64,
    /// Deliver events dispatched.
    pub deliver_events: u64,
    /// Timer events dispatched.
    pub timer_events: u64,
    /// Ticks processed.
    pub ticks: u64,
}

impl TickProfile {
    /// Adds `elapsed` to the bucket for `phase`.
    pub fn add(&mut self, phase: TickPhase, elapsed: Duration) {
        let secs = elapsed.as_secs_f64();
        match phase {
            TickPhase::Deliver => {
                self.deliver_secs += secs;
                self.deliver_events += 1;
            }
            TickPhase::Timer => {
                self.timer_secs += secs;
                self.timer_events += 1;
            }
            TickPhase::Churn => self.churn_secs += secs,
            TickPhase::Workload => self.workload_secs += secs,
            TickPhase::Sample => self.sample_secs += secs,
        }
    }

    /// Total measured seconds across all phases.
    pub fn total_secs(&self) -> f64 {
        self.deliver_secs
            + self.timer_secs
            + self.churn_secs
            + self.workload_secs
            + self.sample_secs
    }

    /// One-line JSON object (no trailing newline) for embedding in bench
    /// artifacts.
    pub fn json(&self) -> String {
        format!(
            concat!(
                "{{\"deliver_secs\": {:.6}, \"timer_secs\": {:.6}, ",
                "\"churn_secs\": {:.6}, \"workload_secs\": {:.6}, ",
                "\"sample_secs\": {:.6}, \"deliver_events\": {}, ",
                "\"timer_events\": {}, \"ticks\": {}}}"
            ),
            self.deliver_secs,
            self.timer_secs,
            self.churn_secs,
            self.workload_secs,
            self.sample_secs,
            self.deliver_events,
            self.timer_events,
            self.ticks,
        )
    }
}

impl fmt::Display for TickProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "deliver {:.3}s ({} ev) | timers {:.3}s ({} ev) | churn {:.3}s | workload {:.3}s | sample {:.3}s over {} ticks",
            self.deliver_secs,
            self.deliver_events,
            self.timer_secs,
            self.timer_events,
            self.churn_secs,
            self.workload_secs,
            self.sample_secs,
            self.ticks,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_is_default_and_detects_every_knob() {
        assert_eq!(ObsConfig::default(), ObsConfig::off());
        assert!(ObsConfig::off().is_off());
        for cfg in [
            ObsConfig {
                spans: true,
                ..ObsConfig::off()
            },
            ObsConfig {
                timeseries_every: Some(1),
                ..ObsConfig::off()
            },
            ObsConfig {
                flight_recorder: Some(64),
                ..ObsConfig::off()
            },
            ObsConfig {
                tick_profile: true,
                ..ObsConfig::off()
            },
        ] {
            assert!(!cfg.is_off(), "{cfg:?} should not read as off");
        }
    }

    #[test]
    fn timeseries_round_trips_through_jsonl() {
        let mut ts = Timeseries::new(5);
        ts.push_row(0, &[("active", 20), ("inflight", 3), ("drops", 0)]);
        ts.push_row(5, &[("active", 21), ("inflight", 7), ("drops", 2)]);
        ts.push_row(10, &[("active", 19), ("inflight", 0), ("drops", 2)]);
        let jsonl = ts.to_jsonl();
        assert!(jsonl.starts_with(&format!("{{\"schema\":\"{TIMESERIES_SCHEMA}\"")));
        assert_eq!(jsonl.lines().count(), 4);
        let back = Timeseries::parse_jsonl(&jsonl).expect("round trip");
        assert_eq!(back, ts);
        assert_eq!(back.column("inflight"), Some(&[3, 7, 0][..]));
        assert_eq!(back.column("nope"), None);
    }

    #[test]
    fn empty_timeseries_round_trips() {
        let ts = Timeseries::new(1);
        let back = Timeseries::parse_jsonl(&ts.to_jsonl()).expect("empty round trip");
        assert_eq!(back, ts);
        assert!(back.is_empty());
    }

    #[test]
    fn cadence_gates_sampling() {
        let ts = Timeseries::new(4);
        assert!(ts.due(0));
        assert!(!ts.due(1) && !ts.due(3));
        assert!(ts.due(8));
        // every == 0 coerces to 1: always due.
        assert!(Timeseries::new(0).due(17));
    }

    #[test]
    fn parse_rejects_malformed_exports() {
        assert!(Timeseries::parse_jsonl("").is_err());
        assert!(Timeseries::parse_jsonl("{\"schema\":\"other/1\"}").is_err());
        let bad_row = format!(
            "{{\"schema\":\"{TIMESERIES_SCHEMA}\",\"every\":1,\"columns\":[\"a\"]}}\n{{\"t\":0,\"v\":[1,2]}}\n"
        );
        assert!(Timeseries::parse_jsonl(&bad_row).is_err());
    }

    #[test]
    fn tick_profile_accumulates_by_phase() {
        let mut p = TickProfile::default();
        p.add(TickPhase::Deliver, Duration::from_millis(2));
        p.add(TickPhase::Deliver, Duration::from_millis(1));
        p.add(TickPhase::Timer, Duration::from_millis(4));
        p.add(TickPhase::Churn, Duration::from_millis(8));
        p.ticks = 3;
        assert_eq!(p.deliver_events, 2);
        assert_eq!(p.timer_events, 1);
        assert!((p.total_secs() - 0.015).abs() < 1e-9);
        let json = p.json();
        assert!(json.contains("\"deliver_events\": 2"));
        assert!(json.contains("\"ticks\": 3"));
        assert!(p.to_string().contains("over 3 ticks"));
    }
}
