//! Integer time, matching the paper's time model (§2.1: "The underlying time
//! model is the set of positive integers").

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in integer ticks since the start of
/// the run.
///
/// The paper reasons about instants `τ` and delay bounds `δ`; [`Time`] is the
/// `τ` side and [`Span`] the `δ` side. Keeping them as distinct newtypes
/// prevents the classic instant/duration mix-up at compile time.
///
/// # Example
///
/// ```
/// use dynareg_sim::{Time, Span};
/// let start = Time::ZERO;
/// let delta = Span::ticks(5);
/// assert_eq!(start + delta, Time::at(5));
/// assert_eq!(Time::at(8) - Time::at(3), Span::ticks(5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

/// A length of simulated time (a number of ticks); the paper's `δ`, `2δ`,
/// `3δ` quantities are [`Span`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Span(u64);

impl Time {
    /// The origin of simulated time.
    pub const ZERO: Time = Time(0);

    /// The largest representable instant; used as "never" sentinels by
    /// delay models (e.g. `GST = Time::MAX` means "the system never becomes
    /// synchronous", the fully asynchronous model of §4).
    pub const MAX: Time = Time(u64::MAX);

    /// Creates an instant at `ticks` ticks from the origin.
    pub const fn at(ticks: u64) -> Time {
        Time(ticks)
    }

    /// Raw tick count of this instant.
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// The elapsed span since `earlier`, saturating at zero if `earlier` is
    /// in the future.
    pub fn since(self, earlier: Time) -> Span {
        Span(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition; `Time::MAX` absorbs any span (a "never" stays
    /// "never").
    pub fn saturating_add(self, span: Span) -> Time {
        Time(self.0.saturating_add(span.0))
    }
}

impl Span {
    /// The empty span.
    pub const ZERO: Span = Span(0);

    /// A single tick, the paper's "time unit" in which `c·n` processes are
    /// refreshed.
    pub const UNIT: Span = Span(1);

    /// Creates a span of `ticks` ticks.
    pub const fn ticks(ticks: u64) -> Span {
        Span(ticks)
    }

    /// Raw tick count of this span.
    pub const fn as_ticks(self) -> u64 {
        self.0
    }

    /// Whether this span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the span by an integer factor (e.g. `delta * 3` for the
    /// paper's `3δ` join window).
    pub const fn times(self, factor: u64) -> Span {
        Span(self.0 * factor)
    }
}

impl Add<Span> for Time {
    type Output = Time;
    fn add(self, rhs: Span) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Span> for Time {
    fn add_assign(&mut self, rhs: Span) {
        self.0 += rhs.0;
    }
}

impl Sub<Time> for Time {
    type Output = Span;
    /// # Panics
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`Time::since`] for a saturating variant.
    fn sub(self, rhs: Time) -> Span {
        Span(self.0 - rhs.0)
    }
}

impl Add<Span> for Span {
    type Output = Span;
    fn add(self, rhs: Span) -> Span {
        Span(self.0 + rhs.0)
    }
}

impl Sub<Span> for Span {
    type Output = Span;
    fn sub(self, rhs: Span) -> Span {
        Span(self.0 - rhs.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}t", self.0)
    }
}

impl From<u64> for Time {
    fn from(ticks: u64) -> Time {
        Time(ticks)
    }
}

impl From<u64> for Span {
    fn from(ticks: u64) -> Span {
        Span(ticks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = Time::at(10);
        let d = Span::ticks(7);
        assert_eq!((t + d) - t, d);
        assert_eq!(t + Span::ZERO, t);
    }

    #[test]
    fn since_saturates() {
        assert_eq!(Time::at(3).since(Time::at(10)), Span::ZERO);
        assert_eq!(Time::at(10).since(Time::at(3)), Span::ticks(7));
    }

    #[test]
    fn never_absorbs_spans() {
        assert_eq!(Time::MAX.saturating_add(Span::ticks(100)), Time::MAX);
    }

    #[test]
    fn span_times_computes_multiples() {
        let delta = Span::ticks(5);
        assert_eq!(delta.times(3), Span::ticks(15));
        assert_eq!(delta.times(0), Span::ZERO);
    }

    #[test]
    fn ordering_is_by_tick() {
        assert!(Time::ZERO < Time::at(1));
        assert!(Span::ticks(2) < Span::ticks(3));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Time::at(42).to_string(), "t42");
        assert_eq!(Span::ticks(9).to_string(), "9t");
    }
}
