//! Lightweight counters and histograms for experiment output.
//!
//! The experiment harness aggregates these across seeds to produce the
//! tables in `EXPERIMENTS.md` (operation latency, message complexity,
//! active-set sizes, violation counts).

use std::collections::BTreeMap;
use std::fmt;

use crate::time::Span;

/// A monotonically increasing counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Counter {
        Counter(0)
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Values below this bound are counted in a dense `Vec` indexed by value
/// (the vector grows lazily to the largest value seen); anything at or
/// above it falls into the sparse overflow map. Simulated quantities —
/// latencies in ticks, active-set sizes, per-tick gauges — live far below
/// the bound, so the hot `record` path is an array increment.
const DENSE_LIMIT: u64 = 1 << 16;

/// An exact histogram of `u64` samples (tick latencies, set sizes, message
/// counts). Exact because simulated quantities are small integers; no
/// bucketing error creeps into lemma-bound comparisons.
///
/// Representation: a fixed-stride (one bucket per value) dense `Vec` for
/// values under `DENSE_LIMIT` (2¹⁶), plus a sparse overflow map for outliers.
/// The dense path replaces the original `BTreeMap` per-sample insertion —
/// measurable once gauges are sampled every tick of a multi-million-event
/// run — while `merge` stays an exact per-value sum, as the fleet tier's
/// commutative reduction requires.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    dense: Vec<u64>,
    overflow: BTreeMap<u64, u64>,
    total: u64,
    sum: u128,
    lo: u64,
    hi: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        if value < DENSE_LIMIT {
            let idx = value as usize;
            if idx >= self.dense.len() {
                self.dense.resize(idx + 1, 0);
            }
            self.dense[idx] += 1;
        } else {
            *self.overflow.entry(value).or_insert(0) += 1;
        }
        if self.total == 0 {
            self.lo = value;
            self.hi = value;
        } else {
            self.lo = self.lo.min(value);
            self.hi = self.hi.max(value);
        }
        self.total += 1;
        self.sum += u128::from(value);
    }

    /// Iterates `(value, count)` pairs with non-zero counts, in value order.
    fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.dense
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(v, &c)| (v as u64, c))
            .chain(self.overflow.iter().map(|(&v, &c)| (v, c)))
    }

    /// Records a span sample (convenience for latencies).
    pub fn record_span(&mut self, span: Span) {
        self.record(span.as_ticks());
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<u64> {
        (self.total > 0).then_some(self.lo)
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<u64> {
        (self.total > 0).then_some(self.hi)
    }

    /// Arithmetic mean, if any samples.
    pub fn mean(&self) -> Option<f64> {
        if self.total == 0 {
            None
        } else {
            Some(self.sum as f64 / self.total as f64)
        }
    }

    /// The `q`-quantile (0.0 ≤ q ≤ 1.0) using the nearest-rank method.
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.total == 0 {
            return None;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0;
        for (value, count) in self.buckets() {
            seen += count;
            if seen >= rank {
                return Some(value);
            }
        }
        self.max()
    }

    /// Median (p50).
    pub fn median(&self) -> Option<u64> {
        self.quantile(0.5)
    }

    /// Merges another histogram into this one (cross-seed aggregation).
    /// An exact per-value sum: commutative and associative, as the fleet
    /// tier's order-independent reduction requires.
    pub fn merge(&mut self, other: &Histogram) {
        if other.total == 0 {
            return;
        }
        if other.dense.len() > self.dense.len() {
            self.dense.resize(other.dense.len(), 0);
        }
        for (i, &c) in other.dense.iter().enumerate() {
            self.dense[i] += c;
        }
        for (&v, &c) in &other.overflow {
            *self.overflow.entry(v).or_insert(0) += c;
        }
        if self.total == 0 {
            self.lo = other.lo;
            self.hi = other.hi;
        } else {
            self.lo = self.lo.min(other.lo);
            self.hi = self.hi.max(other.hi);
        }
        self.total += other.total;
        self.sum += other.sum;
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.mean() {
            Some(mean) => write!(
                f,
                "n={} min={} mean={:.2} p50={} p99={} max={}",
                self.total,
                self.min().unwrap_or(0),
                mean,
                self.median().unwrap_or(0),
                self.quantile(0.99).unwrap_or(0),
                self.max().unwrap_or(0),
            ),
            None => write!(f, "n=0 (empty)"),
        }
    }
}

/// A named registry of counters and histograms for one run.
///
/// Besides plain named series, the registry holds **key-attributed**
/// series for register-space runs: `(name, key)` pairs rendered as
/// `name.rK` (`ops.read_completed.r5`, `latency.read.r5`, …). Keyed
/// series use a composite map key instead of leaked `String` names, so
/// the per-completion hot path stays allocation-free and merges remain
/// exact (the fleet tier's commutative reduction).
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    counters: BTreeMap<&'static str, Counter>,
    histograms: BTreeMap<&'static str, Histogram>,
    keyed_counters: BTreeMap<(&'static str, u32), Counter>,
    keyed_histograms: BTreeMap<(&'static str, u32), Histogram>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Increments the named counter by one, creating it if absent.
    pub fn incr(&mut self, name: &'static str) {
        self.counters.entry(name).or_default().incr();
    }

    /// Adds `n` to the named counter, creating it if absent.
    pub fn add(&mut self, name: &'static str, n: u64) {
        self.counters.entry(name).or_default().add(n);
    }

    /// Current value of the named counter (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).map_or(0, |c| c.value())
    }

    /// Records a sample in the named histogram, creating it if absent.
    pub fn sample(&mut self, name: &'static str, value: u64) {
        self.histograms.entry(name).or_default().record(value);
    }

    /// Records a span sample in the named histogram.
    pub fn sample_span(&mut self, name: &'static str, span: Span) {
        self.sample(name, span.as_ticks());
    }

    /// The named histogram, if it has any samples.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Increments the counter attributed to register `key` by one.
    pub fn incr_keyed(&mut self, name: &'static str, key: u32) {
        self.keyed_counters.entry((name, key)).or_default().incr();
    }

    /// Adds `n` to the counter attributed to `key` (also used for non-key
    /// attributions such as per-fault-rule drop counts, where the key is
    /// the rule index).
    pub fn add_keyed(&mut self, name: &'static str, key: u32, n: u64) {
        self.keyed_counters.entry((name, key)).or_default().add(n);
    }

    /// Current value of the counter attributed to register `key` (zero if
    /// never touched).
    pub fn keyed_counter(&self, name: &'static str, key: u32) -> u64 {
        self.keyed_counters
            .get(&(name, key))
            .map_or(0, |c| c.value())
    }

    /// Records a sample in the histogram attributed to register `key`.
    pub fn sample_keyed(&mut self, name: &'static str, key: u32, value: u64) {
        self.keyed_histograms
            .entry((name, key))
            .or_default()
            .record(value);
    }

    /// The histogram attributed to register `key`, if it has any samples.
    pub fn keyed_histogram(&self, name: &'static str, key: u32) -> Option<&Histogram> {
        self.keyed_histograms.get(&(name, key))
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, v)| (k, v.value()))
    }

    /// Iterates histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(&k, v)| (k, v))
    }

    /// Iterates key-attributed counters in `(name, key)` order.
    pub fn keyed_counters(&self) -> impl Iterator<Item = (&'static str, u32, u64)> + '_ {
        self.keyed_counters
            .iter()
            .map(|(&(n, k), v)| (n, k, v.value()))
    }

    /// Iterates key-attributed histograms in `(name, key)` order.
    pub fn keyed_histograms(&self) -> impl Iterator<Item = (&'static str, u32, &Histogram)> + '_ {
        self.keyed_histograms.iter().map(|(&(n, k), v)| (n, k, v))
    }

    /// Merges another registry into this one.
    pub fn merge(&mut self, other: &Metrics) {
        for (&k, v) in &other.counters {
            self.counters.entry(k).or_default().add(v.value());
        }
        for (&k, v) in &other.histograms {
            self.histograms.entry(k).or_default().merge(v);
        }
        for (&k, v) in &other.keyed_counters {
            self.keyed_counters.entry(k).or_default().add(v.value());
        }
        for (&k, v) in &other.keyed_histograms {
            self.keyed_histograms.entry(k).or_default().merge(v);
        }
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, v) in self.counters() {
            writeln!(f, "{name}: {v}")?;
        }
        for (name, key, v) in self.keyed_counters() {
            writeln!(f, "{name}.r{key}: {v}")?;
        }
        for (name, h) in self.histograms() {
            writeln!(f, "{name}: {h}")?;
        }
        for (name, key, h) in self.keyed_histograms() {
            writeln!(f, "{name}.r{key}: {h}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.value(), 5);
    }

    #[test]
    fn histogram_stats_are_exact() {
        let mut h = Histogram::new();
        for v in [1, 2, 2, 3, 10] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(10));
        assert_eq!(h.mean(), Some(3.6));
        assert_eq!(h.median(), Some(2));
        assert_eq!(h.quantile(1.0), Some(10));
        assert_eq!(h.quantile(0.0), Some(1));
    }

    #[test]
    fn empty_histogram_has_no_stats() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.to_string(), "n=0 (empty)");
    }

    #[test]
    fn quantile_nearest_rank_matches_reference() {
        let mut h = Histogram::new();
        for v in 1..=100 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), Some(50));
        assert_eq!(h.quantile(0.99), Some(99));
        assert_eq!(h.quantile(0.01), Some(1));
    }

    #[test]
    fn overflow_values_stay_exact() {
        // Values straddling DENSE_LIMIT exercise both representations.
        let mut h = Histogram::new();
        let big = DENSE_LIMIT + 123;
        for v in [3, big, 3, DENSE_LIMIT - 1, big] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), Some(3));
        assert_eq!(h.max(), Some(big));
        assert_eq!(h.median(), Some(DENSE_LIMIT - 1));
        assert_eq!(h.quantile(1.0), Some(big));
        let mut other = Histogram::new();
        other.record(big);
        h.merge(&other);
        assert_eq!(h.count(), 6);
        assert_eq!(h.quantile(1.0), Some(big));
    }

    #[test]
    fn merge_into_empty_adopts_bounds() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        b.record(7);
        b.record(9);
        a.merge(&b);
        assert_eq!(a.min(), Some(7));
        assert_eq!(a.max(), Some(9));
        a.merge(&Histogram::new());
        assert_eq!(a.count(), 2, "merging an empty histogram is a no-op");
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = Histogram::new();
        a.record(1);
        let mut b = Histogram::new();
        b.record(3);
        b.record(3);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), Some(3));
        assert_eq!(a.mean(), Some(7.0 / 3.0));
    }

    #[test]
    fn metrics_registry_round_trip() {
        let mut m = Metrics::new();
        m.incr("msgs.write");
        m.add("msgs.write", 2);
        m.sample("latency.read", 0);
        m.sample("latency.read", 4);
        assert_eq!(m.counter("msgs.write"), 3);
        assert_eq!(m.counter("absent"), 0);
        assert_eq!(m.histogram("latency.read").unwrap().count(), 2);
        let mut other = Metrics::new();
        other.incr("msgs.write");
        m.merge(&other);
        assert_eq!(m.counter("msgs.write"), 4);
    }

    #[test]
    fn keyed_series_round_trip_and_merge() {
        let mut m = Metrics::new();
        m.incr_keyed("ops.read_completed", 0);
        m.incr_keyed("ops.read_completed", 5);
        m.incr_keyed("ops.read_completed", 5);
        m.sample_keyed("latency.read", 5, 3);
        assert_eq!(m.keyed_counter("ops.read_completed", 5), 2);
        assert_eq!(m.keyed_counter("ops.read_completed", 0), 1);
        assert_eq!(m.keyed_counter("ops.read_completed", 7), 0);
        assert_eq!(m.keyed_histogram("latency.read", 5).unwrap().count(), 1);
        assert!(m.keyed_histogram("latency.read", 0).is_none());
        let mut other = Metrics::new();
        other.incr_keyed("ops.read_completed", 5);
        other.sample_keyed("latency.read", 5, 9);
        m.merge(&other);
        assert_eq!(m.keyed_counter("ops.read_completed", 5), 3);
        assert_eq!(m.keyed_histogram("latency.read", 5).unwrap().max(), Some(9));
        let rendered = m.to_string();
        assert!(rendered.contains("ops.read_completed.r5: 3"), "{rendered}");
        assert!(rendered.contains("latency.read.r5"), "{rendered}");
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0,1]")]
    fn quantile_rejects_out_of_range() {
        let mut h = Histogram::new();
        h.record(1);
        let _ = h.quantile(1.5);
    }
}
