//! # dynareg-sim — deterministic discrete-event simulation substrate
//!
//! This crate provides the timing substrate on which the register protocols
//! of Baldoni, Bonomi, Kermarrec and Raynal ("Implementing a Register in a
//! Dynamic Distributed System", ICDCS 2009) are executed and measured.
//!
//! The paper's time model is the set of positive integers (§2.1, "Time
//! model"); this crate mirrors it exactly:
//!
//! * [`Time`] and [`Span`] are integer tick newtypes,
//! * the [`EventQueue`] delivers events in non-decreasing time order with
//!   FIFO tie-breaking, so a run is a *deterministic* function of its inputs,
//! * all randomness flows through [`DetRng`], a small seeded PRNG, so the
//!   same seed always reproduces the same run — a correctness requirement
//!   for reproducing the paper's lemma-level bounds,
//! * [`trace`] and [`metrics`] record what happened for the checkers and the
//!   experiment harness.
//!
//! # Example
//!
//! ```
//! use dynareg_sim::{EventQueue, Time, Span};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(Time::ZERO + Span::ticks(3), "later");
//! q.schedule(Time::ZERO, "now");
//! assert_eq!(q.pop().map(|e| e.payload), Some("now"));
//! assert_eq!(q.pop().map(|e| e.payload), Some("later"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod ids;
pub mod metrics;
pub mod obs;
mod rng;
mod time;
pub mod trace;

#[doc(hidden)]
pub use event::HeapEventQueue;
pub use event::{EventQueue, ScheduledEvent};
pub use ids::{IdSource, NodeId, OpId, RegisterId, TimerId};
pub use rng::DetRng;
pub use time::{Span, Time};
