//! Seeded, deterministic randomness.
//!
//! Every stochastic choice in a run (message delays, churn victim selection,
//! workload arrival times) flows through a [`DetRng`] derived from the
//! scenario seed, so a `(scenario, seed)` pair fully determines the run.

use rand::rngs::SmallRng; // detlint: allow(ambient-rng) -- this module IS the DetRng derivation boundary
use rand::{Rng, SeedableRng};

use crate::time::Span;

/// A deterministic pseudo-random generator for simulations.
///
/// Thin wrapper over [`rand::rngs::SmallRng`] exposing exactly the
/// operations the simulator needs; the narrow surface keeps call sites
/// stable if the underlying generator changes.
///
/// # Example
///
/// ```
/// use dynareg_sim::DetRng;
/// let mut a = DetRng::seed(42);
/// let mut b = DetRng::seed(42);
/// assert_eq!(a.pick(100), b.pick(100)); // same seed, same stream
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: SmallRng, // detlint: allow(ambient-rng) -- the one sanctioned generator, behind the seed
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> DetRng {
        DetRng {
            // detlint: allow(ambient-rng) -- seeded from the scenario seed, never from entropy
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator; used to give each subsystem
    /// (network, churn, workload) its own stream so adding draws in one
    /// subsystem does not perturb another.
    pub fn fork(&mut self, label: u64) -> DetRng {
        let s = self.inner.random::<u64>() ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        DetRng::seed(s)
    }

    /// Uniform integer in `0..bound`.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn pick(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "pick bound must be positive");
        self.inner.random_range(0..bound)
    }

    /// Uniform index into a slice of length `len`.
    ///
    /// # Panics
    /// Panics if `len == 0`.
    pub fn pick_index(&mut self, len: usize) -> usize {
        assert!(len > 0, "cannot pick from an empty slice");
        self.inner.random_range(0..len)
    }

    /// Uniform span in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn span_between(&mut self, lo: Span, hi: Span) -> Span {
        assert!(lo <= hi, "span_between requires lo <= hi");
        Span::ticks(self.inner.random_range(lo.as_ticks()..=hi.as_ticks()))
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.inner.random::<f64>() < p
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// A sample from a discretized Pareto-like heavy-tailed distribution of
    /// spans with minimum `min` and shape `alpha` (> 0), truncated at `cap`.
    ///
    /// Used by the fully-asynchronous delay model of §4: delays have no
    /// useful upper bound, so a heavy tail exercises the impossibility
    /// argument (for any assumed bound, some message exceeds it).
    pub fn heavy_tail_span(&mut self, min: Span, alpha: f64, cap: Span) -> Span {
        assert!(alpha > 0.0, "alpha must be positive");
        let u = self.unit().max(f64::MIN_POSITIVE);
        let factor = u.powf(-1.0 / alpha); // Pareto: min * U^(-1/alpha)
        let ticks = (min.as_ticks().max(1) as f64 * factor).round();
        let ticks = if ticks.is_finite() {
            ticks as u64
        } else {
            cap.as_ticks()
        };
        Span::ticks(ticks.clamp(min.as_ticks(), cap.as_ticks()))
    }

    /// A sample from a Poisson distribution with mean `lambda`, via
    /// Knuth's method for small lambda and a normal approximation above 30.
    /// Used by the extension churn models (after Ko et al. \[19\]).
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        assert!(lambda >= 0.0, "lambda must be non-negative");
        if lambda == 0.0 {
            return 0;
        }
        if lambda < 30.0 {
            let l = (-lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= self.unit();
                if p <= l {
                    return k;
                }
                k += 1;
            }
        } else {
            // Normal approximation with continuity correction.
            let (u1, u2) = (self.unit().max(f64::MIN_POSITIVE), self.unit());
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            let x = lambda + lambda.sqrt() * z + 0.5;
            x.max(0.0) as u64
        }
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.inner.random_range(0..=i);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed(7);
        let mut b = DetRng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.pick(1_000_000), b.pick(1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::seed(1);
        let mut b = DetRng::seed(2);
        let same = (0..64)
            .filter(|_| a.pick(u64::MAX) == b.pick(u64::MAX))
            .count();
        assert!(same < 4, "independent streams should almost never collide");
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut root1 = DetRng::seed(99);
        let mut root2 = DetRng::seed(99);
        let mut c1 = root1.fork(1);
        let mut c2 = root2.fork(1);
        assert_eq!(c1.pick(1000), c2.pick(1000));
    }

    #[test]
    fn span_between_respects_bounds() {
        let mut rng = DetRng::seed(3);
        for _ in 0..1000 {
            let s = rng.span_between(Span::ticks(2), Span::ticks(9));
            assert!(s >= Span::ticks(2) && s <= Span::ticks(9));
        }
    }

    #[test]
    fn span_between_degenerate_range() {
        let mut rng = DetRng::seed(3);
        assert_eq!(
            rng.span_between(Span::ticks(4), Span::ticks(4)),
            Span::ticks(4)
        );
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DetRng::seed(5);
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }

    #[test]
    fn heavy_tail_within_min_and_cap() {
        let mut rng = DetRng::seed(11);
        let (min, cap) = (Span::ticks(3), Span::ticks(500));
        let mut exceeded_10x_min = false;
        for _ in 0..5000 {
            let s = rng.heavy_tail_span(min, 1.1, cap);
            assert!(s >= min && s <= cap);
            exceeded_10x_min |= s > Span::ticks(30);
        }
        assert!(exceeded_10x_min, "heavy tail should produce large outliers");
    }

    #[test]
    fn poisson_mean_is_roughly_lambda() {
        let mut rng = DetRng::seed(13);
        for &lambda in &[0.5, 4.0, 50.0] {
            let n = 4000;
            let sum: u64 = (0..n).map(|_| rng.poisson(lambda)).sum();
            let mean = sum as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.15,
                "lambda={lambda} mean={mean}"
            );
        }
    }

    #[test]
    fn poisson_zero_lambda_is_zero() {
        let mut rng = DetRng::seed(17);
        assert_eq!(rng.poisson(0.0), 0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DetRng::seed(19);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
