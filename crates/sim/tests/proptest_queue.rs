//! Property tests for the deterministic event queue — the simulator's
//! correctness rests on its ordering guarantees.

use dynareg_sim::{DetRng, EventQueue, HeapEventQueue, Span, Time};
use proptest::prelude::*;

proptest! {
    // Bounded case count so CI runtime stays predictable; override with
    // the PROPTEST_CASES environment variable for deeper local runs.
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Pop order is non-decreasing in time, and FIFO within (time, class).
    #[test]
    fn pops_are_time_class_seq_ordered(
        events in prop::collection::vec((0u64..1000, 0u8..3), 1..200)
    ) {
        let mut q = EventQueue::new();
        for (i, &(t, class)) in events.iter().enumerate() {
            q.schedule_class(Time::at(t), class, i);
        }
        let mut prev: Option<(Time, u8, u64)> = None;
        while let Some(e) = q.pop() {
            let key = (e.time, e.class, e.seq);
            if let Some(p) = prev {
                prop_assert!(p <= key, "popped {key:?} after {p:?}");
            }
            prev = Some(key);
        }
    }

    /// Every scheduled event is popped exactly once (no loss, no
    /// duplication), whatever the schedule.
    #[test]
    fn queue_is_lossless(
        times in prop::collection::vec(0u64..500, 1..300)
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Time::at(t), i);
        }
        let mut seen = vec![false; times.len()];
        while let Some(e) = q.pop() {
            prop_assert!(!seen[e.payload], "event {e:?} popped twice");
            seen[e.payload] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Interleaving schedules with pops (never into the past) preserves
    /// the watermark invariant: now() never decreases.
    #[test]
    fn watermark_is_monotone(
        script in prop::collection::vec((0u64..50, prop::bool::ANY), 1..200)
    ) {
        let mut q = EventQueue::new();
        let mut watermark = Time::ZERO;
        for (delay, do_pop) in script {
            q.schedule(watermark + Span::ticks(delay), ());
            if do_pop {
                if let Some(e) = q.pop() {
                    prop_assert!(e.time >= watermark);
                    watermark = e.time;
                    prop_assert_eq!(q.now(), watermark);
                }
            }
        }
    }

    /// The tick-wheel queue is behaviorally identical to the original
    /// `BinaryHeap` implementation (kept as [`HeapEventQueue`], the
    /// reference model): identical pop sequences — (time, class, seq,
    /// payload) — for arbitrary interleaved `schedule`/`schedule_class`/
    /// `pop` scripts. Delays reach far beyond the wheel's 256-slot near
    /// window so overflow parking, migration and cursor jumps are all on
    /// the exercised path.
    #[test]
    fn wheel_matches_heap_reference_model(
        script in prop::collection::vec(
            (0u64..600, 0u8..3, prop::bool::ANY, prop::bool::ANY),
            1..300,
        )
    ) {
        let mut wheel = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        for (i, &(delay, class, classed, do_pop)) in script.iter().enumerate() {
            // Schedule relative to the wheel's watermark (the reference
            // model's watermark tracks it in lockstep) so no event lands
            // in the past.
            let t = wheel.now() + Span::ticks(delay);
            if classed {
                wheel.schedule_class(t, class, i);
                heap.schedule_class(t, class, i);
            } else {
                wheel.schedule(t, i);
                heap.schedule(t, i);
            }
            prop_assert_eq!(wheel.len(), heap.len());
            if do_pop {
                prop_assert_eq!(wheel.peek_time(), heap.peek_time());
                prop_assert_eq!(wheel.pop(), heap.pop());
                prop_assert_eq!(wheel.now(), heap.now());
            }
        }
        // Drain both: the tails must agree event-for-event.
        loop {
            prop_assert_eq!(wheel.peek_time(), heap.peek_time());
            let (a, b) = (wheel.pop(), heap.pop());
            prop_assert_eq!(&a, &b);
            if a.is_none() {
                break;
            }
        }
        prop_assert_eq!(wheel.delivered(), heap.delivered());
    }

    /// DetRng streams are reproducible and forks are independent of later
    /// parent draws.
    #[test]
    fn rng_fork_isolation(seed in 0u64..u64::MAX, label in 0u64..u64::MAX) {
        let mut a = DetRng::seed(seed);
        let mut b = DetRng::seed(seed);
        let mut fa = a.fork(label);
        let mut fb = b.fork(label);
        // Perturb parent `a` only — child streams must still agree.
        let _ = a.pick(17);
        for _ in 0..8 {
            prop_assert_eq!(fa.pick(1_000_003), fb.pick(1_000_003));
        }
    }

    /// Histogram quantiles are order statistics: the q-quantile is ≤ the
    /// q'-quantile for q ≤ q', and both are actual samples.
    #[test]
    fn histogram_quantiles_are_monotone_samples(
        samples in prop::collection::vec(0u64..10_000, 1..200),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let mut h = dynareg_sim::metrics::Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = h.quantile(lo).unwrap();
        let b = h.quantile(hi).unwrap();
        prop_assert!(a <= b);
        prop_assert!(samples.contains(&a) && samples.contains(&b));
    }
}
