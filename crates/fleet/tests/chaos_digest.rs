//! Digest-level chaos guarantees.
//!
//! Two invariants the chaos layer promises:
//!
//! 1. **Zero cost when unused** — a chaos-free scenario *file* replays
//!    digest-identical to the equivalent programmatic [`ScenarioSpec`];
//!    the fault machinery must not perturb the event stream merely by
//!    existing.
//! 2. **Order independence** — the *insertion order* of additive delay
//!    rules, drop rules, and partitions in a [`FaultPlan`] never changes
//!    the run's event-stream digest. Partitions and drops each consume
//!    randomness in an order-independent way (one coin per message,
//!    commutative survival product), and `AddDelay` contributions are
//!    summed, so any permutation of the same rules is the same plan.

use dynareg_fleet::run_digest;
use dynareg_net::{DelayFault, DropRule, FaultAction, FaultPlan, NodeSet, Partition};
use dynareg_sim::{DetRng, NodeId, Span, Time};
use dynareg_testkit::{parse_scenario, Scenario};
use proptest::prelude::*;

#[test]
fn chaos_free_scenario_file_matches_programmatic_spec() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../scenarios/paper_baseline.dyn"
    );
    let text = std::fs::read_to_string(path).expect("paper_baseline.dyn is committed");
    let from_file = parse_scenario(&text).expect("baseline corpus file parses");
    let programmatic = Scenario::synchronous(20, Span::ticks(3))
        .churn_rate(0.02)
        .duration(Span::ticks(400))
        .seed(12)
        .into_spec();
    assert_eq!(
        from_file, programmatic,
        "the baseline corpus file must pin the paper's programmatic spec"
    );
    let file_report = from_file.run();
    let prog_report = programmatic.run();
    assert_eq!(file_report.fault_drops, 0, "the control run is chaos-free");
    assert_eq!(
        run_digest(&file_report),
        run_digest(&prog_report),
        "a chaos-free scenario file must replay digest-identical to its programmatic twin"
    );
}

/// One randomized plan: overlapping additive delays, overlapping drop
/// rules, and overlapping partitions, all inside the run's lifetime so
/// each category actually fires.
fn arb_rules(rng: &mut DetRng) -> (Vec<DelayFault>, Vec<DropRule>, Vec<Partition>) {
    let window = |rng: &mut DetRng| {
        let from = rng.pick(100);
        let until = from + 20 + rng.pick(60);
        (Time::at(from), Time::at(until))
    };
    let node = |rng: &mut DetRng| rng.chance(0.5).then(|| NodeId::from_raw(rng.pick(10)));
    let delays = (0..2 + rng.pick(3))
        .map(|_| {
            let (from_time, until_time) = window(rng);
            DelayFault {
                from: node(rng),
                to: node(rng),
                from_time,
                until_time,
                action: FaultAction::AddDelay(Span::ticks(1 + rng.pick(4))),
            }
        })
        .collect();
    let drops = (0..2 + rng.pick(3))
        .map(|_| {
            let (from_time, until_time) = window(rng);
            DropRule {
                from: node(rng),
                to: node(rng),
                from_time,
                until_time,
                probability: 0.05 + rng.unit() * 0.2,
            }
        })
        .collect();
    let partitions = (0..1 + rng.pick(2))
        .map(|_| {
            let (from_time, until_time) = window(rng);
            Partition::new(
                NodeSet::Modulo {
                    modulo: 2 + rng.pick(3),
                    residue: 0,
                },
                from_time,
                until_time,
            )
        })
        .collect();
    (delays, drops, partitions)
}

fn plan_from(delays: &[DelayFault], drops: &[DropRule], partitions: &[Partition]) -> FaultPlan {
    let mut plan = FaultPlan::default();
    for d in delays {
        plan.push(*d);
    }
    for d in drops {
        plan.push_drop(d.clone());
    }
    for p in partitions {
        plan.push_partition(p.clone());
    }
    plan
}

fn digest_with(plan: FaultPlan, seed: u64) -> u64 {
    let report = Scenario::synchronous(10, Span::ticks(3))
        .churn_rate(0.01)
        .duration(Span::ticks(150))
        .seed(seed)
        .faults(plan)
        .run();
    run_digest(&report)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Shuffling the insertion order of every rule category yields the
    /// exact same event stream.
    #[test]
    fn rule_order_never_changes_the_run_digest(seed in 0u64..1_000_000) {
        let mut rng = DetRng::seed(seed ^ 0xC4A0_5000);
        let (mut delays, mut drops, mut partitions) = arb_rules(&mut rng);
        let baseline = digest_with(plan_from(&delays, &drops, &partitions), seed);

        let mut shuffler = rng.fork(0x5F);
        shuffler.shuffle(&mut delays);
        shuffler.shuffle(&mut drops);
        shuffler.shuffle(&mut partitions);
        let shuffled = digest_with(plan_from(&delays, &drops, &partitions), seed);

        prop_assert_eq!(
            baseline, shuffled,
            "permuting fault-rule insertion order changed the event stream"
        );
    }
}
