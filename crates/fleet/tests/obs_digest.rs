//! The observability layer's zero-cost contract, at digest level.
//!
//! `ObsConfig::off()` is the default every `run()` uses; turning the full
//! layer on — spans, per-message fate log, flight-recorder ring, per-tick
//! timeseries, tick profiler — must not perturb the event stream by one
//! bit. The hooks never consume simulation randomness and never reorder
//! events, so the fleet digest (history ops + message/churn/verdict
//! totals) is the proof: identical with observability absent and with it
//! fully on, across protocols, churn, and fault chaos.

use dynareg_fleet::run_digest;
use dynareg_net::{DelayFault, DropRule, FaultAction, FaultPlan, NodeSet, Partition};
use dynareg_sim::obs::ObsConfig;
use dynareg_sim::{DetRng, NodeId, Span, Time};
use dynareg_testkit::Scenario;
use proptest::prelude::*;

/// One randomized chaos plan (same shape as `chaos_digest.rs`): additive
/// delays, probabilistic drops, and modulo partitions inside the run's
/// lifetime so every fault path the obs layer instruments actually fires.
fn arb_plan(rng: &mut DetRng) -> FaultPlan {
    let window = |rng: &mut DetRng| {
        let from = rng.pick(100);
        let until = from + 20 + rng.pick(60);
        (Time::at(from), Time::at(until))
    };
    let node = |rng: &mut DetRng| rng.chance(0.5).then(|| NodeId::from_raw(rng.pick(10)));
    let mut plan = FaultPlan::default();
    for _ in 0..2 + rng.pick(3) {
        let (from_time, until_time) = window(rng);
        plan.push(DelayFault {
            from: node(rng),
            to: node(rng),
            from_time,
            until_time,
            action: FaultAction::AddDelay(Span::ticks(1 + rng.pick(4))),
        });
    }
    for _ in 0..2 + rng.pick(3) {
        let (from_time, until_time) = window(rng);
        plan.push_drop(DropRule {
            from: node(rng),
            to: node(rng),
            from_time,
            until_time,
            probability: 0.05 + rng.unit() * 0.2,
        });
    }
    for _ in 0..1 + rng.pick(2) {
        let (from_time, until_time) = window(rng);
        plan.push_partition(Partition::new(
            NodeSet::Modulo {
                modulo: 2 + rng.pick(3),
                residue: 0,
            },
            from_time,
            until_time,
        ));
    }
    plan
}

/// The scenario under test: protocol family and churn chosen by the
/// seed so the property covers synchronous, eventually-synchronous, and
/// the ES atomic variant, quiet and churning.
fn scenario(seed: u64) -> Scenario {
    let base = match seed % 3 {
        0 => Scenario::synchronous(10, Span::ticks(3)),
        1 => Scenario::eventually_synchronous(10, Span::ticks(3), Time::at(40)),
        _ => Scenario::es_atomic(10, Span::ticks(3), Time::at(40)),
    };
    let churn = if seed.is_multiple_of(2) { 0.01 } else { 0.0 };
    base.churn_rate(churn).duration(Span::ticks(150)).seed(seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// `run()` (obs absent) and `run_observed(ObsConfig::full())` (every
    /// obs feature on) produce the same event-stream digest under chaos.
    #[test]
    fn full_observability_never_changes_the_run_digest(seed in 0u64..1_000_000) {
        let mut rng = DetRng::seed(seed ^ 0x0B5E_0000);
        let plan = arb_plan(&mut rng);

        let plain = scenario(seed).faults(plan.clone()).run();
        let observed = scenario(seed).faults(plan).run_observed(ObsConfig::full());

        prop_assert!(observed.obs.is_some(), "observed run carries its report");
        prop_assert_eq!(
            run_digest(&plain),
            run_digest(&observed),
            "turning the observability layer fully on changed the event stream"
        );
    }
}
