//! Doc-sync gates: the normative specs under `docs/` must match the
//! code they describe, and no Markdown link in the repo's documentation
//! may dangle.
//!
//! Two families of checks, both air-gapped (plain string scanning — no
//! Markdown parser dependency):
//!
//! * **Version pinning** — every on-disk format's version string quoted
//!   in `docs/FORMATS.md` must equal the constant in the owning module,
//!   so bumping a schema in code without updating the spec (or vice
//!   versa) fails CI.
//! * **Dead links** — every `[text](target)` link in `README.md` and
//!   `docs/*.md` must resolve: relative paths to files that exist,
//!   `#anchors` to headings that exist in the target document (GitHub
//!   slug rules). External URLs are skipped (the checker must run
//!   offline).

use std::fs;
use std::path::{Path, PathBuf};

use dynareg_fleet::PHASE_SCHEMA;
use dynareg_sim::obs::TIMESERIES_SCHEMA;
use dynareg_testkit::{FLIGHT_SCHEMA, FORMAT_LINE};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn read(path: &Path) -> String {
    fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

/// The documentation set the link checker walks: the README plus every
/// Markdown file under `docs/`.
fn doc_files() -> Vec<PathBuf> {
    let root = repo_root();
    let mut files = vec![root.join("README.md")];
    for entry in fs::read_dir(root.join("docs")).expect("docs/ exists") {
        let path = entry.expect("docs/ entry").path();
        if path.extension().map(|e| e == "md").unwrap_or(false) {
            files.push(path);
        }
    }
    assert!(
        files.len() >= 3,
        "README + at least PROTOCOL.md, FORMATS.md"
    );
    files
}

/// `docs/FORMATS.md` quotes every format's version string; each must be
/// the constant the owning module actually writes, and the version
/// tables must not mention a stale predecessor (e.g. a `/4` surviving a
/// `/5` bump) outside the explicitly-labelled version history.
#[test]
fn formats_spec_pins_the_code_version_strings() {
    let spec = read(&repo_root().join("docs/FORMATS.md"));
    for (name, tag) in [
        ("scenario", FORMAT_LINE),
        ("flight", FLIGHT_SCHEMA),
        ("timeseries", TIMESERIES_SCHEMA),
        ("phase-diagram", PHASE_SCHEMA),
    ] {
        assert!(
            spec.contains(tag),
            "docs/FORMATS.md must quote the {name} version string `{tag}` \
             (the code constant changed without a spec update, or vice versa)"
        );
        // The spec's summary table must carry the tag verbatim in a code
        // span, so a reader greps one canonical spelling.
        assert!(
            spec.contains(&format!("`{tag}`")),
            "docs/FORMATS.md must show `{tag}` as a code span"
        );
    }
}

/// `docs/PROTOCOL.md` names the protocol structures it specifies; if
/// one of these is renamed in code the spec must follow.
#[test]
fn protocol_spec_names_the_wire_structures() {
    let spec = read(&repo_root().join("docs/PROTOCOL.md"));
    for needle in [
        "JoinAll",
        "Batch",
        "Keyed",
        "INQUIRY",
        "RetransmitConfig",
        "join.retransmits",
        "shard_of_node",
    ] {
        assert!(
            spec.contains(needle),
            "docs/PROTOCOL.md no longer mentions `{needle}` — wire spec drift?"
        );
    }
}

/// GitHub's heading-to-anchor slug: lowercase, alphanumerics kept,
/// spaces and hyphens become hyphens, everything else dropped.
fn slug(heading: &str) -> String {
    let mut out = String::new();
    for ch in heading.trim().chars() {
        match ch {
            c if c.is_alphanumeric() => out.extend(c.to_lowercase()),
            ' ' | '-' => out.push('-'),
            _ => {}
        }
    }
    out
}

/// All heading anchors of a Markdown document (ATX headings only, which
/// is all this repo uses). Code fences are skipped so a `# comment` in
/// an example block is not a heading.
fn anchors(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_fence = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let trimmed = line.trim_start();
        let level = trimmed.chars().take_while(|&c| c == '#').count();
        if (1..=6).contains(&level) && trimmed[level..].starts_with(' ') {
            out.push(slug(&trimmed[level..]));
        }
    }
    out
}

/// Extracts `(target, line_number)` of every inline Markdown link,
/// skipping code fences and inline code spans.
fn links(text: &str) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    let mut in_fence = false;
    for (ln, line) in text.lines().enumerate() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let bytes = line.as_bytes();
        let mut i = 0;
        let mut in_code = false;
        while i < bytes.len() {
            match bytes[i] {
                b'`' => in_code = !in_code,
                b']' if !in_code && i + 1 < bytes.len() && bytes[i + 1] == b'(' => {
                    if let Some(close) = line[i + 2..].find(')') {
                        out.push((line[i + 2..i + 2 + close].to_string(), ln + 1));
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    out
}

/// Every relative link in the documentation set resolves to a file in
/// the repository, and every `#anchor` resolves to a heading of its
/// target document.
#[test]
fn documentation_has_no_dead_links() {
    let root = repo_root().canonicalize().expect("repo root resolves");
    let mut broken: Vec<String> = Vec::new();
    for file in doc_files() {
        let text = read(&file);
        let own_anchors = anchors(&text);
        let dir = file.parent().expect("doc file has a parent");
        for (target, line) in links(&text) {
            let at = || format!("{}:{line} -> {target}", file.display());
            if target.starts_with("http://") || target.starts_with("https://") {
                continue; // air-gapped checker: external URLs are out of scope
            }
            let (path_part, anchor) = match target.split_once('#') {
                Some((p, a)) => (p, Some(a)),
                None => (target.as_str(), None),
            };
            let (resolved_text, exists) = if path_part.is_empty() {
                (Some(text.clone()), true)
            } else {
                let resolved = dir.join(path_part);
                match resolved.canonicalize() {
                    Ok(p) => {
                        assert!(
                            p.starts_with(&root),
                            "{}: link escapes the repository",
                            at()
                        );
                        let t = p
                            .extension()
                            .map(|e| e == "md")
                            .unwrap_or(false)
                            .then(|| read(&p));
                        (t, true)
                    }
                    Err(_) => (None, false),
                }
            };
            if !exists {
                broken.push(format!("{} (missing file)", at()));
                continue;
            }
            if let Some(anchor) = anchor {
                let found = match &resolved_text {
                    Some(_) if path_part.is_empty() => own_anchors.contains(&anchor.to_string()),
                    Some(t) => anchors(t).contains(&anchor.to_string()),
                    None => false, // anchor into a non-Markdown file
                };
                if !found {
                    broken.push(format!("{} (missing anchor)", at()));
                }
            }
        }
    }
    assert!(broken.is_empty(), "dead documentation links:\n{broken:#?}");
}

/// The README links into `docs/` — the tree is discoverable from the
/// front page, not an orphan.
#[test]
fn readme_links_to_the_docs_tree() {
    let readme = read(&repo_root().join("README.md"));
    for doc in ["docs/PROTOCOL.md", "docs/FORMATS.md"] {
        assert!(
            readme.contains(doc),
            "README.md must link to {doc} so the specs are discoverable"
        );
    }
}
