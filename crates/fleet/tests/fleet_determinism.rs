//! Fleet determinism suite: the acceptance contract of the sweep tier.
//!
//! 1. A sweep run at 1 thread and at N threads produces **byte-identical**
//!    aggregate reports (JSON, tables, phase grid, fleet digest);
//! 2. every run inside a fleet matches a standalone [`Scenario`] run of
//!    the same parameter point, event stream for event stream.

use dynareg_fleet::{run_digest, run_points, run_sweep, PhaseReport, SweepDomain, SweepSpec};
use dynareg_sim::Span;
use dynareg_testkit::Scenario;
use proptest::prelude::*;

/// A sweep small enough to run many times in a test, large enough to put
/// several runs on each worker and cross the Theorem 1 boundary.
fn small_spec(master_seed: u64) -> SweepSpec {
    SweepSpec {
        domain: SweepDomain::Grid {
            deltas: vec![2, 3],
            fractions: vec![0.3, 0.6, 0.9, 1.8],
        },
        populations: vec![9],
        duration: Span::ticks(140),
        reads_per_tick: 1.0,
        master_seed,
        ..SweepSpec::theorem1_default()
    }
}

#[test]
fn one_thread_and_many_threads_render_byte_identical_reports() {
    let spec = small_spec(0xFEE7);
    let one = run_sweep(&spec, 1);
    let many = run_sweep(&spec, 5);
    assert_eq!(one.fleet_digest, many.fleet_digest);
    assert_eq!(one.json(), many.json());
    assert_eq!(one.cell_table().markdown(), many.cell_table().markdown());
    assert_eq!(
        one.frontier_table().markdown(),
        many.frontier_table().markdown()
    );
    assert_eq!(one.phase_grid(), many.phase_grid());
}

#[test]
fn fleet_runs_match_standalone_scenario_runs() {
    let spec = small_spec(0xBEEF);
    let points = spec.points();
    let outcomes = run_points(&points, 4);
    assert_eq!(outcomes.len(), points.len());
    for (point, outcome) in points.iter().zip(&outcomes) {
        // Rebuild the very same point through the public Scenario builder
        // and run it inline, single-threaded.
        let standalone = Scenario::synchronous(point.n, Span::ticks(point.delta))
            .worst_case_delays()
            .migrating_writer()
            .leave_selector(spec.selector)
            .duration(spec.duration)
            .reads_per_tick(spec.reads_per_tick)
            .churn_fraction_of_bound(point.fraction)
            .seed(point.seed)
            .run();
        assert_eq!(
            outcome.digest,
            run_digest(&standalone),
            "fleet run {} diverged from its standalone replay",
            point.index
        );
        assert_eq!(outcome.messages, standalone.total_messages);
        assert_eq!(outcome.reads_checked, standalone.reads_checked() as u64);
        assert_eq!(
            outcome.joins_completed,
            standalone.metrics.counter("ops.join_completed")
        );
    }
}

#[test]
fn es_sweep_is_thread_count_invariant_too() {
    let spec = SweepSpec {
        domain: SweepDomain::Grid {
            deltas: vec![2],
            fractions: vec![0.5, 1.0],
        },
        populations: vec![7],
        duration: Span::ticks(200),
        seeds_per_point: 2,
        ..SweepSpec::es_default(0)
    };
    let one = run_sweep(&spec, 1);
    let three = run_sweep(&spec, 3);
    assert_eq!(one.protocol, "es");
    assert_eq!(one.total_runs, 4, "1 δ × 2 fractions × 2 seeds");
    assert_eq!(one.json(), three.json());
}

#[test]
fn sharded_keyed_sweep_is_thread_count_invariant_and_renders_shards() {
    // The shards axis crosses the domain like any other: a (keys=8,
    // G ∈ {1, 4}) sweep reduces deterministically at any thread count,
    // separates its cells per G, and the sharded rows surface in every
    // render.
    let spec = SweepSpec {
        domain: SweepDomain::Grid {
            deltas: vec![3],
            fractions: vec![0.4, 0.8],
        },
        populations: vec![12],
        duration: Span::ticks(150),
        keys: vec![8],
        shards: vec![1, 4],
        ..SweepSpec::theorem1_default()
    };
    let one = run_sweep(&spec, 1);
    let four = run_sweep(&spec, 4);
    assert_eq!(one.total_runs, 4, "1 δ × 2 fractions × 2 shard counts");
    assert_eq!(one.json(), four.json());
    assert_eq!(one.phase_grid(), four.phase_grid());
    assert_eq!(one.cells.len(), 4);
    assert!(one.cells.iter().filter(|c| c.shards == 4).count() == 2);
    assert_eq!(one.frontiers.len(), 2, "one frontier row per (keys, G, δ)");
    assert!(one.json().contains("\"shards\": 4"), "{}", one.json());
    assert!(one.phase_grid().contains("g=4"), "{}", one.phase_grid());
    // Every fleet run still replays standalone, sharded or not.
    let points = spec.points();
    let outcomes = run_points(&points, 3);
    for (point, outcome) in points.iter().zip(&outcomes) {
        let mut sc = Scenario::synchronous(point.n, Span::ticks(point.delta))
            .worst_case_delays()
            .migrating_writer()
            .leave_selector(spec.selector)
            .duration(spec.duration)
            .reads_per_tick(spec.reads_per_tick)
            .keys(point.keys)
            .zipf(spec.zipf_exponent)
            .churn_fraction_of_bound(point.fraction)
            .seed(point.seed);
        if point.shards > 1 {
            sc = sc.join_shards(point.shards);
        }
        let standalone = sc.run();
        assert_eq!(
            standalone.shards, point.shards,
            "RunPoint records the effective G"
        );
        assert_eq!(
            outcome.digest,
            run_digest(&standalone),
            "sharded fleet run {} diverged from its standalone replay",
            point.index
        );
    }
}

#[test]
fn sampled_domain_sweeps_are_reproducible_across_thread_counts() {
    let spec = SweepSpec {
        domain: SweepDomain::Sample {
            count: 6,
            delta_lo: 2,
            delta_hi: 4,
            fraction_lo: 0.3,
            fraction_hi: 2.5,
        },
        populations: vec![8],
        duration: Span::ticks(120),
        ..SweepSpec::theorem1_default()
    };
    let a = run_sweep(&spec, 1);
    let b = run_sweep(&spec, 4);
    assert_eq!(a.total_runs, 6);
    assert_eq!(a.json(), b.json());
}

#[test]
fn default_sweep_expands_to_at_least_200_points_across_the_boundary() {
    // The exp_phase_diagram acceptance floor, checked without running the
    // full fleet: ≥ 200 (c, δ) points, straddling c = 1/(3δ) at every δ.
    let spec = SweepSpec::theorem1_default();
    let points = spec.points();
    assert!(points.len() >= 200, "{} points", points.len());
    let mut deltas: Vec<u64> = points.iter().map(|p| p.delta).collect();
    deltas.sort_unstable();
    deltas.dedup();
    assert!(deltas.len() >= 3, "several δ values");
    for d in deltas {
        let below = points.iter().any(|p| p.delta == d && p.fraction < 1.0);
        let above = points.iter().any(|p| p.delta == d && p.fraction > 1.0);
        assert!(below && above, "δ={d} does not straddle the boundary");
    }
}

fn digest_of(report: &PhaseReport) -> u64 {
    report.fleet_digest
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Any (master seed, thread count) pair: the report digest only
    /// depends on the seed.
    #[test]
    fn report_digest_depends_on_seed_not_threads(
        master_seed in 0u64..1000,
        threads in 1usize..6,
    ) {
        let spec = SweepSpec {
            domain: SweepDomain::Grid {
                deltas: vec![2],
                fractions: vec![0.5, 1.5],
            },
            populations: vec![7],
            duration: Span::ticks(100),
            master_seed,
            ..SweepSpec::theorem1_default()
        };
        let reference = run_sweep(&spec, 1);
        let parallel = run_sweep(&spec, threads);
        prop_assert_eq!(digest_of(&reference), digest_of(&parallel));
        prop_assert_eq!(reference.json(), parallel.json());
    }
}
