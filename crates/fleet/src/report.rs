//! Phase-diagram reports: the reduced output of a sweep.
//!
//! A [`PhaseReport`] holds the `(δ, c/c*)` cells, the per-`δ` empirical
//! feasibility frontier compared against the analytic threshold (Theorem
//! 1's `c = 1/(3δ)`, or `1/(3δn)` for the ES protocol), and a fleet digest
//! folding every run's event-stream digest in index order. Everything in
//! the report — including the rendered JSON and tables — is a pure
//! function of the outcomes, so any two sweeps of the same spec are
//! byte-identical however many threads ran them.

use dynareg_churn::analysis;
use dynareg_sim::metrics::Histogram;
use dynareg_sim::Span;
use dynareg_testkit::table::Table;
use dynareg_testkit::ProtocolChoice;

use crate::aggregate::{reduce_cells, Cell, PointOutcome};
use crate::spec::SweepSpec;

/// The empirical feasibility frontier along one `δ` row, in churn-fraction
/// coordinates (`1.0` = the analytic bound).
#[derive(Debug, Clone, PartialEq)]
pub struct Frontier {
    /// Register-space key count of the row.
    pub keys: u32,
    /// Join-reply shard groups of the row.
    pub shards: u32,
    /// Writer-roster size of the row.
    pub writers: u32,
    /// Delay bound `δ` (ticks).
    pub delta: u64,
    /// Largest feasible fraction, if any cell was feasible.
    pub last_feasible: Option<f64>,
    /// Smallest infeasible fraction, if any cell was infeasible.
    pub first_infeasible: Option<f64>,
    /// The analytic churn threshold `c*` in rate units (per tick).
    /// `None` when the row has no single threshold — an ES sweep over
    /// several populations merges runs whose `1/(3δn)` differ; fraction
    /// space (where `1.0` is every run's own bound) is then the only
    /// meaningful frontier coordinate.
    pub analytic_threshold: Option<f64>,
    /// Whether feasibility is monotone along the row (no feasible cell
    /// above an infeasible one).
    pub monotone: bool,
    /// Whether the empirical transition interval
    /// `[last_feasible, first_infeasible]` brackets the analytic bound
    /// (fraction `1.0`), within [`BRACKET_TOL`].
    pub brackets_bound: bool,
}

/// Relative tolerance of the bracket verdict: the measured feasibility
/// collapse must sit within 10% of the analytic threshold. The transition
/// is discretization-sharp, not asymptotically exact — at small `δ·n` the
/// integer-granular join pipeline survives a grid step past `c*` (e.g.
/// `c/c* = 1.05` at `δ = 2, n = 24`) before availability collapses.
pub const BRACKET_TOL: f64 = 0.1;

/// Schema tag of the rendered phase-diagram JSON (`BENCH_phase.json`).
/// Version history: `/4` added `inquiry_full`/`delta_overruns` cell
/// columns; `/5` added `join_retransmits`. The format is specified in
/// `docs/FORMATS.md`, whose doc-sync test pins this constant.
pub const PHASE_SCHEMA: &str = "dynareg-phase-diagram/5";

impl Frontier {
    fn from_row(
        keys: u32,
        shards: u32,
        writers: u32,
        delta: u64,
        analytic_threshold: Option<f64>,
        row: &[&Cell],
    ) -> Frontier {
        debug_assert!(row.windows(2).all(|w| w[0].fraction <= w[1].fraction));
        let last_feasible = row
            .iter()
            .filter(|c| c.feasible())
            .map(|c| c.fraction)
            .fold(None, |acc: Option<f64>, f| {
                Some(acc.map_or(f, |a| a.max(f)))
            });
        let first_infeasible = row
            .iter()
            .filter(|c| !c.feasible())
            .map(|c| c.fraction)
            .fold(None, |acc: Option<f64>, f| {
                Some(acc.map_or(f, |a| a.min(f)))
            });
        let monotone = match (last_feasible, first_infeasible) {
            (Some(lf), Some(fi)) => lf < fi,
            _ => true,
        };
        let brackets_bound = match (last_feasible, first_infeasible) {
            (Some(lf), Some(fi)) => lf <= 1.0 + BRACKET_TOL && fi >= 1.0 - BRACKET_TOL,
            _ => false,
        };
        Frontier {
            keys,
            shards,
            writers,
            delta,
            last_feasible,
            first_infeasible,
            analytic_threshold,
            monotone,
            brackets_bound,
        }
    }
}

/// The reduced result of a whole sweep.
#[derive(Debug, Clone)]
pub struct PhaseReport {
    /// Protocol name ("sync", "sync-nowait", "es", "es-atomic").
    pub protocol: &'static str,
    /// The sweep's master seed.
    pub master_seed: u64,
    /// Total runs executed.
    pub total_runs: u64,
    /// Cells sorted by `(keys, shards, writers, δ, fraction)`.
    pub cells: Vec<Cell>,
    /// One frontier per distinct `(keys, shards, writers, δ)` row, in that order.
    pub frontiers: Vec<Frontier>,
    /// FNV fold of every run's event-stream digest, in run-index order —
    /// equal digests mean equal fleets, whatever the thread count.
    pub fleet_digest: u64,
}

impl PhaseReport {
    /// Reduces a sweep's outcomes (already in run-index order, as
    /// [`crate::pool::run_points`] returns them).
    pub fn from_outcomes(spec: &SweepSpec, outcomes: &[PointOutcome]) -> PhaseReport {
        let protocol = match spec.protocol {
            ProtocolChoice::Synchronous => "sync",
            ProtocolChoice::SynchronousNoWait => "sync-nowait",
            ProtocolChoice::EventuallySynchronous => "es",
            ProtocolChoice::EsAtomic => "es-atomic",
        };
        let cells = reduce_cells(outcomes);
        let mut frontiers = Vec::new();
        let mut rows: Vec<(u32, u32, u32, u64)> = cells
            .iter()
            .map(|c| (c.keys, c.shards, c.writers, c.delta))
            .collect();
        rows.dedup(); // cells are sorted by (keys, shards, writers, δ, fraction)
        for (keys, shards, writers, delta) in rows {
            let row: Vec<&Cell> = cells
                .iter()
                .filter(|c| {
                    c.keys == keys && c.shards == shards && c.writers == writers && c.delta == delta
                })
                .collect();
            let analytic = match spec.protocol {
                ProtocolChoice::Synchronous | ProtocolChoice::SynchronousNoWait => {
                    Some(analysis::sync_churn_threshold(Span::ticks(delta)))
                }
                // The ES threshold 1/(3δn) depends on n: a single
                // population names it exactly; several merged into one
                // row have no common threshold (see Frontier docs).
                ProtocolChoice::EventuallySynchronous | ProtocolChoice::EsAtomic => {
                    match spec.populations.as_slice() {
                        [n0] => Some(analysis::es_churn_threshold(Span::ticks(delta), *n0)),
                        _ => None,
                    }
                }
            };
            frontiers.push(Frontier::from_row(
                keys, shards, writers, delta, analytic, &row,
            ));
        }
        let fleet_digest = crate::aggregate::fnv1a(
            outcomes.iter().flat_map(|o| o.digest.to_le_bytes()),
            crate::aggregate::FNV_OFFSET,
        );
        PhaseReport {
            protocol,
            master_seed: spec.master_seed,
            total_runs: outcomes.len() as u64,
            cells,
            frontiers,
            fleet_digest,
        }
    }

    /// Whether every `δ` row's empirical frontier brackets the analytic
    /// bound.
    pub fn frontier_brackets_bound(&self) -> bool {
        !self.frontiers.is_empty() && self.frontiers.iter().all(|f| f.brackets_bound)
    }

    /// The compact phase diagram: one row per `δ`, one column per churn
    /// fraction; `#` = feasible (safe + live + available), `!` = a safety
    /// violation occurred, `.` = infeasible (unavailable or stuck), `|`
    /// marks the analytic boundary `c/c* = 1`.
    pub fn phase_grid(&self) -> String {
        let mut fraction_bits: Vec<u64> = self.cells.iter().map(|c| c.fraction.to_bits()).collect();
        fraction_bits.sort_unstable();
        fraction_bits.dedup();
        let col = |bits: u64| fraction_bits.binary_search(&bits).expect("known fraction");
        let boundary = fraction_bits.partition_point(|&b| f64::from_bits(b) <= 1.0);
        let mut out = String::new();
        out.push_str(&format!(
            "phase diagram ({} cells): '#' feasible  '.' infeasible  '!' unsafe  '|' c=c*\n",
            self.cells.len()
        ));
        let lo = self.cells.first().map(|c| c.fraction).unwrap_or(0.0);
        let hi = self.cells.last().map(|c| c.fraction).unwrap_or(0.0);
        out.push_str(&format!(
            "        c/c* from {lo:.2} (left) to {hi:.2} (right)\n"
        ));
        let multi_key = self.cells.iter().any(|c| c.keys > 1);
        let multi_shard = self.cells.iter().any(|c| c.shards > 1);
        let multi_writer = self.cells.iter().any(|c| c.writers > 1);
        let mut rows: Vec<(u32, u32, u32, u64)> = self
            .cells
            .iter()
            .map(|c| (c.keys, c.shards, c.writers, c.delta))
            .collect();
        rows.dedup();
        for (keys, shards, writers, delta) in rows {
            let mut row: Vec<char> = vec![' '; fraction_bits.len()];
            for cell in self.cells.iter().filter(|c| {
                c.keys == keys && c.shards == shards && c.writers == writers && c.delta == delta
            }) {
                row[col(cell.fraction.to_bits())] = if cell.unsafe_runs > 0 {
                    '!'
                } else if cell.feasible() {
                    '#'
                } else {
                    '.'
                };
            }
            let mut line: String = String::new();
            for (i, ch) in row.iter().enumerate() {
                if i == boundary {
                    line.push('|');
                }
                line.push(*ch);
            }
            if boundary == row.len() {
                line.push('|');
            }
            let mut tag = String::new();
            if multi_key || multi_shard {
                tag.push_str(&format!("k={keys:<4} "));
            }
            if multi_shard {
                tag.push_str(&format!("g={shards:<3} "));
            }
            if multi_writer {
                tag.push_str(&format!("w={writers:<2} "));
            }
            out.push_str(&format!("{tag}δ={delta:<3} {line}\n"));
        }
        out
    }

    /// The detailed per-cell table (markdown-rendered).
    pub fn cell_table(&self) -> Table {
        let mut t = Table::new([
            "keys",
            "G",
            "W",
            "δ",
            "c/c*",
            "c",
            "runs",
            "unsafe",
            "stuck",
            "join%",
            "reads",
            "min|A|",
            "mean|A|",
            "min|A(τ,τ+3δ)|",
            "floor n(1−6δc)",
            "feasible",
        ]);
        for c in &self.cells {
            t.row([
                c.keys.to_string(),
                c.shards.to_string(),
                c.writers.to_string(),
                c.delta.to_string(),
                format!("{:.3}", c.fraction),
                format!("{:.5}", c.churn_rate),
                c.runs.to_string(),
                c.unsafe_runs.to_string(),
                c.stuck_runs.to_string(),
                format!("{:.0}", c.join_ratio() * 100.0),
                c.reads_checked.to_string(),
                c.active.min().unwrap_or(0).to_string(),
                format!("{:.1}", c.active.mean().unwrap_or(0.0)),
                c.min_window_active.map_or("-".into(), |m| m.to_string()),
                format!("{:.1}", c.lemma2_steady_bound),
                if c.feasible() { "yes" } else { "no" }.to_string(),
            ]);
        }
        t
    }

    /// The per-`δ` frontier table (markdown-rendered).
    pub fn frontier_table(&self) -> Table {
        let mut t = Table::new([
            "keys",
            "G",
            "W",
            "δ",
            "analytic c*",
            "last feasible c/c*",
            "first infeasible c/c*",
            "monotone",
            "brackets c*",
        ]);
        for f in &self.frontiers {
            t.row([
                f.keys.to_string(),
                f.shards.to_string(),
                f.writers.to_string(),
                f.delta.to_string(),
                f.analytic_threshold
                    .map_or("-".into(), |v| format!("{v:.5}")),
                f.last_feasible.map_or("-".into(), |v| format!("{v:.3}")),
                f.first_infeasible.map_or("-".into(), |v| format!("{v:.3}")),
                if f.monotone { "yes" } else { "no" }.to_string(),
                if f.brackets_bound { "yes" } else { "no" }.to_string(),
            ]);
        }
        t
    }

    /// Machine-readable JSON (`BENCH_phase.json`). Deliberately free of
    /// wall-clock or thread-count fields: two sweeps of the same spec
    /// must serialize byte-identically at any parallelism.
    pub fn json(&self) -> String {
        fn hist(h: &Histogram) -> String {
            format!(
                "{{\"count\": {}, \"min\": {}, \"mean\": {:.4}, \"p50\": {}, \"p99\": {}, \"max\": {}}}",
                h.count(),
                h.min().unwrap_or(0),
                h.mean().unwrap_or(0.0),
                h.median().unwrap_or(0),
                h.quantile(0.99).unwrap_or(0),
                h.max().unwrap_or(0),
            )
        }
        let mut out = String::new();
        out.push_str(&format!("{{\n  \"schema\": \"{PHASE_SCHEMA}\",\n"));
        out.push_str(&format!("  \"protocol\": \"{}\",\n", self.protocol));
        out.push_str(&format!("  \"master_seed\": {},\n", self.master_seed));
        out.push_str(&format!("  \"total_runs\": {},\n", self.total_runs));
        out.push_str(&format!(
            "  \"fleet_digest\": \"{:#018x}\",\n",
            self.fleet_digest
        ));
        out.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            out.push_str(&format!(
                concat!(
                    "    {{\"keys\": {}, \"shards\": {}, \"writers\": {}, \"delta\": {}, \"fraction\": {:.6}, \"churn_rate\": {:.8}, ",
                    "\"runs\": {}, \"unsafe_runs\": {}, \"safety_violations\": {}, ",
                    "\"stuck_runs\": {}, \"stuck_ops\": {}, \"inversions\": {}, ",
                    "\"arrivals\": {}, \"joins_completed\": {}, \"join_ratio\": {:.4}, ",
                    "\"reads_checked\": {}, \"reads_completed\": {}, \"writes_completed\": {}, ",
                    "\"messages\": {}, \"inquiry_full\": {}, \"join_retransmits\": {}, \"delta_overruns\": {}, ",
                    "\"min_active\": {}, \"mean_active\": {:.4}, ",
                    "\"min_window_active\": {}, \"lemma2_steady_floor\": {:.4}, ",
                    "\"feasible\": {}, \"join_latency\": {}, \"read_latency\": {}, ",
                    "\"write_latency\": {}}}{}\n",
                ),
                c.keys,
                c.shards,
                c.writers,
                c.delta,
                c.fraction,
                c.churn_rate,
                c.runs,
                c.unsafe_runs,
                c.safety_violations,
                c.stuck_runs,
                c.stuck_ops,
                c.inversions,
                c.arrivals,
                c.joins_completed,
                c.join_ratio(),
                c.reads_checked,
                c.reads_completed,
                c.writes_completed,
                c.messages,
                c.inquiry_full,
                c.join_retransmits,
                c.delta_overruns,
                c.active.min().unwrap_or(0),
                c.active.mean().unwrap_or(0.0),
                c.min_window_active
                    .map_or("null".to_string(), |m| m.to_string()),
                c.lemma2_steady_bound,
                c.feasible(),
                hist(&c.join_latency),
                hist(&c.read_latency),
                hist(&c.write_latency),
                if i + 1 < self.cells.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n  \"frontier\": [\n");
        for (i, f) in self.frontiers.iter().enumerate() {
            out.push_str(&format!(
                concat!(
                    "    {{\"keys\": {}, \"shards\": {}, \"writers\": {}, \"delta\": {}, \"analytic_threshold\": {}, ",
                    "\"last_feasible_fraction\": {}, \"first_infeasible_fraction\": {}, ",
                    "\"monotone\": {}, \"brackets_bound\": {}}}{}\n",
                ),
                f.keys,
                f.shards,
                f.writers,
                f.delta,
                f.analytic_threshold
                    .map_or("null".to_string(), |v| format!("{v:.8}")),
                f.last_feasible
                    .map_or("null".to_string(), |v| format!("{v:.6}")),
                f.first_infeasible
                    .map_or("null".to_string(), |v| format!("{v:.6}")),
                f.monotone,
                f.brackets_bound,
                if i + 1 < self.frontiers.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::run_points;
    use crate::spec::SweepDomain;

    fn small_spec() -> SweepSpec {
        SweepSpec {
            domain: SweepDomain::Grid {
                deltas: vec![2, 3],
                fractions: vec![0.4, 0.8, 1.6, 3.0],
            },
            populations: vec![10],
            duration: Span::ticks(150),
            reads_per_tick: 1.0,
            ..SweepSpec::theorem1_default()
        }
    }

    fn small_report() -> PhaseReport {
        let spec = small_spec();
        let points = spec.points();
        let outcomes = run_points(&points, 2);
        PhaseReport::from_outcomes(&spec, &outcomes)
    }

    #[test]
    fn report_shape_matches_grid() {
        let report = small_report();
        assert_eq!(report.total_runs, 8);
        assert_eq!(report.cells.len(), 8);
        assert_eq!(report.frontiers.len(), 2);
        // Cells sorted by (δ, fraction).
        for w in report.cells.windows(2) {
            assert!(
                (
                    w[0].keys,
                    w[0].shards,
                    w[0].writers,
                    w[0].delta,
                    w[0].fraction.to_bits()
                ) < (
                    w[1].keys,
                    w[1].shards,
                    w[1].writers,
                    w[1].delta,
                    w[1].fraction.to_bits()
                )
            );
        }
    }

    #[test]
    fn json_is_schema_tagged_and_free_of_wall_clock() {
        let report = small_report();
        let json = report.json();
        assert!(json.contains(&format!("\"schema\": \"{PHASE_SCHEMA}\"")));
        assert!(json.contains("\"inquiry_full\""));
        assert!(json.contains("\"join_retransmits\""));
        assert!(json.contains("\"delta_overruns\""));
        assert!(json.contains("\"fleet_digest\""));
        assert!(
            !json.contains("secs"),
            "no wall-clock in deterministic output"
        );
        assert!(
            !json.contains("threads"),
            "no thread count in deterministic output"
        );
    }

    #[test]
    fn renders_cover_every_cell() {
        let report = small_report();
        assert_eq!(report.cell_table().len(), report.cells.len());
        assert_eq!(report.frontier_table().len(), report.frontiers.len());
        let grid = report.phase_grid();
        assert!(grid.contains("δ=2") && grid.contains("δ=3"));
        assert!(grid.contains('|'), "analytic boundary is marked");
    }

    #[test]
    fn frontier_brackets_the_theorem1_bound_on_a_coarse_grid() {
        let report = small_report();
        for f in &report.frontiers {
            assert!(f.monotone, "feasibility not monotone at δ={}", f.delta);
            assert!(
                f.brackets_bound,
                "frontier misses the bound at δ={}: last_feasible={:?} first_infeasible={:?}",
                f.delta, f.last_feasible, f.first_infeasible
            );
        }
        assert!(report.frontier_brackets_bound());
    }

    #[test]
    fn frontier_row_logic_handles_all_shapes() {
        let mk = |delta, fraction, stuck| {
            let mut cell = Cell::new(1, 1, 1, delta, fraction);
            cell.absorb(&PointOutcome {
                index: 0,
                delta,
                fraction,
                churn_rate: 0.1,
                n: 10,
                keys: 1,
                shards: 1,
                writers: 1,
                seed: 0,
                safety_violations: 0,
                reads_checked: 1,
                inversions: 0,
                stuck_ops: stuck,
                arrivals: 10,
                joins_completed: 10,
                reads_completed: 1,
                writes_completed: 1,
                messages: 1,
                inquiry_full: 0,
                join_retransmits: 0,
                delta_overruns: 0,
                active: Histogram::new(),
                min_window_active: None,
                lemma2_steady_bound: 0.0,
                join_latency: Histogram::new(),
                read_latency: Histogram::new(),
                write_latency: Histogram::new(),
                digest: 0,
            });
            cell
        };
        // Feasible below 1, infeasible above: brackets.
        let a = mk(4, 0.8, 0);
        let b = mk(4, 1.2, 5);
        let f = Frontier::from_row(1, 1, 1, 4, Some(1.0 / 12.0), &[&a, &b]);
        assert!(f.monotone && f.brackets_bound);
        assert_eq!(f.last_feasible, Some(0.8));
        assert_eq!(f.first_infeasible, Some(1.2));
        // All feasible: no bracket (frontier not observed).
        let f = Frontier::from_row(1, 1, 1, 4, Some(1.0 / 12.0), &[&a]);
        assert!(f.monotone && !f.brackets_bound);
        // Infeasible below the bound: monotone but no bracket.
        let c = mk(4, 0.5, 3);
        let f = Frontier::from_row(1, 1, 1, 4, Some(1.0 / 12.0), &[&c, &b]);
        assert!(!f.brackets_bound);
        // Non-monotone: feasible above an infeasible cell.
        let d = mk(4, 2.0, 0);
        let f = Frontier::from_row(1, 1, 1, 4, Some(1.0 / 12.0), &[&c, &d]);
        assert!(!f.monotone);
    }
}
