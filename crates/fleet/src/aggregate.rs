//! Per-run summarization and order-independent reduction.
//!
//! Workers summarize each finished world into a compact [`PointOutcome`]
//! (dropping the full history — the *streaming* part: fleet memory stays
//! bounded by the number of points, not by the event volume) and the
//! reducer folds outcomes into per-`(δ, c)` [`Cell`]s.
//!
//! **Determinism contract:** every accumulator here is an integer counter,
//! an exact [`Histogram`] merge, or an `f64` min/max — all commutative and
//! associative — so reducing outcomes in *any* completion order yields
//! bit-identical cells. This is what lets the pool run at any thread count
//! and still produce byte-identical reports; never add an `f64` running
//! sum to a cell.

use dynareg_churn::analysis;
use dynareg_sim::metrics::Histogram;
use dynareg_sim::Span;
use dynareg_testkit::RunReport;

use crate::spec::RunPoint;

/// FNV-1a 64-bit over a byte stream.
pub(crate) fn fnv1a(bytes: impl IntoIterator<Item = u8>, seed: u64) -> u64 {
    let mut h = seed;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

pub(crate) const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

/// Digest of everything observable about a run: the full operation history
/// (invocations, responses, values), the membership totals and the message
/// count. Two runs with equal digests executed the same event stream for
/// every purpose the checkers care about; the fleet determinism suite
/// compares fleet-run digests against standalone [`Scenario`] runs of the
/// same point.
///
/// [`Scenario`]: dynareg_testkit::Scenario
pub fn run_digest(report: &RunReport) -> u64 {
    let ops = format!("{:?}", report.history.ops());
    let mut h = fnv1a(ops.bytes(), FNV_OFFSET);
    // Keyed runs fold every further key's op stream in key order (a 1-key
    // run folds nothing extra, so single-register digests are unchanged).
    for key in &report.extra_keys {
        h = fnv1a(format!("{:?}", key.history.ops()).bytes(), h);
    }
    for v in [
        report.presence.total_arrivals() as u64,
        report.presence.total_departures() as u64,
        report.total_messages,
        report.total_violations() as u64,
        report.total_inversions() as u64,
        report.total_stuck() as u64,
    ] {
        h = fnv1a(v.to_le_bytes(), h);
    }
    h
}

/// The compact, plain-data summary of one finished run.
#[derive(Debug, Clone)]
pub struct PointOutcome {
    /// Run index in sweep expansion order.
    pub index: u64,
    /// Delay bound `δ` (ticks).
    pub delta: u64,
    /// Churn fraction `c / c*`.
    pub fraction: f64,
    /// Nominal churn rate `c` the world actually ran with.
    pub churn_rate: f64,
    /// Population size `n`.
    pub n: usize,
    /// Register-space key count of the run.
    pub keys: u32,
    /// Join-reply shard groups of the run (1 = legacy full replies).
    pub shards: u32,
    /// Writer-roster size (and per-key write cap) of the run.
    pub writers: u32,
    /// The run's derived seed.
    pub seed: u64,
    /// Safety (regularity) violations, summed over every key.
    pub safety_violations: u64,
    /// Reads the safety checker examined, summed over every key.
    pub reads_checked: u64,
    /// New/old inversion pairs, summed over every key.
    pub inversions: u64,
    /// Genuine liveness violations (stuck stayers), over every key.
    pub stuck_ops: u64,
    /// Churn arrivals (joiners; bootstrap members excluded).
    pub arrivals: u64,
    /// Joins that completed.
    pub joins_completed: u64,
    /// Reads that completed.
    pub reads_completed: u64,
    /// Writes that completed.
    pub writes_completed: u64,
    /// Messages sent.
    pub messages: u64,
    /// `INQUIRY_FULL` messages sent (sharded-join starvation escalation
    /// traffic; 0 for unsharded runs).
    pub inquiry_full: u64,
    /// Silence-triggered join-inquiry retransmissions (the loss-tolerant
    /// handshake; 0 whenever every handshake completes in time).
    pub join_retransmits: u64,
    /// Deliveries whose effective latency broke the configured `δ` after
    /// the synchrony guarantee began.
    pub delta_overruns: u64,
    /// Per-tick `|A(τ)|` samples.
    pub active: Histogram,
    /// Measured `min_τ |A(τ, τ+3δ)|` (Lemma 2's left-hand side), if the
    /// run is long enough.
    pub min_window_active: Option<u64>,
    /// The pipeline-corrected Lemma 2 floor `n(1 − 6δc)` for this point.
    pub lemma2_steady_bound: f64,
    /// Join latency (completed joins).
    pub join_latency: Histogram,
    /// Read latency (completed reads).
    pub read_latency: Histogram,
    /// Write latency (completed writes).
    pub write_latency: Histogram,
    /// Event-stream digest ([`run_digest`]).
    pub digest: u64,
}

impl PointOutcome {
    /// Summarizes a finished run (the worker-side reduction step).
    pub fn from_run(point: &RunPoint, report: &RunReport) -> PointOutcome {
        let delta_span = Span::ticks(point.delta);
        let c = report.churn_rate;
        PointOutcome {
            index: point.index,
            delta: point.delta,
            fraction: point.fraction,
            churn_rate: c,
            n: point.n,
            keys: point.keys,
            shards: point.shards,
            writers: point.writers as u32,
            seed: point.seed,
            safety_violations: report.total_violations() as u64,
            reads_checked: report.total_reads_checked() as u64,
            inversions: report.total_inversions() as u64,
            stuck_ops: report.total_stuck() as u64,
            arrivals: (report.presence.total_arrivals().saturating_sub(point.n)) as u64,
            joins_completed: report.metrics.counter("ops.join_completed"),
            reads_completed: report.metrics.counter("ops.read_completed"),
            writes_completed: report.metrics.counter("ops.write_completed"),
            messages: report.total_messages,
            inquiry_full: report.inquiry_full(),
            join_retransmits: report.join_retransmits(),
            delta_overruns: report.delta_overruns,
            active: report
                .metrics
                .histogram("gauge.active")
                .cloned()
                .unwrap_or_default(),
            min_window_active: report
                .min_window_active(delta_span.times(3))
                .map(|m| m as u64),
            lemma2_steady_bound: analysis::lemma2_steady_bound(point.n, delta_span, c),
            join_latency: report.liveness.join_latency.clone(),
            read_latency: report.liveness.read_latency.clone(),
            write_latency: report.liveness.write_latency.clone(),
            digest: run_digest(report),
        }
    }
}

/// One `(δ, c/c*)` cell of the phase diagram: all runs of all seeds (and
/// populations) at that coordinate, reduced.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Register-space key count.
    pub keys: u32,
    /// Join-reply shard groups.
    pub shards: u32,
    /// Writer-roster size (and per-key write cap).
    pub writers: u32,
    /// Delay bound `δ` (ticks).
    pub delta: u64,
    /// Churn fraction `c / c*`.
    pub fraction: f64,
    /// Smallest nominal churn rate reduced into the cell (they differ
    /// across populations only for the ES threshold `1/(3δn)`).
    pub churn_rate: f64,
    /// Runs reduced into this cell.
    pub runs: u64,
    /// Runs with ≥ 1 safety violation.
    pub unsafe_runs: u64,
    /// Total safety violations.
    pub safety_violations: u64,
    /// Total reads checked.
    pub reads_checked: u64,
    /// Total inversions.
    pub inversions: u64,
    /// Runs with ≥ 1 stuck stayer.
    pub stuck_runs: u64,
    /// Total stuck operations.
    pub stuck_ops: u64,
    /// Total churn arrivals.
    pub arrivals: u64,
    /// Total completed joins.
    pub joins_completed: u64,
    /// Total completed reads.
    pub reads_completed: u64,
    /// Total completed writes.
    pub writes_completed: u64,
    /// Total messages sent.
    pub messages: u64,
    /// Total `INQUIRY_FULL` escalation messages.
    pub inquiry_full: u64,
    /// Total silence-triggered join-inquiry retransmissions.
    pub join_retransmits: u64,
    /// Total δ-overrun deliveries (non-zero marks the cell's `δ`-derived
    /// verdicts as timing-suspect).
    pub delta_overruns: u64,
    /// Merged per-tick `|A(τ)|` samples.
    pub active: Histogram,
    /// Minimum measured `|A(τ, τ+3δ)|` across runs, if any run measured it.
    pub min_window_active: Option<u64>,
    /// Largest Lemma 2 steady-state floor across the cell's runs.
    pub lemma2_steady_bound: f64,
    /// Merged join latency.
    pub join_latency: Histogram,
    /// Merged read latency.
    pub read_latency: Histogram,
    /// Merged write latency.
    pub write_latency: Histogram,
}

impl Cell {
    /// An empty cell at the given `(keys, shards, writers, δ, fraction)`
    /// coordinate.
    pub fn new(keys: u32, shards: u32, writers: u32, delta: u64, fraction: f64) -> Cell {
        Cell {
            keys,
            shards,
            writers,
            delta,
            fraction,
            churn_rate: f64::INFINITY,
            runs: 0,
            unsafe_runs: 0,
            safety_violations: 0,
            reads_checked: 0,
            inversions: 0,
            stuck_runs: 0,
            stuck_ops: 0,
            arrivals: 0,
            joins_completed: 0,
            reads_completed: 0,
            writes_completed: 0,
            messages: 0,
            inquiry_full: 0,
            join_retransmits: 0,
            delta_overruns: 0,
            active: Histogram::new(),
            min_window_active: None,
            lemma2_steady_bound: 0.0,
            join_latency: Histogram::new(),
            read_latency: Histogram::new(),
            write_latency: Histogram::new(),
        }
    }

    /// Folds one run into the cell (commutative and associative; see the
    /// module's determinism contract).
    pub fn absorb(&mut self, o: &PointOutcome) {
        debug_assert_eq!(
            (
                u64::from(self.keys),
                u64::from(self.shards),
                u64::from(self.writers),
                self.delta,
                self.fraction.to_bits()
            ),
            cell_key(o)
        );
        self.churn_rate = self.churn_rate.min(o.churn_rate);
        self.runs += 1;
        self.unsafe_runs += u64::from(o.safety_violations > 0);
        self.safety_violations += o.safety_violations;
        self.reads_checked += o.reads_checked;
        self.inversions += o.inversions;
        self.stuck_runs += u64::from(o.stuck_ops > 0);
        self.stuck_ops += o.stuck_ops;
        self.arrivals += o.arrivals;
        self.joins_completed += o.joins_completed;
        self.reads_completed += o.reads_completed;
        self.writes_completed += o.writes_completed;
        self.messages += o.messages;
        self.inquiry_full += o.inquiry_full;
        self.join_retransmits += o.join_retransmits;
        self.delta_overruns += o.delta_overruns;
        self.active.merge(&o.active);
        self.min_window_active = match (self.min_window_active, o.min_window_active) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.lemma2_steady_bound = self.lemma2_steady_bound.max(o.lemma2_steady_bound);
        self.join_latency.merge(&o.join_latency);
        self.read_latency.merge(&o.read_latency);
        self.write_latency.merge(&o.write_latency);
    }

    /// Fraction of churn arrivals whose join completed (`1.0` when no
    /// churn ran). The availability signal: under the Theorem 1 bound
    /// joins complete within `3δ` (Lemma 1), beyond it the join pipeline
    /// starves and the ratio collapses.
    pub fn join_ratio(&self) -> f64 {
        if self.arrivals == 0 {
            1.0
        } else {
            self.joins_completed as f64 / self.arrivals as f64
        }
    }

    /// The empirical feasibility verdict: every run safe, every run live,
    /// and the system stayed *available* (joins kept completing — at least
    /// half of all arrivals, which cleanly separates the sub-threshold
    /// regime, where Lemma 1 completes essentially all of them, from the
    /// collapsed one).
    pub fn feasible(&self) -> bool {
        self.unsafe_runs == 0 && self.stuck_runs == 0 && self.join_ratio() >= 0.5
    }
}

/// The reduction key of an outcome: `(keys, shards, writers, δ, fraction)`.
/// Fractions are keyed by bit pattern — exact, and ordered like the
/// numbers for non-negative floats.
pub fn cell_key(o: &PointOutcome) -> (u64, u64, u64, u64, u64) {
    (
        u64::from(o.keys),
        u64::from(o.shards),
        u64::from(o.writers),
        o.delta,
        o.fraction.to_bits(),
    )
}

/// Reduces outcomes into phase-diagram cells, sorted by
/// `(keys, shards, writers, δ, fraction)`. Input order does not matter
/// (see the module docs).
pub fn reduce_cells(outcomes: &[PointOutcome]) -> Vec<Cell> {
    let mut cells: std::collections::BTreeMap<(u64, u64, u64, u64, u64), Cell> =
        std::collections::BTreeMap::new();
    for o in outcomes {
        cells
            .entry(cell_key(o))
            .or_insert_with(|| Cell::new(o.keys, o.shards, o.writers, o.delta, o.fraction))
            .absorb(o);
    }
    cells.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynareg_sim::Span;
    use dynareg_testkit::Scenario;

    fn outcome(delta: u64, fraction: f64, stuck: u64, joins: u64, arrivals: u64) -> PointOutcome {
        PointOutcome {
            index: 0,
            delta,
            fraction,
            churn_rate: fraction / (3.0 * delta as f64),
            n: 10,
            keys: 1,
            shards: 1,
            writers: 1,
            seed: 1,
            safety_violations: 0,
            reads_checked: 10,
            inversions: 0,
            stuck_ops: stuck,
            arrivals,
            joins_completed: joins,
            reads_completed: 10,
            writes_completed: 2,
            messages: 100,
            inquiry_full: 0,
            join_retransmits: 0,
            delta_overruns: 0,
            active: Histogram::new(),
            min_window_active: Some(5),
            lemma2_steady_bound: 1.0,
            join_latency: Histogram::new(),
            read_latency: Histogram::new(),
            write_latency: Histogram::new(),
            digest: 0,
        }
    }

    #[test]
    fn reduction_is_order_independent() {
        let a = outcome(3, 0.5, 0, 10, 10);
        let b = outcome(3, 0.5, 2, 1, 10);
        let c = outcome(3, 1.5, 0, 0, 30);
        let fwd = reduce_cells(&[a.clone(), b.clone(), c.clone()]);
        let rev = reduce_cells(&[c, b, a]);
        assert_eq!(fwd.len(), 2);
        for (x, y) in fwd.iter().zip(&rev) {
            assert_eq!(
                (x.delta, x.fraction.to_bits()),
                (y.delta, y.fraction.to_bits())
            );
            assert_eq!(x.runs, y.runs);
            assert_eq!(x.stuck_runs, y.stuck_runs);
            assert_eq!(x.joins_completed, y.joins_completed);
        }
        // Cell (3, 0.5): one stuck run of two.
        assert_eq!(fwd[0].runs, 2);
        assert_eq!(fwd[0].stuck_runs, 1);
        assert_eq!(fwd[0].stuck_ops, 2);
    }

    #[test]
    fn feasibility_requires_safety_liveness_and_availability() {
        let mut healthy = Cell::new(1, 1, 1, 3, 0.5);
        healthy.absorb(&outcome(3, 0.5, 0, 9, 10));
        assert!(healthy.feasible());

        let mut stuck = Cell::new(1, 1, 1, 3, 0.5);
        stuck.absorb(&outcome(3, 0.5, 3, 9, 10));
        assert!(!stuck.feasible());

        let mut starved = Cell::new(1, 1, 1, 3, 0.5);
        starved.absorb(&outcome(3, 0.5, 0, 2, 10));
        assert!(!starved.feasible(), "join ratio 0.2 < 0.5");

        let mut quiet = Cell::new(1, 1, 1, 3, 0.5);
        quiet.absorb(&outcome(3, 0.5, 0, 0, 0));
        assert!(quiet.feasible(), "no churn → availability is vacuous");
    }

    #[test]
    fn digest_separates_runs_and_is_stable() {
        let run = |seed| {
            Scenario::synchronous(8, Span::ticks(2))
                .churn_fraction_of_bound(0.4)
                .duration(Span::ticks(120))
                .seed(seed)
                .run()
        };
        let a1 = run_digest(&run(1));
        let a2 = run_digest(&run(1));
        let b = run_digest(&run(2));
        assert_eq!(a1, a2, "same run, same digest");
        assert_ne!(a1, b, "different seed, different stream");
    }
}
