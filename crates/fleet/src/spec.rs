//! Plain-data sweep descriptions.
//!
//! A [`SweepSpec`] names a *family* of runs over the paper's parameter
//! space — churn rate `c` (as a fraction of the protocol's analytic
//! threshold), delay bound `δ`, population `n`, GST, protocol choice,
//! workload rates and fault plans. [`SweepSpec::points`] expands it into a
//! flat, indexed list of [`RunPoint`]s, each carrying a fully materialized
//! [`ScenarioSpec`] whose seed derives from `(master_seed, run_index)` —
//! so the expansion is pure data and every run is reproducible standalone.

use dynareg_churn::LeaveSelector;
use dynareg_net::FaultPlan;
use dynareg_sim::{DetRng, Span, Time};
use dynareg_testkit::{ProtocolChoice, Scenario, ScenarioSpec};

/// The sampled region of the `(c, δ)` plane.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepDomain {
    /// The cartesian grid `deltas × fractions` (fractions are `c / c*`,
    /// the churn rate relative to the protocol's analytic threshold).
    Grid {
        /// Delay bounds `δ`, in ticks.
        deltas: Vec<u64>,
        /// Churn fractions `c / c*`, in ascending order.
        fractions: Vec<f64>,
    },
    /// `count` points drawn uniformly from
    /// `[delta_lo, delta_hi] × [fraction_lo, fraction_hi]` by a
    /// deterministic RNG seeded from the sweep's master seed — the same
    /// spec always samples the same points.
    Sample {
        /// How many `(c, δ)` points to draw.
        count: usize,
        /// Smallest `δ` (ticks, inclusive).
        delta_lo: u64,
        /// Largest `δ` (ticks, inclusive).
        delta_hi: u64,
        /// Smallest churn fraction `c / c*` (inclusive).
        fraction_lo: f64,
        /// Largest churn fraction `c / c*` (exclusive).
        fraction_hi: f64,
    },
}

/// A grid or deterministic random sample over the paper's parameter space.
///
/// Everything is plain data (`Send + Clone`); nothing here owns a model or
/// a thread. Expansion order is fixed — `domain × populations × gsts ×
/// keys × shards × writers × seeds` with the rightmost axis fastest — so
/// `run_index`, and therefore every per-run seed, is a pure function of
/// the spec.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Protocol variant every point runs.
    pub protocol: ProtocolChoice,
    /// The `(c, δ)` region.
    pub domain: SweepDomain,
    /// Population sizes `n` to cross with the domain.
    pub populations: Vec<usize>,
    /// GST instants to cross with the domain (ES protocols only; the
    /// synchronous protocols ignore it — keep a single `0` entry there).
    pub gsts: Vec<u64>,
    /// Register-space key counts to cross with the domain (`[1]` = the
    /// classic single-register sweep; larger entries run keyed
    /// `RegisterSpace` worlds under Zipf traffic).
    pub keys: Vec<u32>,
    /// Join-reply shard group counts `G` to cross with the domain (`[1]` =
    /// the legacy full-reply handshake). Sharding gives churn `G`
    /// independent chances to starve a shard's join quorum, so this axis
    /// is how the phase diagram maps the Theorem 1 frontier against `G`.
    pub shards: Vec<u32>,
    /// Writer roster sizes `W` to cross with the domain (`[1]` = the
    /// paper's single-writer model; larger entries run `W` concurrent
    /// writers with a per-key write cap of `W`).
    pub writers: Vec<usize>,
    /// Zipf key-popularity exponent for keyed points (ignored at 1 key).
    pub zipf_exponent: f64,
    /// Independent seeded repetitions per parameter point.
    pub seeds_per_point: u64,
    /// Master seed; every run's seed is derived from it and the run index.
    pub master_seed: u64,
    /// Run length of each world.
    pub duration: Span,
    /// Expected reads per tick.
    pub reads_per_tick: f64,
    /// Write period (`None` = the scenario default `3δ`).
    pub write_every: Option<Span>,
    /// Churn victim selection policy.
    pub selector: LeaveSelector,
    /// Worst-case delays (every message takes exactly `δ`; synchronous
    /// protocols only) — the adversary Theorem 1's bound is stated
    /// against.
    pub worst_case: bool,
    /// Writer role migrates to the oldest active process (no immortal
    /// writer) — required for threshold sweeps.
    pub migrating_writer: bool,
    /// Delay-fault adversary installed in every world, if any.
    pub faults: Option<FaultPlan>,
}

/// One expanded parameter point: a ready-to-run [`ScenarioSpec`] plus the
/// sweep coordinates it came from.
#[derive(Debug, Clone)]
pub struct RunPoint {
    /// Position in the sweep's fixed expansion order (also the seed
    /// derivation input).
    pub index: u64,
    /// Delay bound `δ` in ticks.
    pub delta: u64,
    /// Churn fraction `c / c*`.
    pub fraction: f64,
    /// Population size `n`.
    pub n: usize,
    /// GST instant (0 for synchronous points).
    pub gst: u64,
    /// Register-space key count of this point.
    pub keys: u32,
    /// Join-reply shard groups of this point, clamped to the key count —
    /// the `G` the run actually used (1 = legacy full replies).
    pub shards: u32,
    /// Writer roster size of this point (1 = single-writer).
    pub writers: usize,
    /// The derived per-run seed (`= run_seed(master_seed, index)`).
    pub seed: u64,
    /// The fully materialized scenario.
    pub spec: ScenarioSpec,
}

/// One expansion coordinate of a sweep, pre-seed (every axis value of a
/// single run).
#[derive(Debug, Clone, Copy)]
struct Coord {
    delta: u64,
    fraction: f64,
    n: usize,
    gst: u64,
    keys: u32,
    shards: u32,
    writers: usize,
}

/// SplitMix64 finalizer: derives the seed of run `run_index` from the
/// sweep's master seed. Statistically independent streams per index, and —
/// unlike handing consecutive integers to the world's own RNG forks —
/// structurally unrelated to neighbouring runs.
pub fn run_seed(master_seed: u64, run_index: u64) -> u64 {
    let mut z = master_seed ^ run_index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SweepSpec {
    /// The default Theorem 1 phase sweep: the synchronous protocol under
    /// its worst-case adversary (exact-`δ` delays, active-first eviction,
    /// migrating writer), on a `5 δ-values × 40 fractions` grid spanning
    /// both sides of `c = 1/(3δ)` — 200 parameter points.
    pub fn theorem1_default() -> SweepSpec {
        // 40 fractions, denser around the threshold: 0.1..4.0.
        let mut fractions = Vec::new();
        let mut f = 0.1f64;
        while fractions.len() < 24 {
            fractions.push((f * 1000.0).round() / 1000.0);
            f += 0.05; // 0.10, 0.15, … 1.25 // detlint: allow(float-reduction) -- fixed-order grid construction, rounded to 1e-3; not an aggregation
        }
        for f in [
            1.35, 1.5, 1.65, 1.8, 2.0, 2.2, 2.4, 2.6, 2.8, 3.0, 3.2, 3.4, 3.6, 3.8, 3.9, 4.0,
        ] {
            fractions.push(f);
        }
        SweepSpec {
            protocol: ProtocolChoice::Synchronous,
            domain: SweepDomain::Grid {
                deltas: vec![2, 3, 4, 6, 8],
                fractions,
            },
            populations: vec![24],
            gsts: vec![0],
            keys: vec![1],
            shards: vec![1],
            writers: vec![1],
            zipf_exponent: 1.0,
            seeds_per_point: 1,
            master_seed: 0x000B_A1D0,
            duration: Span::ticks(360),
            reads_per_tick: 2.0,
            write_every: None,
            selector: LeaveSelector::ActiveFirst,
            worst_case: true,
            migrating_writer: true,
            faults: None,
        }
    }

    /// An ES-protocol counterpart: majority-quorum protocol over an
    /// eventually synchronous network stabilizing at `gst`, fractions
    /// relative to the ES threshold `1/(3δn)`.
    pub fn es_default(gst: u64) -> SweepSpec {
        SweepSpec {
            protocol: ProtocolChoice::EventuallySynchronous,
            domain: SweepDomain::Grid {
                deltas: vec![2, 3, 4],
                fractions: vec![0.25, 0.5, 0.75, 1.0, 1.5, 2.0],
            },
            populations: vec![15],
            gsts: vec![gst],
            keys: vec![1],
            shards: vec![1],
            writers: vec![1],
            zipf_exponent: 1.0,
            seeds_per_point: 2,
            master_seed: 0x000B_A1D0,
            duration: Span::ticks(400),
            reads_per_tick: 1.0,
            write_every: None,
            selector: LeaveSelector::Random,
            worst_case: false,
            migrating_writer: false,
            faults: None,
        }
    }

    /// Number of runs the spec expands to, without materializing them.
    pub fn run_count(&self) -> u64 {
        let domain = match &self.domain {
            SweepDomain::Grid { deltas, fractions } => (deltas.len() * fractions.len()) as u64,
            SweepDomain::Sample { count, .. } => *count as u64,
        };
        domain
            * self.populations.len() as u64
            * self.gsts.len() as u64
            * self.keys.len() as u64
            * self.shards.len() as u64
            * self.writers.len() as u64
            * self.seeds_per_point.max(1)
    }

    /// The `(δ, fraction)` coordinates of the domain, in expansion order.
    fn domain_coords(&self) -> Vec<(u64, f64)> {
        match &self.domain {
            SweepDomain::Grid { deltas, fractions } => {
                let mut coords = Vec::with_capacity(deltas.len() * fractions.len());
                for &d in deltas {
                    for &f in fractions {
                        coords.push((d, f));
                    }
                }
                coords
            }
            SweepDomain::Sample {
                count,
                delta_lo,
                delta_hi,
                fraction_lo,
                fraction_hi,
            } => {
                assert!(delta_lo <= delta_hi && *delta_lo > 0, "bad delta range");
                assert!(fraction_lo <= fraction_hi, "bad fraction range");
                // Sampling draws come from their own forked stream so run
                // seeds and point coordinates stay independent.
                let mut rng = DetRng::seed(self.master_seed).fork(0xD0_11A1);
                (0..*count)
                    .map(|_| {
                        let d = delta_lo + rng.pick(delta_hi - delta_lo + 1);
                        let f = fraction_lo + rng.unit() * (fraction_hi - fraction_lo);
                        (d, f)
                    })
                    .collect()
            }
        }
    }

    /// Expands the sweep into its full, indexed run list.
    ///
    /// # Panics
    /// Panics on empty axes, a zero population, or a zero delta.
    pub fn points(&self) -> Vec<RunPoint> {
        assert!(!self.populations.is_empty(), "populations axis is empty");
        assert!(!self.gsts.is_empty(), "gsts axis is empty");
        assert!(!self.keys.is_empty(), "keys axis is empty");
        assert!(!self.shards.is_empty(), "shards axis is empty");
        assert!(!self.writers.is_empty(), "writers axis is empty");
        let coords = self.domain_coords();
        assert!(!coords.is_empty(), "(c, δ) domain is empty");
        let seeds = self.seeds_per_point.max(1);
        let mut points = Vec::with_capacity(
            coords.len()
                * self.populations.len()
                * self.gsts.len()
                * self.keys.len()
                * self.shards.len()
                * self.writers.len(),
        );
        let mut index = 0u64;
        for &(delta, fraction) in &coords {
            for &n in &self.populations {
                for &gst in &self.gsts {
                    for &keys in &self.keys {
                        for &shards in &self.shards {
                            for &writers in &self.writers {
                                for _ in 0..seeds {
                                    let coord = Coord {
                                        delta,
                                        fraction,
                                        n,
                                        gst,
                                        keys,
                                        shards,
                                        writers,
                                    };
                                    points.push(self.materialize(index, coord));
                                    index += 1;
                                }
                            }
                        }
                    }
                }
            }
        }
        points
    }

    /// Builds the concrete [`ScenarioSpec`] of one point.
    fn materialize(&self, index: u64, coord: Coord) -> RunPoint {
        let Coord {
            delta,
            fraction,
            n,
            gst,
            keys,
            shards,
            writers,
        } = coord;
        // Record the *effective* shard count (the scenario clamps groups
        // to the key count), so cells and frontiers are never labeled
        // with a G that did not actually run.
        let shards = shards.clamp(1, keys.max(1));
        let delta_span = Span::ticks(delta);
        let mut sc = match self.protocol {
            ProtocolChoice::Synchronous => Scenario::synchronous(n, delta_span),
            ProtocolChoice::SynchronousNoWait => {
                Scenario::synchronous_without_join_wait(n, delta_span)
            }
            ProtocolChoice::EventuallySynchronous => {
                Scenario::eventually_synchronous(n, delta_span, Time::at(gst))
            }
            ProtocolChoice::EsAtomic => Scenario::es_atomic(n, delta_span, Time::at(gst)),
        };
        if self.worst_case {
            sc = sc.worst_case_delays();
        }
        if self.migrating_writer {
            sc = sc.migrating_writer();
        }
        if keys > 1 {
            sc = sc.keys(keys).zipf(self.zipf_exponent);
        }
        if shards > 1 {
            sc = sc.join_shards(shards);
        }
        if writers > 1 {
            sc = sc.writers(writers);
        }
        let seed = run_seed(self.master_seed, index);
        sc = sc
            .leave_selector(self.selector)
            .duration(self.duration)
            .reads_per_tick(self.reads_per_tick)
            .churn_fraction_of_bound(fraction)
            .seed(seed);
        if let Some(period) = self.write_every {
            sc = sc.write_every(period);
        }
        if let Some(faults) = &self.faults {
            sc = sc.faults(faults.clone());
        }
        RunPoint {
            index,
            delta,
            fraction,
            n,
            gst,
            keys,
            shards,
            writers,
            seed,
            spec: sc.into_spec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_and_points_cross_threads() {
        fn assert_send_clone<T: Send + Clone>() {}
        assert_send_clone::<SweepSpec>();
        assert_send_clone::<RunPoint>();
    }

    #[test]
    fn default_sweep_covers_at_least_200_points() {
        let spec = SweepSpec::theorem1_default();
        assert!(spec.run_count() >= 200, "run_count = {}", spec.run_count());
        let points = spec.points();
        assert_eq!(points.len() as u64, spec.run_count());
        // Fractions straddle the Theorem 1 boundary on every δ.
        for &d in &[2u64, 3, 4, 6, 8] {
            let fr: Vec<f64> = points
                .iter()
                .filter(|p| p.delta == d)
                .map(|p| p.fraction)
                .collect();
            assert!(fr.iter().any(|&f| f < 1.0) && fr.iter().any(|&f| f > 1.0));
        }
    }

    #[test]
    fn expansion_is_deterministic_and_indexed() {
        let spec = SweepSpec::theorem1_default();
        let a = spec.points();
        let b = spec.points();
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert_eq!(x.index, i as u64);
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.delta, y.delta);
            assert_eq!(x.fraction, y.fraction);
        }
    }

    #[test]
    fn run_seeds_differ_across_indices_and_masters() {
        let a = run_seed(1, 0);
        let b = run_seed(1, 1);
        let c = run_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(run_seed(1, 0), a, "pure function");
    }

    #[test]
    fn sampled_domain_is_reproducible_and_in_range() {
        let spec = SweepSpec {
            domain: SweepDomain::Sample {
                count: 50,
                delta_lo: 2,
                delta_hi: 6,
                fraction_lo: 0.2,
                fraction_hi: 3.0,
            },
            ..SweepSpec::theorem1_default()
        };
        let a = spec.points();
        let b = spec.points();
        assert_eq!(a.len(), 50);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.delta, y.delta);
            assert_eq!(x.fraction, y.fraction);
            assert!((2..=6).contains(&x.delta));
            assert!((0.2..3.0).contains(&x.fraction));
        }
    }

    #[test]
    fn keys_axis_expands_and_materializes_keyed_scenarios() {
        let spec = SweepSpec {
            domain: SweepDomain::Grid {
                deltas: vec![3],
                fractions: vec![0.5],
            },
            keys: vec![1, 16],
            zipf_exponent: 0.8,
            ..SweepSpec::theorem1_default()
        };
        assert_eq!(spec.run_count(), 2);
        let points = spec.points();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].keys, 1);
        assert_eq!(points[1].keys, 16);
        assert_eq!(points[0].spec.keys, 1);
        assert_eq!(points[1].spec.keys, 16);
        assert!((points[1].spec.zipf_exponent - 0.8).abs() < 1e-12);
        // Seeds still derive purely from (master, index).
        assert_eq!(points[1].seed, run_seed(spec.master_seed, 1));
    }

    #[test]
    fn shards_axis_expands_and_materializes_sharded_scenarios() {
        let spec = SweepSpec {
            domain: SweepDomain::Grid {
                deltas: vec![3],
                fractions: vec![0.5],
            },
            keys: vec![16],
            shards: vec![1, 4],
            ..SweepSpec::theorem1_default()
        };
        assert_eq!(spec.run_count(), 2);
        let points = spec.points();
        assert_eq!(points[0].shards, 1);
        assert_eq!(points[1].shards, 4);
        assert_eq!(points[0].spec.shards, 1, "G=1 stays the legacy handshake");
        assert_eq!(points[1].spec.shards, 4);
        assert_eq!(points[1].spec.keys, 16);
        // Seeds still derive purely from (master, index).
        assert_eq!(points[1].seed, run_seed(spec.master_seed, 1));
    }

    #[test]
    fn writers_axis_expands_and_materializes_multi_writer_scenarios() {
        let spec = SweepSpec {
            domain: SweepDomain::Grid {
                deltas: vec![3],
                fractions: vec![0.5],
            },
            writers: vec![1, 4],
            ..SweepSpec::theorem1_default()
        };
        assert_eq!(spec.run_count(), 2);
        let points = spec.points();
        assert_eq!(points[0].writers, 1);
        assert_eq!(points[1].writers, 4);
        assert_eq!(points[0].spec.writers, 1, "W=1 stays the legacy drive");
        assert_eq!(points[1].spec.writers, 4);
        // Seeds still derive purely from (master, index).
        assert_eq!(points[1].seed, run_seed(spec.master_seed, 1));
    }

    #[test]
    fn run_points_record_the_effective_shard_count() {
        // shards > keys clamps (a 1-key space cannot shard): the point is
        // labeled with the G that actually runs, so phase-diagram cells
        // never claim a sharding effect for a legacy-handshake run.
        let spec = SweepSpec {
            domain: SweepDomain::Grid {
                deltas: vec![3],
                fractions: vec![0.5],
            },
            keys: vec![1, 16],
            shards: vec![8],
            ..SweepSpec::theorem1_default()
        };
        let points = spec.points();
        assert_eq!(points[0].keys, 1);
        assert_eq!(points[0].shards, 1, "keys=1 clamps G=8 to the legacy path");
        assert_eq!(points[0].spec.effective_shards(), 1);
        assert_eq!(points[1].keys, 16);
        assert_eq!(points[1].shards, 8);
    }

    #[test]
    fn materialized_spec_reflects_the_point() {
        let spec = SweepSpec::theorem1_default();
        let p = &spec.points()[7];
        assert_eq!(p.spec.delta, Span::ticks(p.delta));
        assert_eq!(p.spec.n, p.n);
        assert_eq!(p.spec.seed, p.seed);
        // Fraction → rate via the sync threshold 1/(3δ).
        let expect = (p.fraction / (3.0 * p.delta as f64)).min(1.0);
        assert!((p.spec.effective_churn_rate() - expect).abs() < 1e-12);
    }
}
