//! The run-level thread pool.
//!
//! A sweep is an array of independent, internally deterministic worlds, so
//! the pool is a classic work-stealing loop over a shared atomic cursor:
//! every worker steals the next unclaimed run index, executes that world
//! to completion on its own thread, summarizes it into a
//! [`PointOutcome`], and goes back for more. Long points (high-`δ`,
//! high-churn worlds are much slower than quiet ones) therefore never
//! convoy behind a static partition.
//!
//! Determinism: each world's randomness is fully determined by its
//! [`RunPoint`]'s derived seed, and outcomes are stored by run index —
//! which thread ran a point, and in which order points finished, is
//! unobservable in the result. `run_points(points, 1)` and
//! `run_points(points, 64)` return identical vectors.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::aggregate::PointOutcome;
use crate::spec::RunPoint;

/// Executes every point, using up to `threads` worker threads, and
/// returns the outcomes in run-index order regardless of scheduling.
///
/// # Panics
/// Propagates a panic from any world (a panicking protocol invariant is a
/// bug worth crashing the sweep for), and panics if `threads` is zero.
pub fn run_points(points: &[RunPoint], threads: usize) -> Vec<PointOutcome> {
    assert!(threads > 0, "the pool needs at least one thread");
    if points.is_empty() {
        return Vec::new();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<PointOutcome>>> = points.iter().map(|_| Mutex::new(None)).collect();
    let workers = threads.min(points.len());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(point) = points.get(i) else {
                    break;
                };
                let report = point.spec.run();
                let outcome = PointOutcome::from_run(point, &report);
                // The report (and its full history) drops here, worker-side:
                // fleet memory is O(points), not O(events).
                *slots[i].lock().expect("no poisoned outcome slot") = Some(outcome);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("no poisoned outcome slot")
                .expect("every claimed index was executed")
        })
        .collect()
}

/// The machine's available parallelism (≥ 1), the default worker count.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SweepSpec;
    use dynareg_sim::Span;

    fn tiny_sweep() -> Vec<RunPoint> {
        let spec = SweepSpec {
            domain: crate::spec::SweepDomain::Grid {
                deltas: vec![2, 3],
                fractions: vec![0.4, 0.8],
            },
            populations: vec![8],
            duration: Span::ticks(120),
            reads_per_tick: 1.0,
            ..SweepSpec::theorem1_default()
        };
        spec.points()
    }

    #[test]
    fn thread_count_does_not_change_outcomes() {
        let points = tiny_sweep();
        let one = run_points(&points, 1);
        let four = run_points(&points, 4);
        assert_eq!(one.len(), four.len());
        for (a, b) in one.iter().zip(&four) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.digest, b.digest, "point {} diverged", a.index);
            assert_eq!(a.messages, b.messages);
            assert_eq!(a.joins_completed, b.joins_completed);
        }
    }

    #[test]
    fn keyed_points_run_and_reduce_deterministically() {
        let spec = SweepSpec {
            domain: crate::spec::SweepDomain::Grid {
                deltas: vec![2],
                fractions: vec![0.4],
            },
            populations: vec![8],
            keys: vec![4],
            duration: Span::ticks(100),
            ..SweepSpec::theorem1_default()
        };
        let points = spec.points();
        let one = run_points(&points, 1);
        let two = run_points(&points, 2);
        assert_eq!(one[0].keys, 4);
        assert!(one[0].reads_checked > 0, "keyed reads were checked");
        assert_eq!(
            one[0].digest, two[0].digest,
            "keyed digests are thread-stable"
        );
    }

    #[test]
    fn surplus_threads_are_harmless() {
        let points = tiny_sweep();
        let many = run_points(&points, 64);
        assert_eq!(many.len(), points.len());
    }

    #[test]
    fn empty_point_list_is_fine() {
        assert!(run_points(&[], 4).is_empty());
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
