//! # dynareg-fleet — multi-threaded sweep orchestrator
//!
//! The execution tier *above* the tick-level engine: where `dynareg-sim`
//! advances one deterministic world event by event, this crate runs
//! **thousands of worlds** — a grid or deterministic random sample over
//! the paper's parameter space — across a work-stealing `std::thread`
//! pool, and reduces them into empirical churn/synchrony **phase
//! diagrams** mapped against the analytic bounds (Theorem 1's
//! `c ≤ 1/(3δ)`, the ES `1/(3δn)`, Lemma 2's active-set floor).
//!
//! Pipeline:
//!
//! 1. [`SweepSpec`] (plain data) expands into indexed [`RunPoint`]s, each
//!    a [`dynareg_testkit::ScenarioSpec`] seeded from
//!    `(master_seed, run_index)` ([`run_seed`]);
//! 2. [`run_points`] executes them on up to `threads` workers — every
//!    world is internally deterministic, outcomes are stored by run index,
//!    and workers summarize ([`PointOutcome`]) before dropping the heavy
//!    history, so memory stays O(points);
//! 3. [`PhaseReport::from_outcomes`] reduces outcomes with commutative,
//!    associative accumulators only, so **any thread count yields a
//!    byte-identical report** — JSON ([`PhaseReport::json`]), rendered
//!    tables and the compact phase grid included.
//!
//! # Example
//!
//! ```
//! use dynareg_fleet::{run_sweep, SweepDomain, SweepSpec};
//! use dynareg_sim::Span;
//!
//! let spec = SweepSpec {
//!     domain: SweepDomain::Grid {
//!         deltas: vec![2, 3],
//!         fractions: vec![0.5, 2.0],
//!     },
//!     populations: vec![8],
//!     duration: Span::ticks(120),
//!     ..SweepSpec::theorem1_default()
//! };
//! let report = run_sweep(&spec, 2);
//! assert_eq!(report.total_runs, 4);
//! assert_eq!(report.json(), run_sweep(&spec, 1).json(), "thread count is unobservable");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aggregate;
mod pool;
mod report;
mod spec;

pub use aggregate::{cell_key, reduce_cells, run_digest, Cell, PointOutcome};
pub use pool::{default_threads, run_points};
pub use report::{Frontier, PhaseReport, BRACKET_TOL, PHASE_SCHEMA};
pub use spec::{run_seed, RunPoint, SweepDomain, SweepSpec};

/// Expands `spec`, runs every point on up to `threads` workers, and
/// reduces the outcomes into a [`PhaseReport`] — the one-call entry point.
///
/// # Panics
/// Panics if `threads` is zero or the spec expands to an empty sweep.
pub fn run_sweep(spec: &SweepSpec, threads: usize) -> PhaseReport {
    let points = spec.points();
    let outcomes = run_points(&points, threads);
    PhaseReport::from_outcomes(spec, &outcomes)
}
