//! `detlint` — a workspace determinism auditor.
//!
//! Everything this reproduction guarantees — digest-identical scenario
//! replay, byte-identical fleet reduction at any thread count, the
//! zero-cost observability contract — is enforced *dynamically* by `cmp`
//! gates, which can only catch a nondeterminism bug after a seed happens
//! to trigger it. This crate is the static complement: a dependency-free
//! (air-gapped — no `syn`, no `dylint`) pass over the workspace source
//! that rules out whole classes of nondeterminism before any seed runs,
//! and the precondition for the deterministic multi-core tick, where any
//! unordered iteration or ambient clock that is harmlessly
//! single-threaded today becomes a real race in the effect-merge order.
//!
//! # Rules
//!
//! * `unordered-iteration` — `.iter()`/`.keys()`/`.values()`/`.drain()`/
//!   `for … in` over `HashMap`/`HashSet` (or a local alias such as
//!   `NodeMap`): storage order can leak into effects, digests or reports.
//! * `wall-clock` — `Instant::now`/`SystemTime` anywhere simulation logic
//!   could observe host time.
//! * `ambient-rng` — RNG construction or seeding outside `DetRng`'s
//!   documented SplitMix64 derivation from the scenario seed.
//! * `float-reduction` — f64 accumulation in `fleet` aggregation paths,
//!   which are contractually integer/min/max-only.
//! * `unsafe-audit` — workspace crates missing `#![forbid(unsafe_code)]`.
//!
//! A finding is suppressed only by an inline annotation with a mandatory
//! reason:
//!
//! ```text
//! let t0 = Instant::now(); // detlint: allow(wall-clock) -- tick profiler, outside digest
//! ```
//!
//! Reason-less or malformed annotations are `bad-allow` findings;
//! annotations that excuse nothing are `unused-allow` findings; neither
//! can be allowed. Run locally with:
//!
//! ```text
//! cargo run -p dynareg-detlint -- --workspace
//! ```

#![forbid(unsafe_code)]

pub mod allow;
pub mod rules;
pub mod scanner;
pub mod workspace;

pub use allow::{parse_comment, Allow, AllowError};
pub use rules::{lint_source, FileContext, Finding, Rule};
pub use workspace::{find_workspace_root, lint_workspace, partition, unallowed};
