//! Workspace discovery and the file walk.
//!
//! Members come from the root `Cargo.toml`'s `members` list (a hand-rolled
//! parse — the manifest format needed here is a quoted-string array), so a
//! future crate is audited the moment it joins the workspace. Two kinds of
//! path are excluded:
//!
//! * `crates/shims/**` — vendored stand-ins for external crates
//!   (`rand`, `proptest`, `criterion`). They sit *below* the determinism
//!   boundary: `DetRng` wraps the rand shim, and the criterion shim's
//!   wall-clock timing is the bench harness itself.
//! * any `fixtures/` directory — detlint's own rule corpus is deliberate
//!   violations.

use std::fs;
use std::path::{Path, PathBuf};

use crate::rules::{lint_source, FileContext, Finding};

/// One workspace member to audit.
#[derive(Debug, Clone)]
pub struct Member {
    /// Workspace-relative directory (`.` for the facade crate).
    pub dir: String,
}

/// Reads the `members = [ … ]` array out of the root manifest and prepends
/// the facade package (`.`).
pub fn discover_members(root: &Path) -> Result<Vec<Member>, String> {
    let manifest = fs::read_to_string(root.join("Cargo.toml"))
        .map_err(|e| format!("reading {}: {e}", root.join("Cargo.toml").display()))?;
    let mut members = vec![Member {
        dir: ".".to_string(),
    }];
    let Some(tail) = manifest.split_once("members = [").map(|(_, t)| t) else {
        return Err("no `members = [` array in the root Cargo.toml".to_string());
    };
    let Some(body) = tail.split_once(']').map(|(b, _)| b) else {
        return Err("unterminated members array in the root Cargo.toml".to_string());
    };
    for piece in body.split(',') {
        let piece = piece.trim();
        if let Some(dir) = piece.strip_prefix('"').and_then(|p| p.strip_suffix('"')) {
            if !dir.starts_with("crates/shims") {
                members.push(Member {
                    dir: dir.to_string(),
                });
            }
        }
    }
    Ok(members)
}

/// Lints every Rust source of every (non-excluded) member under `root`.
/// Findings come back sorted by `(file, line, rule)`.
pub fn lint_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    let mut findings = Vec::new();
    for member in discover_members(root)? {
        let dir = if member.dir == "." {
            root.to_path_buf()
        } else {
            root.join(&member.dir)
        };
        let crate_root = ["src/lib.rs", "src/main.rs"]
            .iter()
            .map(|f| dir.join(f))
            .find(|p| p.is_file());
        let mut files = Vec::new();
        for sub in ["src", "tests", "benches", "examples"] {
            collect_rs_files(&dir.join(sub), &mut files);
        }
        files.sort();
        for file in files {
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            if rel.split('/').any(|seg| seg == "fixtures") {
                continue;
            }
            let src = fs::read_to_string(&file)
                .map_err(|e| format!("reading {}: {e}", file.display()))?;
            let ctx = FileContext {
                rel_path: rel,
                is_crate_root: crate_root.as_deref() == Some(&file),
            };
            findings.extend(lint_source(&src, &ctx));
        }
    }
    findings.sort();
    Ok(findings)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return; // members without tests/benches/examples
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Walks up from `start` to the manifest that declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Partitions findings for the gate: `(allowed, unallowed)`. Meta
/// diagnostics ([`crate::rules::Rule::BadAllow`],
/// [`crate::rules::Rule::UnusedAllow`]) are always
/// unallowed.
pub fn partition(findings: &[Finding]) -> (Vec<&Finding>, Vec<&Finding>) {
    findings.iter().partition(|f| f.allowed.is_some())
}

/// Convenience for tests: the unallowed subset.
pub fn unallowed(findings: &[Finding]) -> Vec<&Finding> {
    partition(findings).1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn member_parse_skips_shims_and_adds_facade() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let members = discover_members(&root).expect("workspace manifest parses");
        let dirs: Vec<&str> = members.iter().map(|m| m.dir.as_str()).collect();
        assert!(dirs.contains(&"."), "facade is audited");
        assert!(dirs.contains(&"crates/net"), "members are audited");
        assert!(dirs.contains(&"crates/detlint"), "detlint audits itself");
        assert!(
            dirs.iter().all(|d| !d.starts_with("crates/shims")),
            "shims sit below the determinism boundary: {dirs:?}"
        );
    }
}
