//! The `// detlint: allow(<rule>) -- <reason>` annotation.
//!
//! Suppression is *only* possible through this inline form, and the reason
//! is mandatory — every exception to the determinism contract is documented
//! at the site it excuses. A reason-less or malformed annotation is itself
//! a finding (`bad-allow`), never a silent no-op.

use std::fmt;

use crate::rules::Rule;

/// A parsed allow annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// The rule being excused.
    pub rule: Rule,
    /// Why the site is exempt (mandatory, non-empty).
    pub reason: String,
}

impl Allow {
    /// Renders the canonical annotation text (without the leading `//`).
    /// `parse_comment(&a.render())` round-trips.
    pub fn render(&self) -> String {
        format!("detlint: allow({}) -- {}", self.rule.name(), self.reason)
    }
}

impl fmt::Display for Allow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Why an annotation failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllowError {
    /// The `detlint:` marker is present but not followed by
    /// `allow(<rule>)`.
    Malformed,
    /// The named rule does not exist (or is a meta-diagnostic that cannot
    /// be allowed).
    UnknownRule(String),
    /// No ` -- <reason>` after the rule, or the reason is empty.
    MissingReason,
}

impl fmt::Display for AllowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllowError::Malformed => write!(f, "expected `detlint: allow(<rule>) -- <reason>`"),
            AllowError::UnknownRule(r) => write!(f, "unknown rule `{r}`"),
            AllowError::MissingReason => {
                write!(
                    f,
                    "allow annotations require a reason: `-- <why this site is exempt>`"
                )
            }
        }
    }
}

/// Parses a line-comment text (the part after `//`). Returns `None` when
/// the comment carries no `detlint:` marker at all; `Some(Err(..))` when a
/// marker is present but the annotation is unusable.
pub fn parse_comment(text: &str) -> Option<Result<Allow, AllowError>> {
    let rest = text.split_once("detlint:")?.1;
    Some(parse_after_marker(rest))
}

fn parse_after_marker(rest: &str) -> Result<Allow, AllowError> {
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix("allow") else {
        return Err(AllowError::Malformed);
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Err(AllowError::Malformed);
    };
    let Some((name, rest)) = rest.split_once(')') else {
        return Err(AllowError::Malformed);
    };
    let name = name.trim();
    let Some(rule) = Rule::allowable_from_name(name) else {
        return Err(AllowError::UnknownRule(name.to_string()));
    };
    let rest = rest.trim_start();
    let Some(reason) = rest.strip_prefix("--") else {
        return Err(AllowError::MissingReason);
    };
    let reason = reason.trim();
    if reason.is_empty() {
        return Err(AllowError::MissingReason);
    }
    Ok(Allow {
        rule,
        reason: reason.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_canonical_form() {
        let got = parse_comment(" detlint: allow(wall-clock) -- profiler timing, outside digest");
        assert_eq!(
            got,
            Some(Ok(Allow {
                rule: Rule::WallClock,
                reason: "profiler timing, outside digest".to_string(),
            }))
        );
    }

    #[test]
    fn non_annotations_are_ignored() {
        assert_eq!(parse_comment(" just a comment about determinism"), None);
        assert_eq!(parse_comment(""), None);
    }

    #[test]
    fn reasonless_allows_are_rejected() {
        assert_eq!(
            parse_comment("detlint: allow(wall-clock)"),
            Some(Err(AllowError::MissingReason))
        );
        assert_eq!(
            parse_comment("detlint: allow(wall-clock) -- "),
            Some(Err(AllowError::MissingReason))
        );
        assert_eq!(
            parse_comment("detlint: allow(wall-clock) --"),
            Some(Err(AllowError::MissingReason))
        );
    }

    #[test]
    fn unknown_and_meta_rules_are_rejected() {
        assert_eq!(
            parse_comment("detlint: allow(no-such-rule) -- x"),
            Some(Err(AllowError::UnknownRule("no-such-rule".to_string())))
        );
        // Meta-diagnostics cannot be excused.
        assert_eq!(
            parse_comment("detlint: allow(bad-allow) -- x"),
            Some(Err(AllowError::UnknownRule("bad-allow".to_string())))
        );
        assert_eq!(
            parse_comment("detlint: allow(unused-allow) -- x"),
            Some(Err(AllowError::UnknownRule("unused-allow".to_string())))
        );
    }

    #[test]
    fn malformed_markers_are_findings_not_ignored() {
        assert_eq!(
            parse_comment("detlint: allowed(wall-clock) -- x"),
            Some(Err(AllowError::Malformed))
        );
        assert_eq!(
            parse_comment("detlint: allow wall-clock -- x"),
            Some(Err(AllowError::Malformed))
        );
    }

    #[test]
    fn render_parse_round_trip() {
        let a = Allow {
            rule: Rule::AmbientRng,
            reason: "DetRng is the sanctioned construction site".to_string(),
        };
        assert_eq!(parse_comment(&a.render()), Some(Ok(a)));
    }
}
