//! CLI entry point: `cargo run -p dynareg-detlint -- --workspace`.
//!
//! Exit codes: `0` when every finding carries a documented allow, `1` when
//! any unallowed finding (or bad/unused allow) remains, `2` on usage or IO
//! errors. `--list-allowed` prints the documented exceptions too.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use dynareg_detlint::{find_workspace_root, lint_workspace, partition};

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut list_allowed = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => {}
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root needs a path"),
            },
            "--list-allowed" => list_allowed = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("detlint: cannot read cwd: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("detlint: no workspace root above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let findings = match lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("detlint: {e}");
            return ExitCode::from(2);
        }
    };
    let (allowed, unallowed) = partition(&findings);
    for f in &unallowed {
        println!("{f}");
    }
    if list_allowed {
        for f in &allowed {
            println!("{f}");
        }
    }
    println!(
        "detlint: {} findings ({} allowed with documented reasons, {} unallowed)",
        findings.len(),
        allowed.len(),
        unallowed.len()
    );
    if unallowed.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

const USAGE: &str = "\
dynareg-detlint — workspace determinism auditor

USAGE:
    dynareg-detlint [--workspace] [--root <path>] [--list-allowed]

OPTIONS:
    --workspace       audit the cargo workspace above the cwd (default)
    --root <path>     audit the workspace rooted at <path>
    --list-allowed    also print findings suppressed by documented allows
    -h, --help        this text

Suppress a finding only with an inline annotation carrying a reason:
    // detlint: allow(<rule>) -- <why this site is exempt>";

fn usage(msg: &str) -> ExitCode {
    eprintln!("detlint: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}
