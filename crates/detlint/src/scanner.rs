//! A hand-rolled line/token-level Rust scanner.
//!
//! The rule engine never wants to see the *inside* of a string literal or
//! a comment — `"Instant::now"` in a log message is not a wall-clock read —
//! so the scanner's job is to split every source line into
//!
//! * `code` — the line with comments removed and string/char literal
//!   contents blanked (the delimiters stay, so token shapes survive), and
//! * `comment` — the text of the line comment, where
//!   `// detlint: allow(..)` annotations live.
//!
//! It also marks lines inside `#[cfg(test)]` items, so reports can say
//! whether a finding sits in test code. The scanner is a deliberate
//! over-approximation of real Rust lexing (it has no macro or lifetime
//! semantics); the one heuristic — telling `'a'` char literals from
//! `'a` lifetimes — is the standard two-char lookahead.

/// One scanned source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceLine {
    /// Code with comments stripped and literal contents blanked.
    pub code: String,
    /// Text after the first `//` on the line, excluding the slashes.
    /// `None` when the line has no line comment. Doc comments (`///`,
    /// `//!`) are prose and are not captured — an allow annotation must be
    /// a plain line comment.
    pub comment: Option<String>,
    /// Whether the line sits inside a `#[cfg(test)]` item body.
    pub in_test: bool,
}

/// Lexer state that survives a newline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Normal,
    /// Nested block comment depth.
    Block(u32),
    /// Inside a `"…"` string (they may span lines).
    Str,
    /// Inside a raw string with this many `#`s.
    RawStr(u32),
}

/// Splits `src` into scanned lines. Infallible: unterminated literals and
/// comments simply run to end of input, matching how rustc would later
/// reject the file anyway.
pub fn scan_source(src: &str) -> Vec<SourceLine> {
    let mut lines = Vec::new();
    let mut mode = Mode::Normal;
    for raw in src.lines() {
        let (code, comment, next) = scan_line(raw, mode);
        mode = next;
        lines.push(SourceLine {
            code,
            comment,
            in_test: false,
        });
    }
    mark_test_regions(&mut lines);
    lines
}

/// Scans one line starting in `mode`; returns the blanked code, the line
/// comment (if any), and the mode the next line starts in.
fn scan_line(raw: &str, mut mode: Mode) -> (String, Option<String>, Mode) {
    let mut code = String::with_capacity(raw.len());
    let mut comment = None;
    let b = raw.as_bytes();
    let mut i = 0;
    while i < b.len() {
        match mode {
            Mode::Block(depth) => {
                if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                    mode = if depth == 1 {
                        Mode::Normal
                    } else {
                        Mode::Block(depth - 1)
                    };
                    i += 2;
                } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                    mode = Mode::Block(depth + 1);
                    i += 2;
                } else {
                    i += 1;
                }
            }
            Mode::Str => {
                if b[i] == b'\\' {
                    i += 2; // skip the escaped byte (may run past EOL; fine)
                } else if b[i] == b'"' {
                    code.push('"');
                    mode = Mode::Normal;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            Mode::RawStr(hashes) => {
                if b[i] == b'"' && closes_raw(b, i + 1, hashes) {
                    code.push('"');
                    mode = Mode::Normal;
                    i += 1 + hashes as usize;
                } else {
                    i += 1;
                }
            }
            Mode::Normal => {
                match b[i] {
                    b'/' if b.get(i + 1) == Some(&b'/') => {
                        // Line comment: capture the text, stop lexing. Doc
                        // comments (`///`, `//!`) are prose, not annotation
                        // carriers — an allow-annotation template quoted in
                        // rustdoc must not parse as a (bad) allow.
                        let is_doc = matches!(b.get(i + 2), Some(&b'/') | Some(&b'!'));
                        if !is_doc {
                            comment = Some(raw[i + 2..].to_string());
                        }
                        i = b.len();
                    }
                    b'/' if b.get(i + 1) == Some(&b'*') => {
                        mode = Mode::Block(1);
                        i += 2;
                    }
                    b'"' => {
                        code.push('"');
                        mode = Mode::Str;
                        i += 1;
                    }
                    b'r' | b'b' if is_raw_string_start(b, i) => {
                        let (hashes, skip) = raw_string_open(b, i);
                        code.push('"');
                        mode = Mode::RawStr(hashes);
                        i += skip;
                    }
                    b'\'' => {
                        // Char literal vs lifetime: 'x' or '\n' is a
                        // literal; anything else is a lifetime tick.
                        if b.get(i + 1) == Some(&b'\\') {
                            code.push_str("''");
                            i += 2;
                            while i < b.len() && b[i] != b'\'' {
                                i += 1;
                            }
                            i += 1; // closing quote
                        } else if b.get(i + 2) == Some(&b'\'') {
                            code.push_str("''");
                            i += 3;
                        } else {
                            code.push('\'');
                            i += 1;
                        }
                    }
                    c => {
                        code.push(c as char);
                        i += 1;
                    }
                }
            }
        }
    }
    (code, comment, mode)
}

/// Whether `b[i]` starts `r"`, `r#"`, `br"`, or `br#"` (only when the `r`
/// is not the tail of a longer identifier).
fn is_raw_string_start(b: &[u8], i: usize) -> bool {
    if i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_') {
        return false;
    }
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if b.get(j) != Some(&b'r') {
        return false;
    }
    j += 1;
    while b.get(j) == Some(&b'#') {
        j += 1;
    }
    b.get(j) == Some(&b'"')
}

/// Returns (hash count, bytes to skip past the opening quote).
fn raw_string_open(b: &[u8], i: usize) -> (u32, usize) {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    j += 1; // the 'r'
    let mut hashes = 0;
    while b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    (hashes, j + 1 - i) // +1 for the opening quote
}

/// Whether `hashes` `#`s follow position `i` (a raw-string close).
fn closes_raw(b: &[u8], i: usize, hashes: u32) -> bool {
    (0..hashes as usize).all(|k| b.get(i + k) == Some(&b'#'))
}

/// Marks lines inside `#[cfg(test)]` item bodies by brace counting on the
/// blanked code (strings cannot confuse the count).
fn mark_test_regions(lines: &mut [SourceLine]) {
    let mut i = 0;
    while i < lines.len() {
        if !lines[i].code.contains("#[cfg(test)]") {
            i += 1;
            continue;
        }
        // The region runs from this attribute to the close of the next
        // brace-balanced item body (or the `;` of a bodiless item).
        let start = i;
        let mut depth = 0i32;
        let mut opened = false;
        let mut end = lines.len() - 1; // unterminated: test to EOF
        'scan: for (j, line) in lines.iter().enumerate().skip(start) {
            for ch in line.code.chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    // `#[cfg(test)] use …;` before any brace: no body.
                    ';' if !opened && depth == 0 => {
                        end = j;
                        break 'scan;
                    }
                    _ => {}
                }
            }
            if opened && depth <= 0 {
                end = j;
                break 'scan;
            }
        }
        for line in &mut lines[start..=end] {
            line.in_test = true;
        }
        i = end + 1;
    }
}

/// Splits blanked code into coarse tokens: identifiers (including keywords)
/// and single-char punctuation. Multi-char operators arrive as their parts
/// (`+=` is `+`, `=`), which is all the rules need.
pub fn tokenize(code: &str) -> Vec<Token<'_>> {
    let b = code.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        if c.is_ascii_whitespace() {
            i += 1;
        } else if c.is_ascii_alphabetic() || c == b'_' || c.is_ascii_digit() {
            let start = i;
            while i < b.len()
                && (b[i].is_ascii_alphanumeric()
                    || b[i] == b'_'
                    || (b[i] == b'.' && is_float(b, start, i)))
            {
                i += 1;
            }
            let text = &code[start..i];
            out.push(if text.as_bytes()[0].is_ascii_digit() {
                Token::Number(text)
            } else {
                Token::Ident(text)
            });
        } else {
            out.push(Token::Punct(c as char));
            i += 1;
        }
    }
    out
}

/// Whether the `.` at `i` continues a numeric literal that began at
/// `start` (so `0.05` is one number token but `m.iter` splits).
fn is_float(b: &[u8], start: usize, i: usize) -> bool {
    b[start].is_ascii_digit() && b.get(i + 1).is_none_or(|d| d.is_ascii_digit())
}

/// A coarse token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token<'a> {
    /// Identifier or keyword (or a numeric literal with suffix).
    Ident(&'a str),
    /// A numeric literal.
    Number(&'a str),
    /// One punctuation character.
    Punct(char),
}

impl<'a> Token<'a> {
    /// The identifier text, if this is an identifier token.
    pub fn ident(self) -> Option<&'a str> {
        match self {
            Token::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this token is the given punctuation character.
    pub fn is_punct(self, c: char) -> bool {
        self == Token::Punct(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str) -> Vec<String> {
        scan_source(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn strings_are_blanked() {
        let c = codes(r#"let x = "Instant::now inside a string";"#);
        assert_eq!(c, vec![r#"let x = "";"#]);
    }

    #[test]
    fn line_comments_are_captured_not_coded() {
        let lines = scan_source("let a = 1; // detlint: allow(wall-clock) -- why");
        assert_eq!(lines[0].code, "let a = 1; ");
        assert_eq!(
            lines[0].comment.as_deref(),
            Some(" detlint: allow(wall-clock) -- why")
        );
    }

    #[test]
    fn doc_comments_are_prose_not_annotations() {
        let lines = scan_source(
            "//! module docs: detlint: allow(wall-clock) -- template\n\
             /// item docs showing `detlint: allow(ambient-rng) -- x`\n\
             fn f() {} // detlint: allow(wall-clock) -- real annotation",
        );
        assert_eq!(lines[0].comment, None, "inner doc comment is not captured");
        assert_eq!(lines[1].comment, None, "outer doc comment is not captured");
        assert!(lines[2].comment.is_some(), "plain line comment is captured");
    }

    #[test]
    fn block_comments_span_lines_and_nest() {
        let c = codes("a /* x\n /* nested */ still\n out */ b");
        assert_eq!(c, vec!["a ", "", " b"]);
    }

    #[test]
    fn raw_strings_with_hashes_are_blanked() {
        // Embedded quotes do not close a hashed raw string; the code after
        // the real close survives.
        let c = codes("let s = r#\"HashMap . iter ( ) \"quoted\" \"#; done");
        assert_eq!(c, vec!["let s = \"\"; done"]);
        let c2 = codes("let s = r#\"x\"#; HashMap");
        assert_eq!(c2, vec!["let s = \"\"; HashMap"]);
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let c = codes(r"let c = 'x'; fn f<'a>(v: &'a str) { let n = '\n'; }");
        assert!(!c[0].contains('x'), "char literal content blanked: {c:?}");
        assert!(c[0].contains("'a"), "lifetimes survive: {c:?}");
    }

    #[test]
    fn multiline_string_blanks_following_lines() {
        let c = codes("let s = \"first\nsecond Instant::now\nthird\"; code");
        assert_eq!(c[1], "");
        assert!(c[2].contains("code"));
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}";
        let lines = scan_source(src);
        let flags: Vec<bool> = lines.iter().map(|l| l.in_test).collect();
        assert_eq!(flags, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn cfg_test_semicolon_item_does_not_swallow_file() {
        let src = "#[cfg(test)]\nuse helper::thing;\nfn live() {}";
        let lines = scan_source(src);
        assert!(lines[1].in_test);
        assert!(!lines[2].in_test, "region ends at the semicolon");
    }

    #[test]
    fn tokenizer_splits_idents_and_punct() {
        let toks = tokenize("self.records.iter()");
        assert_eq!(
            toks,
            vec![
                Token::Ident("self"),
                Token::Punct('.'),
                Token::Ident("records"),
                Token::Punct('.'),
                Token::Ident("iter"),
                Token::Punct('('),
                Token::Punct(')'),
            ]
        );
    }

    #[test]
    fn tokenizer_keeps_float_literals_whole() {
        let toks = tokenize("f += 0.05;");
        assert!(toks.contains(&Token::Number("0.05")));
        let toks = tokenize("let mut f = 0.1f64;");
        assert!(toks.contains(&Token::Number("0.1f64")));
    }
}
