//! The determinism rules and the per-file engine that applies them.
//!
//! Every rule is a *source-level over-approximation* of a dynamic
//! nondeterminism class: it may flag a site that happens to be harmless
//! today (that is what `// detlint: allow(<rule>) -- <reason>` is for),
//! but a site it stays silent on cannot belong to the class by the
//! patterns below. The rules:
//!
//! | rule | class it rules out |
//! |---|---|
//! | `unordered-iteration` | hash-order leaking into effects, digests or reports |
//! | `wall-clock` | host time observable by simulation logic |
//! | `ambient-rng` | randomness not derived from the scenario seed |
//! | `float-reduction` | f64 accumulation in fleet aggregation (order-sensitive) |
//! | `unsafe-audit` | crates that have not opted into `#![forbid(unsafe_code)]` |
//!
//! Two meta-diagnostics keep the annotation system honest: `bad-allow`
//! (malformed or reason-less annotations) and `unused-allow` (annotations
//! excusing nothing). Neither can itself be allowed.

use std::collections::BTreeSet;

use crate::allow::{parse_comment, Allow};
use crate::scanner::{scan_source, tokenize, Token};

/// A rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Iteration over a `HashMap`/`HashSet` (or an alias of one), whose
    /// order is unspecified and can leak into effects.
    UnorderedIteration,
    /// `Instant::now` / `SystemTime` outside allowlisted timing sites.
    WallClock,
    /// RNG construction or seeding outside the `DetRng` derivation.
    AmbientRng,
    /// Floating-point accumulation in fleet aggregation paths.
    FloatReduction,
    /// Crate root missing `#![forbid(unsafe_code)]`.
    UnsafeAudit,
    /// Meta: a `detlint:` annotation that does not parse (reason-less,
    /// unknown rule, bad syntax). Cannot be allowed.
    BadAllow,
    /// Meta: an allow annotation whose anchor line has no matching
    /// finding. Cannot be allowed.
    UnusedAllow,
}

impl Rule {
    /// The five allowable rules, in reporting order.
    pub const CORE: [Rule; 5] = [
        Rule::UnorderedIteration,
        Rule::WallClock,
        Rule::AmbientRng,
        Rule::FloatReduction,
        Rule::UnsafeAudit,
    ];

    /// The kebab-case rule name used in reports and allow annotations.
    pub fn name(self) -> &'static str {
        match self {
            Rule::UnorderedIteration => "unordered-iteration",
            Rule::WallClock => "wall-clock",
            Rule::AmbientRng => "ambient-rng",
            Rule::FloatReduction => "float-reduction",
            Rule::UnsafeAudit => "unsafe-audit",
            Rule::BadAllow => "bad-allow",
            Rule::UnusedAllow => "unused-allow",
        }
    }

    /// Resolves an allowable rule name; meta-diagnostics and unknown names
    /// return `None`.
    pub fn allowable_from_name(name: &str) -> Option<Rule> {
        Rule::CORE.into_iter().find(|r| r.name() == name)
    }
}

/// Where a scanned file sits in the workspace — the engine scopes rules by
/// path, so fixtures can exercise any rule by choosing a synthetic path.
#[derive(Debug, Clone, Default)]
pub struct FileContext {
    /// Workspace-relative path with forward slashes (e.g.
    /// `crates/net/src/presence.rs`).
    pub rel_path: String,
    /// Whether this file is a crate root (`lib.rs`/`main.rs`), where the
    /// `unsafe-audit` rule applies.
    pub is_crate_root: bool,
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// What happened at the site.
    pub message: String,
    /// The documented reason, when an allow annotation suppresses the
    /// finding. `None` means unallowed: the gate fails.
    pub allowed: Option<String>,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file,
            self.line,
            self.rule.name(),
            self.message
        )?;
        if let Some(reason) = &self.allowed {
            write!(f, " [allowed: {reason}]")?;
        }
        Ok(())
    }
}

/// Lints one file's source. Pure — all IO stays in the caller.
pub fn lint_source(src: &str, ctx: &FileContext) -> Vec<Finding> {
    let lines = scan_source(src);
    let toks: Vec<Vec<Token<'_>>> = lines.iter().map(|l| tokenize(&l.code)).collect();

    // Allow annotations: anchor each to its own line if it carries code,
    // else to the next line that does.
    let mut allows: Vec<AllowSite> = Vec::new();
    let mut findings: Vec<Finding> = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let Some(comment) = &line.comment else {
            continue;
        };
        match parse_comment(comment) {
            None => {}
            Some(Err(e)) => findings.push(Finding {
                file: ctx.rel_path.clone(),
                line: i + 1,
                rule: Rule::BadAllow,
                message: e.to_string(),
                allowed: None,
            }),
            Some(Ok(allow)) => {
                let anchor = if line.code.trim().is_empty() {
                    lines[i + 1..]
                        .iter()
                        .position(|l| !l.code.trim().is_empty())
                        .map(|off| i + 1 + off)
                        .unwrap_or(i)
                } else {
                    i
                };
                allows.push(AllowSite {
                    line: i,
                    anchor,
                    allow,
                    used: false,
                });
            }
        }
    }

    // Raw rule hits, one per (line, rule).
    let mut hits: Vec<(usize, Rule, String)> = Vec::new();
    unordered_iteration(&toks, &mut hits);
    wall_clock(&toks, &mut hits);
    ambient_rng(&toks, &mut hits);
    if ctx.rel_path.starts_with("crates/fleet/") {
        float_reduction(&toks, &mut hits);
    }
    if ctx.is_crate_root {
        unsafe_audit(&lines, &mut hits);
    }
    hits.sort();
    hits.dedup_by(|a, b| (a.0, a.1) == (b.0, b.1));

    for (line_idx, rule, message) in hits {
        let allowed = allows
            .iter_mut()
            .find(|a| {
                a.allow.rule == rule
                    && if rule == Rule::UnsafeAudit {
                        true // file-scoped: the crate root is one site
                    } else {
                        a.anchor == line_idx
                    }
            })
            .map(|a| {
                a.used = true;
                a.allow.reason.clone()
            });
        findings.push(Finding {
            file: ctx.rel_path.clone(),
            line: line_idx + 1,
            rule,
            message,
            allowed,
        });
    }

    for a in allows.iter().filter(|a| !a.used) {
        findings.push(Finding {
            file: ctx.rel_path.clone(),
            line: a.line + 1,
            rule: Rule::UnusedAllow,
            message: format!(
                "allow({}) excuses nothing on its anchor line; delete it or move it to the finding",
                a.allow.rule.name()
            ),
            allowed: None,
        });
    }

    findings.sort();
    findings
}

struct AllowSite {
    /// 0-based line of the annotation itself.
    line: usize,
    /// 0-based line the annotation excuses.
    anchor: usize,
    allow: Allow,
    used: bool,
}

/// Hash-backed collection types. File-local `type` aliases of these are
/// tracked too.
const HASH_TYPES: [&str; 2] = ["HashMap", "HashSet"];

/// Methods whose call on a hash-backed value iterates it in storage order.
const ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

fn unordered_iteration(toks: &[Vec<Token<'_>>], hits: &mut Vec<(usize, Rule, String)>) {
    // Pass 1: file-local aliases (`type NodeMap<V> = HashMap<…>`).
    let mut types: BTreeSet<&str> = HASH_TYPES.into_iter().collect();
    for line in toks {
        for w in line.windows(2) {
            if w[0].ident() == Some("type") {
                if let (Some(alias), true) = (w[1].ident(), mentions_any(line, &types)) {
                    types.insert(alias);
                }
            }
        }
    }

    // Pass 2: identifiers declared (or assigned) with a hash-backed type.
    let mut tracked: BTreeSet<&str> = BTreeSet::new();
    for line in toks {
        for (i, t) in line.iter().enumerate() {
            if t.ident().is_some_and(|s| types.contains(s)) {
                if let Some(owner) = owner_of_type_mention(line, i) {
                    tracked.insert(owner);
                }
            }
        }
    }

    // Pass 3: iteration over a tracked identifier.
    for (li, line) in toks.iter().enumerate() {
        for (i, t) in line.iter().enumerate() {
            let Some(name) = t.ident() else { continue };
            if !tracked.contains(name) {
                continue;
            }
            if line.get(i + 1).is_some_and(|t| t.is_punct('.')) {
                if let Some(m) = line.get(i + 2).and_then(|t| t.ident()) {
                    if ITER_METHODS.contains(&m) && line.get(i + 3).is_some_and(|t| t.is_punct('('))
                    {
                        hits.push((
                            li,
                            Rule::UnorderedIteration,
                            format!("`.{m}()` iterates hash-backed `{name}` in storage order"),
                        ));
                    }
                }
            }
        }
        if let Some(name) = for_loop_over(line, &tracked) {
            hits.push((
                li,
                Rule::UnorderedIteration,
                format!("`for … in` iterates hash-backed `{name}` in storage order"),
            ));
        }
    }
}

/// Whether any token on the line names one of `types`.
fn mentions_any(line: &[Token<'_>], types: &BTreeSet<&str>) -> bool {
    line.iter()
        .any(|t| t.ident().is_some_and(|s| types.contains(s)))
}

/// For a type-name token at `i`, walks left to the identifier the type
/// belongs to: `records: HashMap<…>` and `let m = HashMap::new()` both
/// resolve; generic-nested mentions (`Vec<HashMap<…>>`) resolve to
/// nothing.
fn owner_of_type_mention<'a>(line: &[Token<'a>], i: usize) -> Option<&'a str> {
    let mut k = i.checked_sub(1)?;
    // Skip reference/lifetime/mut/dyn noise before the type path.
    loop {
        match line[k] {
            Token::Punct('&') | Token::Punct('\'') => k = k.checked_sub(1)?,
            Token::Ident("mut") | Token::Ident("dyn") => k = k.checked_sub(1)?,
            // Leading path segments: `seg ::` pairs.
            Token::Punct(':') if k >= 1 && line[k - 1].is_punct(':') => {
                k = k.checked_sub(2)?;
                match line[k] {
                    Token::Ident(_) => k = k.checked_sub(1)?,
                    _ => return None,
                }
            }
            _ => break,
        }
    }
    match line[k] {
        // Single colon: a type annotation — the owner sits just before.
        Token::Punct(':') if k == 0 || !line[k - 1].is_punct(':') => {
            line[k.checked_sub(1)?].ident().filter(|s| !is_keyword(s))
        }
        // Assignment: `… name = HashMap::new()`.
        Token::Punct('=') => line[k.checked_sub(1)?].ident().filter(|s| !is_keyword(s)),
        _ => None,
    }
}

fn is_keyword(s: &str) -> bool {
    matches!(s, "let" | "mut" | "pub" | "const" | "static" | "ref")
}

/// Detects `for <pat> in [&][mut] place.path { …`, returning the final
/// identifier when it is tracked. Ranges (`..`) and calls disqualify the
/// expression (a call decides its own order).
fn for_loop_over<'a>(line: &[Token<'a>], tracked: &BTreeSet<&str>) -> Option<&'a str> {
    let fi = line.iter().position(|t| t.ident() == Some("for"))?;
    let ii = fi + line[fi..].iter().position(|t| t.ident() == Some("in"))?;
    let expr_end = line[ii..]
        .iter()
        .position(|t| t.is_punct('{'))
        .map(|p| ii + p)
        .unwrap_or(line.len());
    let expr = &line[ii + 1..expr_end];
    if expr.is_empty() {
        return None;
    }
    let mut last_ident = None;
    let mut prev_dot = false;
    for t in expr {
        match *t {
            Token::Punct('&') | Token::Ident("mut") => prev_dot = false,
            Token::Punct('.') => {
                if prev_dot {
                    return None; // a `..` range
                }
                prev_dot = true;
            }
            Token::Ident(s) => {
                last_ident = Some(s);
                prev_dot = false;
            }
            _ => return None, // calls, indexing, tuples: not a plain place
        }
    }
    last_ident.filter(|s| tracked.contains(s))
}

fn wall_clock(toks: &[Vec<Token<'_>>], hits: &mut Vec<(usize, Rule, String)>) {
    for (li, line) in toks.iter().enumerate() {
        for (i, t) in line.iter().enumerate() {
            match t.ident() {
                Some("Instant")
                    if line.get(i + 1).is_some_and(|t| t.is_punct(':'))
                        && line.get(i + 3).and_then(|t| t.ident()) == Some("now") =>
                {
                    hits.push((
                        li,
                        Rule::WallClock,
                        "`Instant::now()` reads the host clock".to_string(),
                    ));
                }
                Some("SystemTime") => {
                    hits.push((
                        li,
                        Rule::WallClock,
                        "`SystemTime` exposes the host clock".to_string(),
                    ));
                }
                _ => {}
            }
        }
    }
}

/// RNG constructors and seeds that bypass the `DetRng` SplitMix64
/// derivation from the scenario seed.
const RNG_PATTERNS: [&str; 9] = [
    "thread_rng",
    "from_entropy",
    "from_os_rng",
    "seed_from_u64",
    "SmallRng",
    "StdRng",
    "OsRng",
    "getrandom",
    "RandomState",
];

fn ambient_rng(toks: &[Vec<Token<'_>>], hits: &mut Vec<(usize, Rule, String)>) {
    for (li, line) in toks.iter().enumerate() {
        for t in line {
            if let Some(s) = t.ident() {
                if RNG_PATTERNS.contains(&s) {
                    hits.push((
                        li,
                        Rule::AmbientRng,
                        format!("`{s}` constructs or seeds an RNG outside the DetRng derivation"),
                    ));
                    break;
                }
            }
        }
    }
}

fn float_reduction(toks: &[Vec<Token<'_>>], hits: &mut Vec<(usize, Rule, String)>) {
    // Identifiers declared as floats (annotation or float-literal init).
    let mut tracked: BTreeSet<&str> = BTreeSet::new();
    for line in toks {
        for (i, t) in line.iter().enumerate() {
            match t {
                Token::Ident("f64") | Token::Ident("f32") => {
                    if let Some(owner) = owner_of_type_mention(line, i) {
                        tracked.insert(owner);
                    }
                }
                Token::Number(n) if is_float_literal(n) => {
                    if let Some(owner) = owner_of_type_mention(line, i) {
                        tracked.insert(owner);
                    }
                }
                _ => {}
            }
        }
    }
    for (li, line) in toks.iter().enumerate() {
        for (i, t) in line.iter().enumerate() {
            // `x += …` / `x -= …` on a float accumulator.
            if let Some(name) = t.ident() {
                if tracked.contains(name)
                    && line
                        .get(i + 1)
                        .is_some_and(|t| t.is_punct('+') || t.is_punct('-'))
                    && line.get(i + 2).is_some_and(|t| t.is_punct('='))
                {
                    hits.push((
                        li,
                        Rule::FloatReduction,
                        format!("float accumulation into `{name}` (aggregation is integer/min/max-only)"),
                    ));
                }
            }
            // `.sum::<f64>()` and `fold(0.0, …)`.
            // `.sum::<f64>()` — turbofish: sum, ':', ':', '<', f64.
            if t.ident() == Some("sum")
                && line.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && line
                    .get(i + 4)
                    .and_then(|t| t.ident())
                    .is_some_and(|s| s == "f64" || s == "f32")
            {
                hits.push((
                    li,
                    Rule::FloatReduction,
                    "`.sum::<f64>()` reduces floats (aggregation is integer/min/max-only)"
                        .to_string(),
                ));
            }
            if t.ident() == Some("fold")
                && line.get(i + 1).is_some_and(|t| t.is_punct('('))
                && matches!(line.get(i + 2), Some(Token::Number(n)) if is_float_literal(n))
            {
                hits.push((
                    li,
                    Rule::FloatReduction,
                    "`fold` with a float accumulator (aggregation is integer/min/max-only)"
                        .to_string(),
                ));
            }
        }
    }
}

fn is_float_literal(n: &str) -> bool {
    n.contains('.') || n.ends_with("f64") || n.ends_with("f32")
}

fn unsafe_audit(lines: &[crate::scanner::SourceLine], hits: &mut Vec<(usize, Rule, String)>) {
    let has_forbid = lines.iter().any(|l| {
        let squeezed: String = l.code.chars().filter(|c| !c.is_whitespace()).collect();
        squeezed.contains("#![forbid(unsafe_code)]")
    });
    if !has_forbid {
        hits.push((
            0,
            Rule::UnsafeAudit,
            "crate root missing `#![forbid(unsafe_code)]`".to_string(),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(path: &str) -> FileContext {
        FileContext {
            rel_path: path.to_string(),
            is_crate_root: false,
        }
    }

    fn rules_of(findings: &[Finding]) -> Vec<Rule> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn hashmap_field_iteration_is_flagged() {
        let src = "struct S { records: HashMap<NodeId, LifeRecord> }\n\
                   fn f(s: &S) { for (k, v) in &s.records { use_it(k, v); } }\n\
                   fn g(s: &S) { let _ = s.records.keys().count(); }";
        let f = lint_source(src, &ctx("crates/net/src/x.rs"));
        assert_eq!(
            rules_of(&f),
            vec![Rule::UnorderedIteration, Rule::UnorderedIteration]
        );
        assert_eq!(f[0].line, 2);
        assert_eq!(f[1].line, 3);
    }

    #[test]
    fn btreemap_iteration_is_clean() {
        let src = "struct S { records: BTreeMap<NodeId, LifeRecord> }\n\
                   fn f(s: &S) { for (k, v) in &s.records { use_it(k, v); } }";
        assert!(lint_source(src, &ctx("crates/net/src/x.rs")).is_empty());
    }

    #[test]
    fn aliases_of_hashmap_are_tracked() {
        let src = "type NodeMap<V> = HashMap<NodeId, V, BuildHasherDefault<H>>;\n\
                   fn f(m: &NodeMap<u32>) { for v in m.values() { go(v); } }";
        let f = lint_source(src, &ctx("crates/testkit/src/x.rs"));
        assert_eq!(rules_of(&f), vec![Rule::UnorderedIteration]);
    }

    #[test]
    fn lookup_only_hashmap_is_clean() {
        let src = "struct S { idx: HashMap<u64, usize> }\n\
                   fn f(s: &S, k: u64) -> Option<usize> { s.idx.get(&k).copied() }";
        assert!(lint_source(src, &ctx("crates/verify/src/x.rs")).is_empty());
    }

    #[test]
    fn range_for_loops_are_not_confused_with_places() {
        let src = "fn f(n: HashMap<u32, u32>) { for i in 0..n.len() { go(i); } }";
        assert!(lint_source(src, &ctx("crates/sim/src/x.rs")).is_empty());
    }

    #[test]
    fn wall_clock_and_allow() {
        let src = "fn f() { let t = Instant::now(); }\n\
                   fn g() { let t = Instant::now(); } // detlint: allow(wall-clock) -- bench timing\n";
        let f = lint_source(src, &ctx("crates/bench/src/x.rs"));
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].allowed, None);
        assert_eq!(f[1].allowed.as_deref(), Some("bench timing"));
    }

    #[test]
    fn allow_on_preceding_comment_line_anchors_to_next_code() {
        let src = "// detlint: allow(ambient-rng) -- sanctioned site\n\
                   let r = SmallRng::seed_from_u64(7);";
        let f = lint_source(src, &ctx("crates/sim/src/x.rs"));
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::AmbientRng);
        assert!(f[0].allowed.is_some());
    }

    #[test]
    fn reasonless_allow_is_a_bad_allow_finding() {
        let src = "fn f() { let t = Instant::now(); } // detlint: allow(wall-clock)";
        let f = lint_source(src, &ctx("crates/bench/src/x.rs"));
        assert_eq!(rules_of(&f), vec![Rule::WallClock, Rule::BadAllow]);
        assert!(f.iter().all(|x| x.allowed.is_none()));
    }

    #[test]
    fn unused_allow_is_flagged() {
        let src = "fn f() { let x = 1; } // detlint: allow(wall-clock) -- stale";
        let f = lint_source(src, &ctx("crates/sim/src/x.rs"));
        assert_eq!(rules_of(&f), vec![Rule::UnusedAllow]);
    }

    #[test]
    fn float_reduction_only_in_fleet() {
        let src = "fn f() { let mut acc = 0.0; acc += x; }";
        assert!(lint_source(src, &ctx("crates/churn/src/x.rs")).is_empty());
        let f = lint_source(src, &ctx("crates/fleet/src/x.rs"));
        assert_eq!(rules_of(&f), vec![Rule::FloatReduction]);
    }

    #[test]
    fn integer_accumulation_in_fleet_is_clean() {
        let src = "fn f() { let mut runs = 0u64; runs += 1; self.stuck += o.stuck; }";
        assert!(lint_source(src, &ctx("crates/fleet/src/x.rs")).is_empty());
    }

    #[test]
    fn unsafe_audit_fires_on_crate_roots_only() {
        let src = "pub fn f() {}";
        let mut c = ctx("crates/x/src/lib.rs");
        assert!(lint_source(src, &c).is_empty());
        c.is_crate_root = true;
        let f = lint_source(src, &c);
        assert_eq!(rules_of(&f), vec![Rule::UnsafeAudit]);
        let good = "#![forbid(unsafe_code)]\npub fn f() {}";
        assert!(lint_source(good, &c).is_empty());
    }

    #[test]
    fn strings_and_comments_do_not_fire() {
        let src = "fn f() { log(\"Instant::now SmallRng HashMap.iter()\"); }\n\
                   // Instant::now in prose is fine\n";
        assert!(lint_source(src, &ctx("crates/sim/src/x.rs")).is_empty());
    }
}
