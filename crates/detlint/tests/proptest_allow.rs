//! Property tests for the allow-annotation grammar: rendering always
//! round-trips, and the reason really is mandatory for every rule and any
//! amount of trailing whitespace.

#![forbid(unsafe_code)]

use dynareg_detlint::{parse_comment, Allow, AllowError, Rule};
use proptest::prelude::*;

fn core_rule() -> impl Strategy<Value = Rule> {
    prop::sample::select(Rule::CORE.to_vec())
}

/// Trim-stable, newline-free reasons — what a real annotation can carry.
/// Interior characters may include spaces and punctuation; the ends stay
/// non-whitespace so `render → parse` reproduces the reason byte-for-byte.
fn reason() -> impl Strategy<Value = String> {
    const ENDS: &str = "abcdefghijklmnopqrstuvwxyz0123456789";
    const INTERIOR: &str = "abcdefghijklmnopqrstuvwxyz0123456789 ()/,.:-";
    let end = prop::sample::select(ENDS.chars().collect::<Vec<char>>());
    let interior = prop::collection::vec(
        prop::sample::select(INTERIOR.chars().collect::<Vec<char>>()),
        0..40,
    );
    (end.clone(), interior, end).prop_map(|(first, mid, last)| {
        let mut s = String::new();
        s.push(first);
        s.extend(mid);
        s.push(last);
        s
    })
}

/// Runs of spaces and tabs, possibly empty.
fn padding() -> impl Strategy<Value = String> {
    prop::collection::vec(prop::sample::select(vec![' ', '\t']), 0..6)
        .prop_map(|cs| cs.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `parse(render(a)) == a` for every rule and reason, with or without
    /// leading comment padding.
    #[test]
    fn render_parse_round_trips(rule in core_rule(), why in reason(), pad in 0usize..4) {
        let a = Allow { rule, reason: why };
        let text = format!("{}{}", " ".repeat(pad), a.render());
        prop_assert_eq!(parse_comment(&text), Some(Ok(a)));
    }

    /// A reason-less annotation is rejected no matter which rule it names
    /// or how much whitespace pads it — never parsed, never ignored.
    #[test]
    fn reasonless_allows_never_parse(rule in core_rule(), tail in padding()) {
        let text = format!("detlint: allow({}){}", rule.name(), tail);
        prop_assert_eq!(
            parse_comment(&text),
            Some(Err(AllowError::MissingReason))
        );
        // A bare `--` with nothing after it is still reason-less.
        let text = format!("detlint: allow({}) --{}", rule.name(), tail);
        prop_assert_eq!(
            parse_comment(&text),
            Some(Err(AllowError::MissingReason))
        );
    }

    /// Comments with no marker never parse as annotations, whatever they
    /// say about rules.
    #[test]
    fn markerless_comments_are_ignored(words in prop::collection::vec(
        prop::sample::select("abcdefghijklmnopqrstuvwxyz -".chars().collect::<Vec<char>>()),
        0..40,
    )) {
        let text: String = words.into_iter().collect();
        prop_assert_eq!(parse_comment(&text), None);
    }
}
