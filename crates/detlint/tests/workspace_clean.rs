//! The gate itself, as a test: the real workspace must carry zero
//! unallowed findings. This is what `cargo test` enforces on every run and
//! what the CI detlint step re-checks via the CLI exit code.

#![forbid(unsafe_code)]

use std::path::Path;

use dynareg_detlint::{lint_workspace, unallowed};

#[test]
fn workspace_has_zero_unallowed_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = lint_workspace(&root).expect("workspace lints");
    let open = unallowed(&findings);
    assert!(
        open.is_empty(),
        "determinism contract violations without a documented allow:\n{}",
        open.iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn every_allow_in_the_workspace_carries_a_reason() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = lint_workspace(&root).expect("workspace lints");
    // `allowed` holds the reason text; the parser already rejects empty
    // reasons, so an allowed finding with a blank reason is impossible —
    // assert it anyway as the contract this suite advertises.
    for f in &findings {
        if let Some(reason) = &f.allowed {
            assert!(
                !reason.trim().is_empty(),
                "allow without a reason survived at {f}"
            );
        }
    }
}
