//! Rule corpus: every rule has a firing (positive) and a clean (negative)
//! fixture, and the full corpus output is pinned against a golden file so
//! any behavior change in the rule engine is a reviewed diff, not a silent
//! drift.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::path::Path;

use dynareg_detlint::{lint_source, FileContext, Rule};

/// `(fixture, synthetic workspace path, is_crate_root)`. The float fixtures
/// get a `crates/fleet/` path because `float-reduction` is scoped to fleet
/// aggregation; the unsafe fixtures pose as crate roots because
/// `unsafe-audit` only applies there.
const CORPUS: &[(&str, &str, bool)] = &[
    (
        "unordered_iteration_pos.rs",
        "crates/net/src/fixture.rs",
        false,
    ),
    (
        "unordered_iteration_neg.rs",
        "crates/net/src/fixture.rs",
        false,
    ),
    ("wall_clock_pos.rs", "crates/core/src/fixture.rs", false),
    ("wall_clock_neg.rs", "crates/core/src/fixture.rs", false),
    ("ambient_rng_pos.rs", "crates/churn/src/fixture.rs", false),
    ("ambient_rng_neg.rs", "crates/churn/src/fixture.rs", false),
    (
        "float_reduction_pos.rs",
        "crates/fleet/src/fixture.rs",
        false,
    ),
    (
        "float_reduction_neg.rs",
        "crates/fleet/src/fixture.rs",
        false,
    ),
    ("unsafe_audit_pos.rs", "crates/demo/src/lib.rs", true),
    ("unsafe_audit_neg.rs", "crates/demo/src/lib.rs", true),
    ("allows_pos.rs", "crates/core/src/fixture.rs", false),
    ("allows_bad.rs", "crates/core/src/fixture.rs", false),
];

fn fixture_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn lint_fixture(name: &str, rel_path: &str, is_crate_root: bool) -> Vec<dynareg_detlint::Finding> {
    let src = std::fs::read_to_string(fixture_dir().join(name))
        .unwrap_or_else(|e| panic!("reading fixture {name}: {e}"));
    lint_source(
        &src,
        &FileContext {
            rel_path: rel_path.to_string(),
            is_crate_root,
        },
    )
}

#[test]
fn every_core_rule_has_a_firing_fixture_and_a_clean_one() {
    let cases = [
        (Rule::UnorderedIteration, "unordered_iteration"),
        (Rule::WallClock, "wall_clock"),
        (Rule::AmbientRng, "ambient_rng"),
        (Rule::FloatReduction, "float_reduction"),
        (Rule::UnsafeAudit, "unsafe_audit"),
    ];
    for (rule, stem) in cases {
        let (_, rel, root) = CORPUS
            .iter()
            .find(|(f, _, _)| *f == format!("{stem}_pos.rs"))
            .expect("positive fixture is in the corpus");
        let pos = lint_fixture(&format!("{stem}_pos.rs"), rel, *root);
        assert!(
            pos.iter().any(|f| f.rule == rule && f.allowed.is_none()),
            "{stem}_pos.rs must fire {} unallowed, got: {pos:?}",
            rule.name()
        );
        let neg = lint_fixture(&format!("{stem}_neg.rs"), rel, *root);
        assert!(
            neg.is_empty(),
            "{stem}_neg.rs must be finding-free, got: {neg:?}"
        );
    }
}

#[test]
fn well_formed_allows_suppress_and_are_reported_as_allowed() {
    let findings = lint_fixture("allows_pos.rs", "crates/core/src/fixture.rs", false);
    assert!(
        !findings.is_empty() && findings.iter().all(|f| f.allowed.is_some()),
        "every finding in allows_pos.rs is excused: {findings:?}"
    );
}

#[test]
fn bad_and_unused_allows_are_unallowable_findings() {
    let findings = lint_fixture("allows_bad.rs", "crates/core/src/fixture.rs", false);
    assert!(
        findings.iter().any(|f| f.rule == Rule::BadAllow),
        "reason-less and unknown-rule annotations are bad-allow: {findings:?}"
    );
    assert!(
        findings.iter().any(|f| f.rule == Rule::UnusedAllow),
        "an annotation excusing nothing is unused-allow: {findings:?}"
    );
    assert!(
        findings.iter().all(|f| f.allowed.is_none()),
        "meta findings can never be allowed: {findings:?}"
    );
}

#[test]
fn corpus_output_matches_golden() {
    let mut got = String::new();
    for (file, rel, root) in CORPUS {
        for f in lint_fixture(file, rel, *root) {
            let _ = writeln!(got, "{file}: {f}");
        }
    }
    let golden_path = fixture_dir().join("golden_findings.txt");
    if std::env::var_os("DETLINT_BLESS").is_some() {
        std::fs::write(&golden_path, &got).expect("blessing golden corpus");
    }
    let want = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", golden_path.display()));
    assert_eq!(
        got, want,
        "rule-engine output drifted from the golden corpus; \
         review the diff and update fixtures/golden_findings.txt deliberately"
    );
}
