// Fixture: integer accumulation and min/max folds are the fleet contract.
fn aggregate(samples: &[u64]) -> (u64, u64) {
    let mut total = 0u64;
    for s in samples {
        total += s;
    }
    let hi = samples.iter().copied().max().unwrap_or(0);
    (total, hi)
}
