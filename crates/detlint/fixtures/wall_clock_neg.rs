// Fixture: simulated time and prose mentions of clocks are clean.
fn advance(now: u64, delta: u64) -> u64 {
    // The string below mentions Instant::now but never calls it.
    let label = "Instant::now is banned here";
    let _ = label;
    now + delta
}

/// Doc prose naming `SystemTime` is not a clock read either.
fn sim_clock() -> u64 {
    42
}
