// Fixture: a crate root that forbids unsafe code.
#![forbid(unsafe_code)]

pub fn safe() -> u64 {
    9
}
