// Fixture: a crate root missing `#![forbid(unsafe_code)]`.
pub fn safe_enough() -> u64 {
    9
}
