// Fixture: float accumulation in a fleet aggregation path (the synthetic
// context places this file under crates/fleet/).
fn aggregate(samples: &[f64]) -> (f64, f64) {
    let mut total = 0.0f64;
    for s in samples {
        total += s;
    }
    let direct: f64 = samples.iter().sum::<f64>();
    (total, direct)
}
