// Fixture: drawing from an injected DetRng is the sanctioned pattern.
fn pick(rng: &mut DetRng, n: u64) -> u64 {
    // Forking a child stream derives from the scenario seed, not entropy.
    let mut child = rng.fork(0xC0FFEE);
    child.pick(n)
}

struct DetRng;
impl DetRng {
    fn fork(&mut self, _label: u64) -> DetRng {
        DetRng
    }
    fn pick(&mut self, n: u64) -> u64 {
        n / 2
    }
}
