// Fixture: well-formed allows suppress their findings (and show up as
// allowed, never unallowed).
use std::time::Instant;

fn profiled() -> u128 {
    let t0 = Instant::now(); // detlint: allow(wall-clock) -- fixture: profiler timing
    t0.elapsed().as_nanos()
}

fn profiled_with_leading_comment() -> u128 {
    // detlint: allow(wall-clock) -- fixture: annotation on the preceding line
    let t0 = Instant::now();
    t0.elapsed().as_nanos()
}
