// Fixture: ordered containers and lookup-only hash maps are clean.
use std::collections::{BTreeMap, BTreeSet, HashMap};

fn ordered(m: &BTreeMap<u64, u64>, s: &BTreeSet<u64>) -> u64 {
    let mut acc = 0;
    for (k, v) in m.iter() {
        acc += k + v;
    }
    for x in s {
        acc += x;
    }
    acc
}

fn lookup_only(table: &HashMap<u64, u64>, key: u64) -> Option<u64> {
    // Probing by key never observes storage order. (Ident tracking is
    // file-scoped: `table` must not be reused for an ordered container.)
    table.get(&key).copied()
}

fn ranges_are_not_maps(n: u64) -> u64 {
    let mut acc = 0;
    for i in 0..n {
        acc += i;
    }
    acc
}
