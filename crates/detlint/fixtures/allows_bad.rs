// Fixture: the three ways an annotation can itself be a finding.
use std::time::Instant;

fn reasonless() -> u128 {
    let t0 = Instant::now(); // detlint: allow(wall-clock)
    t0.elapsed().as_nanos()
}

fn unknown_rule() -> u128 {
    let t0 = Instant::now(); // detlint: allow(no-such-rule) -- reason present
    t0.elapsed().as_nanos()
}

fn unused() -> u64 {
    let x = 3; // detlint: allow(wall-clock) -- nothing here reads a clock
    x
}
