// Fixture: RNG construction and seeding outside the DetRng derivation.
use rand::rngs::{OsRng, SmallRng, StdRng};
use rand::SeedableRng;

fn ambient() -> u64 {
    let mut r = rand::thread_rng();
    let s = SmallRng::seed_from_u64(7);
    let t = StdRng::from_entropy();
    drop((s, t));
    r.next_u64()
}
