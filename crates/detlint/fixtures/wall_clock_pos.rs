// Fixture: host-clock reads inside simulation logic.
use std::time::{Instant, SystemTime};

fn stamp() -> u128 {
    let t0 = Instant::now();
    let wall = SystemTime::now();
    drop(wall);
    t0.elapsed().as_nanos()
}
