// Fixture: every way hash-order can leak into simulation effects.
use std::collections::{HashMap, HashSet};

type NodeMap = HashMap<u64, u32>;

struct Roster {
    members: HashSet<u64>,
    slots: NodeMap,
}

fn leak(r: &Roster, extra: HashMap<u64, u64>) -> Vec<u64> {
    let mut out = Vec::new();
    for id in r.members.iter() {
        out.push(*id);
    }
    for (k, _) in &extra {
        out.push(*k);
    }
    for v in r.slots.values() {
        out.push(u64::from(*v));
    }
    out
}

fn drain_in_storage_order(m: &mut HashMap<u64, u64>) -> Vec<(u64, u64)> {
    m.drain().collect()
}
