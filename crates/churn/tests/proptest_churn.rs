//! Property tests for the churn models and driver.

use dynareg_churn::{ChurnDriver, ChurnModel, ConstantRate, LeaveSelector, PoissonChurn};
use dynareg_net::Presence;
use dynareg_sim::{DetRng, IdSource, NodeId, Time};
use proptest::prelude::*;

proptest! {
    // Bounded case count so CI runtime stays predictable; override with
    // the PROPTEST_CASES environment variable for deeper local runs.
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Constant churn is *exact* in the long run for any rate: total
    /// refreshes over T ticks = ⌊T · c · n⌋ up to one unit of carry.
    #[test]
    fn constant_rate_is_exact(
        c in 0.0f64..0.5,
        n in 1usize..200,
        ticks in 1u64..500,
    ) {
        let mut m = ConstantRate::new(c);
        let mut rng = DetRng::seed(1);
        let total: usize = (0..ticks).map(|t| m.refreshes(Time::at(t), n, &mut rng)).sum();
        let expected = c * n as f64 * ticks as f64;
        prop_assert!((total as f64 - expected).abs() <= 1.0,
            "total {total} vs expected {expected}");
    }

    /// The driver never evicts protected nodes and always balances joins
    /// with actual leaves, for any selector and rate.
    #[test]
    fn driver_respects_protection_and_balance(
        c in 0.0f64..1.0,
        n in 2u64..40,
        protect in 0u64..5,
        sel in prop::sample::select(vec![
            LeaveSelector::Random,
            LeaveSelector::OldestFirst,
            LeaveSelector::NewestFirst,
            LeaveSelector::ActiveFirst,
        ]),
        seed in 0u64..10_000,
    ) {
        let mut p = Presence::new();
        p.bootstrap((0..n).map(NodeId::from_raw), Time::ZERO);
        let mut driver = ChurnDriver::new(
            Box::new(ConstantRate::new(c)),
            sel,
            IdSource::starting_at(n),
        );
        let protected: Vec<NodeId> = (0..protect.min(n)).map(NodeId::from_raw).collect();
        for &node in &protected {
            driver.protect(node);
        }
        let mut rng = DetRng::seed(seed);
        for t in 1..20 {
            let step = driver.step(&p, Time::at(t), &mut rng);
            prop_assert_eq!(step.leaves.len(), step.joins.len());
            for &victim in &step.leaves {
                prop_assert!(!protected.contains(&victim), "evicted protected {victim}");
            }
            // Apply to presence so subsequent steps see reality.
            for &victim in &step.leaves {
                p.leave(victim, Time::at(t));
            }
            for &id in &step.joins {
                p.enter(id, Time::at(t));
                p.activate(id, Time::at(t));
            }
            prop_assert_eq!(p.present_count() as u64, n);
        }
    }

    /// Poisson churn has the right mean and never exceeds the population.
    #[test]
    fn poisson_mean_and_cap(c in 0.0f64..0.3, n in 5usize..100) {
        let mut m = PoissonChurn::new(c);
        let mut rng = DetRng::seed(7);
        let ticks = 3000u64;
        let mut total = 0usize;
        for t in 0..ticks {
            let r = m.refreshes(Time::at(t), n, &mut rng);
            prop_assert!(r <= n);
            total += r;
        }
        let mean = total as f64 / ticks as f64;
        let expected = c * n as f64;
        // Poisson mean estimate over 3000 draws: allow 5 sigma.
        let tolerance = 5.0 * (expected / ticks as f64).sqrt().max(0.02);
        prop_assert!((mean - expected).abs() < tolerance.max(expected * 0.2).max(0.05),
            "mean {mean} vs expected {expected}");
    }

    /// Fresh ids from the driver never collide with existing population.
    #[test]
    fn driver_ids_are_fresh(n in 1u64..50, seed in 0u64..10_000) {
        let mut p = Presence::new();
        p.bootstrap((0..n).map(NodeId::from_raw), Time::ZERO);
        let mut driver = ChurnDriver::new(
            Box::new(ConstantRate::new(0.5)),
            LeaveSelector::Random,
            IdSource::starting_at(n),
        );
        let mut rng = DetRng::seed(seed);
        let mut seen: std::collections::BTreeSet<NodeId> =
            (0..n).map(NodeId::from_raw).collect();
        for t in 1..10 {
            let step = driver.step(&p, Time::at(t), &mut rng);
            for &id in &step.joins {
                prop_assert!(seen.insert(id), "id {id} reused");
            }
            for &victim in &step.leaves {
                p.leave(victim, Time::at(t));
            }
            for &id in &step.joins {
                p.enter(id, Time::at(t));
                p.activate(id, Time::at(t));
            }
        }
    }
}
