//! Departure victim selection policies.
//!
//! The churn model fixes *how many* processes leave per time unit; the
//! selector fixes *which*. The paper's proofs are adversary-agnostic ("In
//! the worst case, the `nc` processes that left the system are processes
//! that were present at time τ", Lemma 2), so experiments sweep selectors to
//! probe both the average and the worst case.

use dynareg_net::Presence;
use dynareg_sim::{DetRng, NodeId};

/// Policy choosing which present process leaves next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LeaveSelector {
    /// Uniformly random among eligible present processes.
    #[default]
    Random,
    /// The process that entered earliest leaves first — steadily erodes the
    /// long-lived core that holds the register state (Lemma 2's worst case:
    /// departures always hit processes active since before the window).
    OldestFirst,
    /// The process that entered latest leaves first — churns the joiners,
    /// leaving the stable core intact (the paper's benign case).
    NewestFirst,
    /// Prefer *active* processes (oldest first among them), falling back to
    /// listeners only when no active process is eligible. The sharpest
    /// adversary against the active-set bounds.
    ActiveFirst,
}

impl LeaveSelector {
    /// Picks a victim among present processes, excluding `protected` ids.
    /// Returns `None` if nobody is eligible.
    ///
    /// Determinism: candidates are scanned in id order and random choices
    /// use the run's seeded stream.
    pub fn pick(
        &self,
        presence: &Presence,
        protected: &[NodeId],
        rng: &mut DetRng,
    ) -> Option<NodeId> {
        if let LeaveSelector::Random = self {
            // Hot path (the default selector, invoked once per departure):
            // index the k-th eligible process straight off the sorted
            // present slice in O(1) — plus O(p log n) to locate the `p`
            // protected ids (a handful: the writer and this tick's earlier
            // victims), instead of the former O(present) filter-and-nth
            // scan. The pool (eligible ids in id order) and the single RNG
            // draw are unchanged, so picks are bit-identical to the old
            // scan for every seed.
            let present = presence.present_slice();
            // Positions of protected ids inside the present slice, sorted.
            let mut blocked: Vec<usize> = protected
                .iter()
                .filter_map(|p| present.binary_search(p).ok())
                .collect();
            blocked.sort_unstable();
            blocked.dedup();
            let eligible_count = present.len() - blocked.len();
            if eligible_count == 0 {
                return None;
            }
            // Map "k-th eligible" to its position in `present`: every
            // blocked position at or before the cursor shifts it right by
            // one (order-statistics adjustment over the sorted positions).
            let mut k = rng.pick_index(eligible_count);
            for &pos in &blocked {
                if pos <= k {
                    k += 1;
                } else {
                    break;
                }
            }
            return Some(present[k]);
        }
        let eligible: Vec<NodeId> = presence
            .present_nodes()
            .into_iter()
            .filter(|id| !protected.contains(id))
            .collect();
        if eligible.is_empty() {
            return None;
        }
        match self {
            LeaveSelector::Random => unreachable!("handled above"),
            LeaveSelector::OldestFirst => eligible
                .into_iter()
                .min_by_key(|&id| (presence.record(id).expect("present").entered_at, id)),
            LeaveSelector::NewestFirst => eligible
                .into_iter()
                .max_by_key(|&id| (presence.record(id).expect("present").entered_at, id)),
            LeaveSelector::ActiveFirst => {
                let actives: Vec<NodeId> = eligible
                    .iter()
                    .copied()
                    .filter(|&id| presence.is_active(id))
                    .collect();
                let pool = if actives.is_empty() {
                    eligible
                } else {
                    actives
                };
                pool.into_iter()
                    .min_by_key(|&id| (presence.record(id).expect("present").entered_at, id))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynareg_sim::Time;

    fn n(i: u64) -> NodeId {
        NodeId::from_raw(i)
    }

    /// n0 active since t0, n1 active since t0, n2 listening since t5.
    fn world() -> Presence {
        let mut p = Presence::new();
        p.bootstrap([n(0), n(1)], Time::ZERO);
        p.enter(n(2), Time::at(5));
        p
    }

    #[test]
    fn oldest_first_picks_earliest_arrival() {
        let p = world();
        let mut rng = DetRng::seed(1);
        assert_eq!(
            LeaveSelector::OldestFirst.pick(&p, &[], &mut rng),
            Some(n(0))
        );
    }

    #[test]
    fn newest_first_picks_latest_arrival() {
        let p = world();
        let mut rng = DetRng::seed(1);
        assert_eq!(
            LeaveSelector::NewestFirst.pick(&p, &[], &mut rng),
            Some(n(2))
        );
    }

    #[test]
    fn active_first_prefers_actives_over_listeners() {
        let p = world();
        let mut rng = DetRng::seed(1);
        assert_eq!(
            LeaveSelector::ActiveFirst.pick(&p, &[], &mut rng),
            Some(n(0))
        );
    }

    #[test]
    fn active_first_falls_back_to_listeners() {
        let mut p = Presence::new();
        p.enter(n(7), Time::ZERO); // listening only
        let mut rng = DetRng::seed(1);
        assert_eq!(
            LeaveSelector::ActiveFirst.pick(&p, &[], &mut rng),
            Some(n(7))
        );
    }

    #[test]
    fn protection_excludes_victims() {
        let p = world();
        let mut rng = DetRng::seed(1);
        assert_eq!(
            LeaveSelector::OldestFirst.pick(&p, &[n(0)], &mut rng),
            Some(n(1))
        );
    }

    #[test]
    fn empty_pool_returns_none() {
        let p = Presence::new();
        let mut rng = DetRng::seed(1);
        assert_eq!(LeaveSelector::Random.pick(&p, &[], &mut rng), None);
        let w = world();
        assert_eq!(
            LeaveSelector::Random.pick(&w, &[n(0), n(1), n(2)], &mut rng),
            None
        );
    }

    #[test]
    fn random_pick_matches_filter_nth_reference() {
        // The O(1) indexed pick must agree with the reference "k-th
        // eligible in id order" scan for every (pool, protected, seed)
        // combination — same draw, same victim (seed-stability contract).
        let mut p = Presence::new();
        p.bootstrap((0..12).map(n), Time::ZERO);
        let protections: Vec<Vec<NodeId>> = vec![
            vec![],
            vec![n(0)],
            vec![n(11), n(0), n(5)],
            vec![n(3), n(3), n(99)], // duplicates and absent ids
            (0..11).map(n).collect(),
        ];
        for protected in &protections {
            for seed in 0..40 {
                let mut rng_fast = DetRng::seed(seed);
                let mut rng_ref = DetRng::seed(seed);
                let got = LeaveSelector::Random.pick(&p, protected, &mut rng_fast);
                let eligible: Vec<NodeId> = p
                    .present_slice()
                    .iter()
                    .filter(|id| !protected.contains(id))
                    .copied()
                    .collect();
                let expect = if eligible.is_empty() {
                    None
                } else {
                    Some(eligible[rng_ref.pick_index(eligible.len())])
                };
                assert_eq!(got, expect, "protected={protected:?} seed={seed}");
            }
        }
    }

    #[test]
    fn random_is_deterministic_per_seed_and_covers_pool() {
        let p = world();
        let picks: Vec<_> = (0..50)
            .map(|_| {
                let mut rng = DetRng::seed(9);
                LeaveSelector::Random.pick(&p, &[], &mut rng).unwrap()
            })
            .collect();
        assert!(
            picks.windows(2).all(|w| w[0] == w[1]),
            "same seed, same pick"
        );
        // Different draws from one stream cover the whole pool eventually.
        let mut rng = DetRng::seed(10);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(LeaveSelector::Random.pick(&p, &[], &mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
    }
}
