//! Churn arrival/departure processes.

use dynareg_sim::{DetRng, Span, Time};

/// How many processes join and leave in one time unit.
///
/// The paper's model keeps the population constant, so all built-in models
/// return balanced counts; the driver pairs each leave with a join. Models
/// may additionally report *unbalanced* joins ([`ChurnModel::extra_joins`])
/// — arrivals with no paired departure, growing the population — which is
/// how flash crowds enter the picture.
pub trait ChurnModel: std::fmt::Debug {
    /// Number of join/leave pairs in the time unit starting at `now`, for a
    /// system of nominal size `n`.
    fn refreshes(&mut self, now: Time, n: usize, rng: &mut DetRng) -> usize;

    /// Number of *unpaired* joins in the time unit starting at `now` —
    /// fresh arrivals beyond the refresh pairs, so the population grows by
    /// this much. The paper's balanced models leave the default `0`.
    fn extra_joins(&mut self, _now: Time, _n: usize, _rng: &mut DetRng) -> usize {
        0
    }

    /// The nominal long-run churn rate `c` (refreshed fraction per time
    /// unit), if the model has one.
    fn nominal_rate(&self) -> Option<f64>;
}

/// The paper's constant-churn model: exactly `c·n` refreshes per time unit,
/// with a fractional accumulator so non-integer `c·n` is exact in the long
/// run (e.g. `c·n = 0.4` yields 2 refreshes every 5 ticks).
#[derive(Debug, Clone)]
pub struct ConstantRate {
    c: f64,
    carry: f64,
}

impl ConstantRate {
    /// Constant churn with rate `c ∈ [0, 1]`.
    ///
    /// # Panics
    /// Panics if `c` is outside `[0, 1]` or not finite.
    pub fn new(c: f64) -> ConstantRate {
        assert!(
            c.is_finite() && (0.0..=1.0).contains(&c),
            "churn rate must be in [0,1]"
        );
        ConstantRate { c, carry: 0.0 }
    }

    /// The configured rate `c`.
    pub fn rate(&self) -> f64 {
        self.c
    }
}

impl ChurnModel for ConstantRate {
    fn refreshes(&mut self, _now: Time, n: usize, _rng: &mut DetRng) -> usize {
        self.carry += self.c * n as f64;
        let whole = self.carry.floor();
        self.carry -= whole;
        whole as usize
    }

    fn nominal_rate(&self) -> Option<f64> {
        Some(self.c)
    }
}

/// A static system: nobody joins or leaves. Baseline for comparing against
/// the classical (non-dynamic) register setting.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoChurn;

impl ChurnModel for NoChurn {
    fn refreshes(&mut self, _now: Time, _n: usize, _rng: &mut DetRng) -> usize {
        0
    }

    fn nominal_rate(&self) -> Option<f64> {
        Some(0.0)
    }
}

/// Poisson churn (extension, after Ko et al. \[19\]): the number of refresh
/// pairs per time unit is Poisson-distributed with mean `c·n`. Same long-run
/// rate as [`ConstantRate`] but bursty at fine grain — a stress test for the
/// protocols' worst-case windows.
#[derive(Debug, Clone)]
pub struct PoissonChurn {
    c: f64,
}

impl PoissonChurn {
    /// Poisson churn with mean rate `c ∈ [0, 1]`.
    ///
    /// # Panics
    /// Panics if `c` is outside `[0, 1]` or not finite.
    pub fn new(c: f64) -> PoissonChurn {
        assert!(
            c.is_finite() && (0.0..=1.0).contains(&c),
            "churn rate must be in [0,1]"
        );
        PoissonChurn { c }
    }
}

impl ChurnModel for PoissonChurn {
    fn refreshes(&mut self, _now: Time, n: usize, rng: &mut DetRng) -> usize {
        // Cap at n: the whole population can turn over in a unit, not more.
        (rng.poisson(self.c * n as f64) as usize).min(n)
    }

    fn nominal_rate(&self) -> Option<f64> {
        Some(self.c)
    }
}

/// On/off burst churn (extension): alternates quiet phases (rate `c_off`)
/// and storm phases (rate `c_on`), modelling flash crowds and diurnal
/// effects discussed in the churn literature \[19, 22\].
#[derive(Debug, Clone)]
pub struct BurstChurn {
    on: ConstantRate,
    off: ConstantRate,
    period_on: u64,
    period_off: u64,
}

impl BurstChurn {
    /// Burst churn: `period_on` ticks at `c_on`, then `period_off` ticks at
    /// `c_off`, repeating from `Time::ZERO`.
    ///
    /// # Panics
    /// Panics if either period is zero or either rate is invalid.
    pub fn new(c_on: f64, period_on: u64, c_off: f64, period_off: u64) -> BurstChurn {
        assert!(period_on > 0 && period_off > 0, "periods must be positive");
        BurstChurn {
            on: ConstantRate::new(c_on),
            off: ConstantRate::new(c_off),
            period_on,
            period_off,
        }
    }

    /// Whether `now` falls in a storm phase.
    pub fn is_storm(&self, now: Time) -> bool {
        let cycle = self.period_on + self.period_off;
        now.ticks() % cycle < self.period_on
    }
}

impl ChurnModel for BurstChurn {
    fn refreshes(&mut self, now: Time, n: usize, rng: &mut DetRng) -> usize {
        if self.is_storm(now) {
            self.on.refreshes(now, n, rng)
        } else {
            self.off.refreshes(now, n, rng)
        }
    }

    fn nominal_rate(&self) -> Option<f64> {
        let cycle = (self.period_on + self.period_off) as f64;
        Some(
            (self.on.rate() * self.period_on as f64 + self.off.rate() * self.period_off as f64)
                / cycle,
        )
    }
}

/// Flash-crowd arrivals (extension): steady balanced churn at a base rate,
/// plus scripted **join waves** — `wave_joins` unpaired arrivals per tick
/// for `wave_ticks` ticks, starting at `wave_at` and optionally repeating
/// every `wave_every` ticks. Waves grow the population (no paired leaves),
/// modelling the flash crowds of the churn literature \[19, 22\]: a
/// popular event pulls a burst of newcomers through the join protocol at
/// once, stressing the inquiry fan-in far beyond the paper's steady-state
/// `c·n`.
#[derive(Debug, Clone)]
pub struct FlashCrowd {
    base: ConstantRate,
    wave_at: u64,
    wave_every: u64,
    wave_joins: usize,
    wave_ticks: u64,
}

impl FlashCrowd {
    /// Base balanced churn at `base_rate`, with waves of `wave_joins`
    /// joins per tick for `wave_ticks` ticks starting at `wave_at`,
    /// repeating every `wave_every` ticks (`0` = a single wave).
    ///
    /// # Panics
    /// Panics if `base_rate` is invalid, `wave_ticks` is zero, or a
    /// nonzero `wave_every` is shorter than `wave_ticks`.
    pub fn new(
        base_rate: f64,
        wave_at: u64,
        wave_every: u64,
        wave_joins: usize,
        wave_ticks: u64,
    ) -> FlashCrowd {
        assert!(wave_ticks > 0, "a wave must last at least one tick");
        assert!(
            wave_every == 0 || wave_every >= wave_ticks,
            "repeating waves must not overlap"
        );
        FlashCrowd {
            base: ConstantRate::new(base_rate),
            wave_at,
            wave_every,
            wave_joins,
            wave_ticks,
        }
    }

    /// Whether `now` falls inside a join wave.
    pub fn in_wave(&self, now: Time) -> bool {
        let t = now.ticks();
        if t < self.wave_at {
            return false;
        }
        let since = t - self.wave_at;
        if self.wave_every == 0 {
            since < self.wave_ticks
        } else {
            since % self.wave_every < self.wave_ticks
        }
    }
}

impl ChurnModel for FlashCrowd {
    fn refreshes(&mut self, now: Time, n: usize, rng: &mut DetRng) -> usize {
        self.base.refreshes(now, n, rng)
    }

    fn extra_joins(&mut self, now: Time, _n: usize, _rng: &mut DetRng) -> usize {
        if self.in_wave(now) {
            self.wave_joins
        } else {
            0
        }
    }

    fn nominal_rate(&self) -> Option<f64> {
        Some(self.base.rate())
    }
}

/// Diurnal churn (extension): the refresh rate follows a day/night cosine
/// between `peak` (at phase 0) and `trough` (half a period later), with
/// the same exact fractional accounting as [`ConstantRate`]. The long-run
/// rate is the midpoint `(peak + trough) / 2`.
#[derive(Debug, Clone)]
pub struct DiurnalChurn {
    peak: f64,
    trough: f64,
    period: u64,
    carry: f64,
}

impl DiurnalChurn {
    /// Cosine-modulated churn between `trough` and `peak` with the given
    /// period in ticks.
    ///
    /// # Panics
    /// Panics if the rates are invalid, `peak < trough`, or the period is
    /// zero.
    pub fn new(peak: f64, trough: f64, period: u64) -> DiurnalChurn {
        assert!(
            peak.is_finite() && trough.is_finite() && (0.0..=1.0).contains(&peak),
            "churn rate must be in [0,1]"
        );
        assert!((0.0..=peak).contains(&trough), "need 0 <= trough <= peak");
        assert!(period > 0, "period must be positive");
        DiurnalChurn {
            peak,
            trough,
            period,
            carry: 0.0,
        }
    }

    /// The instantaneous rate at `now`.
    pub fn rate_at(&self, now: Time) -> f64 {
        let phase = (now.ticks() % self.period) as f64 / self.period as f64;
        let swing = (1.0 + (std::f64::consts::TAU * phase).cos()) / 2.0;
        self.trough + (self.peak - self.trough) * swing
    }
}

impl ChurnModel for DiurnalChurn {
    fn refreshes(&mut self, now: Time, n: usize, _rng: &mut DetRng) -> usize {
        self.carry += self.rate_at(now) * n as f64;
        let whole = self.carry.floor();
        self.carry -= whole;
        whole as usize
    }

    fn nominal_rate(&self) -> Option<f64> {
        Some((self.peak + self.trough) / 2.0)
    }
}

/// Heavy-tailed session-length churn (extension): instead of a rate, each
/// process lives a Pareto-distributed **session** (shape `alpha`, minimum
/// `min_ticks`) and is replaced when it expires — the empirically observed
/// peer-to-peer pattern \[19\]: most sessions are short, a few are very
/// long, so instantaneous churn is bursty even though the population is
/// constant. Sessions are seeded lazily for the population the first call
/// sees; every replacement starts a fresh sampled session.
#[derive(Debug, Clone)]
pub struct SessionChurn {
    alpha: f64,
    min_ticks: u64,
    /// Min-heap of session expiry instants (ticks).
    expiries: std::collections::BinaryHeap<std::cmp::Reverse<u64>>,
}

impl SessionChurn {
    /// Pareto sessions with shape `alpha` and minimum length `min_ticks`.
    ///
    /// # Panics
    /// Panics if `alpha` is not positive or `min_ticks` is zero.
    pub fn new(alpha: f64, min_ticks: u64) -> SessionChurn {
        assert!(alpha > 0.0 && alpha.is_finite(), "alpha must be positive");
        assert!(min_ticks > 0, "sessions must last at least one tick");
        SessionChurn {
            alpha,
            min_ticks,
            expiries: std::collections::BinaryHeap::new(),
        }
    }

    fn sample_session(&self, rng: &mut DetRng) -> u64 {
        // Truncate the tail at 10⁴× the minimum: long enough that the
        // mean is effectively the Pareto mean for alpha > 1, bounded so a
        // single outlier cannot outlive any plausible run.
        let cap = Span::ticks(self.min_ticks.saturating_mul(10_000));
        rng.heavy_tail_span(Span::ticks(self.min_ticks), self.alpha, cap)
            .as_ticks()
    }
}

impl ChurnModel for SessionChurn {
    fn refreshes(&mut self, now: Time, n: usize, rng: &mut DetRng) -> usize {
        if self.expiries.is_empty() {
            // Seed the initial population's sessions.
            for _ in 0..n {
                let end = now.ticks().saturating_add(self.sample_session(rng));
                self.expiries.push(std::cmp::Reverse(end));
            }
        }
        let mut expired = 0;
        while self
            .expiries
            .peek()
            .is_some_and(|&std::cmp::Reverse(end)| end <= now.ticks())
        {
            self.expiries.pop();
            expired += 1;
        }
        // Each replacement starts its own freshly sampled session.
        for _ in 0..expired {
            let end = now.ticks() + self.sample_session(rng);
            self.expiries.push(std::cmp::Reverse(end));
        }
        expired
    }

    fn nominal_rate(&self) -> Option<f64> {
        // Mean session length is min·α/(α−1) for α > 1 (infinite below),
        // and the long-run churn rate is its reciprocal.
        if self.alpha > 1.0 {
            let mean = self.min_ticks as f64 * self.alpha / (self.alpha - 1.0);
            Some(1.0 / mean)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_rate_integer_case() {
        let mut m = ConstantRate::new(0.05);
        let mut rng = DetRng::seed(1);
        for t in 0..100 {
            assert_eq!(m.refreshes(Time::at(t), 100, &mut rng), 5);
        }
    }

    #[test]
    fn constant_rate_fractional_case_is_exact_long_run() {
        let mut m = ConstantRate::new(0.025); // c·n = 2.5 at n=100
        let mut rng = DetRng::seed(1);
        let total: usize = (0..1000)
            .map(|t| m.refreshes(Time::at(t), 100, &mut rng))
            .sum();
        assert_eq!(total, 2500);
    }

    #[test]
    fn constant_rate_small_fraction_accumulates() {
        let mut m = ConstantRate::new(0.004); // c·n = 0.4 at n=100
        let mut rng = DetRng::seed(1);
        let counts: Vec<usize> = (0..5)
            .map(|t| m.refreshes(Time::at(t), 100, &mut rng))
            .collect();
        assert_eq!(counts.iter().sum::<usize>(), 2);
        assert!(counts.iter().all(|&c| c <= 1));
    }

    #[test]
    #[should_panic(expected = "churn rate must be in [0,1]")]
    fn constant_rate_rejects_out_of_range() {
        let _ = ConstantRate::new(1.5);
    }

    #[test]
    fn no_churn_is_zero() {
        let mut m = NoChurn;
        let mut rng = DetRng::seed(1);
        assert_eq!(m.refreshes(Time::ZERO, 100, &mut rng), 0);
        assert_eq!(m.nominal_rate(), Some(0.0));
    }

    #[test]
    fn poisson_matches_mean_and_caps_at_n() {
        let mut m = PoissonChurn::new(0.05);
        let mut rng = DetRng::seed(2);
        let total: usize = (0..2000)
            .map(|t| m.refreshes(Time::at(t), 100, &mut rng))
            .sum();
        let mean = total as f64 / 2000.0;
        assert!((mean - 5.0).abs() < 0.5, "mean {mean} should be near 5");
        // Cap: even with c=1 the refresh count never exceeds n.
        let mut extreme = PoissonChurn::new(1.0);
        for t in 0..200 {
            assert!(extreme.refreshes(Time::at(t), 10, &mut rng) <= 10);
        }
    }

    #[test]
    fn burst_alternates_phases() {
        let mut m = BurstChurn::new(0.2, 10, 0.0, 40);
        let mut rng = DetRng::seed(3);
        assert!(m.is_storm(Time::ZERO));
        assert!(!m.is_storm(Time::at(10)));
        assert!(m.is_storm(Time::at(50)));
        let storm: usize = (0..10)
            .map(|t| m.refreshes(Time::at(t), 100, &mut rng))
            .sum();
        let quiet: usize = (10..50)
            .map(|t| m.refreshes(Time::at(t), 100, &mut rng))
            .sum();
        assert_eq!(storm, 200);
        assert_eq!(quiet, 0);
        let nominal = m.nominal_rate().unwrap();
        assert!((nominal - 0.04).abs() < 1e-12);
    }

    #[test]
    fn flash_crowd_waves_grow_only_inside_windows() {
        let mut m = FlashCrowd::new(0.1, 20, 50, 7, 3);
        let mut rng = DetRng::seed(4);
        // Before the first wave: no unpaired joins.
        for t in 0..20 {
            assert_eq!(m.extra_joins(Time::at(t), 100, &mut rng), 0, "t={t}");
        }
        // Wave ticks: [20, 23) and then every 50 ticks, [70, 73), …
        for t in [20, 21, 22, 70, 72, 120] {
            assert_eq!(m.extra_joins(Time::at(t), 100, &mut rng), 7, "t={t}");
        }
        for t in [23, 45, 73, 119] {
            assert_eq!(m.extra_joins(Time::at(t), 100, &mut rng), 0, "t={t}");
        }
        // One-shot wave when wave_every = 0.
        let mut once = FlashCrowd::new(0.1, 5, 0, 3, 2);
        assert_eq!(once.extra_joins(Time::at(6), 100, &mut rng), 3);
        assert_eq!(once.extra_joins(Time::at(500), 100, &mut rng), 0);
        // The balanced base keeps running regardless of waves.
        assert_eq!(m.refreshes(Time::at(21), 100, &mut rng), 10);
        assert_eq!(m.nominal_rate(), Some(0.1));
    }

    #[test]
    fn diurnal_swings_between_peak_and_trough() {
        let mut m = DiurnalChurn::new(0.2, 0.02, 100);
        assert!((m.rate_at(Time::ZERO) - 0.2).abs() < 1e-12);
        assert!((m.rate_at(Time::at(50)) - 0.02).abs() < 1e-12);
        assert!((m.rate_at(Time::at(100)) - 0.2).abs() < 1e-12);
        let mut rng = DetRng::seed(5);
        // Over whole periods, the realized rate converges to the midpoint.
        let total: usize = (0..1000)
            .map(|t| m.refreshes(Time::at(t), 100, &mut rng))
            .sum();
        let realized = total as f64 / (1000.0 * 100.0);
        let nominal = m.nominal_rate().unwrap();
        assert!((nominal - 0.11).abs() < 1e-12);
        assert!(
            (realized - nominal).abs() < 0.005,
            "realized {realized} should track nominal {nominal}"
        );
    }

    #[test]
    #[should_panic(expected = "trough <= peak")]
    fn diurnal_rejects_inverted_rates() {
        let _ = DiurnalChurn::new(0.05, 0.2, 100);
    }

    #[test]
    fn session_churn_is_bursty_but_averages_to_pareto_mean() {
        let mut m = SessionChurn::new(1.5, 20);
        let mut rng = DetRng::seed(6);
        let n = 200;
        let ticks = 20_000;
        let total: usize = (0..ticks)
            .map(|t| m.refreshes(Time::at(t), n, &mut rng))
            .sum();
        // Mean session = 20·1.5/0.5 = 60 ticks ⇒ rate 1/60 per process.
        let nominal = m.nominal_rate().unwrap();
        assert!((nominal - 1.0 / 60.0).abs() < 1e-12);
        let realized = total as f64 / (ticks as f64 * n as f64);
        assert!(
            (realized - nominal).abs() / nominal < 0.25,
            "realized {realized} should be near nominal {nominal}"
        );
        // No session expires before its minimum length.
        let mut fresh = SessionChurn::new(1.5, 50);
        for t in 0..50 {
            assert_eq!(fresh.refreshes(Time::at(t), 10, &mut rng), 0, "t={t}");
        }
        // Below alpha = 1 the mean diverges: no nominal rate.
        assert_eq!(SessionChurn::new(0.9, 20).nominal_rate(), None);
    }
}
