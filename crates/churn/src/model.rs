//! Churn arrival/departure processes.

use dynareg_sim::{DetRng, Time};

/// How many processes join and leave in one time unit.
///
/// The paper's model keeps the population constant, so all built-in models
/// return balanced counts; the driver pairs each leave with a join.
pub trait ChurnModel: std::fmt::Debug {
    /// Number of join/leave pairs in the time unit starting at `now`, for a
    /// system of nominal size `n`.
    fn refreshes(&mut self, now: Time, n: usize, rng: &mut DetRng) -> usize;

    /// The nominal long-run churn rate `c` (refreshed fraction per time
    /// unit), if the model has one.
    fn nominal_rate(&self) -> Option<f64>;
}

/// The paper's constant-churn model: exactly `c·n` refreshes per time unit,
/// with a fractional accumulator so non-integer `c·n` is exact in the long
/// run (e.g. `c·n = 0.4` yields 2 refreshes every 5 ticks).
#[derive(Debug, Clone)]
pub struct ConstantRate {
    c: f64,
    carry: f64,
}

impl ConstantRate {
    /// Constant churn with rate `c ∈ [0, 1]`.
    ///
    /// # Panics
    /// Panics if `c` is outside `[0, 1]` or not finite.
    pub fn new(c: f64) -> ConstantRate {
        assert!(
            c.is_finite() && (0.0..=1.0).contains(&c),
            "churn rate must be in [0,1]"
        );
        ConstantRate { c, carry: 0.0 }
    }

    /// The configured rate `c`.
    pub fn rate(&self) -> f64 {
        self.c
    }
}

impl ChurnModel for ConstantRate {
    fn refreshes(&mut self, _now: Time, n: usize, _rng: &mut DetRng) -> usize {
        self.carry += self.c * n as f64;
        let whole = self.carry.floor();
        self.carry -= whole;
        whole as usize
    }

    fn nominal_rate(&self) -> Option<f64> {
        Some(self.c)
    }
}

/// A static system: nobody joins or leaves. Baseline for comparing against
/// the classical (non-dynamic) register setting.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoChurn;

impl ChurnModel for NoChurn {
    fn refreshes(&mut self, _now: Time, _n: usize, _rng: &mut DetRng) -> usize {
        0
    }

    fn nominal_rate(&self) -> Option<f64> {
        Some(0.0)
    }
}

/// Poisson churn (extension, after Ko et al. \[19\]): the number of refresh
/// pairs per time unit is Poisson-distributed with mean `c·n`. Same long-run
/// rate as [`ConstantRate`] but bursty at fine grain — a stress test for the
/// protocols' worst-case windows.
#[derive(Debug, Clone)]
pub struct PoissonChurn {
    c: f64,
}

impl PoissonChurn {
    /// Poisson churn with mean rate `c ∈ [0, 1]`.
    ///
    /// # Panics
    /// Panics if `c` is outside `[0, 1]` or not finite.
    pub fn new(c: f64) -> PoissonChurn {
        assert!(
            c.is_finite() && (0.0..=1.0).contains(&c),
            "churn rate must be in [0,1]"
        );
        PoissonChurn { c }
    }
}

impl ChurnModel for PoissonChurn {
    fn refreshes(&mut self, _now: Time, n: usize, rng: &mut DetRng) -> usize {
        // Cap at n: the whole population can turn over in a unit, not more.
        (rng.poisson(self.c * n as f64) as usize).min(n)
    }

    fn nominal_rate(&self) -> Option<f64> {
        Some(self.c)
    }
}

/// On/off burst churn (extension): alternates quiet phases (rate `c_off`)
/// and storm phases (rate `c_on`), modelling flash crowds and diurnal
/// effects discussed in the churn literature \[19, 22\].
#[derive(Debug, Clone)]
pub struct BurstChurn {
    on: ConstantRate,
    off: ConstantRate,
    period_on: u64,
    period_off: u64,
}

impl BurstChurn {
    /// Burst churn: `period_on` ticks at `c_on`, then `period_off` ticks at
    /// `c_off`, repeating from `Time::ZERO`.
    ///
    /// # Panics
    /// Panics if either period is zero or either rate is invalid.
    pub fn new(c_on: f64, period_on: u64, c_off: f64, period_off: u64) -> BurstChurn {
        assert!(period_on > 0 && period_off > 0, "periods must be positive");
        BurstChurn {
            on: ConstantRate::new(c_on),
            off: ConstantRate::new(c_off),
            period_on,
            period_off,
        }
    }

    /// Whether `now` falls in a storm phase.
    pub fn is_storm(&self, now: Time) -> bool {
        let cycle = self.period_on + self.period_off;
        now.ticks() % cycle < self.period_on
    }
}

impl ChurnModel for BurstChurn {
    fn refreshes(&mut self, now: Time, n: usize, rng: &mut DetRng) -> usize {
        if self.is_storm(now) {
            self.on.refreshes(now, n, rng)
        } else {
            self.off.refreshes(now, n, rng)
        }
    }

    fn nominal_rate(&self) -> Option<f64> {
        let cycle = (self.period_on + self.period_off) as f64;
        Some(
            (self.on.rate() * self.period_on as f64 + self.off.rate() * self.period_off as f64)
                / cycle,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_rate_integer_case() {
        let mut m = ConstantRate::new(0.05);
        let mut rng = DetRng::seed(1);
        for t in 0..100 {
            assert_eq!(m.refreshes(Time::at(t), 100, &mut rng), 5);
        }
    }

    #[test]
    fn constant_rate_fractional_case_is_exact_long_run() {
        let mut m = ConstantRate::new(0.025); // c·n = 2.5 at n=100
        let mut rng = DetRng::seed(1);
        let total: usize = (0..1000)
            .map(|t| m.refreshes(Time::at(t), 100, &mut rng))
            .sum();
        assert_eq!(total, 2500);
    }

    #[test]
    fn constant_rate_small_fraction_accumulates() {
        let mut m = ConstantRate::new(0.004); // c·n = 0.4 at n=100
        let mut rng = DetRng::seed(1);
        let counts: Vec<usize> = (0..5)
            .map(|t| m.refreshes(Time::at(t), 100, &mut rng))
            .collect();
        assert_eq!(counts.iter().sum::<usize>(), 2);
        assert!(counts.iter().all(|&c| c <= 1));
    }

    #[test]
    #[should_panic(expected = "churn rate must be in [0,1]")]
    fn constant_rate_rejects_out_of_range() {
        let _ = ConstantRate::new(1.5);
    }

    #[test]
    fn no_churn_is_zero() {
        let mut m = NoChurn;
        let mut rng = DetRng::seed(1);
        assert_eq!(m.refreshes(Time::ZERO, 100, &mut rng), 0);
        assert_eq!(m.nominal_rate(), Some(0.0));
    }

    #[test]
    fn poisson_matches_mean_and_caps_at_n() {
        let mut m = PoissonChurn::new(0.05);
        let mut rng = DetRng::seed(2);
        let total: usize = (0..2000)
            .map(|t| m.refreshes(Time::at(t), 100, &mut rng))
            .sum();
        let mean = total as f64 / 2000.0;
        assert!((mean - 5.0).abs() < 0.5, "mean {mean} should be near 5");
        // Cap: even with c=1 the refresh count never exceeds n.
        let mut extreme = PoissonChurn::new(1.0);
        for t in 0..200 {
            assert!(extreme.refreshes(Time::at(t), 10, &mut rng) <= 10);
        }
    }

    #[test]
    fn burst_alternates_phases() {
        let mut m = BurstChurn::new(0.2, 10, 0.0, 40);
        let mut rng = DetRng::seed(3);
        assert!(m.is_storm(Time::ZERO));
        assert!(!m.is_storm(Time::at(10)));
        assert!(m.is_storm(Time::at(50)));
        let storm: usize = (0..10)
            .map(|t| m.refreshes(Time::at(t), 100, &mut rng))
            .sum();
        let quiet: usize = (10..50)
            .map(|t| m.refreshes(Time::at(t), 100, &mut rng))
            .sum();
        assert_eq!(storm, 200);
        assert_eq!(quiet, 0);
        let nominal = m.nominal_rate().unwrap();
        assert!((nominal - 0.04).abs() < 1e-12);
    }
}
