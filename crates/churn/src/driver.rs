//! Turning a churn model into concrete join/leave decisions.

use dynareg_net::Presence;
use dynareg_sim::{DetRng, IdSource, NodeId, Time};

use crate::model::ChurnModel;
use crate::selector::LeaveSelector;

/// The membership changes decided for one time unit: `leaves` are existing
/// processes to remove, `joins` are fresh identities to enter (the driver
/// never reuses ids — infinite arrival model).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChurnStep {
    /// Processes that leave this time unit.
    pub leaves: Vec<NodeId>,
    /// Fresh processes that enter this time unit.
    pub joins: Vec<NodeId>,
}

impl ChurnStep {
    /// Whether nothing changes this time unit.
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty() && self.joins.is_empty()
    }
}

/// Stateful churn driver: owns the model, the victim selector, the protected
/// set and the fresh-id source.
///
/// The driver only *decides*; the simulation runtime applies the decisions
/// (removing actors, starting `join` operations), because a join is a
/// protocol-level operation, not a membership flag flip.
///
/// # Example
///
/// ```
/// use dynareg_churn::{ChurnDriver, ConstantRate, LeaveSelector};
/// use dynareg_net::Presence;
/// use dynareg_sim::{DetRng, IdSource, NodeId, Time};
///
/// let mut presence = Presence::new();
/// presence.bootstrap((0..10).map(NodeId::from_raw), Time::ZERO);
/// let mut driver = ChurnDriver::new(
///     Box::new(ConstantRate::new(0.2)),
///     LeaveSelector::Random,
///     IdSource::starting_at(10),
/// );
/// let mut rng = DetRng::seed(1);
/// let step = driver.step(&presence, Time::at(1), &mut rng);
/// assert_eq!(step.leaves.len(), 2); // c·n = 0.2 × 10
/// assert_eq!(step.joins.len(), 2); // balanced: population stays at n
/// ```
#[derive(Debug)]
pub struct ChurnDriver {
    model: Box<dyn ChurnModel>,
    selector: LeaveSelector,
    ids: IdSource,
    protected: Vec<NodeId>,
    total_joins: u64,
    total_leaves: u64,
}

impl ChurnDriver {
    /// A driver over `model`, evicting per `selector`, drawing fresh ids
    /// from `ids` (start it above the initial population).
    pub fn new(model: Box<dyn ChurnModel>, selector: LeaveSelector, ids: IdSource) -> ChurnDriver {
        ChurnDriver {
            model,
            selector,
            ids,
            protected: Vec::new(),
            total_joins: 0,
            total_leaves: 0,
        }
    }

    /// Shields `node` from eviction (e.g. the single writer of the
    /// synchronous protocol, whose writes the paper implicitly assumes
    /// complete).
    pub fn protect(&mut self, node: NodeId) {
        if !self.protected.contains(&node) {
            self.protected.push(node);
        }
    }

    /// Removes eviction protection from `node`.
    pub fn unprotect(&mut self, node: NodeId) {
        self.protected.retain(|&p| p != node);
    }

    /// The currently protected processes.
    pub fn protected(&self) -> &[NodeId] {
        &self.protected
    }

    /// Decides the membership changes for the time unit starting at `now`.
    ///
    /// The number of leaves is capped by eligibility: if fewer unprotected
    /// processes are present than the model requests, only those leave
    /// (joins stay balanced with actual leaves so the population is
    /// preserved exactly).
    pub fn step(&mut self, presence: &Presence, now: Time, rng: &mut DetRng) -> ChurnStep {
        let n = presence.present_count();
        let want = self.model.refreshes(now, n, rng);
        let mut leaves = Vec::with_capacity(want);
        // Simulate eviction without mutating presence: track tentatively
        // removed ids in the protection list view.
        let mut excluded: Vec<NodeId> = self.protected.clone();
        for _ in 0..want {
            match self.selector.pick(presence, &excluded, rng) {
                Some(victim) => {
                    excluded.push(victim);
                    leaves.push(victim);
                }
                None => break,
            }
        }
        // Unpaired arrivals (flash crowds) grow the population on top of
        // the balanced refresh pairs.
        let extra = self.model.extra_joins(now, n, rng);
        let joins: Vec<NodeId> = (0..leaves.len() + extra)
            .map(|_| self.ids.fresh_node())
            .collect();
        self.total_joins += joins.len() as u64;
        self.total_leaves += leaves.len() as u64;
        ChurnStep { leaves, joins }
    }

    /// Total joins decided so far.
    pub fn total_joins(&self) -> u64 {
        self.total_joins
    }

    /// Total leaves decided so far.
    pub fn total_leaves(&self) -> u64 {
        self.total_leaves
    }

    /// The model's nominal churn rate, if defined.
    pub fn nominal_rate(&self) -> Option<f64> {
        self.model.nominal_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ConstantRate, NoChurn};

    fn n(i: u64) -> NodeId {
        NodeId::from_raw(i)
    }

    fn world(count: u64) -> Presence {
        let mut p = Presence::new();
        p.bootstrap((0..count).map(NodeId::from_raw), Time::ZERO);
        p
    }

    fn driver(c: f64, start: u64) -> ChurnDriver {
        ChurnDriver::new(
            Box::new(ConstantRate::new(c)),
            LeaveSelector::Random,
            IdSource::starting_at(start),
        )
    }

    #[test]
    fn balanced_step_preserves_population_arithmetic() {
        let p = world(20);
        let mut d = driver(0.1, 20);
        let mut rng = DetRng::seed(1);
        let step = d.step(&p, Time::at(1), &mut rng);
        assert_eq!(step.leaves.len(), 2);
        assert_eq!(step.joins.len(), 2);
        assert!(
            step.joins.iter().all(|id| id.as_raw() >= 20),
            "fresh ids only"
        );
    }

    #[test]
    fn leaves_are_distinct() {
        let p = world(10);
        let mut d = driver(0.5, 10);
        let mut rng = DetRng::seed(2);
        let step = d.step(&p, Time::at(1), &mut rng);
        let mut unique = step.leaves.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), step.leaves.len());
    }

    #[test]
    fn protection_is_honoured_and_caps_eviction() {
        let p = world(3);
        let mut d = driver(1.0, 3);
        d.protect(n(0));
        d.protect(n(1));
        let mut rng = DetRng::seed(3);
        let step = d.step(&p, Time::at(1), &mut rng);
        assert_eq!(step.leaves, vec![n(2)]);
        assert_eq!(step.joins.len(), 1, "joins balance actual leaves");
    }

    #[test]
    fn unprotect_restores_eligibility() {
        let p = world(1);
        let mut d = driver(1.0, 1);
        d.protect(n(0));
        d.unprotect(n(0));
        let mut rng = DetRng::seed(4);
        assert_eq!(d.step(&p, Time::at(1), &mut rng).leaves, vec![n(0)]);
    }

    #[test]
    fn no_churn_driver_is_quiet() {
        let p = world(10);
        let mut d = ChurnDriver::new(Box::new(NoChurn), LeaveSelector::Random, IdSource::new());
        let mut rng = DetRng::seed(5);
        for t in 1..50 {
            assert!(d.step(&p, Time::at(t), &mut rng).is_empty());
        }
        assert_eq!(d.total_joins(), 0);
    }

    #[test]
    fn flash_crowd_steps_grow_the_population() {
        use crate::model::FlashCrowd;
        let p = world(10);
        let mut d = ChurnDriver::new(
            Box::new(FlashCrowd::new(0.1, 2, 0, 5, 1)),
            LeaveSelector::Random,
            IdSource::starting_at(10),
        );
        let mut rng = DetRng::seed(7);
        let quiet = d.step(&p, Time::at(1), &mut rng);
        assert_eq!(quiet.joins.len(), quiet.leaves.len());
        let wave = d.step(&p, Time::at(2), &mut rng);
        assert_eq!(wave.joins.len(), wave.leaves.len() + 5);
        let mut unique = wave.joins.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), wave.joins.len(), "fresh ids are distinct");
    }

    #[test]
    fn totals_accumulate() {
        let p = world(10);
        let mut d = driver(0.2, 10);
        let mut rng = DetRng::seed(6);
        for t in 1..=5 {
            d.step(&p, Time::at(t), &mut rng);
        }
        assert_eq!(d.total_leaves(), 10);
        assert_eq!(d.total_joins(), 10);
    }
}
