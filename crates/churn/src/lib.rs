//! # dynareg-churn — dynamicity models
//!
//! The paper (§2.1) captures dynamicity with a single parameter, the **churn
//! rate** `c`: *"while the number of processes remains constant (equal to n),
//! in every time unit `c·n` processes leave the system and the same number of
//! processes join the system."* This crate provides:
//!
//! * [`ConstantRate`] — the paper's model, with exact fractional accounting
//!   (at `c·n = 2.5`, ticks alternate between 2 and 3 refreshes so the
//!   long-run rate is exact);
//! * extension models after the tractable-churn catalogue of Ko, Hoque &
//!   Gupta \[19\]: [`PoissonChurn`], [`BurstChurn`], [`DiurnalChurn`],
//!   heavy-tailed [`SessionChurn`], and population-growing [`FlashCrowd`];
//! * [`LeaveSelector`] policies — who gets evicted matters: the paper's
//!   Lemma 2 worst case is "the `nc` processes that left … were present at
//!   time τ" (i.e. the adversary removes *active* processes, never joiners),
//!   which [`LeaveSelector::ActiveFirst`] reproduces;
//! * [`ChurnDriver`] — turns a model + selector into concrete join/leave
//!   decisions against a [`dynareg_net::Presence`] view;
//! * [`analysis`] — measures realized churn and the Lemma 2 quantity
//!   `min_τ |A(τ, τ+w)|` from a finished run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod driver;
mod model;
mod selector;

pub use driver::{ChurnDriver, ChurnStep};
pub use model::{
    BurstChurn, ChurnModel, ConstantRate, DiurnalChurn, FlashCrowd, NoChurn, PoissonChurn,
    SessionChurn,
};
pub use selector::LeaveSelector;
