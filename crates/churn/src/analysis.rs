//! Post-run membership analytics: the measured side of Lemma 2.
//!
//! Lemma 2 of the paper states that under constant churn `c ≤ 1/(3δ)`,
//! for every `τ`: `|A(τ, τ+3δ)| ≥ n(1 − 3δc) > 0` — there is always at
//! least one process that stays active across any join window, so inquiries
//! are always answered by an up-to-date process. [`window_active_minimum`]
//! measures the left-hand side from a finished run's [`Presence`] record and
//! [`lemma2_bound`] computes the right-hand side, letting experiments plot
//! measured-vs-bound across `c` and `δ` sweeps.

use dynareg_net::Presence;
use dynareg_sim::{Span, Time};

/// Per-tick time series of `|A(τ)|` over `[start, end]` (inclusive).
pub fn active_series(presence: &Presence, start: Time, end: Time) -> Vec<usize> {
    assert!(start <= end, "interval must be ordered");
    (start.ticks()..=end.ticks())
        .map(|t| presence.active_set_at(Time::at(t)).len())
        .collect()
}

/// The minimum of `|A(τ, τ+window)|` over all `τ` in `[start, end − window]`:
/// the measured quantity Lemma 2 lower-bounds.
///
/// Returns `None` if the interval is shorter than the window.
pub fn window_active_minimum(
    presence: &Presence,
    start: Time,
    end: Time,
    window: Span,
) -> Option<usize> {
    assert!(start <= end, "interval must be ordered");
    let last_start = end.ticks().checked_sub(window.as_ticks())?;
    if last_start < start.ticks() {
        return None;
    }
    (start.ticks()..=last_start)
        .map(|t| presence.active_count_throughout(Time::at(t), Time::at(t) + window))
        .min()
}

/// Lemma 2's analytical lower bound `n(1 − 3δc)`, clamped at zero.
///
/// Note: the paper's derivation assumes all `n` processes are *active* at
/// the window start, which is exact at `τ = 0` but not in steady state —
/// see [`lemma2_steady_bound`] for the pipeline-corrected floor our
/// experiments measure against.
pub fn lemma2_bound(n: usize, delta: Span, c: f64) -> f64 {
    (n as f64 * (1.0 - 3.0 * delta.as_ticks() as f64 * c)).max(0.0)
}

/// The **pipeline-corrected** steady-state floor `n(1 − 2·3δc)`, clamped
/// at zero.
///
/// In steady state, `3δ·c·n` processes are permanently inside the `3δ`-long
/// join pipeline (listening, not yet active), so a window starting at an
/// arbitrary `τ` opens with only `n(1 − 3δc)` active processes, of which
/// churn may remove another `3δ·c·n` before the window closes:
///
/// ```text
/// |A(τ, τ+3δ)| ≥ n − 3δcn (in pipeline) − 3δcn (departures) = n(1 − 6δc)
/// ```
///
/// The paper's Lemma 2 derivation computes the second deduction only
/// (starting from `|A(τ)| = n`, exact at `τ = 0`); our measured minima
/// track this corrected bound instead — one of the reproduction's findings
/// (`EXPERIMENTS.md`, E4). Positivity then requires `c < 1/(6δ)`, half the
/// paper's stated `1/(3δ)` threshold, under worst-case victim selection.
pub fn lemma2_steady_bound(n: usize, delta: Span, c: f64) -> f64 {
    (n as f64 * (1.0 - 6.0 * delta.as_ticks() as f64 * c)).max(0.0)
}

/// The paper's synchronous-protocol churn threshold `1/(3δ)` (Theorem 1).
pub fn sync_churn_threshold(delta: Span) -> f64 {
    1.0 / (3.0 * delta.as_ticks() as f64)
}

/// The paper's eventually-synchronous churn threshold `1/(3δn)` (§5.2).
pub fn es_churn_threshold(delta: Span, n: usize) -> f64 {
    1.0 / (3.0 * delta.as_ticks() as f64 * n as f64)
}

/// Realized churn rate of a finished run: departures per tick divided by
/// nominal population, measured over `[start, end]`.
pub fn realized_churn_rate(presence: &Presence, n: usize, start: Time, end: Time) -> f64 {
    assert!(start < end, "interval must be non-empty");
    let departures = presence_departures_in(presence, start, end);
    let ticks = (end - start).as_ticks() as f64;
    departures as f64 / (ticks * n as f64)
}

fn presence_departures_in(presence: &Presence, start: Time, end: Time) -> usize {
    presence
        .records()
        .filter(|(_, r)| r.left_at.is_some_and(|l| start <= l && l <= end))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynareg_sim::NodeId;

    fn n(i: u64) -> NodeId {
        NodeId::from_raw(i)
    }

    /// Build: 4 bootstrap nodes; n1 leaves at t5; n10 enters t3, activates
    /// t6; n2 leaves t8.
    fn sample_presence() -> Presence {
        let mut p = Presence::new();
        p.bootstrap([n(0), n(1), n(2), n(3)], Time::ZERO);
        p.enter(n(10), Time::at(3));
        p.leave(n(1), Time::at(5));
        p.activate(n(10), Time::at(6));
        p.leave(n(2), Time::at(8));
        p
    }

    #[test]
    fn active_series_tracks_transitions() {
        let p = sample_presence();
        let series = active_series(&p, Time::ZERO, Time::at(9));
        assert_eq!(series, vec![4, 4, 4, 4, 4, 3, 4, 4, 3, 3]);
    }

    #[test]
    fn window_minimum_is_tightest_interval() {
        let p = sample_presence();
        // Window of 3: worst interval [5,8] or [4,7]… compute explicitly:
        let w = window_active_minimum(&p, Time::ZERO, Time::at(9), Span::ticks(3)).unwrap();
        // A(5,8): active throughout [5,8] = {0,3} (1 left at 5 — not active
        // at 5; 2 leaves at 8 — not active at 8; 10 activates at 6 — not at 5).
        assert_eq!(w, 2);
    }

    #[test]
    fn window_longer_than_run_is_none() {
        let p = sample_presence();
        assert_eq!(
            window_active_minimum(&p, Time::ZERO, Time::at(4), Span::ticks(10)),
            None
        );
    }

    #[test]
    fn lemma2_bound_matches_formula_and_clamps() {
        assert_eq!(lemma2_bound(100, Span::ticks(5), 0.02), 100.0 * (1.0 - 0.3));
        assert_eq!(lemma2_bound(100, Span::ticks(5), 0.2), 0.0);
    }

    #[test]
    fn thresholds_match_paper_formulas() {
        assert!((sync_churn_threshold(Span::ticks(5)) - 1.0 / 15.0).abs() < 1e-12);
        assert!((es_churn_threshold(Span::ticks(5), 100) - 1.0 / 1500.0).abs() < 1e-12);
    }

    #[test]
    fn realized_churn_counts_departures() {
        let p = sample_presence();
        // Two departures (t5, t8) in [0,10], n = 4 → 2/(10·4) = 0.05.
        let rate = realized_churn_rate(&p, 4, Time::ZERO, Time::at(10));
        assert!((rate - 0.05).abs() < 1e-12, "rate={rate}");
    }
}
