//! Process lifecycle tracking and the paper's active-set queries.
//!
//! §2.1 of the paper, Definition 1: *"A process is active from the time it
//! returns from the join operation until the time it leaves the system.
//! `A(τ)` denotes the set of processes that are active at time `τ`, while
//! `A(τ₁, τ₂)` denotes the set of processes that are active during the whole
//! interval `[τ₁, τ₂]`."*
//!
//! [`Presence`] keeps both the *current* listening/active sets (for message
//! routing and churn victim selection) and the full per-node [`LifeRecord`]
//! history (for `A(τ)` / `A(τ₁, τ₂)` measurements after the fact — the
//! Lemma 2 experiment).

use std::collections::{BTreeMap, BTreeSet};

use dynareg_sim::{NodeId, Time};

/// Lifecycle phase of a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeStatus {
    /// Entered the system and executing `join`: receives and processes
    /// messages (the paper's *listening mode*) but has not yet returned from
    /// `join`.
    Listening,
    /// Returned from `join`; may invoke `read`/`write` and answers inquiries.
    Active,
    /// Left the system (voluntarily or crashed — indistinguishable in the
    /// model). Never comes back under this identity.
    Left,
}

/// Immutable-once-complete lifecycle record of one process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LifeRecord {
    /// Instant the process entered the system (start of `join`).
    pub entered_at: Time,
    /// Instant `join` returned, if it ever did.
    pub activated_at: Option<Time>,
    /// Instant the process left, if it has.
    pub left_at: Option<Time>,
}

impl LifeRecord {
    /// Whether the process was *present* (listening or active) at `t`.
    pub fn present_at(&self, t: Time) -> bool {
        self.entered_at <= t && self.left_at.is_none_or(|l| t < l)
    }

    /// Whether the process was *active* at `t` (the paper's `p ∈ A(t)`).
    pub fn active_at(&self, t: Time) -> bool {
        self.activated_at.is_some_and(|a| a <= t) && self.left_at.is_none_or(|l| t < l)
    }

    /// Whether the process was active during the whole `[t1, t2]` interval
    /// (the paper's `p ∈ A(t1, t2)`).
    pub fn active_throughout(&self, t1: Time, t2: Time) -> bool {
        debug_assert!(t1 <= t2);
        self.activated_at.is_some_and(|a| a <= t1) && self.left_at.is_none_or(|l| t2 < l)
    }
}

/// Tracks which processes are in the system, their mode, and the full
/// lifecycle history of the run.
///
/// # Example
///
/// ```
/// use dynareg_net::{Presence, NodeStatus};
/// use dynareg_sim::{NodeId, Time};
///
/// let mut p = Presence::new();
/// let a = NodeId::from_raw(0);
/// p.enter(a, Time::at(1));
/// assert_eq!(p.status(a), Some(NodeStatus::Listening));
/// p.activate(a, Time::at(4));
/// assert_eq!(p.active_count(), 1);
/// p.leave(a, Time::at(9));
/// assert_eq!(p.status(a), Some(NodeStatus::Left));
/// assert_eq!(p.active_set_at(Time::at(5)).len(), 1);
/// assert_eq!(p.active_set_at(Time::at(9)).len(), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Presence {
    // Ordered containers throughout, so iteration order (and thus the whole
    // simulation, and every history report derived from it) is
    // deterministic. Record access is one lookup per lifecycle event; the
    // history queries below iterate, which a hash map must never back.
    records: BTreeMap<NodeId, LifeRecord>,
    listening: BTreeSet<NodeId>,
    active: BTreeSet<NodeId>,
    /// Sorted dense mirror of listening ∪ active. Broadcast snapshots and
    /// churn victim selection walk the present set once per broadcast/
    /// departure — a contiguous slice scan there is measurably cheaper
    /// than a two-set union cursor at production populations, and churn
    /// (one membership change per event) keeps the insert/remove cost
    /// trivial.
    present_sorted: Vec<NodeId>,
}

impl Presence {
    /// An empty system.
    pub fn new() -> Presence {
        Presence::default()
    }

    /// Bootstraps the initial population: `ids` are present *and active* at
    /// `t0`, as in the paper's initialization ("Initially, n processes
    /// compose the system … `active_k = true`").
    pub fn bootstrap<I: IntoIterator<Item = NodeId>>(&mut self, ids: I, t0: Time) {
        for id in ids {
            self.enter(id, t0);
            self.activate(id, t0);
        }
    }

    /// Records that `node` entered the system at `t` (listening mode).
    ///
    /// # Panics
    /// Panics if `node` was ever in the system before: the infinite-arrival
    /// model forbids identity reuse.
    pub fn enter(&mut self, node: NodeId, t: Time) {
        let prev = self.records.insert(
            node,
            LifeRecord {
                entered_at: t,
                activated_at: None,
                left_at: None,
            },
        );
        assert!(
            prev.is_none(),
            "{node} re-entered the system; ids are single-use"
        );
        self.listening.insert(node);
        let i = self
            .present_sorted
            .binary_search(&node)
            .expect_err("fresh id cannot already be present");
        self.present_sorted.insert(i, node);
    }

    /// Records that `node`'s join returned at `t`.
    ///
    /// # Panics
    /// Panics if `node` is not currently listening.
    pub fn activate(&mut self, node: NodeId, t: Time) {
        assert!(
            self.listening.remove(&node),
            "{node} activated while not listening"
        );
        self.active.insert(node);
        let rec = self.records.get_mut(&node).expect("record exists");
        rec.activated_at = Some(t);
    }

    /// Records that `node` left at `t`. Idempotence is *not* provided: a
    /// node leaves at most once.
    ///
    /// # Panics
    /// Panics if `node` is not currently present.
    pub fn leave(&mut self, node: NodeId, t: Time) {
        let was_present = self.listening.remove(&node) | self.active.remove(&node);
        assert!(was_present, "{node} left while not present");
        let i = self
            .present_sorted
            .binary_search(&node)
            .expect("present node is in the sorted mirror");
        self.present_sorted.remove(i);
        let rec = self.records.get_mut(&node).expect("record exists");
        rec.left_at = Some(t);
    }

    /// Current status of `node`, or `None` if it never entered.
    pub fn status(&self, node: NodeId) -> Option<NodeStatus> {
        let rec = self.records.get(&node)?;
        Some(if rec.left_at.is_some() {
            NodeStatus::Left
        } else if rec.activated_at.is_some() {
            NodeStatus::Active
        } else {
            NodeStatus::Listening
        })
    }

    /// Whether `node` is currently in the system (listening or active).
    pub fn is_present(&self, node: NodeId) -> bool {
        self.listening.contains(&node) || self.active.contains(&node)
    }

    /// Whether `node` is currently active.
    pub fn is_active(&self, node: NodeId) -> bool {
        self.active.contains(&node)
    }

    /// Currently present processes (listening ∪ active), in id order.
    pub fn present_nodes(&self) -> Vec<NodeId> {
        self.present_sorted.clone()
    }

    /// Currently present processes as a sorted slice, without allocating —
    /// the broadcast-snapshot and victim-selection hot path.
    pub fn present_slice(&self) -> &[NodeId] {
        &self.present_sorted
    }

    /// Iterates currently present processes (listening ∪ active) in id
    /// order without allocating.
    pub fn present_iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.present_sorted.iter().copied()
    }

    /// Currently active processes, in id order.
    pub fn active_nodes(&self) -> Vec<NodeId> {
        self.active.iter().copied().collect()
    }

    /// Currently listening (joining) processes, in id order.
    pub fn listening_nodes(&self) -> Vec<NodeId> {
        self.listening.iter().copied().collect()
    }

    /// Number of present processes (the paper's constant `n`, if churn is
    /// balanced).
    pub fn present_count(&self) -> usize {
        debug_assert_eq!(
            self.present_sorted.len(),
            self.listening.len() + self.active.len()
        );
        self.present_sorted.len()
    }

    /// Number of active processes, `|A(now)|`.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Lifecycle record for `node`, if it ever entered.
    pub fn record(&self, node: NodeId) -> Option<&LifeRecord> {
        self.records.get(&node)
    }

    /// Historical `A(τ)`: processes active at instant `t`, in node-id order
    /// (free: `records` is ordered).
    pub fn active_set_at(&self, t: Time) -> Vec<NodeId> {
        self.records
            .iter()
            .filter(|(_, r)| r.active_at(t))
            .map(|(&id, _)| id)
            .collect()
    }

    /// Historical `A(τ₁, τ₂)`: processes active during the whole interval,
    /// in node-id order.
    ///
    /// # Panics
    /// Panics if `t1 > t2`.
    pub fn active_set_throughout(&self, t1: Time, t2: Time) -> Vec<NodeId> {
        assert!(t1 <= t2, "interval must be ordered");
        self.records
            .iter()
            .filter(|(_, r)| r.active_throughout(t1, t2))
            .map(|(&id, _)| id)
            .collect()
    }

    /// `|A(τ₁, τ₂)|` without materializing the set.
    pub fn active_count_throughout(&self, t1: Time, t2: Time) -> usize {
        assert!(t1 <= t2, "interval must be ordered");
        self.records
            .values()
            .filter(|r| r.active_throughout(t1, t2))
            .count()
    }

    /// Iterates over every lifecycle record of the run (including departed
    /// processes), in node-id order.
    pub fn records(&self) -> impl Iterator<Item = (NodeId, &LifeRecord)> + '_ {
        self.records.iter().map(|(&id, r)| (id, r))
    }

    /// Total number of processes that ever entered over the run.
    pub fn total_arrivals(&self) -> usize {
        self.records.len()
    }

    /// Total number of processes that have left over the run.
    pub fn total_departures(&self) -> usize {
        self.records
            .values()
            .filter(|r| r.left_at.is_some())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u64) -> NodeId {
        NodeId::from_raw(i)
    }

    fn system_with_three() -> Presence {
        let mut p = Presence::new();
        p.bootstrap([n(0), n(1), n(2)], Time::ZERO);
        p
    }

    #[test]
    fn bootstrap_makes_everyone_active() {
        let p = system_with_three();
        assert_eq!(p.active_count(), 3);
        assert_eq!(p.present_count(), 3);
        assert_eq!(p.listening_nodes(), Vec::<NodeId>::new());
    }

    #[test]
    fn lifecycle_transitions() {
        let mut p = system_with_three();
        p.enter(n(7), Time::at(5));
        assert_eq!(p.status(n(7)), Some(NodeStatus::Listening));
        assert!(p.is_present(n(7)));
        assert!(!p.is_active(n(7)));
        p.activate(n(7), Time::at(8));
        assert_eq!(p.status(n(7)), Some(NodeStatus::Active));
        p.leave(n(7), Time::at(12));
        assert_eq!(p.status(n(7)), Some(NodeStatus::Left));
        assert!(!p.is_present(n(7)));
    }

    #[test]
    fn leaving_while_listening_is_allowed() {
        // Joins are not guaranteed to complete if the process leaves (the
        // liveness property only covers processes that stay).
        let mut p = system_with_three();
        p.enter(n(9), Time::at(3));
        p.leave(n(9), Time::at(4));
        assert_eq!(p.status(n(9)), Some(NodeStatus::Left));
        assert_eq!(p.record(n(9)).unwrap().activated_at, None);
    }

    #[test]
    #[should_panic(expected = "re-entered")]
    fn identity_reuse_is_rejected() {
        let mut p = system_with_three();
        p.leave(n(0), Time::at(1));
        p.enter(n(0), Time::at(2));
    }

    #[test]
    #[should_panic(expected = "not listening")]
    fn double_activation_is_rejected() {
        let mut p = system_with_three();
        p.activate(n(0), Time::at(1)); // already active from bootstrap
    }

    #[test]
    #[should_panic(expected = "not present")]
    fn leave_of_absent_node_is_rejected() {
        let mut p = Presence::new();
        p.leave(n(3), Time::at(1));
    }

    #[test]
    fn historical_active_at_queries() {
        let mut p = Presence::new();
        p.enter(n(1), Time::at(0));
        p.activate(n(1), Time::at(3));
        p.leave(n(1), Time::at(10));
        assert!(!p.record(n(1)).unwrap().active_at(Time::at(2)));
        assert!(p.record(n(1)).unwrap().active_at(Time::at(3)));
        assert!(p.record(n(1)).unwrap().active_at(Time::at(9)));
        // Departure instant is exclusive: at t=10 the process is gone.
        assert!(!p.record(n(1)).unwrap().active_at(Time::at(10)));
    }

    #[test]
    fn interval_query_requires_whole_interval() {
        let mut p = Presence::new();
        // n1 active [2, 20); n2 active [5, 8)
        p.enter(n(1), Time::at(0));
        p.activate(n(1), Time::at(2));
        p.leave(n(1), Time::at(20));
        p.enter(n(2), Time::at(4));
        p.activate(n(2), Time::at(5));
        p.leave(n(2), Time::at(8));
        assert_eq!(
            p.active_set_throughout(Time::at(5), Time::at(7)),
            vec![n(1), n(2)]
        );
        assert_eq!(
            p.active_set_throughout(Time::at(5), Time::at(8)),
            vec![n(1)]
        );
        assert_eq!(p.active_count_throughout(Time::at(3), Time::at(4)), 1);
    }

    #[test]
    fn present_at_includes_listening_period() {
        let mut p = Presence::new();
        p.enter(n(1), Time::at(5));
        let r = *p.record(n(1)).unwrap();
        assert!(!r.present_at(Time::at(4)));
        assert!(r.present_at(Time::at(5)));
        assert!(!r.active_at(Time::at(5)));
    }

    #[test]
    fn arrival_departure_totals() {
        let mut p = system_with_three();
        p.enter(n(5), Time::at(1));
        p.leave(n(0), Time::at(2));
        assert_eq!(p.total_arrivals(), 4);
        assert_eq!(p.total_departures(), 1);
    }

    #[test]
    fn present_nodes_sorted_and_complete() {
        let mut p = Presence::new();
        p.bootstrap([n(3), n(1)], Time::ZERO);
        p.enter(n(2), Time::at(1));
        assert_eq!(p.present_nodes(), vec![n(1), n(2), n(3)]);
        assert_eq!(p.active_nodes(), vec![n(1), n(3)]);
    }
}
