//! # dynareg-net — timed network substrate
//!
//! Models the communication layer assumed by Baldoni et al. (ICDCS 2009):
//!
//! * **Presence** (§2.1, Definition 1): every process is *listening* from the
//!   instant its `join` begins, *active* from the instant `join` returns, and
//!   gone forever once it leaves. [`Presence`] tracks the lifecycle and
//!   answers the paper's `A(τ)` / `A(τ₁, τ₂)` active-set queries, which the
//!   Lemma 2 experiment measures directly.
//! * **Point-to-point channels** (§3.2): reliable — no loss, duplication or
//!   corruption — with latency drawn from a [`DelayModel`]. A process may
//!   send to any process it knows has entered the system.
//! * **Timely broadcast** (§3.2, after Hadzilacos–Toueg \[15\] and Friedman
//!   et al. \[10\]): a message broadcast at `τ` is delivered by `τ + δ` to every
//!   process in the system during `[τ, τ+δ]`. Processes that enter *after*
//!   `τ` have **no delivery guarantee** — exactly the hazard of the paper's
//!   Figure 3(a) — which [`Network::broadcast`] models by snapshotting the
//!   present set at send time.
//! * **Synchrony classes**: [`delay::Synchronous`] (§3), [`delay::Asynchronous`]
//!   (§4, unbounded delays), and [`delay::EventuallySynchronous`] (§5, bounded
//!   only after an unknown GST).
//!
//! The network is *sans-queue*: `send` returns an [`Envelope`] and
//! `broadcast` a zero-copy [`Fanout`], each carrying computed delivery
//! instants that the simulation runtime schedules. This keeps the substrate
//! unit-testable in isolation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod delay;
mod fault;
mod network;
mod presence;

pub use delay::DelayModel;
pub use fault::{
    DelayFault, DropKind, DropRule, FaultAction, FaultPlan, FaultVerdict, NodeSet, Partition,
    RegionMatrix,
};
pub use network::{Envelope, Fanout, MsgRecord, Network, SendFate};
pub use presence::{LifeRecord, NodeStatus, Presence};
