//! Reliable unicast and timely broadcast over a delay model.
//!
//! [`Network`] is deliberately *sans-queue*: it computes delivery instants
//! and returns [`Envelope`]s; the simulation runtime schedules them on its
//! event queue and consults [`Network::should_deliver`] at delivery time
//! (a recipient may have left while the message was in flight — the paper's
//! processes "no longer send or receive messages" after leaving).

use std::collections::BTreeMap;

use dynareg_sim::{DetRng, NodeId, Time};

use crate::delay::DelayModel;
use crate::fault::FaultPlan;
use crate::presence::Presence;

/// A message in flight: who, what, when sent, when (tentatively) delivered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Sender.
    pub from: NodeId,
    /// Recipient.
    pub to: NodeId,
    /// Instant the message was sent/broadcast.
    pub sent_at: Time,
    /// Instant it arrives (if the recipient is still present then).
    pub deliver_at: Time,
    /// Protocol-level label for tracing and statistics (e.g. `"INQUIRY"`).
    pub label: &'static str,
    /// The payload.
    pub msg: M,
}

/// The communication substrate: reliable point-to-point channels plus the
/// paper's timely broadcast, parameterized by a [`DelayModel`] and an
/// optional [`FaultPlan`].
///
/// # Example
///
/// ```
/// use dynareg_net::{Network, Presence};
/// use dynareg_net::delay::Synchronous;
/// use dynareg_sim::{DetRng, NodeId, Span, Time};
///
/// let mut presence = Presence::new();
/// presence.bootstrap((0..3).map(NodeId::from_raw), Time::ZERO);
/// let mut net = Network::new(Box::new(Synchronous::new(Span::ticks(4))), DetRng::seed(7));
///
/// let envs = net.broadcast(&presence, Time::ZERO, NodeId::from_raw(0), "PING", ());
/// assert_eq!(envs.len(), 3); // self-delivery included
/// assert!(envs.iter().all(|e| e.deliver_at <= Time::at(4)));
/// ```
#[derive(Debug)]
pub struct Network {
    delay: Box<dyn DelayModel>,
    faults: FaultPlan,
    rng: DetRng,
    sent_by_label: BTreeMap<&'static str, u64>,
    dropped_departed: u64,
}

impl Network {
    /// A network over the given delay model, drawing latency randomness from
    /// `rng`.
    pub fn new(delay: Box<dyn DelayModel>, rng: DetRng) -> Network {
        Network {
            delay,
            faults: FaultPlan::none(),
            rng,
            sent_by_label: BTreeMap::new(),
            dropped_departed: 0,
        }
    }

    /// Installs a fault plan (replacing any previous one).
    pub fn set_faults(&mut self, faults: FaultPlan) {
        self.faults = faults;
    }

    /// The delay model's advertised bound `δ`, if the synchrony class has
    /// one.
    pub fn delta(&self) -> Option<dynareg_sim::Span> {
        self.delay.delta()
    }

    /// First instant from which the network is synchronous (GST).
    pub fn synchronous_from(&self) -> Time {
        self.delay.synchronous_from()
    }

    fn latency(&mut self, now: Time, from: NodeId, to: NodeId) -> dynareg_sim::Span {
        let base = self.delay.sample(now, from, to, &mut self.rng);
        self.faults.apply(base, now, from, to)
    }

    /// Sends `msg` point-to-point from `from` to `to` at `now`.
    ///
    /// Returns `None` when `to` is not present (already left, or never
    /// entered): the channel to a departed process carries nothing.
    ///
    /// # Panics
    /// Panics if the sender is not present — a departed process "does no
    /// longer send … messages" (§2.1).
    pub fn send<M>(
        &mut self,
        presence: &Presence,
        now: Time,
        from: NodeId,
        to: NodeId,
        label: &'static str,
        msg: M,
    ) -> Option<Envelope<M>> {
        assert!(presence.is_present(from), "departed sender {from}");
        if !presence.is_present(to) {
            self.dropped_departed += 1;
            return None;
        }
        *self.sent_by_label.entry(label).or_insert(0) += 1;
        let deliver_at = now + self.latency(now, from, to);
        Some(Envelope {
            from,
            to,
            sent_at: now,
            deliver_at,
            label,
            msg,
        })
    }

    /// Broadcasts `msg` to **every process in the system at `now`**
    /// (listening and active, including the sender), each copy with its own
    /// sampled latency.
    ///
    /// This is the paper's timely broadcast: under a synchronous model every
    /// copy lands within `δ`; processes entering *after* `now` receive
    /// nothing (the Figure 3(a) hazard).
    ///
    /// # Panics
    /// Panics if the sender is not present.
    pub fn broadcast<M: Clone>(
        &mut self,
        presence: &Presence,
        now: Time,
        from: NodeId,
        label: &'static str,
        msg: M,
    ) -> Vec<Envelope<M>> {
        assert!(presence.is_present(from), "departed sender {from}");
        let recipients = presence.present_nodes(); // sorted → deterministic
        *self.sent_by_label.entry(label).or_insert(0) += recipients.len() as u64;
        recipients
            .into_iter()
            .map(|to| {
                let deliver_at = now + self.latency(now, from, to);
                Envelope {
                    from,
                    to,
                    sent_at: now,
                    deliver_at,
                    label,
                    msg: msg.clone(),
                }
            })
            .collect()
    }

    /// Whether an in-flight envelope should still be delivered: the
    /// recipient must not have left. (Listening recipients *do* receive —
    /// the paper's listening mode starts at the beginning of `join`.)
    pub fn should_deliver<M>(&mut self, presence: &Presence, env: &Envelope<M>) -> bool {
        if presence.is_present(env.to) {
            true
        } else {
            self.dropped_departed += 1;
            false
        }
    }

    /// Messages sent so far, by label (broadcast counts one per recipient).
    pub fn sent_by_label(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.sent_by_label.iter().map(|(&k, &v)| (k, v))
    }

    /// Total messages sent (all labels).
    pub fn total_sent(&self) -> u64 {
        self.sent_by_label.values().sum()
    }

    /// Messages abandoned because their target had left (at send or delivery
    /// time).
    pub fn dropped_to_departed(&self) -> u64 {
        self.dropped_departed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::{Fixed, Synchronous};
    use crate::fault::DelayFault;
    use dynareg_sim::Span;

    fn n(i: u64) -> NodeId {
        NodeId::from_raw(i)
    }

    fn three_node_world() -> (Presence, Network) {
        let mut p = Presence::new();
        p.bootstrap([n(0), n(1), n(2)], Time::ZERO);
        let net = Network::new(Box::new(Synchronous::new(Span::ticks(5))), DetRng::seed(1));
        (p, net)
    }

    #[test]
    fn unicast_within_delta() {
        let (p, mut net) = three_node_world();
        for _ in 0..500 {
            let e = net.send(&p, Time::at(10), n(0), n(1), "X", 42u64).unwrap();
            assert!(e.deliver_at > Time::at(10) && e.deliver_at <= Time::at(15));
            assert_eq!(e.msg, 42);
        }
    }

    #[test]
    fn send_to_departed_returns_none() {
        let (mut p, mut net) = three_node_world();
        p.leave(n(1), Time::at(1));
        assert!(net.send(&p, Time::at(2), n(0), n(1), "X", ()).is_none());
        assert_eq!(net.dropped_to_departed(), 1);
    }

    #[test]
    #[should_panic(expected = "departed sender")]
    fn departed_sender_panics() {
        let (mut p, mut net) = three_node_world();
        p.leave(n(0), Time::at(1));
        let _ = net.send(&p, Time::at(2), n(0), n(1), "X", ());
    }

    #[test]
    fn broadcast_reaches_snapshot_including_self_and_listeners() {
        let (mut p, mut net) = three_node_world();
        p.enter(n(9), Time::at(1)); // listening joiner must receive
        let envs = net.broadcast(&p, Time::at(2), n(0), "WRITE", 7u64);
        let mut tos: Vec<NodeId> = envs.iter().map(|e| e.to).collect();
        tos.sort_unstable();
        assert_eq!(tos, vec![n(0), n(1), n(2), n(9)]);
    }

    #[test]
    fn broadcast_misses_later_arrivals() {
        let (mut p, mut net) = three_node_world();
        let envs = net.broadcast(&p, Time::at(2), n(0), "WRITE", ());
        p.enter(n(9), Time::at(3)); // enters after the broadcast
        assert!(envs.iter().all(|e| e.to != n(9)));
    }

    #[test]
    fn delivery_check_drops_for_departed_recipient() {
        let (mut p, mut net) = three_node_world();
        let e = net.send(&p, Time::at(1), n(0), n(2), "X", ()).unwrap();
        p.leave(n(2), Time::at(2));
        assert!(!net.should_deliver(&p, &e));
        assert_eq!(net.dropped_to_departed(), 1);
    }

    #[test]
    fn label_statistics_count_per_recipient() {
        let (p, mut net) = three_node_world();
        net.broadcast(&p, Time::ZERO, n(0), "INQUIRY", ());
        net.send(&p, Time::ZERO, n(1), n(0), "REPLY", ()).unwrap();
        let stats: std::collections::BTreeMap<_, _> = net.sent_by_label().collect();
        assert_eq!(stats["INQUIRY"], 3);
        assert_eq!(stats["REPLY"], 1);
        assert_eq!(net.total_sent(), 4);
    }

    #[test]
    fn faults_stretch_targeted_messages() {
        let mut p = Presence::new();
        p.bootstrap([n(0), n(1)], Time::ZERO);
        let mut net = Network::new(Box::new(Fixed::new(Span::ticks(2))), DetRng::seed(3));
        net.set_faults(FaultPlan::none().with(DelayFault::starve_recipient(
            n(1),
            Time::ZERO,
            Time::MAX,
            Span::ticks(500),
        )));
        let slow = net.send(&p, Time::ZERO, n(0), n(1), "X", ()).unwrap();
        let fast = net.send(&p, Time::ZERO, n(1), n(0), "X", ()).unwrap();
        assert_eq!(slow.deliver_at, Time::at(500));
        assert_eq!(fast.deliver_at, Time::at(2));
    }

    #[test]
    fn same_seed_same_latencies() {
        let (p, mut net1) = three_node_world();
        let mut net2 = Network::new(Box::new(Synchronous::new(Span::ticks(5))), DetRng::seed(1));
        let a = net1.broadcast(&p, Time::ZERO, n(0), "X", ());
        let b = net2.broadcast(&p, Time::ZERO, n(0), "X", ());
        assert_eq!(a, b);
    }
}
