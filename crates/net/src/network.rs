//! Reliable unicast and timely broadcast over a delay model.
//!
//! [`Network`] is deliberately *sans-queue*: it computes delivery instants
//! and returns [`Envelope`]s (unicast) or a [`Fanout`] (broadcast); the
//! simulation runtime schedules them on its event queue and re-checks
//! recipient presence at delivery time (a recipient may have left while the
//! message was in flight — the paper's processes "no longer send or receive
//! messages" after leaving).

use dynareg_sim::{DetRng, NodeId, Time};

use crate::delay::DelayModel;
use crate::fault::{DropKind, FaultPlan, FaultVerdict};
use crate::presence::Presence;

/// A message in flight: who, what, when sent, when (tentatively) delivered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Sender.
    pub from: NodeId,
    /// Recipient.
    pub to: NodeId,
    /// Instant the message was sent/broadcast.
    pub sent_at: Time,
    /// Instant it arrives (if the recipient is still present then).
    pub deliver_at: Time,
    /// Protocol-level label for tracing and statistics (e.g. `"INQUIRY"`).
    pub label: &'static str,
    /// The payload.
    pub msg: M,
}

/// A broadcast in flight: **one** payload shared by every recipient, plus
/// the per-recipient delivery instants.
///
/// The seed engine materialized a broadcast as `n` cloned [`Envelope`]s up
/// front — O(n) payload clones and allocations on the hottest protocol
/// path (every `INQUIRY`/`WRITE` wave). A `Fanout` is the zero-copy
/// replacement: the payload is stored once, the recipient snapshot carries
/// only `(recipient, deliver_at)` pairs, and the runtime expands copies
/// *lazily at delivery time* (skipping recipients that left in flight, so
/// their clones never happen at all).
///
/// # Example
///
/// ```
/// use dynareg_net::{Network, Presence};
/// use dynareg_net::delay::Synchronous;
/// use dynareg_sim::{DetRng, NodeId, Span, Time};
///
/// let mut presence = Presence::new();
/// presence.bootstrap((0..3).map(NodeId::from_raw), Time::ZERO);
/// let mut net = Network::new(Box::new(Synchronous::new(Span::ticks(4))), DetRng::seed(7));
///
/// let fan = net.broadcast(&presence, Time::ZERO, NodeId::from_raw(0), "PING", ());
/// assert_eq!(fan.len(), 3); // self-delivery included
/// assert!(fan.recipients.iter().all(|&(_, at)| at <= Time::at(4)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fanout<M> {
    /// Sender.
    pub from: NodeId,
    /// Instant of the broadcast.
    pub sent_at: Time,
    /// Protocol-level label for tracing and statistics.
    pub label: &'static str,
    /// The payload, stored exactly once.
    pub msg: M,
    /// The timely-broadcast snapshot: every process present at `sent_at`
    /// (in id order, deterministic) with its sampled delivery instant.
    pub recipients: Vec<(NodeId, Time)>,
}

impl<M> Fanout<M> {
    /// Number of recipients in the snapshot.
    pub fn len(&self) -> usize {
        self.recipients.len()
    }

    /// Whether the snapshot is empty (an empty system).
    pub fn is_empty(&self) -> bool {
        self.recipients.is_empty()
    }

    /// Materializes per-recipient [`Envelope`]s, cloning the payload once
    /// per recipient. Compatibility/inspection helper — the runtime's hot
    /// path deliberately does *not* use it.
    pub fn envelopes(&self) -> impl Iterator<Item = Envelope<M>> + '_
    where
        M: Clone,
    {
        self.recipients
            .iter()
            .map(move |&(to, deliver_at)| Envelope {
                from: self.from,
                to,
                sent_at: self.sent_at,
                deliver_at,
                label: self.label,
                msg: self.msg.clone(),
            })
    }
}

/// The communication substrate: reliable point-to-point channels plus the
/// paper's timely broadcast, parameterized by a [`DelayModel`] and an
/// optional [`FaultPlan`].
///
/// # Message accounting
///
/// All send/drop statistics follow two rules, stated once here:
///
/// * **`sent_by_label` counts one unit per recipient channel actually
///   used**: a unicast [`Network::send`] to a present recipient counts 1;
///   a [`Network::broadcast`] counts one per process in its snapshot (so a
///   broadcast into an n-process system adds n). A unicast to an
///   already-departed recipient counts 0 — the channel carries nothing.
/// * **`dropped_departed` counts every message abandoned because its
///   target was gone**, whether detected at send time (unicast to a
///   departed process) or at delivery time ([`Network::should_deliver`] /
///   the runtime's equivalent slab check, reported via
///   [`Network::note_dropped_departed`]). A *sender* that has departed is
///   a protocol bug, not traffic: it panics in debug builds and counts
///   the whole attempt as dropped (without sending) in release builds,
///   identically for `send` and `broadcast`.
/// * **Fault-induced drops count as sent *and* as dropped**: a message
///   lost to a partition or a probabilistic [`crate::DropRule`] used its
///   channel (the sender paid for it), so `sent_by_label` counts it like
///   any other send — a broadcast still counts one per process in its
///   snapshot even when the fault layer swallows some copies — and the
///   loss is tallied separately under the per-rule fault-drop counters
///   ([`Network::dropped_to_faults`], [`Network::fault_drops_by_rule`]).
///   Probabilistic drops are never silent.
///
/// # Example
///
/// ```
/// use dynareg_net::{Network, Presence};
/// use dynareg_net::delay::Synchronous;
/// use dynareg_sim::{DetRng, NodeId, Span, Time};
///
/// let mut presence = Presence::new();
/// presence.bootstrap((0..3).map(NodeId::from_raw), Time::ZERO);
/// let mut net = Network::new(Box::new(Synchronous::new(Span::ticks(4))), DetRng::seed(7));
///
/// let fan = net.broadcast(&presence, Time::ZERO, NodeId::from_raw(0), "PING", ());
/// assert_eq!(fan.len(), 3); // self-delivery included
/// ```
#[derive(Debug)]
pub struct Network {
    delay: Box<dyn DelayModel>,
    faults: FaultPlan,
    rng: DetRng,
    /// Dedicated stream for fault drop coins, forked from the latency rng
    /// only when the plan can drop messages ([`FaultPlan::has_chaos`]) —
    /// so chaos-free plans leave the latency stream, and therefore the
    /// whole run, byte-identical to a network with no plan at all.
    fault_rng: Option<DetRng>,
    /// Per-label send counters. A handful of protocol labels exist and the
    /// counter is bumped once per message, so a pointer-first linear scan
    /// beats any map on the hot path; [`Network::sent_by_label`] sorts on
    /// read for deterministic reporting.
    sent_by_label: Vec<(&'static str, u64)>,
    dropped_departed: u64,
    /// Fault drops attributed per partition (index = partition order in
    /// the plan).
    dropped_by_partition: Vec<u64>,
    /// Fault drops attributed per probabilistic drop rule.
    dropped_by_drop_rule: Vec<u64>,
}

impl Network {
    /// A network over the given delay model, drawing latency randomness from
    /// `rng`.
    pub fn new(delay: Box<dyn DelayModel>, rng: DetRng) -> Network {
        Network {
            delay,
            faults: FaultPlan::none(),
            rng,
            fault_rng: None,
            sent_by_label: Vec::new(),
            dropped_departed: 0,
            dropped_by_partition: Vec::new(),
            dropped_by_drop_rule: Vec::new(),
        }
    }

    /// Adds `n` sends under `label`. Labels are interned `&'static str`s,
    /// so the common case is a pointer hit on the first few entries.
    #[inline]
    fn bump_label(&mut self, label: &'static str, n: u64) {
        for (l, c) in &mut self.sent_by_label {
            if std::ptr::eq(*l, label) || *l == label {
                *c += n;
                return;
            }
        }
        self.sent_by_label.push((label, n));
    }

    /// Installs a fault plan (replacing any previous one). Plans that can
    /// drop messages get a dedicated coin stream forked off the latency
    /// rng here, once; delay-only (and empty) plans consume nothing, so
    /// installing them is free.
    pub fn set_faults(&mut self, faults: FaultPlan) {
        self.fault_rng = if faults.has_chaos() {
            Some(self.rng.fork(0xFA))
        } else {
            None
        };
        self.dropped_by_partition = vec![0; faults.partitions().len()];
        self.dropped_by_drop_rule = vec![0; faults.drops().len()];
        self.faults = faults;
    }

    /// The delay model's advertised bound `δ`, if the synchrony class has
    /// one.
    pub fn delta(&self) -> Option<dynareg_sim::Span> {
        self.delay.delta()
    }

    /// First instant from which the network is synchronous (GST).
    pub fn synchronous_from(&self) -> Time {
        self.delay.synchronous_from()
    }

    /// Samples one message's fate: `Some(latency)` to deliver, `None` when
    /// the fault layer dropped it (already counted). The latency rng is
    /// always consumed (the base sample happens before fault resolution),
    /// so installing drop rules never shifts the latency stream of the
    /// messages that survive.
    fn route(&mut self, now: Time, from: NodeId, to: NodeId) -> Option<dynareg_sim::Span> {
        let base = self.delay.sample(now, from, to, &mut self.rng);
        let Some(coin) = self.fault_rng.as_mut().map(|r| r.unit()) else {
            return Some(self.faults.apply(base, now, from, to));
        };
        match self.faults.evaluate(base, now, from, to, coin) {
            FaultVerdict::Deliver(latency) => Some(latency),
            FaultVerdict::Dropped(DropKind::Partition(i)) => {
                self.dropped_by_partition[i] += 1;
                None
            }
            FaultVerdict::Dropped(DropKind::Random(i)) => {
                self.dropped_by_drop_rule[i] += 1;
                None
            }
        }
    }

    /// Handles a departed sender uniformly for `send` and `broadcast` (see
    /// *Message accounting* on [`Network`]): debug builds panic — sending
    /// after leaving is a protocol bug worth failing loudly on — while
    /// release builds count the abandoned attempt and carry nothing.
    fn departed_sender(&mut self, from: NodeId) {
        debug_assert!(false, "departed sender {from}");
        let _ = from;
        self.dropped_departed += 1;
    }

    /// Sends `msg` point-to-point from `from` to `to` at `now`.
    ///
    /// Returns `None` when `to` is not present (already left, or never
    /// entered): the channel to a departed process carries nothing. See
    /// *Message accounting* on [`Network`] for how this is counted.
    ///
    /// # Panics
    /// Panics in debug builds if the sender is not present — a departed
    /// process "does no longer send … messages" (§2.1). Release builds
    /// count the attempt toward `dropped_departed` and return `None`.
    pub fn send<M>(
        &mut self,
        presence: &Presence,
        now: Time,
        from: NodeId,
        to: NodeId,
        label: &'static str,
        msg: M,
    ) -> Option<Envelope<M>> {
        if !presence.is_present(from) {
            self.departed_sender(from);
            return None;
        }
        if !presence.is_present(to) {
            self.dropped_departed += 1;
            return None;
        }
        self.send_present(now, from, to, label, msg)
    }

    /// Unicast fast path: like [`Network::send`], but the caller attests
    /// that both endpoints are present (the runtime knows — it holds the
    /// live-node slab), so no presence lookups happen here. Returns `None`
    /// when the fault layer drops the message in flight (counted as sent
    /// *and* as a fault drop; see *Message accounting* on [`Network`]).
    pub fn send_present<M>(
        &mut self,
        now: Time,
        from: NodeId,
        to: NodeId,
        label: &'static str,
        msg: M,
    ) -> Option<Envelope<M>> {
        self.bump_label(label, 1);
        let deliver_at = now + self.route(now, from, to)?;
        Some(Envelope {
            from,
            to,
            sent_at: now,
            deliver_at,
            label,
            msg,
        })
    }

    /// Broadcasts `msg` to **every process in the system at `now`**
    /// (listening and active, including the sender), each copy with its own
    /// sampled latency.
    ///
    /// This is the paper's timely broadcast: under a synchronous model every
    /// copy lands within `δ`; processes entering *after* `now` receive
    /// nothing (the Figure 3(a) hazard). The payload is **not** cloned per
    /// recipient: the returned [`Fanout`] holds it once alongside the
    /// recipient snapshot, and the runtime expands copies at delivery time.
    ///
    /// # Panics
    /// Panics in debug builds if the sender is not present (release builds
    /// count one dropped attempt and return an empty fanout; see *Message
    /// accounting* on [`Network`]).
    pub fn broadcast<M>(
        &mut self,
        presence: &Presence,
        now: Time,
        from: NodeId,
        label: &'static str,
        msg: M,
    ) -> Fanout<M> {
        if !presence.is_present(from) {
            self.departed_sender(from);
            return Fanout {
                from,
                sent_at: now,
                label,
                msg,
                recipients: Vec::new(),
            };
        }
        let mut recipients = Vec::with_capacity(presence.present_count());
        // Id order → deterministic latency sampling. Fault-dropped copies
        // simply never enter the snapshot (the runtime schedules nothing
        // for them), but they still count as sent below.
        for to in presence.present_iter() {
            if let Some(latency) = self.route(now, from, to) {
                recipients.push((to, now + latency));
            }
        }
        self.bump_label(label, presence.present_count() as u64);
        Fanout {
            from,
            sent_at: now,
            label,
            msg,
            recipients,
        }
    }

    /// Whether an in-flight envelope should still be delivered: the
    /// recipient must not have left. (Listening recipients *do* receive —
    /// the paper's listening mode starts at the beginning of `join`.)
    pub fn should_deliver<M>(&mut self, presence: &Presence, env: &Envelope<M>) -> bool {
        if presence.is_present(env.to) {
            true
        } else {
            self.dropped_departed += 1;
            false
        }
    }

    /// Records one delivery-time drop decided *outside* the network — the
    /// runtime tracks live nodes in its own slab and calls this when an
    /// in-flight message's recipient is gone, keeping `dropped_departed`
    /// accurate without a second membership structure.
    pub fn note_dropped_departed(&mut self) {
        self.dropped_departed += 1;
    }

    /// Messages sent so far, by label (broadcast counts one per recipient;
    /// see *Message accounting* on [`Network`]).
    pub fn sent_by_label(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        let mut sorted = self.sent_by_label.clone();
        sorted.sort_unstable_by_key(|&(l, _)| l);
        sorted.into_iter()
    }

    /// Total messages sent (all labels).
    pub fn total_sent(&self) -> u64 {
        self.sent_by_label.iter().map(|&(_, v)| v).sum()
    }

    /// Messages abandoned because their target had left (at send or delivery
    /// time).
    pub fn dropped_to_departed(&self) -> u64 {
        self.dropped_departed
    }

    /// Messages dropped by the fault layer (partitions and probabilistic
    /// drop rules), total.
    pub fn dropped_to_faults(&self) -> u64 {
        self.dropped_by_partition.iter().sum::<u64>()
            + self.dropped_by_drop_rule.iter().sum::<u64>()
    }

    /// Fault drops attributed per rule, as `(kind, rule_index, count)`
    /// with kind `"partition"` or `"drop"` — indices follow the plan's
    /// insertion order.
    pub fn fault_drops_by_rule(&self) -> impl Iterator<Item = (&'static str, usize, u64)> + '_ {
        self.dropped_by_partition
            .iter()
            .enumerate()
            .map(|(i, &c)| ("partition", i, c))
            .chain(
                self.dropped_by_drop_rule
                    .iter()
                    .enumerate()
                    .map(|(i, &c)| ("drop", i, c)),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::{Fixed, Synchronous};
    use crate::fault::DelayFault;
    use dynareg_sim::Span;

    fn n(i: u64) -> NodeId {
        NodeId::from_raw(i)
    }

    fn three_node_world() -> (Presence, Network) {
        let mut p = Presence::new();
        p.bootstrap([n(0), n(1), n(2)], Time::ZERO);
        let net = Network::new(Box::new(Synchronous::new(Span::ticks(5))), DetRng::seed(1));
        (p, net)
    }

    #[test]
    fn unicast_within_delta() {
        let (p, mut net) = three_node_world();
        for _ in 0..500 {
            let e = net.send(&p, Time::at(10), n(0), n(1), "X", 42u64).unwrap();
            assert!(e.deliver_at > Time::at(10) && e.deliver_at <= Time::at(15));
            assert_eq!(e.msg, 42);
        }
    }

    #[test]
    fn send_to_departed_returns_none() {
        let (mut p, mut net) = three_node_world();
        p.leave(n(1), Time::at(1));
        assert!(net.send(&p, Time::at(2), n(0), n(1), "X", ()).is_none());
        assert_eq!(net.dropped_to_departed(), 1);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "departed sender"))]
    fn departed_sender_panics_in_debug() {
        let (mut p, mut net) = three_node_world();
        p.leave(n(0), Time::at(1));
        let sent = net.send(&p, Time::at(2), n(0), n(1), "X", ());
        // Release builds reach here: the attempt is dropped, not sent.
        assert!(sent.is_none());
        assert_eq!(net.dropped_to_departed(), 1);
        assert_eq!(net.total_sent(), 0);
    }

    #[test]
    fn broadcast_reaches_snapshot_including_self_and_listeners() {
        let (mut p, mut net) = three_node_world();
        p.enter(n(9), Time::at(1)); // listening joiner must receive
        let fan = net.broadcast(&p, Time::at(2), n(0), "WRITE", 7u64);
        let tos: Vec<NodeId> = fan.recipients.iter().map(|&(to, _)| to).collect();
        assert_eq!(tos, vec![n(0), n(1), n(2), n(9)], "snapshot in id order");
        assert_eq!(fan.len(), 4);
        // Lazy expansion clones the payload per materialized envelope.
        let envs: Vec<Envelope<u64>> = fan.envelopes().collect();
        assert!(envs
            .iter()
            .all(|e| e.msg == 7 && e.label == "WRITE" && e.from == n(0)));
        assert_eq!(envs.len(), 4);
    }

    #[test]
    fn broadcast_misses_later_arrivals() {
        let (mut p, mut net) = three_node_world();
        let fan = net.broadcast(&p, Time::at(2), n(0), "WRITE", ());
        p.enter(n(9), Time::at(3)); // enters after the broadcast
        assert!(fan.recipients.iter().all(|&(to, _)| to != n(9)));
    }

    #[test]
    fn delivery_drops_decided_by_the_runtime_are_counted() {
        let (_p, mut net) = three_node_world();
        net.note_dropped_departed();
        net.note_dropped_departed();
        assert_eq!(net.dropped_to_departed(), 2);
    }

    #[test]
    fn delivery_check_drops_for_departed_recipient() {
        let (mut p, mut net) = three_node_world();
        let e = net.send(&p, Time::at(1), n(0), n(2), "X", ()).unwrap();
        p.leave(n(2), Time::at(2));
        assert!(!net.should_deliver(&p, &e));
        assert_eq!(net.dropped_to_departed(), 1);
    }

    #[test]
    fn label_statistics_count_per_recipient() {
        let (p, mut net) = three_node_world();
        net.broadcast(&p, Time::ZERO, n(0), "INQUIRY", ());
        net.send(&p, Time::ZERO, n(1), n(0), "REPLY", ()).unwrap();
        let stats: std::collections::BTreeMap<_, _> = net.sent_by_label().collect();
        assert_eq!(stats["INQUIRY"], 3);
        assert_eq!(stats["REPLY"], 1);
        assert_eq!(net.total_sent(), 4);
    }

    #[test]
    fn faults_stretch_targeted_messages() {
        let mut p = Presence::new();
        p.bootstrap([n(0), n(1)], Time::ZERO);
        let mut net = Network::new(Box::new(Fixed::new(Span::ticks(2))), DetRng::seed(3));
        net.set_faults(FaultPlan::none().with(DelayFault::starve_recipient(
            n(1),
            Time::ZERO,
            Time::MAX,
            Span::ticks(500),
        )));
        let slow = net.send(&p, Time::ZERO, n(0), n(1), "X", ()).unwrap();
        let fast = net.send(&p, Time::ZERO, n(1), n(0), "X", ()).unwrap();
        assert_eq!(slow.deliver_at, Time::at(500));
        assert_eq!(fast.deliver_at, Time::at(2));
    }

    #[test]
    fn partition_drops_cross_cut_and_counts() {
        use crate::fault::Partition;
        let (p, mut net) = three_node_world();
        net.set_faults(
            FaultPlan::none().with_partition(Partition::even_odd(Time::ZERO, Time::at(50))),
        );
        // 0 → 1 crosses the even/odd cut: dropped but counted as sent.
        assert!(net.send(&p, Time::at(1), n(0), n(1), "X", ()).is_none());
        // 0 → 2 stays on the even side: delivered.
        assert!(net.send(&p, Time::at(1), n(0), n(2), "X", ()).is_some());
        // After the heal everything flows.
        assert!(net.send(&p, Time::at(50), n(0), n(1), "X", ()).is_some());
        assert_eq!(net.dropped_to_faults(), 1);
        assert_eq!(net.total_sent(), 3, "fault drops still count as sent");
        assert_eq!(net.dropped_to_departed(), 0);
        let by_rule: Vec<_> = net.fault_drops_by_rule().collect();
        assert_eq!(by_rule, vec![("partition", 0, 1)]);
    }

    #[test]
    fn broadcast_under_partition_reaches_own_side_only() {
        use crate::fault::Partition;
        let (p, mut net) = three_node_world();
        net.set_faults(
            FaultPlan::none().with_partition(Partition::even_odd(Time::ZERO, Time::MAX)),
        );
        let fan = net.broadcast(&p, Time::at(1), n(0), "WRITE", ());
        let tos: Vec<NodeId> = fan.recipients.iter().map(|&(to, _)| to).collect();
        assert_eq!(tos, vec![n(0), n(2)], "odd side never hears the write");
        assert_eq!(net.dropped_to_faults(), 1);
        let stats: std::collections::BTreeMap<_, _> = net.sent_by_label().collect();
        assert_eq!(stats["WRITE"], 3, "the snapshot size counts as sent");
    }

    #[test]
    fn probabilistic_drops_are_seeded_and_counted() {
        use crate::fault::DropRule;
        let run = |seed| {
            let mut p = Presence::new();
            p.bootstrap([n(0), n(1), n(2)], Time::ZERO);
            let mut net = Network::new(Box::new(Fixed::new(Span::ticks(2))), DetRng::seed(seed));
            net.set_faults(FaultPlan::none().with_drop(DropRule::lossy_everything(
                Time::ZERO,
                Time::MAX,
                0.5,
            )));
            let mut fates = Vec::new();
            for t in 0..200 {
                fates.push(net.send(&p, Time::at(t), n(0), n(1), "X", ()).is_some());
            }
            (fates, net.dropped_to_faults())
        };
        let (fates_a, drops_a) = run(7);
        let (fates_b, drops_b) = run(7);
        assert_eq!(fates_a, fates_b, "same seed, same drop decisions");
        assert!(
            drops_a > 50 && drops_a < 150,
            "roughly half drop: {drops_a}"
        );
        assert_eq!(drops_a, drops_b);
        let (fates_c, _) = run(8);
        assert_ne!(fates_a, fates_c, "different seed, different coins");
    }

    #[test]
    fn delay_only_plans_leave_latency_stream_untouched() {
        // A delay-only plan must not consume coins: the surviving latency
        // stream is identical to the no-plan network's.
        let (p, mut plain) = three_node_world();
        let mut faulted = Network::new(Box::new(Synchronous::new(Span::ticks(5))), DetRng::seed(1));
        faulted.set_faults(FaultPlan::none().with(DelayFault::slow_everything(
            Time::at(1000),
            Time::at(2000),
            Span::ticks(9),
        )));
        for t in 0..100 {
            let a = plain.send(&p, Time::at(t), n(0), n(1), "X", ()).unwrap();
            let b = faulted.send(&p, Time::at(t), n(0), n(1), "X", ()).unwrap();
            assert_eq!(a.deliver_at, b.deliver_at);
        }
    }

    #[test]
    fn same_seed_same_latencies() {
        let (p, mut net1) = three_node_world();
        let mut net2 = Network::new(Box::new(Synchronous::new(Span::ticks(5))), DetRng::seed(1));
        let a = net1.broadcast(&p, Time::ZERO, n(0), "X", ());
        let b = net2.broadcast(&p, Time::ZERO, n(0), "X", ());
        assert_eq!(a, b);
    }
}
