//! Reliable unicast and timely broadcast over a delay model.
//!
//! [`Network`] is deliberately *sans-queue*: it computes delivery instants
//! and returns [`Envelope`]s (unicast) or a [`Fanout`] (broadcast); the
//! simulation runtime schedules them on its event queue and re-checks
//! recipient presence at delivery time (a recipient may have left while the
//! message was in flight — the paper's processes "no longer send or receive
//! messages" after leaving).

use dynareg_sim::{DetRng, NodeId, Span, Time};

use crate::delay::DelayModel;
use crate::fault::{DropKind, FaultPlan, FaultVerdict};
use crate::presence::Presence;

/// A message in flight: who, what, when sent, when (tentatively) delivered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Deterministic message sequence id (see [`Network`]: one per send
    /// attempt, in send order). Lets a delivery be linked back to the
    /// exact send that caused it.
    pub seq: u64,
    /// Sender.
    pub from: NodeId,
    /// Recipient.
    pub to: NodeId,
    /// Instant the message was sent/broadcast.
    pub sent_at: Time,
    /// Instant it arrives (if the recipient is still present then).
    pub deliver_at: Time,
    /// Protocol-level label for tracing and statistics (e.g. `"INQUIRY"`).
    pub label: &'static str,
    /// The payload.
    pub msg: M,
}

/// What became of one send attempt, recorded in the optional message log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendFate {
    /// The copy was scheduled for delivery at the given instant. (Whether
    /// it actually lands also depends on the recipient still being present
    /// then — the runtime owns that check.)
    Scheduled {
        /// The sampled delivery instant.
        deliver_at: Time,
    },
    /// The fault layer swallowed the copy; `kind` is `"partition"` or
    /// `"drop"` and `rule` the plan index, matching
    /// [`Network::fault_drops_by_rule`].
    FaultDropped {
        /// Rule category: `"partition"` or `"drop"`.
        kind: &'static str,
        /// Rule index within its category (plan insertion order).
        rule: usize,
    },
}

/// One entry of the optional per-message fate log
/// ([`Network::enable_msg_log`]): every send attempt — including
/// fault-dropped broadcast copies that never reach a [`Fanout`] snapshot —
/// with its sequence id and fate. The causal-span layer joins this against
/// delivery records to explain wedged operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgRecord {
    /// Deterministic sequence id of the attempt.
    pub seq: u64,
    /// Sender.
    pub from: NodeId,
    /// Recipient of this copy.
    pub to: NodeId,
    /// Protocol-level label.
    pub label: &'static str,
    /// Send instant.
    pub sent_at: Time,
    /// What happened to the copy.
    pub fate: SendFate,
}

/// A broadcast in flight: **one** payload shared by every recipient, plus
/// the per-recipient delivery instants.
///
/// The seed engine materialized a broadcast as `n` cloned [`Envelope`]s up
/// front — O(n) payload clones and allocations on the hottest protocol
/// path (every `INQUIRY`/`WRITE` wave). A `Fanout` is the zero-copy
/// replacement: the payload is stored once, the recipient snapshot carries
/// only `(recipient, deliver_at)` pairs, and the runtime expands copies
/// *lazily at delivery time* (skipping recipients that left in flight, so
/// their clones never happen at all).
///
/// # Example
///
/// ```
/// use dynareg_net::{Network, Presence};
/// use dynareg_net::delay::Synchronous;
/// use dynareg_sim::{DetRng, NodeId, Span, Time};
///
/// let mut presence = Presence::new();
/// presence.bootstrap((0..3).map(NodeId::from_raw), Time::ZERO);
/// let mut net = Network::new(Box::new(Synchronous::new(Span::ticks(4))), DetRng::seed(7));
///
/// let fan = net.broadcast(&presence, Time::ZERO, NodeId::from_raw(0), "PING", ());
/// assert_eq!(fan.len(), 3); // self-delivery included
/// assert!(fan.recipients.iter().all(|&(_, at, _)| at <= Time::at(4)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fanout<M> {
    /// Sender.
    pub from: NodeId,
    /// Instant of the broadcast.
    pub sent_at: Time,
    /// Protocol-level label for tracing and statistics.
    pub label: &'static str,
    /// The payload, stored exactly once.
    pub msg: M,
    /// The timely-broadcast snapshot: every process present at `sent_at`
    /// (in id order, deterministic) with its sampled delivery instant and
    /// the copy's message sequence id. Fault-dropped copies consumed a
    /// sequence id too but never enter the snapshot.
    pub recipients: Vec<(NodeId, Time, u64)>,
}

impl<M> Fanout<M> {
    /// Number of recipients in the snapshot.
    pub fn len(&self) -> usize {
        self.recipients.len()
    }

    /// Whether the snapshot is empty (an empty system).
    pub fn is_empty(&self) -> bool {
        self.recipients.is_empty()
    }

    /// Materializes per-recipient [`Envelope`]s, cloning the payload once
    /// per recipient. Compatibility/inspection helper — the runtime's hot
    /// path deliberately does *not* use it.
    pub fn envelopes(&self) -> impl Iterator<Item = Envelope<M>> + '_
    where
        M: Clone,
    {
        self.recipients
            .iter()
            .map(move |&(to, deliver_at, seq)| Envelope {
                seq,
                from: self.from,
                to,
                sent_at: self.sent_at,
                deliver_at,
                label: self.label,
                msg: self.msg.clone(),
            })
    }
}

/// The communication substrate: reliable point-to-point channels plus the
/// paper's timely broadcast, parameterized by a [`DelayModel`] and an
/// optional [`FaultPlan`].
///
/// # Message accounting
///
/// All send/drop statistics follow two rules, stated once here:
///
/// * **`sent_by_label` counts one unit per recipient channel actually
///   used**: a unicast [`Network::send`] to a present recipient counts 1;
///   a [`Network::broadcast`] counts one per process in its snapshot (so a
///   broadcast into an n-process system adds n). A unicast to an
///   already-departed recipient counts 0 — the channel carries nothing.
/// * **`dropped_departed` counts every message abandoned because its
///   target was gone**, whether detected at send time (unicast to a
///   departed process) or at delivery time ([`Network::should_deliver`] /
///   the runtime's equivalent slab check, reported via
///   [`Network::note_dropped_departed`]). A *sender* that has departed is
///   a protocol bug, not traffic: it panics in debug builds and counts
///   the whole attempt as dropped (without sending) in release builds,
///   identically for `send` and `broadcast`.
/// * **Fault-induced drops count as sent *and* as dropped**: a message
///   lost to a partition or a probabilistic [`crate::DropRule`] used its
///   channel (the sender paid for it), so `sent_by_label` counts it like
///   any other send — a broadcast still counts one per process in its
///   snapshot even when the fault layer swallows some copies — and the
///   loss is tallied separately under the per-rule fault-drop counters
///   ([`Network::dropped_to_faults`], [`Network::fault_drops_by_rule`]).
///   Probabilistic drops are never silent.
///
/// # Example
///
/// ```
/// use dynareg_net::{Network, Presence};
/// use dynareg_net::delay::Synchronous;
/// use dynareg_sim::{DetRng, NodeId, Span, Time};
///
/// let mut presence = Presence::new();
/// presence.bootstrap((0..3).map(NodeId::from_raw), Time::ZERO);
/// let mut net = Network::new(Box::new(Synchronous::new(Span::ticks(4))), DetRng::seed(7));
///
/// let fan = net.broadcast(&presence, Time::ZERO, NodeId::from_raw(0), "PING", ());
/// assert_eq!(fan.len(), 3); // self-delivery included
/// ```
#[derive(Debug)]
pub struct Network {
    delay: Box<dyn DelayModel>,
    faults: FaultPlan,
    rng: DetRng,
    /// Dedicated stream for fault drop coins, forked from the latency rng
    /// only when the plan can drop messages ([`FaultPlan::has_chaos`]) —
    /// so chaos-free plans leave the latency stream, and therefore the
    /// whole run, byte-identical to a network with no plan at all.
    fault_rng: Option<DetRng>,
    /// Per-label send counters. A handful of protocol labels exist and the
    /// counter is bumped once per message, so a pointer-first linear scan
    /// beats any map on the hot path; [`Network::sent_by_label`] sorts on
    /// read for deterministic reporting.
    sent_by_label: Vec<(&'static str, u64)>,
    dropped_departed: u64,
    /// Fault drops attributed per partition (index = partition order in
    /// the plan).
    dropped_by_partition: Vec<u64>,
    /// Fault drops attributed per probabilistic drop rule.
    dropped_by_drop_rule: Vec<u64>,
    /// Next message sequence id. Bumped once per send attempt (including
    /// fault-dropped copies), in deterministic send order — a plain
    /// counter, outside both rng streams and the event-stream digest.
    next_seq: u64,
    /// Optional per-attempt fate log ([`Network::enable_msg_log`]); `None`
    /// (the default) records nothing and costs one branch per send.
    msg_log: Option<Vec<MsgRecord>>,
    /// The delay model's advertised δ, cached at construction (the boxed
    /// model is behind a vtable; the overrun check runs per message).
    delta_bound: Option<Span>,
    /// Cached GST: overruns are only meaningful once the model claims δ
    /// holds.
    sync_from: Time,
    /// Deliveries whose effective latency (base sample + region matrix +
    /// delay faults) exceeded the advertised δ after GST.
    delta_overruns: u64,
    /// First overrun seen, kept for the diagnostic report:
    /// `(sent_at, from, to, latency)`.
    first_overrun: Option<(Time, NodeId, NodeId, Span)>,
}

impl Network {
    /// A network over the given delay model, drawing latency randomness from
    /// `rng`.
    pub fn new(delay: Box<dyn DelayModel>, rng: DetRng) -> Network {
        let delta_bound = delay.delta();
        let sync_from = delay.synchronous_from();
        Network {
            delay,
            faults: FaultPlan::none(),
            rng,
            fault_rng: None,
            sent_by_label: Vec::new(),
            dropped_departed: 0,
            dropped_by_partition: Vec::new(),
            dropped_by_drop_rule: Vec::new(),
            next_seq: 0,
            msg_log: None,
            delta_bound,
            sync_from,
            delta_overruns: 0,
            first_overrun: None,
        }
    }

    /// Adds `n` sends under `label`. Labels are interned `&'static str`s,
    /// so the common case is a pointer hit on the first few entries.
    #[inline]
    fn bump_label(&mut self, label: &'static str, n: u64) {
        for (l, c) in &mut self.sent_by_label {
            if std::ptr::eq(*l, label) || *l == label {
                *c += n;
                return;
            }
        }
        self.sent_by_label.push((label, n));
    }

    /// Installs a fault plan (replacing any previous one). Plans that can
    /// drop messages get a dedicated coin stream forked off the latency
    /// rng here, once; delay-only (and empty) plans consume nothing, so
    /// installing them is free.
    pub fn set_faults(&mut self, faults: FaultPlan) {
        self.fault_rng = if faults.has_chaos() {
            Some(self.rng.fork(0xFA))
        } else {
            None
        };
        self.dropped_by_partition = vec![0; faults.partitions().len()];
        self.dropped_by_drop_rule = vec![0; faults.drops().len()];
        self.faults = faults;
    }

    /// The delay model's advertised bound `δ`, if the synchrony class has
    /// one.
    pub fn delta(&self) -> Option<Span> {
        self.delta_bound
    }

    /// First instant from which the network is synchronous (GST).
    pub fn synchronous_from(&self) -> Time {
        self.sync_from
    }

    /// Samples one message's fate: `Ok(latency)` to deliver, `Err((kind,
    /// rule))` when the fault layer dropped it (already counted; the
    /// attribution is returned so send sites can log it). The latency rng
    /// is always consumed (the base sample happens before fault
    /// resolution), so installing drop rules never shifts the latency
    /// stream of the messages that survive. Surviving latencies are
    /// checked against the advertised δ here — the one chokepoint every
    /// copy passes through — so a region baseline or delay fault that
    /// silently breaks the synchrony assumption is counted, not ignored.
    fn route(
        &mut self,
        now: Time,
        from: NodeId,
        to: NodeId,
    ) -> Result<Span, (&'static str, usize)> {
        let base = self.delay.sample(now, from, to, &mut self.rng);
        let latency = match self.fault_rng.as_mut().map(|r| r.unit()) {
            None => self.faults.apply(base, now, from, to),
            Some(coin) => match self.faults.evaluate(base, now, from, to, coin) {
                FaultVerdict::Deliver(latency) => latency,
                FaultVerdict::Dropped(DropKind::Partition(i)) => {
                    self.dropped_by_partition[i] += 1;
                    return Err(("partition", i));
                }
                FaultVerdict::Dropped(DropKind::Random(i)) => {
                    self.dropped_by_drop_rule[i] += 1;
                    return Err(("drop", i));
                }
            },
        };
        if let Some(delta) = self.delta_bound {
            if latency > delta && now >= self.sync_from {
                if self.delta_overruns == 0 {
                    self.first_overrun = Some((now, from, to, latency));
                }
                self.delta_overruns += 1;
            }
        }
        Ok(latency)
    }

    /// Assigns the next message sequence id (one per send attempt).
    #[inline]
    fn assign_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Handles a departed sender uniformly for `send` and `broadcast` (see
    /// *Message accounting* on [`Network`]): debug builds panic — sending
    /// after leaving is a protocol bug worth failing loudly on — while
    /// release builds count the abandoned attempt and carry nothing.
    fn departed_sender(&mut self, from: NodeId) {
        debug_assert!(false, "departed sender {from}");
        let _ = from;
        self.dropped_departed += 1;
    }

    /// Sends `msg` point-to-point from `from` to `to` at `now`.
    ///
    /// Returns `None` when `to` is not present (already left, or never
    /// entered): the channel to a departed process carries nothing. See
    /// *Message accounting* on [`Network`] for how this is counted.
    ///
    /// # Panics
    /// Panics in debug builds if the sender is not present — a departed
    /// process "does no longer send … messages" (§2.1). Release builds
    /// count the attempt toward `dropped_departed` and return `None`.
    pub fn send<M>(
        &mut self,
        presence: &Presence,
        now: Time,
        from: NodeId,
        to: NodeId,
        label: &'static str,
        msg: M,
    ) -> Option<Envelope<M>> {
        if !presence.is_present(from) {
            self.departed_sender(from);
            return None;
        }
        if !presence.is_present(to) {
            self.dropped_departed += 1;
            return None;
        }
        self.send_present(now, from, to, label, msg)
    }

    /// Unicast fast path: like [`Network::send`], but the caller attests
    /// that both endpoints are present (the runtime knows — it holds the
    /// live-node slab), so no presence lookups happen here. Returns `None`
    /// when the fault layer drops the message in flight (counted as sent
    /// *and* as a fault drop; see *Message accounting* on [`Network`]).
    pub fn send_present<M>(
        &mut self,
        now: Time,
        from: NodeId,
        to: NodeId,
        label: &'static str,
        msg: M,
    ) -> Option<Envelope<M>> {
        self.bump_label(label, 1);
        let seq = self.assign_seq();
        match self.route(now, from, to) {
            Ok(latency) => {
                let deliver_at = now + latency;
                if let Some(log) = self.msg_log.as_mut() {
                    log.push(MsgRecord {
                        seq,
                        from,
                        to,
                        label,
                        sent_at: now,
                        fate: SendFate::Scheduled { deliver_at },
                    });
                }
                Some(Envelope {
                    seq,
                    from,
                    to,
                    sent_at: now,
                    deliver_at,
                    label,
                    msg,
                })
            }
            Err((kind, rule)) => {
                if let Some(log) = self.msg_log.as_mut() {
                    log.push(MsgRecord {
                        seq,
                        from,
                        to,
                        label,
                        sent_at: now,
                        fate: SendFate::FaultDropped { kind, rule },
                    });
                }
                None
            }
        }
    }

    /// Broadcasts `msg` to **every process in the system at `now`**
    /// (listening and active, including the sender), each copy with its own
    /// sampled latency.
    ///
    /// This is the paper's timely broadcast: under a synchronous model every
    /// copy lands within `δ`; processes entering *after* `now` receive
    /// nothing (the Figure 3(a) hazard). The payload is **not** cloned per
    /// recipient: the returned [`Fanout`] holds it once alongside the
    /// recipient snapshot, and the runtime expands copies at delivery time.
    ///
    /// # Panics
    /// Panics in debug builds if the sender is not present (release builds
    /// count one dropped attempt and return an empty fanout; see *Message
    /// accounting* on [`Network`]).
    pub fn broadcast<M>(
        &mut self,
        presence: &Presence,
        now: Time,
        from: NodeId,
        label: &'static str,
        msg: M,
    ) -> Fanout<M> {
        if !presence.is_present(from) {
            self.departed_sender(from);
            return Fanout {
                from,
                sent_at: now,
                label,
                msg,
                recipients: Vec::new(),
            };
        }
        let mut recipients = Vec::with_capacity(presence.present_count());
        // Id order → deterministic latency sampling. Fault-dropped copies
        // simply never enter the snapshot (the runtime schedules nothing
        // for them), but they still count as sent below — and still burn a
        // sequence id, so the fate log can name exactly which copies of a
        // broadcast were lost.
        for to in presence.present_iter() {
            let seq = self.assign_seq();
            match self.route(now, from, to) {
                Ok(latency) => {
                    let deliver_at = now + latency;
                    if let Some(log) = self.msg_log.as_mut() {
                        log.push(MsgRecord {
                            seq,
                            from,
                            to,
                            label,
                            sent_at: now,
                            fate: SendFate::Scheduled { deliver_at },
                        });
                    }
                    recipients.push((to, deliver_at, seq));
                }
                Err((kind, rule)) => {
                    if let Some(log) = self.msg_log.as_mut() {
                        log.push(MsgRecord {
                            seq,
                            from,
                            to,
                            label,
                            sent_at: now,
                            fate: SendFate::FaultDropped { kind, rule },
                        });
                    }
                }
            }
        }
        self.bump_label(label, presence.present_count() as u64);
        Fanout {
            from,
            sent_at: now,
            label,
            msg,
            recipients,
        }
    }

    /// Whether an in-flight envelope should still be delivered: the
    /// recipient must not have left. (Listening recipients *do* receive —
    /// the paper's listening mode starts at the beginning of `join`.)
    pub fn should_deliver<M>(&mut self, presence: &Presence, env: &Envelope<M>) -> bool {
        if presence.is_present(env.to) {
            true
        } else {
            self.dropped_departed += 1;
            false
        }
    }

    /// Records one delivery-time drop decided *outside* the network — the
    /// runtime tracks live nodes in its own slab and calls this when an
    /// in-flight message's recipient is gone, keeping `dropped_departed`
    /// accurate without a second membership structure.
    pub fn note_dropped_departed(&mut self) {
        self.dropped_departed += 1;
    }

    /// Messages sent so far, by label (broadcast counts one per recipient;
    /// see *Message accounting* on [`Network`]).
    pub fn sent_by_label(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        let mut sorted = self.sent_by_label.clone();
        sorted.sort_unstable_by_key(|&(l, _)| l);
        sorted.into_iter()
    }

    /// Messages sent so far under one label (0 if the label never
    /// appeared) — the cheap point query behind per-tick label gauges.
    pub fn sent_of(&self, label: &str) -> u64 {
        self.sent_by_label
            .iter()
            .find(|&&(l, _)| l == label)
            .map_or(0, |&(_, c)| c)
    }

    /// Total messages sent (all labels).
    pub fn total_sent(&self) -> u64 {
        self.sent_by_label.iter().map(|&(_, v)| v).sum()
    }

    /// Messages abandoned because their target had left (at send or delivery
    /// time).
    pub fn dropped_to_departed(&self) -> u64 {
        self.dropped_departed
    }

    /// Messages dropped by the fault layer (partitions and probabilistic
    /// drop rules), total.
    pub fn dropped_to_faults(&self) -> u64 {
        self.dropped_by_partition.iter().sum::<u64>()
            + self.dropped_by_drop_rule.iter().sum::<u64>()
    }

    /// Fault drops attributed per rule, as `(kind, rule_index, count)`
    /// with kind `"partition"` or `"drop"` — indices follow the plan's
    /// insertion order.
    pub fn fault_drops_by_rule(&self) -> impl Iterator<Item = (&'static str, usize, u64)> + '_ {
        self.dropped_by_partition
            .iter()
            .enumerate()
            .map(|(i, &c)| ("partition", i, c))
            .chain(
                self.dropped_by_drop_rule
                    .iter()
                    .enumerate()
                    .map(|(i, &c)| ("drop", i, c)),
            )
    }

    /// The sequence id the next send attempt will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The sequence id of the most recent send attempt, or `None` before
    /// the first. Lets a caller attribute a unicast whose envelope was
    /// fault-dropped (`send_present` returned `None`) — the attempt still
    /// consumed exactly one id.
    pub fn last_seq(&self) -> Option<u64> {
        self.next_seq.checked_sub(1)
    }

    /// Starts recording a [`MsgRecord`] per send attempt. Off by default;
    /// the log grows with every message, so only diagnostics turn it on.
    pub fn enable_msg_log(&mut self) {
        if self.msg_log.is_none() {
            self.msg_log = Some(Vec::new());
        }
    }

    /// The fate log so far, if enabled.
    pub fn msg_log(&self) -> Option<&[MsgRecord]> {
        self.msg_log.as_deref()
    }

    /// Takes the fate log, leaving recording disabled; empty when it was
    /// never enabled.
    pub fn take_msg_log(&mut self) -> Vec<MsgRecord> {
        self.msg_log.take().unwrap_or_default()
    }

    /// Deliveries whose effective latency exceeded the advertised δ after
    /// the model's GST — each one a silent break of the synchrony
    /// assumption the protocols' timers are derived from. Always counted
    /// (one comparison per delivered message); zero for models without a
    /// bound.
    pub fn delta_overruns(&self) -> u64 {
        self.delta_overruns
    }

    /// The first δ-overrun observed, as `(sent_at, from, to, latency)`.
    pub fn first_delta_overrun(&self) -> Option<(Time, NodeId, NodeId, Span)> {
        self.first_overrun
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::{Fixed, Synchronous};
    use crate::fault::DelayFault;
    use dynareg_sim::Span;

    fn n(i: u64) -> NodeId {
        NodeId::from_raw(i)
    }

    fn three_node_world() -> (Presence, Network) {
        let mut p = Presence::new();
        p.bootstrap([n(0), n(1), n(2)], Time::ZERO);
        let net = Network::new(Box::new(Synchronous::new(Span::ticks(5))), DetRng::seed(1));
        (p, net)
    }

    #[test]
    fn unicast_within_delta() {
        let (p, mut net) = three_node_world();
        for _ in 0..500 {
            let e = net.send(&p, Time::at(10), n(0), n(1), "X", 42u64).unwrap();
            assert!(e.deliver_at > Time::at(10) && e.deliver_at <= Time::at(15));
            assert_eq!(e.msg, 42);
        }
    }

    #[test]
    fn send_to_departed_returns_none() {
        let (mut p, mut net) = three_node_world();
        p.leave(n(1), Time::at(1));
        assert!(net.send(&p, Time::at(2), n(0), n(1), "X", ()).is_none());
        assert_eq!(net.dropped_to_departed(), 1);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "departed sender"))]
    fn departed_sender_panics_in_debug() {
        let (mut p, mut net) = three_node_world();
        p.leave(n(0), Time::at(1));
        let sent = net.send(&p, Time::at(2), n(0), n(1), "X", ());
        // Release builds reach here: the attempt is dropped, not sent.
        assert!(sent.is_none());
        assert_eq!(net.dropped_to_departed(), 1);
        assert_eq!(net.total_sent(), 0);
    }

    #[test]
    fn broadcast_reaches_snapshot_including_self_and_listeners() {
        let (mut p, mut net) = three_node_world();
        p.enter(n(9), Time::at(1)); // listening joiner must receive
        let fan = net.broadcast(&p, Time::at(2), n(0), "WRITE", 7u64);
        let tos: Vec<NodeId> = fan.recipients.iter().map(|&(to, _, _)| to).collect();
        assert_eq!(tos, vec![n(0), n(1), n(2), n(9)], "snapshot in id order");
        assert_eq!(fan.len(), 4);
        // Lazy expansion clones the payload per materialized envelope.
        let envs: Vec<Envelope<u64>> = fan.envelopes().collect();
        assert!(envs
            .iter()
            .all(|e| e.msg == 7 && e.label == "WRITE" && e.from == n(0)));
        assert_eq!(envs.len(), 4);
    }

    #[test]
    fn broadcast_misses_later_arrivals() {
        let (mut p, mut net) = three_node_world();
        let fan = net.broadcast(&p, Time::at(2), n(0), "WRITE", ());
        p.enter(n(9), Time::at(3)); // enters after the broadcast
        assert!(fan.recipients.iter().all(|&(to, _, _)| to != n(9)));
    }

    #[test]
    fn delivery_drops_decided_by_the_runtime_are_counted() {
        let (_p, mut net) = three_node_world();
        net.note_dropped_departed();
        net.note_dropped_departed();
        assert_eq!(net.dropped_to_departed(), 2);
    }

    #[test]
    fn delivery_check_drops_for_departed_recipient() {
        let (mut p, mut net) = three_node_world();
        let e = net.send(&p, Time::at(1), n(0), n(2), "X", ()).unwrap();
        p.leave(n(2), Time::at(2));
        assert!(!net.should_deliver(&p, &e));
        assert_eq!(net.dropped_to_departed(), 1);
    }

    #[test]
    fn label_statistics_count_per_recipient() {
        let (p, mut net) = three_node_world();
        net.broadcast(&p, Time::ZERO, n(0), "INQUIRY", ());
        net.send(&p, Time::ZERO, n(1), n(0), "REPLY", ()).unwrap();
        let stats: std::collections::BTreeMap<_, _> = net.sent_by_label().collect();
        assert_eq!(stats["INQUIRY"], 3);
        assert_eq!(stats["REPLY"], 1);
        assert_eq!(net.total_sent(), 4);
    }

    #[test]
    fn faults_stretch_targeted_messages() {
        let mut p = Presence::new();
        p.bootstrap([n(0), n(1)], Time::ZERO);
        let mut net = Network::new(Box::new(Fixed::new(Span::ticks(2))), DetRng::seed(3));
        net.set_faults(FaultPlan::none().with(DelayFault::starve_recipient(
            n(1),
            Time::ZERO,
            Time::MAX,
            Span::ticks(500),
        )));
        let slow = net.send(&p, Time::ZERO, n(0), n(1), "X", ()).unwrap();
        let fast = net.send(&p, Time::ZERO, n(1), n(0), "X", ()).unwrap();
        assert_eq!(slow.deliver_at, Time::at(500));
        assert_eq!(fast.deliver_at, Time::at(2));
    }

    #[test]
    fn partition_drops_cross_cut_and_counts() {
        use crate::fault::Partition;
        let (p, mut net) = three_node_world();
        net.set_faults(
            FaultPlan::none().with_partition(Partition::even_odd(Time::ZERO, Time::at(50))),
        );
        // 0 → 1 crosses the even/odd cut: dropped but counted as sent.
        assert!(net.send(&p, Time::at(1), n(0), n(1), "X", ()).is_none());
        // 0 → 2 stays on the even side: delivered.
        assert!(net.send(&p, Time::at(1), n(0), n(2), "X", ()).is_some());
        // After the heal everything flows.
        assert!(net.send(&p, Time::at(50), n(0), n(1), "X", ()).is_some());
        assert_eq!(net.dropped_to_faults(), 1);
        assert_eq!(net.total_sent(), 3, "fault drops still count as sent");
        assert_eq!(net.dropped_to_departed(), 0);
        let by_rule: Vec<_> = net.fault_drops_by_rule().collect();
        assert_eq!(by_rule, vec![("partition", 0, 1)]);
    }

    #[test]
    fn broadcast_under_partition_reaches_own_side_only() {
        use crate::fault::Partition;
        let (p, mut net) = three_node_world();
        net.set_faults(
            FaultPlan::none().with_partition(Partition::even_odd(Time::ZERO, Time::MAX)),
        );
        let fan = net.broadcast(&p, Time::at(1), n(0), "WRITE", ());
        let tos: Vec<NodeId> = fan.recipients.iter().map(|&(to, _, _)| to).collect();
        assert_eq!(tos, vec![n(0), n(2)], "odd side never hears the write");
        assert_eq!(net.dropped_to_faults(), 1);
        let stats: std::collections::BTreeMap<_, _> = net.sent_by_label().collect();
        assert_eq!(stats["WRITE"], 3, "the snapshot size counts as sent");
    }

    #[test]
    fn probabilistic_drops_are_seeded_and_counted() {
        use crate::fault::DropRule;
        let run = |seed| {
            let mut p = Presence::new();
            p.bootstrap([n(0), n(1), n(2)], Time::ZERO);
            let mut net = Network::new(Box::new(Fixed::new(Span::ticks(2))), DetRng::seed(seed));
            net.set_faults(FaultPlan::none().with_drop(DropRule::lossy_everything(
                Time::ZERO,
                Time::MAX,
                0.5,
            )));
            let mut fates = Vec::new();
            for t in 0..200 {
                fates.push(net.send(&p, Time::at(t), n(0), n(1), "X", ()).is_some());
            }
            (fates, net.dropped_to_faults())
        };
        let (fates_a, drops_a) = run(7);
        let (fates_b, drops_b) = run(7);
        assert_eq!(fates_a, fates_b, "same seed, same drop decisions");
        assert!(
            drops_a > 50 && drops_a < 150,
            "roughly half drop: {drops_a}"
        );
        assert_eq!(drops_a, drops_b);
        let (fates_c, _) = run(8);
        assert_ne!(fates_a, fates_c, "different seed, different coins");
    }

    #[test]
    fn delay_only_plans_leave_latency_stream_untouched() {
        // A delay-only plan must not consume coins: the surviving latency
        // stream is identical to the no-plan network's.
        let (p, mut plain) = three_node_world();
        let mut faulted = Network::new(Box::new(Synchronous::new(Span::ticks(5))), DetRng::seed(1));
        faulted.set_faults(FaultPlan::none().with(DelayFault::slow_everything(
            Time::at(1000),
            Time::at(2000),
            Span::ticks(9),
        )));
        for t in 0..100 {
            let a = plain.send(&p, Time::at(t), n(0), n(1), "X", ()).unwrap();
            let b = faulted.send(&p, Time::at(t), n(0), n(1), "X", ()).unwrap();
            assert_eq!(a.deliver_at, b.deliver_at);
        }
    }

    #[test]
    fn same_seed_same_latencies() {
        let (p, mut net1) = three_node_world();
        let mut net2 = Network::new(Box::new(Synchronous::new(Span::ticks(5))), DetRng::seed(1));
        let a = net1.broadcast(&p, Time::ZERO, n(0), "X", ());
        let b = net2.broadcast(&p, Time::ZERO, n(0), "X", ());
        assert_eq!(a, b);
    }

    #[test]
    fn sequence_ids_count_every_attempt_including_dropped_copies() {
        use crate::fault::Partition;
        let (p, mut net) = three_node_world();
        assert_eq!(net.last_seq(), None);
        net.set_faults(
            FaultPlan::none().with_partition(Partition::even_odd(Time::ZERO, Time::MAX)),
        );
        // Broadcast into 3 nodes: copies 0,1,2. The cross-cut copy to n(1)
        // is dropped but still consumes seq 1.
        let fan = net.broadcast(&p, Time::at(1), n(0), "WRITE", ());
        let seqs: Vec<u64> = fan.recipients.iter().map(|&(_, _, s)| s).collect();
        assert_eq!(seqs, vec![0, 2], "dropped copy burned seq 1");
        assert_eq!(net.next_seq(), 3);
        // A fault-dropped unicast still advances the counter.
        assert!(net.send(&p, Time::at(2), n(0), n(1), "X", ()).is_none());
        assert_eq!(net.last_seq(), Some(3));
        let env = net.send(&p, Time::at(2), n(0), n(2), "X", ()).unwrap();
        assert_eq!(env.seq, 4);
    }

    #[test]
    fn msg_log_records_fates_per_attempt() {
        use crate::fault::Partition;
        let (p, mut net) = three_node_world();
        net.enable_msg_log();
        net.set_faults(
            FaultPlan::none().with_partition(Partition::even_odd(Time::ZERO, Time::MAX)),
        );
        net.broadcast(&p, Time::at(1), n(0), "INQUIRY", ());
        let log = net.msg_log().unwrap();
        assert_eq!(log.len(), 3, "one record per copy, dropped included");
        assert_eq!(log[0].seq, 0);
        assert!(matches!(log[0].fate, SendFate::Scheduled { .. }));
        assert_eq!(log[1].to, n(1));
        assert_eq!(
            log[1].fate,
            SendFate::FaultDropped {
                kind: "partition",
                rule: 0
            }
        );
        assert!(log.iter().all(|r| r.label == "INQUIRY" && r.from == n(0)));
        let taken = net.take_msg_log();
        assert_eq!(taken.len(), 3);
        assert!(net.msg_log().is_none(), "taking the log disables it");
    }

    #[test]
    fn delta_overruns_count_post_gst_breaches_only() {
        use crate::delay::{Asynchronous, EventuallySynchronous};
        let mut p = Presence::new();
        p.bootstrap([n(0), n(1)], Time::ZERO);
        // δ=2 advertised from GST=100; stretch every delivery to 500 ticks.
        let pre = Asynchronous::new(Span::ticks(1), 0.5, Span::ticks(10));
        let mut net = Network::new(
            Box::new(EventuallySynchronous::new(
                Time::at(100),
                Span::ticks(2),
                pre,
            )),
            DetRng::seed(3),
        );
        net.set_faults(FaultPlan::none().with(DelayFault::slow_everything(
            Time::ZERO,
            Time::MAX,
            Span::ticks(500),
        )));
        net.send(&p, Time::at(1), n(0), n(1), "X", ()).unwrap();
        assert_eq!(net.delta_overruns(), 0, "pre-GST latency is fair game");
        net.send(&p, Time::at(150), n(0), n(1), "X", ()).unwrap();
        net.send(&p, Time::at(151), n(0), n(1), "X", ()).unwrap();
        assert_eq!(net.delta_overruns(), 2);
        let (at, from, to, latency) = net.first_delta_overrun().unwrap();
        assert_eq!((at, from, to), (Time::at(150), n(0), n(1)));
        assert!(latency > Span::ticks(2));
    }

    #[test]
    fn clean_synchronous_traffic_never_overruns() {
        let (p, mut net) = three_node_world();
        for t in 0..200 {
            net.send(&p, Time::at(t), n(0), n(1), "X", ()).unwrap();
        }
        net.broadcast(&p, Time::at(200), n(0), "WRITE", ());
        assert_eq!(net.delta_overruns(), 0);
        assert!(net.first_delta_overrun().is_none());
    }
}
