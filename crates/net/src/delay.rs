//! Message-latency models for the paper's three synchrony classes.
//!
//! | model | paper section | guarantee |
//! |---|---|---|
//! | [`Synchronous`] | §3.2 | every message delivered within `δ` of sending |
//! | [`Asynchronous`] | §4 | no bound: heavy-tailed latencies, arbitrary cap |
//! | [`EventuallySynchronous`] | §5.1 | after an unknown GST, delivered within `δ` |
//! | [`Fixed`] | (testing) | exactly `d`, for scripted figure reproductions |
//!
//! Models are queried per message; sampling is deterministic given the run's
//! [`DetRng`] stream.

use std::fmt;

use dynareg_sim::{DetRng, NodeId, Span, Time};

/// Samples the in-flight latency of a message.
///
/// This trait is object-safe; the network stores a boxed model so scenarios
/// can switch synchrony class at run time.
pub trait DelayModel: fmt::Debug {
    /// Latency of a message sent at `now` from `from` to `to`.
    ///
    /// Implementations must return at least one tick: the paper's model has
    /// zero-cost local computation but *"messages take time to travel to
    /// their destination processes"* (§3.2).
    fn sample(&self, now: Time, from: NodeId, to: NodeId, rng: &mut DetRng) -> Span;

    /// The bound `δ` that *processes are entitled to rely on* at `now`, if
    /// any. Synchronous systems always have one; eventually synchronous
    /// systems have one the processes never learn (returned for
    /// instrumentation, not protocol use); asynchronous systems have none.
    fn delta(&self) -> Option<Span>;

    /// First instant from which every sent message respects `delta`
    /// (`Time::ZERO` for synchronous, GST for eventually synchronous,
    /// `Time::MAX` — never — for asynchronous).
    fn synchronous_from(&self) -> Time;
}

/// §3.2 synchronous system: latency uniform in `[1, δ]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Synchronous {
    delta: Span,
}

impl Synchronous {
    /// A synchronous network with bound `delta`.
    ///
    /// # Panics
    /// Panics if `delta` is zero (messages must take time).
    pub fn new(delta: Span) -> Synchronous {
        assert!(!delta.is_zero(), "delta must be at least one tick");
        Synchronous { delta }
    }

    /// The bound `δ`.
    pub fn bound(&self) -> Span {
        self.delta
    }
}

impl DelayModel for Synchronous {
    fn sample(&self, _now: Time, _from: NodeId, _to: NodeId, rng: &mut DetRng) -> Span {
        rng.span_between(Span::UNIT, self.delta)
    }

    fn delta(&self) -> Option<Span> {
        Some(self.delta)
    }

    fn synchronous_from(&self) -> Time {
        Time::ZERO
    }
}

/// §4 fully asynchronous system: heavy-tailed latencies with *no* bound the
/// processes can use. (A simulation must cap samples to remain finite; the
/// cap is an artifact, not a promise — Theorem 2's adversary needs only
/// "longer than whatever the protocol assumed".)
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Asynchronous {
    min: Span,
    alpha: f64,
    cap: Span,
}

impl Asynchronous {
    /// Heavy-tailed latencies: Pareto(shape `alpha`) scaled to start at
    /// `min`, truncated at `cap`.
    ///
    /// # Panics
    /// Panics if `min` is zero, `alpha` is not positive, or `cap < min`.
    pub fn new(min: Span, alpha: f64, cap: Span) -> Asynchronous {
        assert!(!min.is_zero(), "min latency must be at least one tick");
        assert!(alpha > 0.0, "alpha must be positive");
        assert!(cap >= min, "cap must dominate min");
        Asynchronous { min, alpha, cap }
    }
}

impl DelayModel for Asynchronous {
    fn sample(&self, _now: Time, _from: NodeId, _to: NodeId, rng: &mut DetRng) -> Span {
        rng.heavy_tail_span(self.min, self.alpha, self.cap)
    }

    fn delta(&self) -> Option<Span> {
        None
    }

    fn synchronous_from(&self) -> Time {
        Time::MAX
    }
}

/// §5.1 eventually synchronous system: before the global stabilization time
/// (GST) latencies are heavy-tailed; from GST on, every message sent is
/// delivered within `δ`. Processes never learn GST or `δ` — protocols may
/// not use them, only the instrumentation does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventuallySynchronous {
    gst: Time,
    delta: Span,
    pre: Asynchronous,
}

impl EventuallySynchronous {
    /// An eventually synchronous network stabilizing at `gst` with post-GST
    /// bound `delta`; pre-GST latencies follow `pre`.
    ///
    /// # Panics
    /// Panics if `delta` is zero.
    pub fn new(gst: Time, delta: Span, pre: Asynchronous) -> EventuallySynchronous {
        assert!(!delta.is_zero(), "delta must be at least one tick");
        EventuallySynchronous { gst, delta, pre }
    }

    /// Convenience: pre-GST latencies heavy-tailed up to `10·δ`.
    pub fn with_default_pre(gst: Time, delta: Span) -> EventuallySynchronous {
        let pre = Asynchronous::new(Span::UNIT, 1.2, delta.times(10));
        EventuallySynchronous::new(gst, delta, pre)
    }

    /// The global stabilization time.
    pub fn gst(&self) -> Time {
        self.gst
    }
}

impl DelayModel for EventuallySynchronous {
    fn sample(&self, now: Time, from: NodeId, to: NodeId, rng: &mut DetRng) -> Span {
        if now >= self.gst {
            rng.span_between(Span::UNIT, self.delta)
        } else {
            // Pre-GST messages may still be in flight at GST; the paper's
            // "eventual timely delivery" only constrains messages *sent*
            // after GST, so an unbounded pre-GST sample is faithful.
            self.pre.sample(now, from, to, rng)
        }
    }

    fn delta(&self) -> Option<Span> {
        Some(self.delta)
    }

    fn synchronous_from(&self) -> Time {
        self.gst
    }
}

/// Deterministic latency, for scripted reproductions of the paper's figures
/// where a message must arrive at an exact instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fixed {
    latency: Span,
}

impl Fixed {
    /// Every message takes exactly `latency`.
    ///
    /// # Panics
    /// Panics if `latency` is zero.
    pub fn new(latency: Span) -> Fixed {
        assert!(!latency.is_zero(), "latency must be at least one tick");
        Fixed { latency }
    }
}

impl DelayModel for Fixed {
    fn sample(&self, _now: Time, _from: NodeId, _to: NodeId, rng: &mut DetRng) -> Span {
        let _ = rng; // deterministic by construction
        self.latency
    }

    fn delta(&self) -> Option<Span> {
        Some(self.latency)
    }

    fn synchronous_from(&self) -> Time {
        Time::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u64) -> NodeId {
        NodeId::from_raw(i)
    }

    #[test]
    fn synchronous_respects_delta() {
        let model = Synchronous::new(Span::ticks(7));
        let mut rng = DetRng::seed(1);
        for _ in 0..2000 {
            let s = model.sample(Time::ZERO, n(0), n(1), &mut rng);
            assert!(s >= Span::UNIT && s <= Span::ticks(7));
        }
        assert_eq!(model.delta(), Some(Span::ticks(7)));
        assert_eq!(model.synchronous_from(), Time::ZERO);
    }

    #[test]
    fn synchronous_uses_full_range() {
        let model = Synchronous::new(Span::ticks(4));
        let mut rng = DetRng::seed(2);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..500 {
            seen.insert(model.sample(Time::ZERO, n(0), n(1), &mut rng).as_ticks());
        }
        assert_eq!(seen, (1..=4).collect());
    }

    #[test]
    #[should_panic(expected = "delta must be at least one tick")]
    fn synchronous_rejects_zero_delta() {
        let _ = Synchronous::new(Span::ZERO);
    }

    #[test]
    fn asynchronous_has_no_usable_bound_and_fat_tail() {
        let model = Asynchronous::new(Span::UNIT, 1.1, Span::ticks(10_000));
        assert_eq!(model.delta(), None);
        assert_eq!(model.synchronous_from(), Time::MAX);
        let mut rng = DetRng::seed(3);
        let max = (0..5000)
            .map(|_| model.sample(Time::ZERO, n(0), n(1), &mut rng).as_ticks())
            .max()
            .unwrap();
        assert!(
            max > 100,
            "tail should wildly exceed typical sync deltas, got {max}"
        );
    }

    #[test]
    fn eventually_synchronous_switches_at_gst() {
        let gst = Time::at(1000);
        let model = EventuallySynchronous::with_default_pre(gst, Span::ticks(5));
        let mut rng = DetRng::seed(4);
        let pre_max = (0..2000)
            .map(|_| model.sample(Time::at(10), n(0), n(1), &mut rng).as_ticks())
            .max()
            .unwrap();
        assert!(
            pre_max > 5,
            "pre-GST latencies must be able to exceed delta"
        );
        for _ in 0..2000 {
            let s = model.sample(gst, n(0), n(1), &mut rng);
            assert!(s <= Span::ticks(5), "post-GST latency exceeded delta");
        }
        assert_eq!(model.gst(), gst);
        assert_eq!(model.synchronous_from(), gst);
    }

    #[test]
    fn fixed_is_exact() {
        let model = Fixed::new(Span::ticks(3));
        let mut rng = DetRng::seed(5);
        assert_eq!(
            model.sample(Time::ZERO, n(0), n(1), &mut rng),
            Span::ticks(3)
        );
        assert_eq!(model.delta(), Some(Span::ticks(3)));
    }

    #[test]
    fn models_are_object_safe() {
        let boxed: Vec<Box<dyn DelayModel>> = vec![
            Box::new(Synchronous::new(Span::ticks(2))),
            Box::new(Fixed::new(Span::ticks(2))),
            Box::new(Asynchronous::new(Span::UNIT, 2.0, Span::ticks(100))),
        ];
        let mut rng = DetRng::seed(6);
        for m in &boxed {
            assert!(m.sample(Time::ZERO, n(0), n(1), &mut rng) >= Span::UNIT);
        }
    }
}
