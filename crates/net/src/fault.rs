//! Scripted network adversaries layered on top of a [`crate::DelayModel`].
//!
//! The paper's network is reliable, so its only adversarial lever is *time*:
//! Theorem 2's impossibility argument needs an adversary that stretches
//! specific messages beyond whatever bound a protocol assumed, and the
//! eventually-synchronous experiments need pre-GST turbulence aimed at
//! specific processes. Beyond that delay shaping, the chaos harness adds
//! faults the paper's model cannot express:
//!
//! * **partitions** ([`Partition`]) — a node-set bipartition active over a
//!   tick window; every message crossing the cut is dropped until the heal;
//! * **probabilistic drops** ([`DropRule`]) — per-link loss with a given
//!   probability, seeded and deterministic;
//! * a **region delay matrix** ([`RegionMatrix`]) — nodes assigned to
//!   regions, with a baseline inter-region latency added on top of the
//!   delay model's sample.
//!
//! # Resolution order
//!
//! A [`FaultPlan`] resolves overlapping rules in a fixed, documented order,
//! independent of insertion order for everything whose semantics commute:
//!
//! 1. **Partitions**: if *any* active partition separates sender and
//!    recipient, the message is dropped (attributed to the first matching
//!    partition). Which partition matches first never changes the verdict.
//! 2. **Probabilistic drops**: all matching [`DropRule`]s combine into one
//!    survival probability `Π(1 − pᵢ)`; a single per-message coin decides.
//!    The drop-or-deliver verdict depends only on the product, so rule
//!    order cannot change it (attribution of *which* rule dropped the
//!    message follows insertion order and feeds metrics only).
//! 3. **Region baseline**: delivered messages crossing regions gain the
//!    matrix's baseline span (addition — commutes with everything).
//! 4. **Delay rules** ([`DelayFault`]): applied in insertion order; `Add`
//!    stacks (commutative), `Set` overrides (deliberately order-sensitive,
//!    pinned by `rules_stack_in_order`).

use dynareg_sim::{NodeId, Span, Time};

/// What a matching fault rule does to a sampled latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Add the given span to the sampled latency.
    AddDelay(Span),
    /// Replace the sampled latency entirely.
    SetDelay(Span),
}

/// One latency fault rule: applies to messages matching the (optional)
/// endpoint filters whose *send* instant falls in `[from_time, until_time)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DelayFault {
    /// Only messages from this sender (any if `None`).
    pub from: Option<NodeId>,
    /// Only messages to this recipient (any if `None`).
    pub to: Option<NodeId>,
    /// Start of the active window (inclusive).
    pub from_time: Time,
    /// End of the active window (exclusive); `Time::MAX` = forever.
    pub until_time: Time,
    /// The effect on matching messages.
    pub action: FaultAction,
}

impl DelayFault {
    /// A rule delaying everything sent in `[from_time, until_time)` by
    /// `extra`.
    pub fn slow_everything(from_time: Time, until_time: Time, extra: Span) -> DelayFault {
        DelayFault {
            from: None,
            to: None,
            from_time,
            until_time,
            action: FaultAction::AddDelay(extra),
        }
    }

    /// A rule isolating `victim` as a recipient: every message towards it in
    /// the window is stretched to exactly `latency` (e.g. "longer than the
    /// protocol's timeout", the Theorem 2 adversary).
    pub fn starve_recipient(
        victim: NodeId,
        from_time: Time,
        until_time: Time,
        latency: Span,
    ) -> DelayFault {
        DelayFault {
            from: None,
            to: Some(victim),
            from_time,
            until_time,
            action: FaultAction::SetDelay(latency),
        }
    }

    fn matches(&self, now: Time, from: NodeId, to: NodeId) -> bool {
        self.from.is_none_or(|f| f == from)
            && self.to.is_none_or(|t| t == to)
            && self.from_time <= now
            && now < self.until_time
    }
}

/// A plain-data description of a set of processes, usable as one side of a
/// [`Partition`]. Sets are described *intensionally* (by id arithmetic),
/// not extensionally, so churned-in joiners with fresh ids are covered
/// without the plan knowing them in advance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeSet {
    /// An explicit id list.
    Ids(Vec<NodeId>),
    /// Every process whose raw id is `< bound` — e.g. `FirstRaw(n)` is the
    /// bootstrap population, so its complement is "every churn arrival".
    FirstRaw(u64),
    /// Every process with `raw % modulo == residue` — e.g.
    /// `Modulo { modulo: 2, residue: 0 }` is the even half of the world,
    /// joiners included.
    Modulo {
        /// The divisor (must be nonzero to match anything).
        modulo: u64,
        /// The residue class selected.
        residue: u64,
    },
}

impl NodeSet {
    /// Whether `node` belongs to the set.
    pub fn contains(&self, node: NodeId) -> bool {
        let raw = node.as_raw();
        match self {
            NodeSet::Ids(ids) => ids.contains(&node),
            NodeSet::FirstRaw(bound) => raw < *bound,
            NodeSet::Modulo { modulo, residue } => *modulo > 0 && raw % modulo == residue % modulo,
        }
    }
}

/// A scripted partition-and-heal: over `[from_time, until_time)` the system
/// is split into `side_a` and its complement, and every message crossing
/// the cut is dropped. At `until_time` the partition heals — messages sent
/// from then on flow normally (messages *in flight* across the cut when the
/// partition formed were already assigned their delivery; the cut applies
/// at send time, like every windowed rule here).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// One side of the bipartition; the other side is its complement.
    pub side_a: NodeSet,
    /// Start of the partition (inclusive).
    pub from_time: Time,
    /// The heal instant (exclusive); `Time::MAX` = never heals.
    pub until_time: Time,
}

impl Partition {
    /// A partition splitting `side_a` from the rest over the window.
    pub fn new(side_a: NodeSet, from_time: Time, until_time: Time) -> Partition {
        Partition {
            side_a,
            from_time,
            until_time,
        }
    }

    /// The classic even/odd halving of the world over a window.
    pub fn even_odd(from_time: Time, until_time: Time) -> Partition {
        Partition::new(
            NodeSet::Modulo {
                modulo: 2,
                residue: 0,
            },
            from_time,
            until_time,
        )
    }

    /// Whether a message sent at `now` from `from` to `to` crosses the cut.
    pub fn separates(&self, now: Time, from: NodeId, to: NodeId) -> bool {
        self.from_time <= now
            && now < self.until_time
            && self.side_a.contains(from) != self.side_a.contains(to)
    }
}

/// Probabilistic per-link loss: messages matching the endpoint filters in
/// the window are dropped with `probability`, decided by one seeded coin
/// per message (deterministic for a given scenario seed).
#[derive(Debug, Clone, PartialEq)]
pub struct DropRule {
    /// Only messages from this sender (any if `None`).
    pub from: Option<NodeId>,
    /// Only messages to this recipient (any if `None`).
    pub to: Option<NodeId>,
    /// Start of the active window (inclusive).
    pub from_time: Time,
    /// End of the active window (exclusive); `Time::MAX` = forever.
    pub until_time: Time,
    /// Per-message drop probability in `[0, 1]`.
    pub probability: f64,
}

impl DropRule {
    /// A rule dropping every message in the window with `probability`.
    pub fn lossy_everything(from_time: Time, until_time: Time, probability: f64) -> DropRule {
        DropRule {
            from: None,
            to: None,
            from_time,
            until_time,
            probability,
        }
    }

    fn matches(&self, now: Time, from: NodeId, to: NodeId) -> bool {
        self.from.is_none_or(|f| f == from)
            && self.to.is_none_or(|t| t == to)
            && self.from_time <= now
            && now < self.until_time
    }
}

/// A region-structured delay baseline: every process belongs to region
/// `raw mod regions` (joiners included), and a message from region `a` to
/// region `b` gains `delay[a][b]` on top of the delay model's sample.
///
/// This models geo-distributed deployments — same-region traffic at the
/// model's base latency, cross-region traffic paying a structural extra —
/// while keeping the plan plain data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionMatrix {
    regions: u32,
    /// Row-major `regions × regions` baseline spans.
    delay: Vec<Span>,
}

impl RegionMatrix {
    /// A matrix of `regions` regions with all-zero baselines.
    ///
    /// # Panics
    /// Panics if `regions` is zero.
    pub fn new(regions: u32) -> RegionMatrix {
        assert!(regions > 0, "a region matrix needs at least one region");
        RegionMatrix {
            regions,
            delay: vec![Span::ZERO; (regions as usize) * (regions as usize)],
        }
    }

    /// Number of regions.
    pub fn regions(&self) -> u32 {
        self.regions
    }

    /// The region `node` belongs to.
    pub fn region_of(&self, node: NodeId) -> u32 {
        (node.as_raw() % u64::from(self.regions)) as u32
    }

    /// Sets the directed baseline from region `a` to region `b`.
    ///
    /// # Panics
    /// Panics if either region is out of range.
    pub fn set(&mut self, a: u32, b: u32, extra: Span) {
        assert!(a < self.regions && b < self.regions, "region out of range");
        self.delay[(a as usize) * (self.regions as usize) + b as usize] = extra;
    }

    /// Builder form of [`RegionMatrix::set`] setting both directions.
    pub fn with_link(mut self, a: u32, b: u32, extra: Span) -> RegionMatrix {
        self.set(a, b, extra);
        self.set(b, a, extra);
        self
    }

    /// The directed baseline from region `a` to region `b`.
    pub fn get(&self, a: u32, b: u32) -> Span {
        self.delay[(a as usize) * (self.regions as usize) + b as usize]
    }

    /// The baseline a message from `from` to `to` pays.
    pub fn baseline(&self, from: NodeId, to: NodeId) -> Span {
        self.get(self.region_of(from), self.region_of(to))
    }
}

/// Why a message was dropped by the fault layer (rule attribution for the
/// `net.dropped.fault.*` counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropKind {
    /// Dropped by the `i`-th [`Partition`] of the plan.
    Partition(usize),
    /// Dropped by the `i`-th [`DropRule`] of the plan.
    Random(usize),
}

/// What the fault layer decided for one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultVerdict {
    /// Deliver with this (fault-adjusted) latency.
    Deliver(Span),
    /// Drop the message; the kind names the responsible rule.
    Dropped(DropKind),
}

/// A complete scripted adversary: delay rules, partitions, probabilistic
/// drops and an optional region matrix. Resolution order per message:
/// partitions, then probabilistic drops, then the region baseline, then
/// delay rules in insertion order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    rules: Vec<DelayFault>,
    partitions: Vec<Partition>,
    drops: Vec<DropRule>,
    region: Option<RegionMatrix>,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds a delay rule, returning `self` for chaining.
    pub fn with(mut self, rule: DelayFault) -> FaultPlan {
        self.rules.push(rule);
        self
    }

    /// Adds a delay rule in place.
    pub fn push(&mut self, rule: DelayFault) {
        self.rules.push(rule);
    }

    /// Adds a scripted partition, returning `self` for chaining.
    pub fn with_partition(mut self, partition: Partition) -> FaultPlan {
        self.partitions.push(partition);
        self
    }

    /// Adds a scripted partition in place.
    pub fn push_partition(&mut self, partition: Partition) {
        self.partitions.push(partition);
    }

    /// Adds a probabilistic drop rule, returning `self` for chaining.
    pub fn with_drop(mut self, rule: DropRule) -> FaultPlan {
        self.drops.push(rule);
        self
    }

    /// Adds a probabilistic drop rule in place.
    pub fn push_drop(&mut self, rule: DropRule) {
        self.drops.push(rule);
    }

    /// Installs the region delay matrix (replacing any previous one).
    pub fn with_region(mut self, region: RegionMatrix) -> FaultPlan {
        self.region = Some(region);
        self
    }

    /// Installs or clears the region delay matrix in place.
    pub fn set_region(&mut self, region: Option<RegionMatrix>) {
        self.region = region;
    }

    /// Mutable access to the region delay matrix, if any.
    pub fn region_mut(&mut self) -> Option<&mut RegionMatrix> {
        self.region.as_mut()
    }

    /// Whether the plan has no rules of any kind.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
            && self.partitions.is_empty()
            && self.drops.is_empty()
            && self.region.is_none()
    }

    /// Whether the plan can drop messages (partitions or probabilistic
    /// drops). Plans without chaos never consume drop coins, so a
    /// delay-only (or empty) plan leaves the network's random streams —
    /// and therefore the whole run — byte-identical to the pre-chaos
    /// engine.
    pub fn has_chaos(&self) -> bool {
        !self.partitions.is_empty() || !self.drops.is_empty()
    }

    /// The delay rules, in insertion order.
    pub fn delay_rules(&self) -> &[DelayFault] {
        &self.rules
    }

    /// The scripted partitions, in insertion order.
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// The probabilistic drop rules, in insertion order.
    pub fn drops(&self) -> &[DropRule] {
        &self.drops
    }

    /// The region delay matrix, if any.
    pub fn region(&self) -> Option<&RegionMatrix> {
        self.region.as_ref()
    }

    /// Applies the latency-shaping stages (region baseline, then delay
    /// rules in insertion order) to a base sample. This is the whole story
    /// for plans without chaos; [`FaultPlan::evaluate`] adds the drop
    /// stages in front.
    pub fn apply(&self, base: Span, now: Time, from: NodeId, to: NodeId) -> Span {
        let mut latency = base;
        if let Some(region) = &self.region {
            latency = latency + region.baseline(from, to);
        }
        for rule in &self.rules {
            if rule.matches(now, from, to) {
                latency = match rule.action {
                    FaultAction::AddDelay(extra) => latency + extra,
                    FaultAction::SetDelay(exact) => exact,
                };
            }
        }
        latency
    }

    /// Full fault resolution for one message: partitions, then the
    /// combined drop coin, then latency shaping (see the module docs).
    /// `coin` is one uniform `[0, 1)` draw dedicated to this message; the
    /// drop-or-deliver verdict depends only on the *set* of matching
    /// rules, never their order.
    pub fn evaluate(
        &self,
        base: Span,
        now: Time,
        from: NodeId,
        to: NodeId,
        coin: f64,
    ) -> FaultVerdict {
        for (i, p) in self.partitions.iter().enumerate() {
            if p.separates(now, from, to) {
                return FaultVerdict::Dropped(DropKind::Partition(i));
            }
        }
        // One coin against the combined survival probability Π(1 − pᵢ):
        // the message drops iff coin < 1 − Π, a product that commutes
        // over rule order. Attribution scans the same cumulative
        // intervals, so exactly one rule owns each dropped coin.
        let mut survival = 1.0;
        let mut dropped_by = None;
        for (i, d) in self.drops.iter().enumerate() {
            if d.matches(now, from, to) {
                let before = 1.0 - survival;
                survival *= 1.0 - d.probability.clamp(0.0, 1.0);
                let after = 1.0 - survival;
                if dropped_by.is_none() && before <= coin && coin < after {
                    dropped_by = Some(i);
                }
            }
        }
        if let Some(i) = dropped_by {
            return FaultVerdict::Dropped(DropKind::Random(i));
        }
        FaultVerdict::Deliver(self.apply(base, now, from, to))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u64) -> NodeId {
        NodeId::from_raw(i)
    }

    #[test]
    fn empty_plan_is_identity() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert!(!plan.has_chaos());
        assert_eq!(
            plan.apply(Span::ticks(4), Time::ZERO, n(0), n(1)),
            Span::ticks(4)
        );
        assert_eq!(
            plan.evaluate(Span::ticks(4), Time::ZERO, n(0), n(1), 0.0),
            FaultVerdict::Deliver(Span::ticks(4))
        );
    }

    #[test]
    fn window_bounds_are_half_open() {
        let plan = FaultPlan::none().with(DelayFault::slow_everything(
            Time::at(10),
            Time::at(20),
            Span::ticks(100),
        ));
        assert_eq!(plan.apply(Span::UNIT, Time::at(9), n(0), n(1)), Span::UNIT);
        assert_eq!(
            plan.apply(Span::UNIT, Time::at(10), n(0), n(1)),
            Span::ticks(101)
        );
        assert_eq!(
            plan.apply(Span::UNIT, Time::at(19), n(0), n(1)),
            Span::ticks(101)
        );
        assert_eq!(plan.apply(Span::UNIT, Time::at(20), n(0), n(1)), Span::UNIT);
    }

    #[test]
    fn recipient_filter_targets_victim_only() {
        let plan = FaultPlan::none().with(DelayFault::starve_recipient(
            n(5),
            Time::ZERO,
            Time::MAX,
            Span::ticks(999),
        ));
        assert_eq!(
            plan.apply(Span::ticks(2), Time::at(1), n(0), n(5)),
            Span::ticks(999)
        );
        assert_eq!(
            plan.apply(Span::ticks(2), Time::at(1), n(0), n(6)),
            Span::ticks(2)
        );
    }

    #[test]
    fn rules_stack_in_order() {
        let plan = FaultPlan::none()
            .with(DelayFault {
                from: None,
                to: None,
                from_time: Time::ZERO,
                until_time: Time::MAX,
                action: FaultAction::AddDelay(Span::ticks(3)),
            })
            .with(DelayFault {
                from: Some(n(1)),
                to: None,
                from_time: Time::ZERO,
                until_time: Time::MAX,
                action: FaultAction::SetDelay(Span::ticks(50)),
            });
        // Non-matching sender: only the Add applies.
        assert_eq!(
            plan.apply(Span::UNIT, Time::ZERO, n(0), n(2)),
            Span::ticks(4)
        );
        // Matching sender: Set overrides the stacked Add.
        assert_eq!(
            plan.apply(Span::UNIT, Time::ZERO, n(1), n(2)),
            Span::ticks(50)
        );
    }

    #[test]
    fn node_sets_cover_joiners() {
        let evens = NodeSet::Modulo {
            modulo: 2,
            residue: 0,
        };
        assert!(evens.contains(n(0)));
        assert!(!evens.contains(n(1)));
        assert!(evens.contains(n(1_000_002)), "fresh joiners are covered");
        let boot = NodeSet::FirstRaw(20);
        assert!(boot.contains(n(19)));
        assert!(!boot.contains(n(20)));
        let listed = NodeSet::Ids(vec![n(3), n(7)]);
        assert!(listed.contains(n(7)));
        assert!(!listed.contains(n(8)));
    }

    #[test]
    fn partition_drops_cross_cut_messages_in_window_only() {
        let plan =
            FaultPlan::none().with_partition(Partition::even_odd(Time::at(10), Time::at(20)));
        assert!(plan.has_chaos());
        // Crossing the cut inside the window: dropped.
        assert_eq!(
            plan.evaluate(Span::UNIT, Time::at(10), n(0), n(1), 0.99),
            FaultVerdict::Dropped(DropKind::Partition(0))
        );
        // Same side: delivered.
        assert_eq!(
            plan.evaluate(Span::UNIT, Time::at(10), n(0), n(2), 0.99),
            FaultVerdict::Deliver(Span::UNIT)
        );
        // After the heal: delivered.
        assert_eq!(
            plan.evaluate(Span::UNIT, Time::at(20), n(0), n(1), 0.99),
            FaultVerdict::Deliver(Span::UNIT)
        );
    }

    #[test]
    fn drop_rules_combine_order_independently() {
        let a = DropRule::lossy_everything(Time::ZERO, Time::MAX, 0.5);
        let b = DropRule::lossy_everything(Time::ZERO, Time::MAX, 0.2);
        let ab = FaultPlan::none().with_drop(a.clone()).with_drop(b.clone());
        let ba = FaultPlan::none().with_drop(b).with_drop(a);
        // Combined drop probability 1 − 0.5·0.8 = 0.6 either way.
        for coin in [0.0, 0.3, 0.59, 0.61, 0.99] {
            let da = matches!(
                ab.evaluate(Span::UNIT, Time::ZERO, n(0), n(1), coin),
                FaultVerdict::Dropped(_)
            );
            let db = matches!(
                ba.evaluate(Span::UNIT, Time::ZERO, n(0), n(1), coin),
                FaultVerdict::Dropped(_)
            );
            assert_eq!(da, db, "verdict at coin {coin} is order-independent");
            assert_eq!(da, coin < 0.6, "drop iff coin < combined probability");
        }
    }

    #[test]
    fn drop_attribution_partitions_the_coin_space() {
        let plan = FaultPlan::none()
            .with_drop(DropRule::lossy_everything(Time::ZERO, Time::MAX, 0.5))
            .with_drop(DropRule::lossy_everything(Time::ZERO, Time::MAX, 0.2));
        assert_eq!(
            plan.evaluate(Span::UNIT, Time::ZERO, n(0), n(1), 0.25),
            FaultVerdict::Dropped(DropKind::Random(0))
        );
        assert_eq!(
            plan.evaluate(Span::UNIT, Time::ZERO, n(0), n(1), 0.55),
            FaultVerdict::Dropped(DropKind::Random(1))
        );
        assert!(matches!(
            plan.evaluate(Span::UNIT, Time::ZERO, n(0), n(1), 0.65),
            FaultVerdict::Deliver(_)
        ));
    }

    #[test]
    fn region_matrix_adds_cross_region_baseline() {
        let matrix = RegionMatrix::new(2).with_link(0, 1, Span::ticks(10));
        let plan = FaultPlan::none().with_region(matrix);
        assert!(!plan.has_chaos(), "a region matrix alone drops nothing");
        // Cross-region: base + 10.
        assert_eq!(
            plan.apply(Span::ticks(2), Time::ZERO, n(0), n(1)),
            Span::ticks(12)
        );
        // Same region (0 and 2 are both region 0 of 2): base only.
        assert_eq!(
            plan.apply(Span::ticks(2), Time::ZERO, n(0), n(2)),
            Span::ticks(2)
        );
    }

    #[test]
    fn partitions_shadow_drop_rules() {
        let plan = FaultPlan::none()
            .with_drop(DropRule::lossy_everything(Time::ZERO, Time::MAX, 1.0))
            .with_partition(Partition::even_odd(Time::ZERO, Time::MAX));
        assert_eq!(
            plan.evaluate(Span::UNIT, Time::ZERO, n(0), n(1), 0.5),
            FaultVerdict::Dropped(DropKind::Partition(0)),
            "partitions resolve before probabilistic drops"
        );
    }
}
