//! Targeted latency faults layered on top of a [`crate::DelayModel`].
//!
//! The paper's network is reliable, so the only adversarial lever is *time*:
//! Theorem 2's impossibility argument needs an adversary that stretches
//! specific messages beyond whatever bound a protocol assumed, and the
//! eventually-synchronous experiments need pre-GST turbulence aimed at
//! specific processes. A [`FaultPlan`] is an ordered list of [`DelayFault`]
//! rules applied after the base model's sample.

use dynareg_sim::{NodeId, Span, Time};

/// What a matching fault rule does to a sampled latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Add the given span to the sampled latency.
    AddDelay(Span),
    /// Replace the sampled latency entirely.
    SetDelay(Span),
}

/// One latency fault rule: applies to messages matching the (optional)
/// endpoint filters whose *send* instant falls in `[from_time, until_time)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DelayFault {
    /// Only messages from this sender (any if `None`).
    pub from: Option<NodeId>,
    /// Only messages to this recipient (any if `None`).
    pub to: Option<NodeId>,
    /// Start of the active window (inclusive).
    pub from_time: Time,
    /// End of the active window (exclusive); `Time::MAX` = forever.
    pub until_time: Time,
    /// The effect on matching messages.
    pub action: FaultAction,
}

impl DelayFault {
    /// A rule delaying everything sent in `[from_time, until_time)` by
    /// `extra`.
    pub fn slow_everything(from_time: Time, until_time: Time, extra: Span) -> DelayFault {
        DelayFault {
            from: None,
            to: None,
            from_time,
            until_time,
            action: FaultAction::AddDelay(extra),
        }
    }

    /// A rule isolating `victim` as a recipient: every message towards it in
    /// the window is stretched to exactly `latency` (e.g. "longer than the
    /// protocol's timeout", the Theorem 2 adversary).
    pub fn starve_recipient(
        victim: NodeId,
        from_time: Time,
        until_time: Time,
        latency: Span,
    ) -> DelayFault {
        DelayFault {
            from: None,
            to: Some(victim),
            from_time,
            until_time,
            action: FaultAction::SetDelay(latency),
        }
    }

    fn matches(&self, now: Time, from: NodeId, to: NodeId) -> bool {
        self.from.is_none_or(|f| f == from)
            && self.to.is_none_or(|t| t == to)
            && self.from_time <= now
            && now < self.until_time
    }
}

/// An ordered collection of fault rules; later rules see the effect of
/// earlier ones (Add stacks, Set overrides).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    rules: Vec<DelayFault>,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds a rule, returning `self` for chaining.
    pub fn with(mut self, rule: DelayFault) -> FaultPlan {
        self.rules.push(rule);
        self
    }

    /// Adds a rule in place.
    pub fn push(&mut self, rule: DelayFault) {
        self.rules.push(rule);
    }

    /// Whether the plan has any rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Applies all matching rules in order to a base latency sample.
    pub fn apply(&self, base: Span, now: Time, from: NodeId, to: NodeId) -> Span {
        let mut latency = base;
        for rule in &self.rules {
            if rule.matches(now, from, to) {
                latency = match rule.action {
                    FaultAction::AddDelay(extra) => latency + extra,
                    FaultAction::SetDelay(exact) => exact,
                };
            }
        }
        latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u64) -> NodeId {
        NodeId::from_raw(i)
    }

    #[test]
    fn empty_plan_is_identity() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert_eq!(
            plan.apply(Span::ticks(4), Time::ZERO, n(0), n(1)),
            Span::ticks(4)
        );
    }

    #[test]
    fn window_bounds_are_half_open() {
        let plan = FaultPlan::none().with(DelayFault::slow_everything(
            Time::at(10),
            Time::at(20),
            Span::ticks(100),
        ));
        assert_eq!(plan.apply(Span::UNIT, Time::at(9), n(0), n(1)), Span::UNIT);
        assert_eq!(
            plan.apply(Span::UNIT, Time::at(10), n(0), n(1)),
            Span::ticks(101)
        );
        assert_eq!(
            plan.apply(Span::UNIT, Time::at(19), n(0), n(1)),
            Span::ticks(101)
        );
        assert_eq!(plan.apply(Span::UNIT, Time::at(20), n(0), n(1)), Span::UNIT);
    }

    #[test]
    fn recipient_filter_targets_victim_only() {
        let plan = FaultPlan::none().with(DelayFault::starve_recipient(
            n(5),
            Time::ZERO,
            Time::MAX,
            Span::ticks(999),
        ));
        assert_eq!(
            plan.apply(Span::ticks(2), Time::at(1), n(0), n(5)),
            Span::ticks(999)
        );
        assert_eq!(
            plan.apply(Span::ticks(2), Time::at(1), n(0), n(6)),
            Span::ticks(2)
        );
    }

    #[test]
    fn rules_stack_in_order() {
        let plan = FaultPlan::none()
            .with(DelayFault {
                from: None,
                to: None,
                from_time: Time::ZERO,
                until_time: Time::MAX,
                action: FaultAction::AddDelay(Span::ticks(3)),
            })
            .with(DelayFault {
                from: Some(n(1)),
                to: None,
                from_time: Time::ZERO,
                until_time: Time::MAX,
                action: FaultAction::SetDelay(Span::ticks(50)),
            });
        // Non-matching sender: only the Add applies.
        assert_eq!(
            plan.apply(Span::UNIT, Time::ZERO, n(0), n(2)),
            Span::ticks(4)
        );
        // Matching sender: Set overrides the stacked Add.
        assert_eq!(
            plan.apply(Span::UNIT, Time::ZERO, n(1), n(2)),
            Span::ticks(50)
        );
    }
}
