//! Property tests for the presence table's interval algebra — the Lemma 2
//! measurements are only as good as `A(τ)` / `A(τ₁, τ₂)`.

use dynareg_net::Presence;
use dynareg_sim::{NodeId, Time};
use proptest::prelude::*;

/// A random but well-formed lifecycle: enter ≤ activate ≤ leave, with
/// optional activation/departure.
#[derive(Debug, Clone)]
struct Life {
    enter: u64,
    activate: Option<u64>,
    leave: Option<u64>,
}

fn life_strategy() -> impl Strategy<Value = Life> {
    (
        0u64..100,
        0u64..50,
        0u64..50,
        prop::bool::ANY,
        prop::bool::ANY,
    )
        .prop_map(|(enter, d1, d2, has_activate, has_leave)| {
            let activate = has_activate.then_some(enter + d1);
            let leave = has_leave.then_some(enter + d1 + d2 + 1);
            Life {
                enter,
                activate,
                leave,
            }
        })
}

fn build(lives: &[Life]) -> Presence {
    let mut p = Presence::new();
    for (i, l) in lives.iter().enumerate() {
        let id = NodeId::from_raw(i as u64);
        p.enter(id, Time::at(l.enter));
        if let Some(a) = l.activate {
            p.activate(id, Time::at(a));
        }
        if let Some(d) = l.leave {
            p.leave(id, Time::at(d));
        }
    }
    p
}

proptest! {
    // Bounded case count so CI runtime stays predictable; override with
    // the PROPTEST_CASES environment variable for deeper local runs.
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `A(τ₁, τ₂)` is the intersection of the per-instant sets: a process is
    /// active throughout the interval iff it is active at every integer
    /// instant inside it.
    #[test]
    fn interval_set_is_pointwise_intersection(
        lives in prop::collection::vec(life_strategy(), 1..30),
        t1 in 0u64..150,
        width in 0u64..20,
    ) {
        let p = build(&lives);
        let (a, b) = (Time::at(t1), Time::at(t1 + width));
        let via_interval = p.active_set_throughout(a, b);
        let via_pointwise: Vec<NodeId> = p
            .active_set_at(a)
            .into_iter()
            .filter(|&id| (t1..=t1 + width).all(|t| p.active_set_at(Time::at(t)).contains(&id)))
            .collect();
        prop_assert_eq!(via_interval, via_pointwise);
    }

    /// Widening the interval can only shrink the set (antitone in width).
    #[test]
    fn interval_sets_are_antitone_in_width(
        lives in prop::collection::vec(life_strategy(), 1..30),
        t1 in 0u64..150,
        w1 in 0u64..20,
        extra in 0u64..20,
    ) {
        let p = build(&lives);
        let narrow = p.active_count_throughout(Time::at(t1), Time::at(t1 + w1));
        let wide = p.active_count_throughout(Time::at(t1), Time::at(t1 + w1 + extra));
        prop_assert!(wide <= narrow);
    }

    /// Current-set accessors agree with the historical query evaluated at
    /// a time past every recorded event.
    #[test]
    fn live_sets_agree_with_history(
        lives in prop::collection::vec(life_strategy(), 1..30),
    ) {
        let p = build(&lives);
        let far = Time::at(10_000);
        prop_assert_eq!(p.active_nodes(), p.active_set_at(far));
        prop_assert_eq!(
            p.present_count(),
            p.records().filter(|(_, r)| r.present_at(far)).count()
        );
    }

    /// Arrivals/departures bookkeeping is conserved.
    #[test]
    fn arrival_departure_conservation(
        lives in prop::collection::vec(life_strategy(), 1..30),
    ) {
        let p = build(&lives);
        prop_assert_eq!(p.total_arrivals(), lives.len());
        let departed = lives.iter().filter(|l| l.leave.is_some()).count();
        prop_assert_eq!(p.total_departures(), departed);
        prop_assert_eq!(p.present_count(), lives.len() - departed);
    }
}
