//! Integration tests for the observability layer: causal op spans,
//! `why_stuck` on a real wedged scenario, the flight-recorder ring, and
//! the timeseries JSONL round-trip.

use dynareg_sim::obs::{ObsConfig, Timeseries, TIMESERIES_SCHEMA};
use dynareg_sim::{Span, Time};
use dynareg_testkit::{parse_scenario, OpPhase, Scenario};

/// A total-loss variant of the lossy-ES corpus scenario: with every
/// message dropped for the whole run, joiners wedge no matter how often
/// the bounded retransmit re-fires (the committed corpus file itself now
/// converges once its loss window ends — that direction is pinned in
/// `loss_convergence.rs`). `why_stuck` must name the actual lost join
/// messages and the drop rule that swallowed them — the one-query
/// diagnosis the layer exists for.
#[test]
fn why_stuck_names_the_dropped_join_messages_in_the_lossy_es_wedge() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../scenarios/drop_lossy_es.dyn"
    );
    let text = std::fs::read_to_string(path).expect("drop_lossy_es.dyn is committed");
    // Escalate the committed loss windows to a permanent 100% drop: no
    // handshake (or retransmission of one) can ever land, so the wedge
    // this test dissects is guaranteed to persist.
    let text = text
        .replace(
            "fault drop any any 0 200 0.25",
            "fault drop any any 0 700 1.0",
        )
        .replace("fault drop any any 200 550 0.05", "");
    let spec = parse_scenario(&text).expect("corpus file parses");
    let report = spec.run_observed(ObsConfig {
        spans: true,
        timeseries_every: None,
        flight_recorder: Some(4096),
        tick_profile: false,
    });

    let obs = report.obs.as_ref().expect("observed run carries a report");
    let stuck = obs.why_stuck_all();
    assert!(
        !stuck.is_empty(),
        "the lossy wedge must leave stuck join spans"
    );
    // At least one wedged join must have its lost protocol messages
    // attributed: a dropped join-side message (INQUIRY out or a reply
    // back) with the drop rule named.
    let with_loss = stuck
        .iter()
        .find(|w| w.span.label == "join" && !w.lost.is_empty())
        .expect("some wedged join lost a message to the drop rules");
    let rendered = with_loss.to_string();
    assert!(
        rendered.contains("stuck join"),
        "chain names the operation: {rendered}"
    );
    assert!(
        with_loss
            .lost
            .iter()
            .any(|m| m.label == "INQUIRY" || m.label == "REPLY" || m.label == "DL_PREV"),
        "lost messages carry join-protocol labels: {rendered}"
    );
    assert!(
        rendered.contains("fault-dropped"),
        "each lost copy names the fault that swallowed it: {rendered}"
    );

    // The flight dump is a schema-tagged JSONL artifact carrying the
    // ring's retained tail plus every stuck chain.
    let dump = obs.flight_dump(&report.trace);
    let header = dump.lines().next().expect("dump has a header");
    assert!(header.contains("\"schema\":\"dynareg-flight/1\""));
    assert!(dump.contains("\"why_stuck\""));
    assert!(
        report.trace.len() <= 4096,
        "flight ring bounds the retained trace"
    );
}

/// Healthy runs: spans complete, phases are time-ordered, and a
/// completed join observed quorum progress.
#[test]
fn clean_run_spans_complete_with_ordered_phases() {
    let report = Scenario::eventually_synchronous(10, Span::ticks(3), Time::at(0))
        .churn_rate(0.01)
        .duration(Span::ticks(200))
        .seed(3)
        .run_observed(ObsConfig::full());
    assert!(report.liveness.is_ok(), "healthy scenario stays live");

    let obs = report.obs.as_ref().expect("observed run carries a report");
    assert!(!obs.spans.is_empty(), "churn + workload produced spans");
    let completed: Vec<_> = obs.spans.iter().filter(|s| !s.is_stuck()).collect();
    assert!(!completed.is_empty());
    for span in &completed {
        assert_eq!(span.phases.first().unwrap().phase, OpPhase::Invoked);
        assert_eq!(span.phases.last().unwrap().phase, OpPhase::Completed);
        assert!(
            span.phases.windows(2).all(|w| w[0].at <= w[1].at),
            "phase times are monotone"
        );
    }
    let join = completed
        .iter()
        .find(|s| s.label == "join")
        .expect("some join completed under churn");
    assert!(
        join.deliveries > 0,
        "a completed ES join heard quorum replies"
    );
    assert!(
        join.phases.iter().any(|p| p.phase == OpPhase::Sent),
        "the join's inquiry send was recorded"
    );

    // The profiler ran (ObsConfig::full() turns it on) and accounted the
    // run's ticks.
    let profile = report.tick_profile().expect("full obs profiles ticks");
    assert_eq!(profile.ticks, 201, "one profiled tick per instant 0..=200");
    assert!(profile.deliver_events > 0);
}

/// The timeseries export: golden header, deterministic cadence, and a
/// lossless JSONL round-trip.
#[test]
fn timeseries_jsonl_round_trips_and_matches_golden_header() {
    let report = Scenario::synchronous(5, Span::ticks(2))
        .duration(Span::ticks(20))
        .seed(9)
        .run_observed(ObsConfig {
            spans: false,
            timeseries_every: Some(5),
            flight_recorder: None,
            tick_profile: false,
        });
    let obs = report.obs.as_ref().expect("observed run carries a report");
    let ts = obs.timeseries.as_ref().expect("recorder was on");

    let jsonl = ts.to_jsonl();
    let golden_header = format!(
        "{{\"schema\":\"{TIMESERIES_SCHEMA}\",\"every\":5,\"columns\":[\"active\",\"present\",\
         \"joining\",\"inflight\",\"busy_writers\",\"delivered\",\"fault_drops\",\
         \"inquiry_full\",\"delta_overruns\",\"retransmits\"]}}"
    );
    assert_eq!(jsonl.lines().next().unwrap(), golden_header);
    assert_eq!(ts.len(), 5, "ticks 0,5,10,15,20 under every=5");
    assert!(
        ts.column("active").unwrap().iter().all(|&a| a == 5),
        "no churn: the active set never moves"
    );
    assert_eq!(ts.column("fault_drops").unwrap(), &[0, 0, 0, 0, 0]);

    let parsed = Timeseries::parse_jsonl(&jsonl).expect("own output parses");
    assert_eq!(parsed, *ts, "round-trip is lossless");
}

/// A tiny flight-recorder capacity keeps only the newest entries and
/// counts every eviction.
#[test]
fn flight_ring_bounds_retained_trace_and_counts_evictions() {
    let report = Scenario::synchronous(10, Span::ticks(3))
        .churn_rate(0.01)
        .duration(Span::ticks(150))
        .seed(5)
        .run_observed(ObsConfig {
            spans: false,
            timeseries_every: None,
            flight_recorder: Some(64),
            tick_profile: false,
        });
    assert_eq!(report.trace.len(), 64, "ring fills to its capacity");
    assert!(
        report.trace.dropped() > 0,
        "a 150-tick run evicts older entries"
    );
    // The retained tail is the run's newest events, still time-ordered.
    let times: Vec<_> = report.trace.entries().map(|e| e.time).collect();
    assert!(times.windows(2).all(|w| w[0] <= w[1]));
}
