//! Property tests for the scenario-file round-trip guarantee:
//! `parse(write(spec)) == spec` over the full serializable spec space —
//! every protocol, network class, churn model, selector, and fault block
//! (delay rules, partitions over every `NodeSet` shape, probabilistic
//! drops, region matrices), with awkward floats from the raw unit stream.

use dynareg_churn::LeaveSelector;
use dynareg_net::{DelayFault, DropRule, FaultAction, FaultPlan, NodeSet, Partition, RegionMatrix};
use dynareg_sim::{DetRng, NodeId, Span, Time};
use dynareg_testkit::{
    parse_scenario, scenario_hash, write_scenario, ChurnChoice, NetClass, ProtocolChoice,
    ScenarioSpec,
};
use proptest::prelude::*;

fn arb_time(rng: &mut DetRng) -> Time {
    if rng.chance(0.1) {
        Time::MAX
    } else {
        Time::at(rng.pick(1000))
    }
}

fn arb_node(rng: &mut DetRng) -> Option<NodeId> {
    if rng.chance(0.5) {
        None
    } else {
        Some(NodeId::from_raw(rng.pick(64)))
    }
}

fn arb_node_set(rng: &mut DetRng) -> NodeSet {
    match rng.pick(3) {
        0 => NodeSet::Modulo {
            modulo: 1 + rng.pick(8),
            residue: rng.pick(8),
        },
        1 => NodeSet::FirstRaw(rng.pick(40)),
        _ => NodeSet::Ids(
            (0..1 + rng.pick(5))
                .map(|_| NodeId::from_raw(rng.pick(64)))
                .collect(),
        ),
    }
}

fn arb_plan(rng: &mut DetRng) -> FaultPlan {
    let mut plan = FaultPlan::default();
    for _ in 0..rng.pick(3) {
        let span = Span::ticks(1 + rng.pick(20));
        plan.push(DelayFault {
            from: arb_node(rng),
            to: arb_node(rng),
            from_time: arb_time(rng),
            until_time: arb_time(rng),
            action: if rng.chance(0.5) {
                FaultAction::AddDelay(span)
            } else {
                FaultAction::SetDelay(span)
            },
        });
    }
    for _ in 0..rng.pick(3) {
        plan.push_partition(Partition::new(
            arb_node_set(rng),
            arb_time(rng),
            arb_time(rng),
        ));
    }
    for _ in 0..rng.pick(3) {
        plan.push_drop(DropRule {
            from: arb_node(rng),
            to: arb_node(rng),
            from_time: arb_time(rng),
            until_time: arb_time(rng),
            probability: rng.unit(),
        });
    }
    if rng.chance(0.5) {
        let regions = 1 + rng.pick(4) as u32;
        let mut matrix = RegionMatrix::new(regions);
        for a in 0..regions {
            for b in 0..regions {
                if rng.chance(0.3) {
                    matrix.set(a, b, Span::ticks(1 + rng.pick(12)));
                }
            }
        }
        plan.set_region(Some(matrix));
    }
    plan
}

fn arb_churn(rng: &mut DetRng) -> ChurnChoice {
    match rng.pick(7) {
        0 => ChurnChoice::None,
        1 => ChurnChoice::Constant(rng.unit()),
        2 => ChurnChoice::Poisson(rng.unit()),
        3 => ChurnChoice::Burst {
            on: rng.unit(),
            on_ticks: 1 + rng.pick(50),
            off: rng.unit(),
            off_ticks: 1 + rng.pick(200),
        },
        4 => {
            let a = rng.unit();
            let b = rng.unit();
            ChurnChoice::Diurnal {
                peak: a.max(b),
                trough: a.min(b),
                period: 1 + rng.pick(500),
            }
        }
        5 => ChurnChoice::Sessions {
            alpha: 0.5 + rng.unit() * 3.0,
            min_ticks: 1 + rng.pick(100),
        },
        _ => {
            let wave_ticks = 1 + rng.pick(10);
            ChurnChoice::FlashCrowd {
                base: rng.unit(),
                wave_at: rng.pick(300),
                wave_every: if rng.chance(0.3) {
                    0
                } else {
                    wave_ticks + rng.pick(100)
                },
                wave_joins: rng.pick(12) as u32,
                wave_ticks,
            }
        }
    }
}

fn arb_spec(seed: u64) -> ScenarioSpec {
    let mut rng = DetRng::seed(seed);
    let rng = &mut rng;
    ScenarioSpec {
        protocol: match rng.pick(4) {
            0 => ProtocolChoice::Synchronous,
            1 => ProtocolChoice::SynchronousNoWait,
            2 => ProtocolChoice::EventuallySynchronous,
            _ => ProtocolChoice::EsAtomic,
        },
        net: match rng.pick(4) {
            0 => NetClass::Synchronous,
            1 => NetClass::SynchronousWorstCase,
            2 => NetClass::EventuallySynchronous { gst: arb_time(rng) },
            _ => NetClass::FullyAsynchronous {
                cap_factor: 1 + rng.pick(10),
            },
        },
        n: 1 + rng.pick(100) as usize,
        delta: Span::ticks(1 + rng.pick(12)),
        churn: arb_churn(rng),
        selector: match rng.pick(4) {
            0 => LeaveSelector::Random,
            1 => LeaveSelector::OldestFirst,
            2 => LeaveSelector::NewestFirst,
            _ => LeaveSelector::ActiveFirst,
        },
        duration: Span::ticks(rng.pick(2000)),
        drain: rng.chance(0.5).then(|| Span::ticks(rng.pick(100))),
        seed: rng.pick(u64::MAX),
        write_every: rng.chance(0.5).then(|| Span::ticks(1 + rng.pick(30))),
        write_quiesce: rng.chance(0.5).then(|| Span::ticks(rng.pick(60))),
        reads_per_tick: rng.unit() * 4.0,
        writer_churns: rng.chance(0.5),
        migrating_writer: rng.chance(0.5),
        trace: rng.chance(0.2),
        script: None,
        // An empty plan has no file representation (it writes as nothing
        // and parses back as `None`), so only non-empty plans round-trip.
        faults: rng
            .chance(0.6)
            .then(|| arb_plan(rng))
            .filter(|p| !p.is_empty()),
        keys: 1 + rng.pick(16) as u32,
        zipf_exponent: rng.unit() * 2.0,
        shards: 1 + rng.pick(8) as u32,
        writers: 1 + rng.pick(5) as usize,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `parse(write(spec)) == spec`, and the canonical text is a fixed
    /// point — writing the reparsed spec reproduces it byte for byte.
    #[test]
    fn write_parse_round_trips(seed in 0u64..1_000_000_000) {
        let spec = arb_spec(seed);
        let text = write_scenario(&spec).expect("scriptless specs serialize");
        let parsed = match parse_scenario(&text) {
            Ok(parsed) => parsed,
            Err(e) => return Err(TestCaseError::fail(format!("{e}\n--- text ---\n{text}"))),
        };
        prop_assert_eq!(&parsed, &spec, "round-trip changed the spec:\n{}", text);
        prop_assert_eq!(write_scenario(&parsed).unwrap(), text);
    }

    /// The scenario hash separates content from seed and is stable.
    #[test]
    fn hash_is_stable_and_sensitive(seed in 0u64..1_000_000_000) {
        let spec = arb_spec(seed);
        let text = write_scenario(&spec).unwrap();
        let h = scenario_hash(&text, spec.seed);
        prop_assert_eq!(h, scenario_hash(&text, spec.seed));
        prop_assert_ne!(h, scenario_hash(&text, spec.seed.wrapping_add(1)));
        let mut altered = text.clone();
        altered.push('\n');
        prop_assert_ne!(h, scenario_hash(&altered, spec.seed));
    }
}
