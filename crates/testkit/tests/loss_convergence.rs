//! Loss-convergence properties of the bounded join-retransmit handshake
//! (`docs/PROTOCOL.md`, "Join retransmission"): any seeded drop pattern
//! that eventually stops dropping lets every staying joiner reach LIVE
//! within a bounded number of retransmit rounds — under both the
//! timer-driven synchronous join and the quorum-driven ES join — and the
//! committed lossy-ES corpus scenario (the wedge that motivated the
//! mechanism) now converges.

use std::fs;

use dynareg_net::{DropRule, FaultPlan};
use dynareg_sim::{Span, Time};
use dynareg_testkit::{parse_scenario, RunReport, Scenario};
use dynareg_verify::OpKind;

/// The stuck operations of a run that are *joins* — the ops the
/// retransmit mechanism owns. Quorum reads and writes that lose too many
/// replies have no retransmission layer (deliberately out of scope; see
/// ROADMAP.md) and may legitimately wedge under heavy loss, so the
/// convergence property quantifies over joins only.
fn stuck_joins(report: &RunReport) -> Vec<String> {
    report
        .liveness
        .stuck_ops
        .iter()
        .filter_map(|&op| report.history.get(op))
        .filter(|rec| matches!(rec.kind, OpKind::Join))
        .map(|rec| format!("{} by {}", rec.op, rec.node))
        .collect()
}

/// Seeded drop patterns: probability and window end are derived from the
/// case index, so the matrix sweeps light (20%) to heavy (50%) loss over
/// staggered windows. Every window closes by tick 325; with δ = 4 and the
/// harness policy (base 2δ, budget 4) the silence window plateaus at
/// `8 << 4 = 128` ticks, so the last pre-heal beat re-fires at most 128
/// ticks after the loss stops and the handshake completes one round-trip
/// later — comfortably inside the 325 + 250 tick run plus drain. A run
/// that stays wedged past that bound means a joiner's retransmission
/// never resumed, which is exactly the regression this property pins.
///
/// Loss is capped at 50% because convergence is only promised while the
/// system *survives* the window: under heavier sustained loss, enough
/// joins stall that constant churn drains the active set below the join
/// quorum, after which no join — lossless or not — can ever gather
/// enough distinct repliers (the paper's churn-threshold breach, §5.2;
/// retransmission cannot resurrect a dead quorum).
fn drop_cases() -> Vec<(u64, f64, u64)> {
    (0..8)
        .map(|case: u64| {
            let probability = 0.2 + 0.1 * (case % 4) as f64;
            let window_end = 150 + 25 * case;
            (case, probability, window_end)
        })
        .collect()
}

#[test]
fn es_joiners_converge_after_any_seeded_loss_window_ends() {
    let delta = Span::ticks(4);
    let mut total_retransmits = 0;
    for (seed, probability, window_end) in drop_cases() {
        let report = Scenario::eventually_synchronous(15, delta, Time::ZERO)
            .churn_rate(0.005)
            .duration(Span::ticks(window_end + 250))
            .drain(Span::ticks(150))
            .seed(seed)
            .faults(FaultPlan::default().with_drop(DropRule::lossy_everything(
                Time::ZERO,
                Time::at(window_end),
                probability,
            )))
            .run();
        let stuck = stuck_joins(&report);
        assert!(
            stuck.is_empty(),
            "seed {seed}: {probability} loss until {window_end} left \
             staying joiner(s) stuck past the bounded-retransmit horizon: {stuck:?}"
        );
        total_retransmits += report.join_retransmits();
    }
    // The property is vacuous if no handshake ever needed a re-fire: the
    // heavier windows must actually exercise the silence timer.
    assert!(
        total_retransmits > 0,
        "the loss matrix never triggered a join retransmission"
    );
}

#[test]
fn sync_joiners_converge_after_any_seeded_loss_window_ends() {
    // The timer-driven join can always fall back to blind ⊥ activation,
    // so liveness here additionally checks that the zero-reply
    // interception (which *delays* that fallback to retry the inquiry)
    // never delays it past the retry budget.
    let delta = Span::ticks(4);
    for (seed, probability, window_end) in drop_cases() {
        let report = Scenario::synchronous(15, delta)
            .churn_rate(0.005)
            .duration(Span::ticks(window_end + 250))
            .drain(Span::ticks(150))
            .seed(seed)
            .faults(FaultPlan::default().with_drop(DropRule::lossy_everything(
                Time::ZERO,
                Time::at(window_end),
                probability,
            )))
            .run();
        assert!(
            report.liveness.is_ok(),
            "seed {seed}: {probability} loss until {window_end} left \
             {} staying joiner(s) stuck",
            report.liveness.incomplete_stayer_count()
        );
    }
}

/// The committed corpus scenario `drop_lossy_es.dyn` — the lossy-ES join
/// wedge that motivated the retransmit mechanism — converges: its loss
/// windows close at tick 550, every staying joiner reaches LIVE, and the
/// recovery is attributable (`join.retransmits > 0`). The opposite
/// direction (total permanent loss still wedges, and `why_stuck` names
/// the dropped messages) is pinned in `obs.rs`.
#[test]
fn committed_lossy_es_corpus_scenario_converges_with_retransmits() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../scenarios/drop_lossy_es.dyn"
    );
    let text = fs::read_to_string(path).expect("drop_lossy_es.dyn is committed");
    let spec = parse_scenario(&text).expect("corpus file parses");
    let report = spec.run();
    assert!(
        report.liveness.is_ok(),
        "the corpus scenario must converge once its loss windows end; \
         {} stayer(s) stuck",
        report.liveness.incomplete_stayer_count()
    );
    assert!(
        report.join_retransmits() > 0,
        "recovery must be attributable to the retransmit mechanism"
    );
}
