//! Chaos-harness integration tests: violations must be *attributable*
//! to their fault window, not just counted, and the committed scenario
//! corpus must stay parseable and canonical.

use std::fs;
use std::path::PathBuf;

use dynareg_net::{FaultPlan, Partition};
use dynareg_sim::{Span, Time};
use dynareg_testkit::{parse_scenario, write_scenario, Scenario};

/// Mirror of `scenarios/partition_heal.dyn`: an even/odd partition cuts
/// a synchronous system in half for ticks [150, 250). Regularity breaks
/// *inside* the window — and only there. Every violating read must have
/// completed between the cut and shortly after the heal (stale replies
/// in flight can land up to a few δ later), and reads that complete
/// after heal + margin must all be clean again.
#[test]
fn partition_and_heal_confines_violations_to_the_window() {
    let window_start = Time::at(150);
    let window_end = Time::at(250);
    let report = Scenario::synchronous(20, Span::ticks(3))
        .churn_rate(0.01)
        .duration(Span::ticks(500))
        .drain(Span::ticks(60))
        .seed(7)
        .faults(FaultPlan::default().with_partition(Partition::even_odd(window_start, window_end)))
        .run();

    assert!(
        report.fault_drops > 0,
        "the partition should actually cut messages"
    );
    assert!(
        !report.safety.is_ok(),
        "a partitioned synchronous system is only locally synchronous; \
         this seed is known to produce split-brain reads"
    );

    // A read that starts just before the heal can return a stale value
    // and still take a full round-trip to complete; allow 4δ of slack
    // past the heal before demanding clean reads again.
    let margin = Span::ticks(4 * 3);
    let horizon = Time::at(window_end.ticks() + margin.as_ticks());
    let total = report.safety.violation_count();
    let in_window = report
        .safety
        .violations_completed_in(&report.history, window_start, horizon);
    assert_eq!(
        in_window,
        total,
        "all {total} violations must complete inside [{window_start}, {horizon}); \
         completion times: {:?}",
        report.safety.violation_completion_times(&report.history)
    );
    assert_eq!(
        report
            .safety
            .violations_completed_in(&report.history, Time::ZERO, window_start),
        0,
        "no violations before the cut"
    );
    assert_eq!(
        report
            .safety
            .violations_completed_in(&report.history, horizon, Time::MAX),
        0,
        "reads completing after heal + drain margin must be clean again"
    );
}

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

/// Every committed corpus file parses, and its parsed spec survives the
/// canonical write → parse cycle unchanged. (Exact byte canonicity is
/// not asserted: corpus files carry `#` commentary the canonical writer
/// deliberately does not emit.)
#[test]
fn corpus_files_parse_and_survive_canonicalization() {
    let mut checked = 0;
    let mut names: Vec<String> = Vec::new();
    for entry in fs::read_dir(corpus_dir()).expect("scenarios/ corpus directory") {
        let path = entry.expect("corpus dir entry").path();
        if path.extension().map(|e| e != "dyn").unwrap_or(true) {
            continue;
        }
        let text = fs::read_to_string(&path).expect("corpus file is readable");
        let spec = parse_scenario(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let canon = write_scenario(&spec)
            .unwrap_or_else(|e| panic!("{}: canonical write failed: {e}", path.display()));
        let reparsed = parse_scenario(&canon)
            .unwrap_or_else(|e| panic!("{}: canonical text re-parse failed: {e}", path.display()));
        assert_eq!(
            reparsed,
            spec,
            "{}: spec changed across write → parse",
            path.display()
        );
        checked += 1;
        names.push(path.file_name().unwrap().to_string_lossy().into_owned());
    }
    assert!(
        checked >= 8,
        "the corpus must hold at least 8 scenarios, found {checked}: {names:?}"
    );
}
