//! # dynareg-testkit — simulation world, scenarios and experiments
//!
//! Glues the substrates together into runnable systems:
//!
//! * [`World`] — the deterministic runtime: interprets register-space
//!   [`SpaceEffect`]s against the network, applies churn, records the
//!   per-key operation histories and the trace. Every client invocation
//!   addresses a `(RegisterId, action)` pair ([`KeyedAction`]); bare
//!   [`OpAction`]s target the anchor key `r0`;
//! * [`ProtocolFactory`] — how the world spawns bootstrap members and
//!   joiners for a given protocol ([`SyncFactory`], [`EsFactory`]). Every
//!   protocol factory is a 1-key [`SpaceFactory`]; [`SpaceOf`] lifts one
//!   to a keyed [`RegisterSpace`] multiplexer;
//! * [`Workload`] — who reads/writes which key when ([`RateWorkload`] for
//!   steady single-register load, [`ZipfWorkload`] for Zipf-keyed space
//!   traffic, [`ScriptedWorkload`] for figure-exact reproductions);
//! * [`Scenario`] — one-stop builder mapping paper parameters
//!   `(n, δ, c, GST, seed, …)` to a full run + [`RunReport`] with safety,
//!   atomicity and liveness verdicts. Its plain-data core,
//!   [`ScenarioSpec`], is `Send + Clone` — the unit of work
//!   `dynareg-fleet` fans out across threads;
//! * [`experiment`] — multi-seed aggregation and markdown/CSV tables for
//!   the experiment binaries in `dynareg-bench`.
//!
//! # Example
//!
//! ```
//! use dynareg_testkit::Scenario;
//! use dynareg_sim::Span;
//!
//! let report = Scenario::synchronous(20, Span::ticks(4))
//!     .churn_fraction_of_bound(0.5) // c = 0.5 · 1/(3δ)
//!     .duration(Span::ticks(300))
//!     .seed(7)
//!     .run();
//! assert!(report.safety.is_ok());
//! assert!(report.liveness.is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
mod factory;
pub mod obs;
mod scenario;
mod scenfile;
pub mod table;
mod workload;
mod world;

pub use dynareg_core::space::{
    shard_of_key, shard_of_node, RegisterSpace, RegisterSpaceProcess, ShardConfig, SoloSpace,
    SpaceEffect, SpaceMsg,
};
pub use factory::{EsFactory, ProtocolFactory, SpaceFactory, SpaceOf, SyncFactory};
pub use obs::{
    MsgFate, MsgInfo, ObsConfig, ObsReport, OpPhase, OpSpan, PhaseEvent, WhyStuck, FLIGHT_SCHEMA,
};
pub use scenario::{
    ChurnChoice, KeyReport, NetClass, ProtocolChoice, RunReport, Scenario, ScenarioSpec,
};
pub use scenfile::{parse_scenario, scenario_hash, write_scenario, ScenError, FORMAT_LINE};
pub use workload::{
    KeyedAction, OpAction, RateWorkload, ScriptTarget, ScriptedWorkload, Workload, ZipfKeys,
    ZipfWorkload,
};
pub use world::{World, WorldConfig, WriterPolicy};
