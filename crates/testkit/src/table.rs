//! Plain-text result tables (markdown and CSV) for the experiment binaries.

use std::fmt;

/// A simple column-aligned table.
///
/// # Example
///
/// ```
/// use dynareg_testkit::table::Table;
///
/// let mut t = Table::new(["c / bound", "violations"]);
/// t.row(["0.5", "0"]);
/// t.row(["2.0", "17"]);
/// assert!(t.markdown().contains("| c / bound | violations |"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<I, S>(headers: I) -> Table
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Table
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} != header width {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.len());
            }
        }
        w
    }

    /// Renders as a column-aligned markdown table.
    pub fn markdown(&self) -> String {
        let widths = self.widths();
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {cell:<w$} |"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{:-<1$}|", "", w + 2));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Renders as CSV (naive quoting: cells containing commas are quoted).
    pub fn csv(&self) -> String {
        let esc = |s: &String| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(esc).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.markdown())
    }
}

/// Formats an f64 compactly for table cells.
pub fn fnum(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e12 {
        format!("{x:.0}")
    } else if x.abs() >= 100.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_aligns_columns() {
        let mut t = Table::new(["a", "longheader"]);
        t.row(["wide-cell-content", "1"]);
        let md = t.markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].len(), lines[2].len(), "aligned widths");
        assert!(lines[1].starts_with("|--"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn csv_quotes_commas() {
        let mut t = Table::new(["k", "v"]);
        t.row(["x,y", "plain"]);
        let csv = t.csv();
        assert_eq!(csv, "k,v\n\"x,y\",plain\n");
    }

    #[test]
    fn fnum_formats_by_magnitude() {
        assert_eq!(fnum(3.0), "3");
        assert_eq!(fnum(0.0417), "0.042");
        assert_eq!(fnum(1234.567), "1234.6");
    }

    #[test]
    fn display_is_markdown() {
        let mut t = Table::new(["x"]);
        t.row(["1"]);
        assert_eq!(t.to_string(), t.markdown());
    }
}
