//! Causal op spans, message fates, and the `why_stuck` query.
//!
//! The observability layer the [`crate::World`] feeds when an
//! [`ObsConfig`] is installed via `World::set_obs`:
//!
//! * every client operation (join / read / write) gets an [`OpSpan`]
//!   recording its phase transitions — invoked → inquiry sent → quorum
//!   progress → timer re-fires → completed (or stuck);
//! * every message carries the network's deterministic sequence id, each
//!   `Deliver` is linked to the `Send` that caused it, and messages a
//!   handler sends *while processing a delivery* inherit that delivery's
//!   operation attribution — so a joiner's `INQUIRY`, the responders'
//!   `REPLY`s, and any re-inquiries all land in the same causal set;
//! * [`ObsReport::why_stuck`] joins the two: for a wedged operation it
//!   returns the span plus every message of its causal set that never
//!   arrived, with the fault rule that swallowed each one.
//!
//! Everything here is bookkeeping over values the run already computes:
//! no randomness is consumed and no event is reordered, so an instrumented
//! run is digest-identical to an uninstrumented one (the zero-cost claim
//! CI gates with a byte-compare).

// Lookup-only attribution maps keyed by dense sequence ids / op ids:
// probed on delivery, never iterated (detlint's unordered-iteration rule
// guards that), and on the per-message hot path where hashing beats a
// B-tree walk.
#[allow(clippy::disallowed_types)]
use std::collections::HashMap;
use std::fmt;

use dynareg_net::{MsgRecord, SendFate};
use dynareg_sim::obs::{TickProfile, Timeseries};
use dynareg_sim::{NodeId, OpId, RegisterId, Time};

pub use dynareg_sim::obs::ObsConfig;

/// A phase transition inside an operation's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpPhase {
    /// The client invoked the operation.
    Invoked,
    /// The operation's first protocol message went out (the inquiry /
    /// write wave).
    Sent,
    /// The first message of the operation's causal set arrived back at
    /// the invoking node (quorum progress; subsequent arrivals bump
    /// [`OpSpan::deliveries`] without new phase events).
    Progress,
    /// A protocol timer re-fired for this operation and sent again (e.g.
    /// a sharded join's `INQUIRY_FULL` re-inquiry round).
    Refire,
    /// The space layer re-broadcast the join inquiry after a silence
    /// window (loss-tolerant bounded retransmission; `docs/PROTOCOL.md`).
    Retransmit,
    /// The operation returned to the client.
    Completed,
}

impl fmt::Display for OpPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpPhase::Invoked => "invoked",
            OpPhase::Sent => "sent",
            OpPhase::Progress => "progress",
            OpPhase::Refire => "re-fire",
            OpPhase::Retransmit => "retransmit",
            OpPhase::Completed => "completed",
        };
        f.write_str(s)
    }
}

/// One timestamped phase transition, with the message label that marked
/// it (empty for phases without one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseEvent {
    /// When the transition happened.
    pub at: Time,
    /// Which transition.
    pub phase: OpPhase,
    /// The protocol label involved (`""` for `Invoked`/`Completed`).
    pub label: &'static str,
}

/// The causal span of one client operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpSpan {
    /// The register the operation addresses (joins anchor at `r0`).
    pub key: RegisterId,
    /// The operation id (links to the history).
    pub op: OpId,
    /// The invoking node.
    pub node: NodeId,
    /// `"join"`, `"read"` or `"write"`.
    pub label: &'static str,
    /// Invocation instant.
    pub invoked_at: Time,
    /// Completion instant, `None` while (or forever if) the op is wedged.
    pub completed_at: Option<Time>,
    /// Phase transitions in order.
    pub phases: Vec<PhaseEvent>,
    /// Messages of this op's causal set delivered back to the invoking
    /// node (the quorum-progress count).
    pub deliveries: u64,
    /// Timer re-fire rounds observed.
    pub refires: u64,
}

impl OpSpan {
    /// Whether the operation never completed.
    pub fn is_stuck(&self) -> bool {
        self.completed_at.is_none()
    }
}

/// The final fate of one sent message copy, after joining the network's
/// send log with the runtime's delivery record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgFate {
    /// Delivered to its recipient.
    Delivered {
        /// Delivery instant.
        at: Time,
    },
    /// Swallowed in flight by the fault layer.
    FaultDropped {
        /// `"partition"` or `"drop"`.
        kind: &'static str,
        /// Rule index within its category.
        rule: usize,
    },
    /// Dropped at delivery time because the recipient had departed.
    DroppedDeparted {
        /// The (non-)delivery instant.
        at: Time,
    },
    /// Still scheduled when the run ended.
    InFlight,
}

impl MsgFate {
    /// Whether the copy reached its recipient.
    pub fn delivered(&self) -> bool {
        matches!(self, MsgFate::Delivered { .. })
    }
}

impl fmt::Display for MsgFate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MsgFate::Delivered { at } => write!(f, "delivered {at}"),
            MsgFate::FaultDropped { kind, rule } => write!(f, "fault-dropped ({kind}[{rule}])"),
            MsgFate::DroppedDeparted { at } => write!(f, "recipient departed ({at})"),
            MsgFate::InFlight => write!(f, "still in flight at run end"),
        }
    }
}

/// One message copy with its causal links resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgInfo {
    /// Deterministic sequence id.
    pub seq: u64,
    /// Sender.
    pub from: NodeId,
    /// Recipient.
    pub to: NodeId,
    /// Protocol label.
    pub label: &'static str,
    /// Send instant.
    pub sent_at: Time,
    /// What became of the copy.
    pub fate: MsgFate,
    /// The sequence id of the delivery that caused this send, if it was
    /// sent from inside a message handler.
    pub parent: Option<u64>,
    /// The client operation this copy's causal chain serves, if known.
    pub op: Option<(RegisterId, OpId)>,
}

/// The answer to "why is this operation stuck?": its span plus every
/// message of its causal set that never arrived.
#[derive(Debug, Clone)]
pub struct WhyStuck {
    /// The wedged operation's span.
    pub span: OpSpan,
    /// Messages of the op's causal set that were never delivered, in send
    /// order.
    pub lost: Vec<MsgInfo>,
    /// Messages of the causal set that *were* delivered.
    pub delivered: u64,
}

impl fmt::Display for WhyStuck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "stuck {} {} on {} (key {}), invoked {}: {} deliveries, {} re-fire(s), {} message(s) lost",
            self.span.label,
            self.span.op,
            self.span.node,
            self.span.key,
            self.span.invoked_at,
            self.delivered,
            self.span.refires,
            self.lost.len(),
        )?;
        for p in &self.span.phases {
            if p.label.is_empty() {
                writeln!(f, "  [{}] {}", p.at, p.phase)?;
            } else {
                writeln!(f, "  [{}] {} {}", p.at, p.phase, p.label)?;
            }
        }
        for m in &self.lost {
            writeln!(
                f,
                "  lost seq {}: {} {} -> {} sent {} — {}",
                m.seq, m.label, m.from, m.to, m.sent_at, m.fate
            )?;
        }
        Ok(())
    }
}

/// Schema tag of the flight-recorder dump.
pub const FLIGHT_SCHEMA: &str = "dynareg-flight/1";

/// Everything the observability layer collected over one run.
#[derive(Debug, Default)]
pub struct ObsReport {
    /// One span per tracked client operation, in invocation order.
    pub spans: Vec<OpSpan>,
    /// Every message copy sent, with resolved fates and causal links, in
    /// sequence order. Empty unless spans were enabled.
    pub msgs: Vec<MsgInfo>,
    /// The per-tick gauge timeseries, if recording was enabled.
    pub timeseries: Option<Timeseries>,
    /// Wall-clock accounting per tick phase, if profiling was enabled.
    pub tick_profile: Option<TickProfile>,
}

impl ObsReport {
    /// The span of `(key, op)`, if tracked.
    pub fn span(&self, key: RegisterId, op: OpId) -> Option<&OpSpan> {
        self.spans.iter().find(|s| s.key == key && s.op == op)
    }

    /// Spans that never completed, in invocation order.
    pub fn stuck_spans(&self) -> impl Iterator<Item = &OpSpan> {
        self.spans.iter().filter(|s| s.is_stuck())
    }

    /// Explains one wedged operation: the first stuck span carrying `op`
    /// (any key), with the undelivered messages of its causal set.
    pub fn why_stuck(&self, op: OpId) -> Option<WhyStuck> {
        let span = self.spans.iter().find(|s| s.op == op && s.is_stuck())?;
        Some(self.explain(span))
    }

    /// Explains every wedged operation, in invocation order.
    pub fn why_stuck_all(&self) -> Vec<WhyStuck> {
        self.stuck_spans().map(|s| self.explain(s)).collect()
    }

    fn explain(&self, span: &OpSpan) -> WhyStuck {
        let target = Some((span.key, span.op));
        let mut lost = Vec::new();
        let mut delivered = 0u64;
        for m in &self.msgs {
            if m.op != target {
                continue;
            }
            if m.fate.delivered() {
                delivered += 1;
            } else {
                lost.push(*m);
            }
        }
        WhyStuck {
            span: span.clone(),
            lost,
            delivered,
        }
    }

    /// Renders the flight-recorder dump: a JSONL artifact holding the
    /// retained tail of the trace ring plus one `why_stuck` chain per
    /// wedged operation. `trace` is the run's (ring-buffered) trace log.
    pub fn flight_dump(&self, trace: &dynareg_sim::trace::TraceLog) -> String {
        let chains = self.why_stuck_all();
        let mut out = format!(
            "{{\"schema\":\"{FLIGHT_SCHEMA}\",\"retained\":{},\"evicted\":{},\"stuck_spans\":{}}}\n",
            trace.len(),
            trace.dropped(),
            chains.len(),
        );
        for e in trace.entries() {
            out.push_str(&format!(
                "{{\"t\":{},\"line\":\"{}\"}}\n",
                e.time.ticks(),
                json_escape(&e.to_string()),
            ));
        }
        for c in &chains {
            let lost_seqs: Vec<String> = c.lost.iter().map(|m| m.seq.to_string()).collect();
            out.push_str(&format!(
                "{{\"why_stuck\":{{\"op\":{},\"node\":{},\"key\":{},\"label\":\"{}\",\"invoked_at\":{},\"deliveries\":{},\"refires\":{},\"lost_seqs\":[{}],\"chain\":\"{}\"}}}}\n",
                c.span.op.as_raw(),
                c.span.node.as_raw(),
                c.span.key.as_raw(),
                c.span.label,
                c.span.invoked_at.ticks(),
                c.delivered,
                c.span.refires,
                lost_seqs.join(","),
                json_escape(&c.to_string()),
            ));
        }
        out
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// What the world is currently dispatching — the causal context a sent
/// message inherits its operation attribution (and parent link) from.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Cause {
    /// Nothing op-related (bootstrap, untracked traffic).
    None,
    /// Directly inside a client invocation.
    Op(RegisterId, OpId),
    /// Inside a message handler; the delivered seq and its attribution.
    Deliver(u64, Option<(RegisterId, OpId)>),
    /// Inside a timer handler attributed to an operation (if resolvable).
    Timer(Option<(RegisterId, OpId)>),
}

/// The world-side collector behind `World::set_obs`. All methods are
/// invoked behind an `Option` check, so a world without observability
/// never touches any of this.
#[derive(Debug)]
#[allow(clippy::disallowed_types)] // lookup-only attribution maps, see the import note
pub(crate) struct WorldObs {
    pub(crate) cfg: ObsConfig,
    spans: Vec<OpSpan>,
    /// `(key, op) → index into spans`.
    span_ix: HashMap<(RegisterId, OpId), usize>,
    /// Operation attribution of each sent sequence id.
    seq_op: HashMap<u64, (RegisterId, OpId)>,
    /// Causal parent (delivered seq) of each sent sequence id.
    seq_parent: HashMap<u64, u64>,
    /// Delivery instants by sequence id.
    delivered: HashMap<u64, Time>,
    /// Delivery-time departed-recipient drops by sequence id.
    dropped_departed: HashMap<u64, Time>,
    pub(crate) cause: Cause,
    pub(crate) timeseries: Option<Timeseries>,
    pub(crate) profile: TickProfile,
}

impl WorldObs {
    #[allow(clippy::disallowed_types)] // lookup-only attribution maps, see the import note
    pub(crate) fn new(cfg: ObsConfig) -> WorldObs {
        WorldObs {
            cfg,
            spans: Vec::new(),
            span_ix: HashMap::new(),
            seq_op: HashMap::new(),
            seq_parent: HashMap::new(),
            delivered: HashMap::new(),
            dropped_departed: HashMap::new(),
            cause: Cause::None,
            timeseries: cfg.timeseries_every.map(Timeseries::new),
            profile: TickProfile::default(),
        }
    }

    /// The operation the current cause attributes sends to.
    fn cause_op(&self) -> Option<(RegisterId, OpId)> {
        match self.cause {
            Cause::None => None,
            Cause::Op(k, o) => Some((k, o)),
            Cause::Deliver(_, op) | Cause::Timer(op) => op,
        }
    }

    /// The attribution of a delivered sequence id (for propagating the
    /// causal context into its handler).
    pub(crate) fn op_of_seq(&self, seq: u64) -> Option<(RegisterId, OpId)> {
        self.seq_op.get(&seq).copied()
    }

    /// A client operation was invoked.
    pub(crate) fn op_invoked(
        &mut self,
        key: RegisterId,
        op: OpId,
        node: NodeId,
        label: &'static str,
        now: Time,
    ) {
        if !self.cfg.spans {
            return;
        }
        let ix = self.spans.len();
        self.spans.push(OpSpan {
            key,
            op,
            node,
            label,
            invoked_at: now,
            completed_at: None,
            phases: vec![PhaseEvent {
                at: now,
                phase: OpPhase::Invoked,
                label: "",
            }],
            deliveries: 0,
            refires: 0,
        });
        self.span_ix.insert((key, op), ix);
    }

    /// The space layer retransmitted the join inquiry of `(key, op)`
    /// after a silence window. The re-broadcast itself is a separate send
    /// (counted under [`OpSpan::refires`] via the timer cause); this adds
    /// the distinguishing phase event.
    pub(crate) fn op_retransmit(&mut self, key: RegisterId, op: OpId, now: Time) {
        if !self.cfg.spans {
            return;
        }
        let Some(&ix) = self.span_ix.get(&(key, op)) else {
            return;
        };
        self.spans[ix].phases.push(PhaseEvent {
            at: now,
            phase: OpPhase::Retransmit,
            label: "INQUIRY",
        });
    }

    /// A client operation completed.
    pub(crate) fn op_completed(&mut self, key: RegisterId, op: OpId, now: Time) {
        let Some(&ix) = self.span_ix.get(&(key, op)) else {
            return;
        };
        let span = &mut self.spans[ix];
        span.completed_at = Some(now);
        span.phases.push(PhaseEvent {
            at: now,
            phase: OpPhase::Completed,
            label: "",
        });
    }

    /// One logical send effect (unicast or broadcast) consumed the
    /// sequence ids `first .. first + count`, under `label`, from the
    /// current cause. Fault-dropped copies are inside the range too.
    pub(crate) fn note_send(&mut self, first: u64, count: u64, label: &'static str, now: Time) {
        if !self.cfg.spans || count == 0 {
            return;
        }
        let op = self.cause_op();
        let parent = match self.cause {
            Cause::Deliver(seq, _) => Some(seq),
            _ => None,
        };
        for seq in first..first + count {
            if let Some(op) = op {
                self.seq_op.insert(seq, op);
            }
            if let Some(p) = parent {
                self.seq_parent.insert(seq, p);
            }
        }
        let Some(op) = op else { return };
        let Some(&ix) = self.span_ix.get(&op) else {
            return;
        };
        let span = &mut self.spans[ix];
        if matches!(self.cause, Cause::Timer(_)) {
            span.refires += 1;
            span.phases.push(PhaseEvent {
                at: now,
                phase: OpPhase::Refire,
                label,
            });
        } else if !span.phases.iter().any(|p| p.phase == OpPhase::Sent) {
            span.phases.push(PhaseEvent {
                at: now,
                phase: OpPhase::Sent,
                label,
            });
        }
    }

    /// A copy was delivered. Quorum progress is counted when it lands on
    /// the invoking node of the operation it serves.
    pub(crate) fn note_delivered(&mut self, seq: u64, to: NodeId, label: &'static str, now: Time) {
        if !self.cfg.spans {
            return;
        }
        self.delivered.insert(seq, now);
        let Some(&op) = self.seq_op.get(&seq) else {
            return;
        };
        let Some(&ix) = self.span_ix.get(&op) else {
            return;
        };
        let span = &mut self.spans[ix];
        if span.node == to {
            span.deliveries += 1;
            if !span.phases.iter().any(|p| p.phase == OpPhase::Progress) {
                span.phases.push(PhaseEvent {
                    at: now,
                    phase: OpPhase::Progress,
                    label,
                });
            }
        }
    }

    /// A copy was abandoned at delivery time (recipient departed).
    pub(crate) fn note_drop_departed(&mut self, seq: u64, now: Time) {
        if self.cfg.spans {
            self.dropped_departed.insert(seq, now);
        }
    }

    /// Folds the network's send log into the final report.
    pub(crate) fn into_report(self, log: Vec<MsgRecord>) -> ObsReport {
        let msgs = log
            .into_iter()
            .map(|r| {
                let fate = match r.fate {
                    SendFate::FaultDropped { kind, rule } => MsgFate::FaultDropped { kind, rule },
                    SendFate::Scheduled { .. } => {
                        if let Some(&at) = self.delivered.get(&r.seq) {
                            MsgFate::Delivered { at }
                        } else if let Some(&at) = self.dropped_departed.get(&r.seq) {
                            MsgFate::DroppedDeparted { at }
                        } else {
                            MsgFate::InFlight
                        }
                    }
                };
                MsgInfo {
                    seq: r.seq,
                    from: r.from,
                    to: r.to,
                    label: r.label,
                    sent_at: r.sent_at,
                    fate,
                    parent: self.seq_parent.get(&r.seq).copied(),
                    op: self.seq_op.get(&r.seq).copied(),
                }
            })
            .collect();
        ObsReport {
            spans: self.spans,
            msgs,
            timeseries: self.timeseries,
            tick_profile: if self.cfg.tick_profile {
                Some(self.profile)
            } else {
                None
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nid(i: u64) -> NodeId {
        NodeId::from_raw(i)
    }

    fn rec(seq: u64, label: &'static str, fate: SendFate) -> MsgRecord {
        MsgRecord {
            seq,
            from: nid(1),
            to: nid(2),
            label,
            sent_at: Time::at(10),
            fate,
        }
    }

    #[test]
    fn span_lifecycle_and_why_stuck_chain() {
        let mut obs = WorldObs::new(ObsConfig::full());
        let key = RegisterId::ZERO;
        let op = OpId::from_raw(7);
        obs.op_invoked(key, op, nid(1), "join", Time::at(10));
        obs.cause = Cause::Op(key, op);
        obs.note_send(0, 3, "INQUIRY", Time::at(10));
        // seq 1 delivered to a responder, which replies (seq 3) from
        // inside the delivery — the reply inherits the join attribution.
        obs.note_delivered(1, nid(2), "INQUIRY", Time::at(12));
        obs.note_delivered(2, nid(3), "INQUIRY", Time::at(13));
        obs.cause = Cause::Deliver(1, obs.op_of_seq(1));
        obs.note_send(3, 1, "REPLY", Time::at(12));
        obs.note_delivered(3, nid(1), "REPLY", Time::at(14));
        // A timer re-fire for the same op.
        obs.cause = Cause::Timer(Some((key, op)));
        obs.note_send(4, 1, "INQUIRY_FULL", Time::at(20));

        let report = obs.into_report(vec![
            rec(
                0,
                "INQUIRY",
                SendFate::FaultDropped {
                    kind: "drop",
                    rule: 0,
                },
            ),
            rec(
                1,
                "INQUIRY",
                SendFate::Scheduled {
                    deliver_at: Time::at(12),
                },
            ),
            rec(
                2,
                "INQUIRY",
                SendFate::Scheduled {
                    deliver_at: Time::at(13),
                },
            ),
            rec(
                3,
                "REPLY",
                SendFate::Scheduled {
                    deliver_at: Time::at(14),
                },
            ),
            rec(
                4,
                "INQUIRY_FULL",
                SendFate::FaultDropped {
                    kind: "drop",
                    rule: 1,
                },
            ),
        ]);

        let span = report.span(key, op).expect("span tracked");
        assert!(span.is_stuck());
        assert_eq!(span.deliveries, 1, "the REPLY landed on the joiner");
        assert_eq!(span.refires, 1);
        let phases: Vec<OpPhase> = span.phases.iter().map(|p| p.phase).collect();
        assert_eq!(
            phases,
            vec![
                OpPhase::Invoked,
                OpPhase::Sent,
                OpPhase::Progress,
                OpPhase::Refire
            ]
        );

        let why = report.why_stuck(op).expect("stuck span explained");
        assert_eq!(why.delivered, 3, "seqs 1, 2 and 3 arrived");
        let lost: Vec<u64> = why.lost.iter().map(|m| m.seq).collect();
        assert_eq!(lost, vec![0, 4], "both fault-dropped copies named");
        assert_eq!(why.lost[0].op, Some((key, op)));
        assert_eq!(report.msgs[3].parent, Some(1), "REPLY linked to its cause");
        let text = why.to_string();
        assert!(text.contains("stuck join op7"));
        assert!(text.contains("lost seq 0: INQUIRY"));
        assert!(text.contains("fault-dropped (drop[0])"));

        // Completed ops stop being stuck.
        assert!(report.why_stuck(OpId::from_raw(99)).is_none());
    }

    #[test]
    fn completed_span_is_not_stuck() {
        let mut obs = WorldObs::new(ObsConfig::full());
        let key = RegisterId::ZERO;
        let op = OpId::from_raw(1);
        obs.op_invoked(key, op, nid(5), "read", Time::at(1));
        obs.op_completed(key, op, Time::at(3));
        let report = obs.into_report(Vec::new());
        let span = report.span(key, op).unwrap();
        assert!(!span.is_stuck());
        assert_eq!(span.completed_at, Some(Time::at(3)));
        assert_eq!(span.phases.last().unwrap().phase, OpPhase::Completed);
        assert!(report.why_stuck(op).is_none());
        assert_eq!(report.why_stuck_all().len(), 0);
    }

    #[test]
    fn flight_dump_is_schema_tagged_and_escaped() {
        use dynareg_sim::trace::{TraceEvent, TraceLog};
        let mut obs = WorldObs::new(ObsConfig::full());
        obs.op_invoked(
            RegisterId::ZERO,
            OpId::from_raw(2),
            nid(3),
            "join",
            Time::at(5),
        );
        let report = obs.into_report(Vec::new());
        let mut trace = TraceLog::with_capacity_limit(2);
        for i in 0..4 {
            trace.record(
                Time::at(i),
                TraceEvent::Note {
                    node: nid(1),
                    text: format!("step \"{i}\""),
                },
            );
        }
        let dump = report.flight_dump(&trace);
        let mut lines = dump.lines();
        let header = lines.next().unwrap();
        assert!(header.contains(FLIGHT_SCHEMA));
        assert!(header.contains("\"retained\":2"));
        assert!(header.contains("\"evicted\":2"));
        assert!(header.contains("\"stuck_spans\":1"));
        assert!(dump.contains("\\\"2\\\""), "quotes inside lines escaped");
        assert!(dump.contains("\"why_stuck\""));
        assert_eq!(dump.lines().count(), 1 + 2 + 1);
    }

    #[test]
    fn spans_off_records_nothing() {
        let mut obs = WorldObs::new(ObsConfig {
            tick_profile: true,
            ..ObsConfig::off()
        });
        obs.op_invoked(
            RegisterId::ZERO,
            OpId::from_raw(1),
            nid(1),
            "read",
            Time::at(1),
        );
        obs.cause = Cause::Op(RegisterId::ZERO, OpId::from_raw(1));
        obs.note_send(0, 5, "INQUIRY", Time::at(1));
        obs.note_delivered(0, nid(1), "INQUIRY", Time::at(2));
        let report = obs.into_report(Vec::new());
        assert!(report.spans.is_empty());
        assert!(report.msgs.is_empty());
        assert!(report.timeseries.is_none());
        assert!(report.tick_profile.is_some());
    }
}
