//! Scenario files: a hand-rolled text format for [`ScenarioSpec`].
//!
//! The workspace is air-gapped (no serde), so scenarios are stored in a
//! line-oriented plain-text format, one directive per line, in the spirit
//! of the hand-written JSON in `dynareg-fleet`'s reports: a tiny grammar,
//! written and parsed by this module alone, with a round-trip guarantee —
//! [`parse_scenario`]`(`[`write_scenario`]`(spec)) == spec` for every
//! serializable spec (anything without a [`ScriptedWorkload`] attached).
//!
//! # Format
//!
//! The first non-comment line must be the format tag `dynareg-scenario/1`.
//! Blank lines are ignored and `#` starts a comment anywhere on a line.
//! Every other line is `directive arg…`, whitespace-separated; later
//! duplicates win. Times are in ticks, `max` meaning "forever"; endpoints
//! are raw node ids, `any` meaning "unfiltered".
//!
//! ```text
//! dynareg-scenario/1
//! protocol sync|sync-nowait|es|es-atomic
//! net sync|sync-worst | net es <gst> | net async <cap_factor>
//! n <count>                    # required, > 0
//! delta <ticks>                # required, > 0
//! duration <ticks>             # default 300
//! drain <ticks>                # optional (default 12δ at run time)
//! seed <u64>                   # default 0
//! churn none | constant <c> | poisson <c>
//!       | burst <on> <on_ticks> <off> <off_ticks>
//!       | diurnal <peak> <trough> <period>
//!       | sessions <alpha> <min_ticks>
//!       | flash-crowd <base> <wave_at> <wave_every> <wave_joins> <wave_ticks>
//! selector random|oldest-first|newest-first|active-first
//! write-every <ticks>          # optional (default 3δ at run time)
//! write-quiesce <ticks>        # optional
//! reads-per-tick <rate>        # default 1
//! writer-churns true|false     # default false
//! migrating-writer true|false  # default false
//! trace true                   # default false
//! keys <count>                 # default 1
//! zipf <exponent>              # default 1
//! shards <count>               # default 1
//! writers <count>              # default 1
//! fault delay <from|any> <to|any> <t0> <t1|max> add|set <ticks>
//! fault partition <t0> <t1|max> mod <m> <r> | ids <id,id,…> | first <k>
//! fault drop <from|any> <to|any> <t0> <t1|max> <probability>
//! regions <count>
//! region-delay <a> <b> <ticks> # directed; requires a prior `regions`
//! ```
//!
//! [`scenario_hash`] fingerprints `(file content, seed)` with FNV-1a so a
//! replay can assert it is running the very bytes a report referenced.
//!
//! [`ScriptedWorkload`]: crate::ScriptedWorkload

use dynareg_churn::LeaveSelector;
use dynareg_net::{DelayFault, DropRule, FaultAction, FaultPlan, NodeSet, Partition, RegionMatrix};
use dynareg_sim::{NodeId, Span, Time};

use crate::scenario::{ChurnChoice, NetClass, ProtocolChoice, ScenarioSpec};

/// The format tag every scenario file must start with.
pub const FORMAT_LINE: &str = "dynareg-scenario/1";

/// A scenario-file problem: what went wrong and (when parsing) where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenError {
    /// 1-based line number of the offending line; `0` for whole-file or
    /// write-side errors.
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl ScenError {
    fn new(line: usize, msg: impl Into<String>) -> ScenError {
        ScenError {
            line,
            msg: msg.into(),
        }
    }
}

impl std::fmt::Display for ScenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.msg)
        } else {
            write!(f, "line {}: {}", self.line, self.msg)
        }
    }
}

impl std::error::Error for ScenError {}

/// FNV-1a fingerprint of `(file content, seed)`. Stable across platforms
/// and runs; two replays of the same bytes with the same seed — and only
/// those — share a hash.
pub fn scenario_hash(text: &str, seed: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for &b in text.as_bytes() {
        eat(b);
    }
    for b in seed.to_le_bytes() {
        eat(b);
    }
    h
}

fn time_str(t: Time) -> String {
    if t == Time::MAX {
        "max".to_string()
    } else {
        t.ticks().to_string()
    }
}

fn node_str(n: Option<NodeId>) -> String {
    n.map_or_else(|| "any".to_string(), |n| n.as_raw().to_string())
}

/// Serializes `spec` to canonical scenario-file text: fixed directive
/// order, optional directives only when set, fault blocks last.
///
/// # Errors
/// Fails if the spec carries a [`ScriptedWorkload`](crate::ScriptedWorkload)
/// — scripts are programmatic objects with no file representation.
pub fn write_scenario(spec: &ScenarioSpec) -> Result<String, ScenError> {
    if spec.script.is_some() {
        return Err(ScenError::new(
            0,
            "scripted workloads cannot be serialized to a scenario file",
        ));
    }
    let mut out = String::with_capacity(512);
    let mut line = |s: String| {
        out.push_str(&s);
        out.push('\n');
    };
    line(FORMAT_LINE.to_string());
    line(format!(
        "protocol {}",
        match spec.protocol {
            ProtocolChoice::Synchronous => "sync",
            ProtocolChoice::SynchronousNoWait => "sync-nowait",
            ProtocolChoice::EventuallySynchronous => "es",
            ProtocolChoice::EsAtomic => "es-atomic",
        }
    ));
    line(match spec.net {
        NetClass::Synchronous => "net sync".to_string(),
        NetClass::SynchronousWorstCase => "net sync-worst".to_string(),
        NetClass::EventuallySynchronous { gst } => format!("net es {}", time_str(gst)),
        NetClass::FullyAsynchronous { cap_factor } => format!("net async {cap_factor}"),
    });
    line(format!("n {}", spec.n));
    line(format!("delta {}", spec.delta.as_ticks()));
    line(format!("duration {}", spec.duration.as_ticks()));
    if let Some(drain) = spec.drain {
        line(format!("drain {}", drain.as_ticks()));
    }
    line(format!("seed {}", spec.seed));
    line(match spec.churn {
        ChurnChoice::None => "churn none".to_string(),
        ChurnChoice::Constant(c) => format!("churn constant {c}"),
        ChurnChoice::Poisson(c) => format!("churn poisson {c}"),
        ChurnChoice::Burst {
            on,
            on_ticks,
            off,
            off_ticks,
        } => format!("churn burst {on} {on_ticks} {off} {off_ticks}"),
        ChurnChoice::Diurnal {
            peak,
            trough,
            period,
        } => format!("churn diurnal {peak} {trough} {period}"),
        ChurnChoice::Sessions { alpha, min_ticks } => {
            format!("churn sessions {alpha} {min_ticks}")
        }
        ChurnChoice::FlashCrowd {
            base,
            wave_at,
            wave_every,
            wave_joins,
            wave_ticks,
        } => format!("churn flash-crowd {base} {wave_at} {wave_every} {wave_joins} {wave_ticks}"),
    });
    line(format!(
        "selector {}",
        match spec.selector {
            LeaveSelector::Random => "random",
            LeaveSelector::OldestFirst => "oldest-first",
            LeaveSelector::NewestFirst => "newest-first",
            LeaveSelector::ActiveFirst => "active-first",
        }
    ));
    if let Some(we) = spec.write_every {
        line(format!("write-every {}", we.as_ticks()));
    }
    if let Some(wq) = spec.write_quiesce {
        line(format!("write-quiesce {}", wq.as_ticks()));
    }
    line(format!("reads-per-tick {}", spec.reads_per_tick));
    line(format!("writer-churns {}", spec.writer_churns));
    line(format!("migrating-writer {}", spec.migrating_writer));
    if spec.trace {
        line("trace true".to_string());
    }
    line(format!("keys {}", spec.keys));
    line(format!("zipf {}", spec.zipf_exponent));
    line(format!("shards {}", spec.shards));
    line(format!("writers {}", spec.writers));
    if let Some(plan) = spec.faults.as_ref().filter(|p| !p.is_empty()) {
        for f in plan.delay_rules() {
            let (verb, span) = match f.action {
                FaultAction::AddDelay(s) => ("add", s),
                FaultAction::SetDelay(s) => ("set", s),
            };
            line(format!(
                "fault delay {} {} {} {} {} {}",
                node_str(f.from),
                node_str(f.to),
                time_str(f.from_time),
                time_str(f.until_time),
                verb,
                span.as_ticks()
            ));
        }
        for p in plan.partitions() {
            let side = match &p.side_a {
                NodeSet::Modulo { modulo, residue } => format!("mod {modulo} {residue}"),
                NodeSet::FirstRaw(bound) => format!("first {bound}"),
                NodeSet::Ids(ids) => {
                    let csv: Vec<String> = ids.iter().map(|i| i.as_raw().to_string()).collect();
                    format!("ids {}", csv.join(","))
                }
            };
            line(format!(
                "fault partition {} {} {}",
                time_str(p.from_time),
                time_str(p.until_time),
                side
            ));
        }
        for d in plan.drops() {
            line(format!(
                "fault drop {} {} {} {} {}",
                node_str(d.from),
                node_str(d.to),
                time_str(d.from_time),
                time_str(d.until_time),
                d.probability
            ));
        }
        if let Some(region) = plan.region() {
            line(format!("regions {}", region.regions()));
            for a in 0..region.regions() {
                for b in 0..region.regions() {
                    let extra = region.get(a, b);
                    if !extra.is_zero() {
                        line(format!("region-delay {a} {b} {}", extra.as_ticks()));
                    }
                }
            }
        }
    }
    Ok(out)
}

fn expect_args<'a>(
    lineno: usize,
    toks: &'a [&'a str],
    n: usize,
    usage: &str,
) -> Result<&'a [&'a str], ScenError> {
    if toks.len() - 1 == n {
        Ok(&toks[1..])
    } else {
        Err(ScenError::new(lineno, format!("usage: {usage}")))
    }
}

fn num<T: std::str::FromStr>(lineno: usize, s: &str, what: &str) -> Result<T, ScenError> {
    s.parse()
        .map_err(|_| ScenError::new(lineno, format!("bad {what} `{s}`")))
}

fn time_of(lineno: usize, s: &str) -> Result<Time, ScenError> {
    if s == "max" {
        Ok(Time::MAX)
    } else {
        Ok(Time::at(num(lineno, s, "time")?))
    }
}

fn node_of(lineno: usize, s: &str) -> Result<Option<NodeId>, ScenError> {
    if s == "any" {
        Ok(None)
    } else {
        Ok(Some(NodeId::from_raw(num(lineno, s, "node id")?)))
    }
}

fn bool_of(lineno: usize, s: &str) -> Result<bool, ScenError> {
    match s {
        "true" => Ok(true),
        "false" => Ok(false),
        _ => Err(ScenError::new(lineno, format!("bad bool `{s}`"))),
    }
}

fn rate_of(lineno: usize, s: &str, what: &str) -> Result<f64, ScenError> {
    let v: f64 = num(lineno, s, what)?;
    if v.is_finite() && (0.0..=1.0).contains(&v) {
        Ok(v)
    } else {
        Err(ScenError::new(lineno, format!("{what} must be in [0,1]")))
    }
}

/// Parses scenario-file text into a [`ScenarioSpec`].
///
/// Unknown directives, malformed values and out-of-range parameters are
/// reported with their 1-based line number; nothing in a parsed spec can
/// panic the model constructors at run time.
///
/// # Errors
/// Returns a [`ScenError`] naming the offending line.
pub fn parse_scenario(text: &str) -> Result<ScenarioSpec, ScenError> {
    let mut protocol = None;
    let mut net = None;
    let mut n: Option<usize> = None;
    let mut delta: Option<Span> = None;
    let mut duration = Span::ticks(300);
    let mut drain = None;
    let mut seed = 0u64;
    let mut churn = ChurnChoice::None;
    let mut selector = LeaveSelector::Random;
    let mut write_every = None;
    let mut write_quiesce = None;
    let mut reads_per_tick = 1.0f64;
    let mut writer_churns = false;
    let mut migrating_writer = false;
    let mut trace = false;
    let mut keys = 1u32;
    let mut zipf_exponent = 1.0f64;
    let mut shards = 1u32;
    let mut writers = 1usize;
    let mut plan = FaultPlan::default();
    let mut plan_touched = false;
    let mut saw_format = false;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        // `#` starts a comment anywhere on a line.
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if !saw_format {
            if line != FORMAT_LINE {
                return Err(ScenError::new(
                    lineno,
                    format!("expected format line `{FORMAT_LINE}`"),
                ));
            }
            saw_format = true;
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        match toks[0] {
            "protocol" => {
                let a = expect_args(lineno, &toks, 1, "protocol sync|sync-nowait|es|es-atomic")?;
                protocol = Some(match a[0] {
                    "sync" => ProtocolChoice::Synchronous,
                    "sync-nowait" => ProtocolChoice::SynchronousNoWait,
                    "es" => ProtocolChoice::EventuallySynchronous,
                    "es-atomic" => ProtocolChoice::EsAtomic,
                    other => {
                        return Err(ScenError::new(
                            lineno,
                            format!("unknown protocol `{other}`"),
                        ))
                    }
                });
            }
            "net" => {
                net = Some(match toks.get(1).copied() {
                    Some("sync") if toks.len() == 2 => NetClass::Synchronous,
                    Some("sync-worst") if toks.len() == 2 => NetClass::SynchronousWorstCase,
                    Some("es") if toks.len() == 3 => NetClass::EventuallySynchronous {
                        gst: time_of(lineno, toks[2])?,
                    },
                    Some("async") if toks.len() == 3 => NetClass::FullyAsynchronous {
                        cap_factor: num(lineno, toks[2], "cap factor")?,
                    },
                    _ => {
                        return Err(ScenError::new(
                            lineno,
                            "usage: net sync|sync-worst | net es <gst> | net async <cap>",
                        ))
                    }
                });
            }
            "n" => {
                let a = expect_args(lineno, &toks, 1, "n <count>")?;
                let count: usize = num(lineno, a[0], "system size")?;
                if count == 0 {
                    return Err(ScenError::new(lineno, "system size must be positive"));
                }
                n = Some(count);
            }
            "delta" => {
                let a = expect_args(lineno, &toks, 1, "delta <ticks>")?;
                let ticks: u64 = num(lineno, a[0], "delta")?;
                if ticks == 0 {
                    return Err(ScenError::new(lineno, "delta must be at least one tick"));
                }
                delta = Some(Span::ticks(ticks));
            }
            "duration" => {
                let a = expect_args(lineno, &toks, 1, "duration <ticks>")?;
                duration = Span::ticks(num(lineno, a[0], "duration")?);
            }
            "drain" => {
                let a = expect_args(lineno, &toks, 1, "drain <ticks>")?;
                drain = Some(Span::ticks(num(lineno, a[0], "drain")?));
            }
            "seed" => {
                let a = expect_args(lineno, &toks, 1, "seed <u64>")?;
                seed = num(lineno, a[0], "seed")?;
            }
            "churn" => {
                churn = parse_churn(lineno, &toks)?;
            }
            "selector" => {
                let a = expect_args(
                    lineno,
                    &toks,
                    1,
                    "selector random|oldest-first|newest-first|active-first",
                )?;
                selector = match a[0] {
                    "random" => LeaveSelector::Random,
                    "oldest-first" => LeaveSelector::OldestFirst,
                    "newest-first" => LeaveSelector::NewestFirst,
                    "active-first" => LeaveSelector::ActiveFirst,
                    other => {
                        return Err(ScenError::new(
                            lineno,
                            format!("unknown selector `{other}`"),
                        ))
                    }
                };
            }
            "write-every" => {
                let a = expect_args(lineno, &toks, 1, "write-every <ticks>")?;
                let ticks: u64 = num(lineno, a[0], "write period")?;
                if ticks == 0 {
                    return Err(ScenError::new(lineno, "write period must be positive"));
                }
                write_every = Some(Span::ticks(ticks));
            }
            "write-quiesce" => {
                let a = expect_args(lineno, &toks, 1, "write-quiesce <ticks>")?;
                write_quiesce = Some(Span::ticks(num(lineno, a[0], "write quiesce")?));
            }
            "reads-per-tick" => {
                let a = expect_args(lineno, &toks, 1, "reads-per-tick <rate>")?;
                let rate: f64 = num(lineno, a[0], "read rate")?;
                if !rate.is_finite() || rate < 0.0 {
                    return Err(ScenError::new(lineno, "read rate must be non-negative"));
                }
                reads_per_tick = rate;
            }
            "writer-churns" => {
                let a = expect_args(lineno, &toks, 1, "writer-churns true|false")?;
                writer_churns = bool_of(lineno, a[0])?;
            }
            "migrating-writer" => {
                let a = expect_args(lineno, &toks, 1, "migrating-writer true|false")?;
                migrating_writer = bool_of(lineno, a[0])?;
            }
            "trace" => {
                let a = expect_args(lineno, &toks, 1, "trace true|false")?;
                trace = bool_of(lineno, a[0])?;
            }
            "keys" => {
                let a = expect_args(lineno, &toks, 1, "keys <count>")?;
                let count: u32 = num(lineno, a[0], "key count")?;
                if count == 0 {
                    return Err(ScenError::new(lineno, "key count must be positive"));
                }
                keys = count;
            }
            "zipf" => {
                let a = expect_args(lineno, &toks, 1, "zipf <exponent>")?;
                let s: f64 = num(lineno, a[0], "zipf exponent")?;
                if !s.is_finite() || s < 0.0 {
                    return Err(ScenError::new(lineno, "zipf exponent must be non-negative"));
                }
                zipf_exponent = s;
            }
            "shards" => {
                let a = expect_args(lineno, &toks, 1, "shards <count>")?;
                let count: u32 = num(lineno, a[0], "shard count")?;
                if count == 0 {
                    return Err(ScenError::new(lineno, "shard count must be positive"));
                }
                shards = count;
            }
            "writers" => {
                let a = expect_args(lineno, &toks, 1, "writers <count>")?;
                let count: usize = num(lineno, a[0], "writer count")?;
                if count == 0 {
                    return Err(ScenError::new(lineno, "writer count must be positive"));
                }
                writers = count;
            }
            "fault" => {
                parse_fault(lineno, &toks, &mut plan)?;
                plan_touched = true;
            }
            "regions" => {
                let a = expect_args(lineno, &toks, 1, "regions <count>")?;
                let count: u32 = num(lineno, a[0], "region count")?;
                if count == 0 {
                    return Err(ScenError::new(lineno, "region count must be positive"));
                }
                plan.set_region(Some(RegionMatrix::new(count)));
                plan_touched = true;
            }
            "region-delay" => {
                let a = expect_args(lineno, &toks, 3, "region-delay <a> <b> <ticks>")?;
                let ra: u32 = num(lineno, a[0], "region")?;
                let rb: u32 = num(lineno, a[1], "region")?;
                let ticks: u64 = num(lineno, a[2], "region delay")?;
                let Some(region) = plan.region_mut() else {
                    return Err(ScenError::new(
                        lineno,
                        "region-delay requires a prior `regions` directive",
                    ));
                };
                if ra >= region.regions() || rb >= region.regions() {
                    return Err(ScenError::new(lineno, "region out of range"));
                }
                region.set(ra, rb, Span::ticks(ticks));
            }
            other => {
                return Err(ScenError::new(
                    lineno,
                    format!("unknown directive `{other}`"),
                ));
            }
        }
    }

    if !saw_format {
        return Err(ScenError::new(
            0,
            format!("empty file: expected `{FORMAT_LINE}`"),
        ));
    }
    let missing = |what: &str| ScenError::new(0, format!("missing required directive `{what}`"));
    Ok(ScenarioSpec {
        protocol: protocol.ok_or_else(|| missing("protocol"))?,
        net: net.ok_or_else(|| missing("net"))?,
        n: n.ok_or_else(|| missing("n"))?,
        delta: delta.ok_or_else(|| missing("delta"))?,
        churn,
        selector,
        duration,
        drain,
        seed,
        write_every,
        write_quiesce,
        reads_per_tick,
        writer_churns,
        migrating_writer,
        trace,
        script: None,
        faults: plan_touched.then_some(plan),
        keys,
        zipf_exponent,
        shards,
        writers,
    })
}

fn parse_churn(lineno: usize, toks: &[&str]) -> Result<ChurnChoice, ScenError> {
    let usage = "churn none|constant <c>|poisson <c>|burst …|diurnal …|sessions …|flash-crowd …";
    match toks.get(1).copied() {
        Some("none") if toks.len() == 2 => Ok(ChurnChoice::None),
        Some("constant") if toks.len() == 3 => Ok(ChurnChoice::Constant(rate_of(
            lineno,
            toks[2],
            "churn rate",
        )?)),
        Some("poisson") if toks.len() == 3 => Ok(ChurnChoice::Poisson(rate_of(
            lineno,
            toks[2],
            "churn rate",
        )?)),
        Some("burst") if toks.len() == 6 => {
            let choice = ChurnChoice::Burst {
                on: rate_of(lineno, toks[2], "storm rate")?,
                on_ticks: num(lineno, toks[3], "storm length")?,
                off: rate_of(lineno, toks[4], "quiet rate")?,
                off_ticks: num(lineno, toks[5], "quiet length")?,
            };
            if let ChurnChoice::Burst {
                on_ticks,
                off_ticks,
                ..
            } = choice
            {
                if on_ticks == 0 || off_ticks == 0 {
                    return Err(ScenError::new(lineno, "burst phases must be positive"));
                }
            }
            Ok(choice)
        }
        Some("diurnal") if toks.len() == 5 => {
            let peak = rate_of(lineno, toks[2], "peak rate")?;
            let trough = rate_of(lineno, toks[3], "trough rate")?;
            let period: u64 = num(lineno, toks[4], "period")?;
            if trough > peak {
                return Err(ScenError::new(lineno, "need trough <= peak"));
            }
            if period == 0 {
                return Err(ScenError::new(lineno, "period must be positive"));
            }
            Ok(ChurnChoice::Diurnal {
                peak,
                trough,
                period,
            })
        }
        Some("sessions") if toks.len() == 4 => {
            let alpha: f64 = num(lineno, toks[2], "alpha")?;
            let min_ticks: u64 = num(lineno, toks[3], "minimum session")?;
            if !alpha.is_finite() || alpha <= 0.0 {
                return Err(ScenError::new(lineno, "alpha must be positive"));
            }
            if min_ticks == 0 {
                return Err(ScenError::new(lineno, "minimum session must be positive"));
            }
            Ok(ChurnChoice::Sessions { alpha, min_ticks })
        }
        Some("flash-crowd") if toks.len() == 7 => {
            let base = rate_of(lineno, toks[2], "base rate")?;
            let wave_at: u64 = num(lineno, toks[3], "wave start")?;
            let wave_every: u64 = num(lineno, toks[4], "wave period")?;
            let wave_joins: u32 = num(lineno, toks[5], "wave joins")?;
            let wave_ticks: u64 = num(lineno, toks[6], "wave length")?;
            if wave_ticks == 0 {
                return Err(ScenError::new(lineno, "wave length must be positive"));
            }
            if wave_every != 0 && wave_every < wave_ticks {
                return Err(ScenError::new(lineno, "repeating waves must not overlap"));
            }
            Ok(ChurnChoice::FlashCrowd {
                base,
                wave_at,
                wave_every,
                wave_joins,
                wave_ticks,
            })
        }
        _ => Err(ScenError::new(lineno, format!("usage: {usage}"))),
    }
}

fn parse_fault(lineno: usize, toks: &[&str], plan: &mut FaultPlan) -> Result<(), ScenError> {
    match toks.get(1).copied() {
        Some("delay") if toks.len() == 8 => {
            let action = match toks[6] {
                "add" => FaultAction::AddDelay(Span::ticks(num(lineno, toks[7], "delay")?)),
                "set" => FaultAction::SetDelay(Span::ticks(num(lineno, toks[7], "delay")?)),
                other => {
                    return Err(ScenError::new(
                        lineno,
                        format!("unknown delay action `{other}` (want add|set)"),
                    ))
                }
            };
            plan.push(DelayFault {
                from: node_of(lineno, toks[2])?,
                to: node_of(lineno, toks[3])?,
                from_time: time_of(lineno, toks[4])?,
                until_time: time_of(lineno, toks[5])?,
                action,
            });
            Ok(())
        }
        Some("partition") if toks.len() >= 5 => {
            let from_time = time_of(lineno, toks[2])?;
            let until_time = time_of(lineno, toks[3])?;
            let side_a =
                match (toks[4], toks.len()) {
                    ("mod", 7) => {
                        let modulo: u64 = num(lineno, toks[5], "modulo")?;
                        if modulo == 0 {
                            return Err(ScenError::new(lineno, "modulo must be positive"));
                        }
                        NodeSet::Modulo {
                            modulo,
                            residue: num(lineno, toks[6], "residue")?,
                        }
                    }
                    ("first", 6) => NodeSet::FirstRaw(num(lineno, toks[5], "bound")?),
                    ("ids", 6) => {
                        let mut ids = Vec::new();
                        for part in toks[5].split(',') {
                            ids.push(NodeId::from_raw(num(lineno, part, "node id")?));
                        }
                        NodeSet::Ids(ids)
                    }
                    _ => return Err(ScenError::new(
                        lineno,
                        "usage: fault partition <t0> <t1|max> mod <m> <r> | ids <csv> | first <k>",
                    )),
                };
            plan.push_partition(Partition::new(side_a, from_time, until_time));
            Ok(())
        }
        Some("drop") if toks.len() == 7 => {
            plan.push_drop(DropRule {
                from: node_of(lineno, toks[2])?,
                to: node_of(lineno, toks[3])?,
                from_time: time_of(lineno, toks[4])?,
                until_time: time_of(lineno, toks[5])?,
                probability: rate_of(lineno, toks[6], "drop probability")?,
            });
            Ok(())
        }
        _ => Err(ScenError::new(
            lineno,
            "usage: fault delay …|partition …|drop …",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scenario;

    fn kitchen_sink() -> ScenarioSpec {
        let plan = FaultPlan::default()
            .with(DelayFault::slow_everything(
                Time::at(10),
                Time::at(20),
                Span::ticks(2),
            ))
            .with(DelayFault::starve_recipient(
                NodeId::from_raw(3),
                Time::at(5),
                Time::MAX,
                Span::ticks(9),
            ))
            .with_partition(Partition::even_odd(Time::at(40), Time::at(80)))
            .with_partition(Partition::new(
                NodeSet::Ids(vec![NodeId::from_raw(1), NodeId::from_raw(4)]),
                Time::at(90),
                Time::at(95),
            ))
            .with_partition(Partition::new(
                NodeSet::FirstRaw(6),
                Time::at(100),
                Time::MAX,
            ))
            .with_drop(DropRule::lossy_everything(Time::at(0), Time::at(50), 0.25))
            .with_region(
                RegionMatrix::new(3)
                    .with_link(0, 1, Span::ticks(4))
                    .with_link(1, 2, Span::ticks(6)),
            );
        let mut spec = Scenario::eventually_synchronous(24, Span::ticks(3), Time::at(60))
            .churn_choice(ChurnChoice::FlashCrowd {
                base: 0.01,
                wave_at: 50,
                wave_every: 100,
                wave_joins: 6,
                wave_ticks: 4,
            })
            .duration(Span::ticks(600))
            .drain(Span::ticks(50))
            .seed(42)
            .reads_per_tick(1.5)
            .into_spec();
        spec.write_every = Some(Span::ticks(9));
        spec.write_quiesce = Some(Span::ticks(30));
        spec.keys = 8;
        spec.zipf_exponent = 0.8;
        spec.shards = 2;
        spec.writers = 3;
        spec.faults = Some(plan);
        spec
    }

    #[test]
    fn kitchen_sink_round_trips() {
        let spec = kitchen_sink();
        let text = write_scenario(&spec).unwrap();
        let parsed = parse_scenario(&text).unwrap();
        assert_eq!(parsed, spec);
        // Canonical text is a fixed point of write ∘ parse.
        assert_eq!(write_scenario(&parsed).unwrap(), text);
    }

    #[test]
    fn golden_format_is_pinned() {
        let spec = Scenario::synchronous(10, Span::ticks(3))
            .churn_rate(0.01)
            .duration(Span::ticks(200))
            .seed(7)
            .into_spec();
        let expected = "\
dynareg-scenario/1
protocol sync
net sync
n 10
delta 3
duration 200
seed 7
churn constant 0.01
selector random
reads-per-tick 1
writer-churns false
migrating-writer false
keys 1
zipf 1
shards 1
writers 1
";
        assert_eq!(write_scenario(&spec).unwrap(), expected);
        assert_eq!(parse_scenario(expected).unwrap(), spec);
    }

    #[test]
    fn comments_blanks_and_duplicates_are_tolerated() {
        let text = "\
# a hand-written scenario
dynareg-scenario/1

protocol es-atomic
net es max
n 9
delta 2
seed 1
seed 2      # last one wins
";
        let spec = parse_scenario(text).unwrap();
        assert_eq!(spec.protocol, ProtocolChoice::EsAtomic);
        assert_eq!(spec.net, NetClass::EventuallySynchronous { gst: Time::MAX });
        assert_eq!(spec.seed, 2);
        assert_eq!(spec.duration, Span::ticks(300), "defaults hold");
        assert!(spec.faults.is_none());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let no_format = parse_scenario("protocol sync\n");
        assert_eq!(no_format.unwrap_err().line, 1);

        let bad = "dynareg-scenario/1\nprotocol sync\nnet sync\nn 5\ndelta 0\n";
        let err = parse_scenario(bad).unwrap_err();
        assert_eq!(err.line, 5);
        assert!(err.msg.contains("delta"), "{err}");

        let unknown = "dynareg-scenario/1\nflux-capacitor 88\n";
        let err = parse_scenario(unknown).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("flux-capacitor"), "{err}");

        let missing = parse_scenario("dynareg-scenario/1\nprotocol sync\n").unwrap_err();
        assert!(missing.msg.contains("missing required"), "{missing}");

        let orphan =
            "dynareg-scenario/1\nprotocol sync\nnet sync\nn 5\ndelta 2\nregion-delay 0 1 4\n";
        let err = parse_scenario(orphan).unwrap_err();
        assert!(err.msg.contains("regions"), "{err}");
    }

    #[test]
    fn scripted_specs_refuse_to_serialize() {
        let mut spec = Scenario::synchronous(5, Span::ticks(2)).into_spec();
        spec.script = Some(crate::ScriptedWorkload::default());
        let err = write_scenario(&spec).unwrap_err();
        assert_eq!(err.line, 0);
        assert!(err.msg.contains("scripted"), "{err}");
    }

    #[test]
    fn hash_covers_content_and_seed() {
        let a = scenario_hash("dynareg-scenario/1\n", 1);
        assert_ne!(a, scenario_hash("dynareg-scenario/1\n", 2), "seed matters");
        assert_ne!(a, scenario_hash("dynareg-scenario/1 \n", 1), "bytes matter");
        assert_eq!(a, scenario_hash("dynareg-scenario/1\n", 1), "stable");
    }
}
