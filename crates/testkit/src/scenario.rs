//! One-stop scenario builder: paper parameters in, verdicts out.
//!
//! Two layers:
//!
//! * [`ScenarioSpec`] — a **plain-data, `Send + Clone`** description of a
//!   run. It holds no boxed models; the delay model, churn driver and
//!   workload are constructed *from* the data at run time. This is what
//!   crosses threads in `dynareg-fleet`'s sweep engine: a spec can be
//!   cloned into any worker and [`ScenarioSpec::run`] on any thread
//!   reproduces the exact same run.
//! * [`Scenario`] — the ergonomic builder over a spec, unchanged API.

use dynareg_churn::{
    analysis, BurstChurn, ChurnDriver, ChurnModel, ConstantRate, DiurnalChurn, FlashCrowd,
    LeaveSelector, NoChurn, SessionChurn,
};
use dynareg_core::es::EsConfig;
use dynareg_core::space::{RegisterSpaceProcess, RetransmitConfig, ShardConfig};
use dynareg_core::sync::SyncConfig;
use dynareg_net::delay::{Asynchronous, EventuallySynchronous, Synchronous};
use dynareg_net::{DelayModel, FaultPlan, Presence};
use dynareg_sim::metrics::Metrics;
use dynareg_sim::trace::TraceLog;
use dynareg_sim::{DetRng, IdSource, NodeId, RegisterId, Span, Time};
use dynareg_verify::{ConsistencyReport, History, LivenessReport, SpaceReport};

use crate::factory::{EsFactory, SpaceFactory, SpaceOf, SyncFactory};
use crate::obs::{ObsConfig, ObsReport};
use crate::workload::{RateWorkload, ScriptedWorkload, Workload, ZipfKeys, ZipfWorkload};
use crate::world::{Val, World, WorldConfig, WriterPolicy};

/// Which protocol (and variant) a scenario runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolChoice {
    /// Figures 1–2 over a synchronous network.
    Synchronous,
    /// The Figure 3(a) ablation: synchronous protocol without the join
    /// `wait(δ)`.
    SynchronousNoWait,
    /// Figures 4–6 over an eventually synchronous network (GST configured
    /// on the scenario).
    EventuallySynchronous,
    /// The atomic extension (read write-back) over the same network.
    EsAtomic,
}

/// Which synchrony class the network exhibits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NetClass {
    /// §3.2: every message delivered within `δ`, latency uniform `[1, δ]`.
    Synchronous,
    /// Synchronous, but every message takes *exactly* δ — the worst case
    /// the paper's bounds are computed against (a random-latency network is
    /// far kinder than the adversary of Lemma 2).
    SynchronousWorstCase,
    /// §5.1: heavy-tailed before `gst`, bounded by `δ` from `gst` on.
    EventuallySynchronous {
        /// The global stabilization time.
        gst: Time,
    },
    /// §4: no usable bound at all.
    FullyAsynchronous {
        /// Heavy-tail truncation, as a multiple of `δ` (simulation
        /// artifact, not a promise).
        cap_factor: u64,
    },
}

/// One non-anchor key's verdicts and history in a keyed run.
#[derive(Debug)]
pub struct KeyReport {
    /// The key.
    pub key: RegisterId,
    /// Regular-register verdict for this key.
    pub safety: ConsistencyReport<Option<Val>>,
    /// Atomic-register verdict for this key.
    pub atomicity: ConsistencyReport<Option<Val>>,
    /// Liveness verdict for this key.
    pub liveness: LivenessReport,
    /// The key's full operation history.
    pub history: History<Option<Val>>,
}

/// Everything a run produced, plus the checker verdicts.
///
/// Every run is a register-space run; the top-level `safety` /
/// `atomicity` / `liveness` / `history` fields are the **anchor key**'s
/// (`r0`) — for the default 1-key scenarios they are the whole story,
/// exactly as before the register-space redesign. Keyed runs carry keys
/// `r1 …` in [`RunReport::extra_keys`]; the `all_keys_*` / `worst_key` /
/// `total_*` accessors aggregate across the whole space.
#[derive(Debug)]
pub struct RunReport {
    /// Protocol name ("sync", "sync-nowait", "es", "es-atomic").
    pub protocol: &'static str,
    /// System size `n`.
    pub n: usize,
    /// Delay bound `δ` (the network's, also the sync protocol's parameter).
    pub delta: Span,
    /// Nominal churn rate `c`.
    pub churn_rate: f64,
    /// Seed of the run.
    pub seed: u64,
    /// Regular-register verdict (the paper's Safety property).
    pub safety: ConsistencyReport<Option<Val>>,
    /// Atomic-register verdict (regularity + inversion-freedom).
    pub atomicity: ConsistencyReport<Option<Val>>,
    /// Liveness verdict and latency statistics.
    pub liveness: LivenessReport,
    /// Run metrics (gauges and counters).
    pub metrics: Metrics,
    /// The full operation history.
    pub history: History<Option<Val>>,
    /// The full membership record.
    pub presence: Presence,
    /// Messages sent, by protocol label.
    pub messages: Vec<(&'static str, u64)>,
    /// Total messages sent.
    pub total_messages: u64,
    /// Messages the fault layer dropped (partitions + probabilistic drop
    /// rules); per-rule attribution lives in the metrics under
    /// `net.dropped.fault.partition` / `net.dropped.fault.drop`, keyed by
    /// rule index. Always zero for chaos-free runs.
    pub fault_drops: u64,
    /// Rendered trace (empty unless tracing enabled).
    pub trace: TraceLog,
    /// Number of registers in the run's key space (1 for single-register
    /// scenarios).
    pub keys: u32,
    /// Join-reply shard groups the run used (1 = the legacy full-reply
    /// handshake; always 1 for single-key runs).
    pub shards: u32,
    /// Writer roster size the run used (1 = single-writer).
    pub writers: usize,
    /// Verdicts and histories of keys `r1 …` (empty for 1-key runs; the
    /// anchor key `r0` lives in the top-level fields).
    pub extra_keys: Vec<KeyReport>,
    /// Deliveries whose effective latency exceeded the configured `δ`
    /// after the synchrony guarantee began — a non-zero count means the
    /// run's timing assumption was violated (a delay adversary, or a
    /// mis-parameterised scenario) and `δ`-derived verdicts are suspect.
    pub delta_overruns: u64,
    /// The first δ-overrun as `(when, from, to, effective latency)`, for
    /// the diagnostic line experiment binaries print.
    pub delta_overrun_example: Option<(Time, NodeId, NodeId, Span)>,
    /// The observability report (op spans, message fates, timeseries,
    /// tick profile); present only for [`ScenarioSpec::run_observed`]
    /// runs.
    pub obs: Option<ObsReport>,
}

impl RunReport {
    /// New/old inversions observed (0 for an atomic run) on the anchor key.
    pub fn inversions(&self) -> usize {
        self.atomicity.inversions
    }

    /// Reads checked by the safety checker on the anchor key.
    pub fn reads_checked(&self) -> usize {
        self.safety.checked_reads
    }

    /// Sharded-join full-re-inquiry messages sent (`INQUIRY_FULL` wave
    /// size × rounds) — the shard-starvation escalation traffic. Zero for
    /// unsharded runs.
    pub fn inquiry_full(&self) -> u64 {
        self.messages
            .iter()
            .find(|&&(l, _)| l == "INQUIRY_FULL")
            .map_or(0, |&(_, c)| c)
    }

    /// Full re-inquiry rounds joiners escalated to after a starved shard
    /// (one per `INQUIRY_FULL` broadcast). Zero for unsharded runs.
    pub fn reinquiry_rounds(&self) -> u64 {
        self.metrics.counter("join.reinquiry_rounds")
    }

    /// Join-inquiry retransmissions the space layer fired after a silence
    /// window (loss-tolerant bounded retransmit; `docs/PROTOCOL.md`).
    /// Always zero on a lossless run whose handshakes complete in time.
    pub fn join_retransmits(&self) -> u64 {
        self.metrics.counter("join.retransmits")
    }

    /// Wall-clock tick-phase profile, if the run was observed with
    /// [`ObsConfig::tick_profile`] on.
    pub fn tick_profile(&self) -> Option<&dynareg_sim::obs::TickProfile> {
        self.obs.as_ref()?.tick_profile.as_ref()
    }

    /// Completed reads attributed to one register (the key-attributed
    /// `ops.read_completed.rK` counter).
    pub fn key_reads_completed(&self, key: RegisterId) -> u64 {
        self.metrics
            .keyed_counter("ops.read_completed", key.as_raw())
    }

    /// Completed writes attributed to one register.
    pub fn key_writes_completed(&self, key: RegisterId) -> u64 {
        self.metrics
            .keyed_counter("ops.write_completed", key.as_raw())
    }

    /// Read-latency histogram attributed to one register, if that key
    /// completed any reads.
    pub fn key_read_latency(&self, key: RegisterId) -> Option<&dynareg_sim::metrics::Histogram> {
        self.metrics.keyed_histogram("latency.read", key.as_raw())
    }

    /// Whether every key of the space satisfies regularity.
    pub fn all_keys_safe(&self) -> bool {
        self.safety.is_ok() && self.extra_keys.iter().all(|k| k.safety.is_ok())
    }

    /// Whether every key of the space satisfies liveness.
    pub fn all_keys_live(&self) -> bool {
        self.liveness.is_ok() && self.extra_keys.iter().all(|k| k.liveness.is_ok())
    }

    /// Reads checked across the whole key space.
    pub fn total_reads_checked(&self) -> usize {
        self.safety.checked_reads
            + self
                .extra_keys
                .iter()
                .map(|k| k.safety.checked_reads)
                .sum::<usize>()
    }

    /// Regularity violations across the whole key space.
    pub fn total_violations(&self) -> usize {
        self.safety.violation_count()
            + self
                .extra_keys
                .iter()
                .map(|k| k.safety.violation_count())
                .sum::<usize>()
    }

    /// New/old inversions across the whole key space.
    pub fn total_inversions(&self) -> usize {
        self.atomicity.inversions
            + self
                .extra_keys
                .iter()
                .map(|k| k.atomicity.inversions)
                .sum::<usize>()
    }

    /// Stuck (liveness-violating) operations across the whole key space.
    pub fn total_stuck(&self) -> usize {
        self.liveness.incomplete_stayer_count()
            + self
                .extra_keys
                .iter()
                .map(|k| k.liveness.incomplete_stayer_count())
                .sum::<usize>()
    }

    /// The worst key of the space: `(key, violations, stuck)` — most
    /// regularity violations, ties broken by stuck ops, then lowest key.
    pub fn worst_key(&self) -> (RegisterId, usize, usize) {
        let mut worst = (
            RegisterId::ZERO,
            self.safety.violation_count(),
            self.liveness.incomplete_stayer_count(),
        );
        for k in &self.extra_keys {
            let cand = (
                k.key,
                k.safety.violation_count(),
                k.liveness.incomplete_stayer_count(),
            );
            if (cand.1, cand.2) > (worst.1, worst.2) {
                worst = cand;
            }
        }
        worst
    }

    /// Measured `min_τ |A(τ, τ+window)|` over the run (Lemma 2's left-hand
    /// side), if the run is long enough.
    pub fn min_window_active(&self, window: Span) -> Option<usize> {
        let end = Time::at(
            self.metrics
                .histogram("gauge.active")
                .map(|h| h.count())
                .unwrap_or(0),
        );
        analysis::window_active_minimum(&self.presence, Time::ZERO, end, window)
    }

    /// One-line summary for experiment logs. Keyed runs report space-wide
    /// aggregates plus the worst key.
    pub fn summary(&self) -> String {
        let writers_tag = if self.writers > 1 {
            format!(" writers={}", self.writers)
        } else {
            String::new()
        };
        if self.keys == 1 {
            return format!(
                "{} n={} δ={} c={:.5} seed={}{writers_tag}: safety={} inversions={} liveness={} (reads={}, msgs={})",
                self.protocol,
                self.n,
                self.delta,
                self.churn_rate,
                self.seed,
                if self.safety.is_ok() { "OK" } else { "VIOLATED" },
                self.inversions(),
                if self.liveness.is_ok() { "OK" } else { "STUCK" },
                self.reads_checked(),
                self.total_messages,
            );
        }
        let (worst, violations, stuck) = self.worst_key();
        format!(
            "{} n={} δ={} c={:.5} seed={} keys={} shards={}{writers_tag}: safety={} inversions={} liveness={} \
             (reads={}, msgs={}, worst {worst}: violations={violations} stuck={stuck})",
            self.protocol,
            self.n,
            self.delta,
            self.churn_rate,
            self.seed,
            self.keys,
            self.shards,
            if self.all_keys_safe() {
                "OK"
            } else {
                "VIOLATED"
            },
            self.total_inversions(),
            if self.all_keys_live() { "OK" } else { "STUCK" },
            self.total_reads_checked(),
            self.total_messages,
        )
    }
}

/// Churn-model choice for a scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChurnChoice {
    /// A static system.
    None,
    /// The paper's constant-rate model at rate `c`.
    Constant(f64),
    /// Poisson churn with mean rate `c` (extension model).
    Poisson(f64),
    /// Alternating storm/quiet phases ([`BurstChurn`]).
    Burst {
        /// Storm-phase rate.
        on: f64,
        /// Storm-phase length in ticks.
        on_ticks: u64,
        /// Quiet-phase rate.
        off: f64,
        /// Quiet-phase length in ticks.
        off_ticks: u64,
    },
    /// Day/night cosine-modulated rate ([`DiurnalChurn`]).
    Diurnal {
        /// Rate at the peak of the cycle.
        peak: f64,
        /// Rate at the trough of the cycle.
        trough: f64,
        /// Cycle period in ticks.
        period: u64,
    },
    /// Heavy-tailed Pareto session lengths ([`SessionChurn`]).
    Sessions {
        /// Pareto shape (`> 1` for a finite mean).
        alpha: f64,
        /// Minimum session length in ticks.
        min_ticks: u64,
    },
    /// Balanced base churn plus population-growing join waves
    /// ([`FlashCrowd`]).
    FlashCrowd {
        /// Base balanced rate.
        base: f64,
        /// First-wave start tick.
        wave_at: u64,
        /// Wave repeat period (`0` = one-shot).
        wave_every: u64,
        /// Unpaired joins per wave tick.
        wave_joins: u32,
        /// Wave length in ticks.
        wave_ticks: u64,
    },
}

impl ChurnChoice {
    /// Instantiates the chosen model.
    ///
    /// # Panics
    /// Panics if the parameters are invalid for the chosen model (rates
    /// outside `[0, 1]`, zero periods, …).
    pub fn build(self) -> Box<dyn ChurnModel> {
        match self {
            ChurnChoice::None => Box::new(NoChurn),
            ChurnChoice::Constant(c) => Box::new(ConstantRate::new(c)),
            ChurnChoice::Poisson(c) => Box::new(dynareg_churn::PoissonChurn::new(c)),
            ChurnChoice::Burst {
                on,
                on_ticks,
                off,
                off_ticks,
            } => Box::new(BurstChurn::new(on, on_ticks, off, off_ticks)),
            ChurnChoice::Diurnal {
                peak,
                trough,
                period,
            } => Box::new(DiurnalChurn::new(peak, trough, period)),
            ChurnChoice::Sessions { alpha, min_ticks } => {
                Box::new(SessionChurn::new(alpha, min_ticks))
            }
            ChurnChoice::FlashCrowd {
                base,
                wave_at,
                wave_every,
                wave_joins,
                wave_ticks,
            } => Box::new(FlashCrowd::new(
                base,
                wave_at,
                wave_every,
                wave_joins as usize,
                wave_ticks,
            )),
        }
    }
}

/// Plain-data description of a complete simulated run.
///
/// Every field is owned plain data (no boxed models, no `Rc`), so a spec is
/// `Send + Clone` and can be fanned out across worker threads; the heavy
/// trait objects ([`DelayModel`], [`dynareg_churn::ChurnModel`],
/// [`Workload`]) are built from the data inside [`ScenarioSpec::run`].
/// Running the same spec twice — on any two threads — produces identical
/// [`RunReport`]s.
///
/// Most users construct specs through the [`Scenario`] builder and extract
/// them with [`Scenario::into_spec`]; the fields are public so sweep
/// engines can also assemble them directly.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Protocol variant to run.
    pub protocol: ProtocolChoice,
    /// Synchrony class of the network.
    pub net: NetClass,
    /// System size `n`.
    pub n: usize,
    /// Delay bound `δ`.
    pub delta: Span,
    /// Churn model choice.
    pub churn: ChurnChoice,
    /// Victim selection policy.
    pub selector: LeaveSelector,
    /// Total run length.
    pub duration: Span,
    /// Drain window (`None` = default `12δ`).
    pub drain: Option<Span>,
    /// Master seed.
    pub seed: u64,
    /// Write period (`None` = default `3δ`).
    pub write_every: Option<Span>,
    /// Extra margin by which **writes** stop before the general workload
    /// stop (`None` = writes run to the stop like reads). A non-zero
    /// margin leaves a write-quiescent read suffix — what the multi-writer
    /// convergence checks observe. See [`Scenario::quiesce_writes`].
    pub write_quiesce: Option<Span>,
    /// Expected reads per tick.
    pub reads_per_tick: f64,
    /// Whether churn may evict the designated writer.
    pub writer_churns: bool,
    /// Whether the writer role migrates to the oldest active process.
    pub migrating_writer: bool,
    /// Record a full trace.
    pub trace: bool,
    /// Exact operation script replacing the stochastic workload, if any.
    pub script: Option<ScriptedWorkload>,
    /// Delay-fault adversary, if any.
    pub faults: Option<FaultPlan>,
    /// Number of registers in the key space (1 = the classic
    /// single-register run; >1 runs a [`crate::SpaceOf`] world under a
    /// [`ZipfWorkload`]).
    pub keys: u32,
    /// Zipf key-popularity exponent for keyed workloads (`0` uniform,
    /// `~1` classic skew); ignored when `keys == 1`.
    pub zipf_exponent: f64,
    /// Join-reply shard groups `G` (clamped to `keys`; `1` = the legacy
    /// full-reply handshake). See [`Scenario::join_shards`].
    pub shards: u32,
    /// Writer roster size and per-key concurrent-write cap (`1` = the
    /// paper's single-writer model). See [`Scenario::writers`].
    pub writers: usize,
}

impl ScenarioSpec {
    /// The churn rate this spec will run with.
    pub fn effective_churn_rate(&self) -> f64 {
        match self.churn {
            ChurnChoice::None => 0.0,
            ChurnChoice::Constant(c) | ChurnChoice::Poisson(c) => c,
            // The extension models report their own long-run rate;
            // heavy-tailed sessions below α = 1 have no finite mean.
            choice => choice.build().nominal_rate().unwrap_or(0.0),
        }
    }

    /// The shard-group count the run will actually use (`shards` clamped
    /// to the key count).
    pub fn effective_shards(&self) -> u32 {
        self.shards.clamp(1, self.keys.max(1))
    }

    /// The join-reply shard layout built spaces receive: `G` effective
    /// groups, per-shard quorum 1, re-inquiries every `4δ` (≥ the sync
    /// handshake's 2δ round trip, and a sane post-GST beat for ES).
    fn shard_config(&self) -> ShardConfig {
        ShardConfig::new(self.effective_shards()).with_reinquire_every(self.delta.times(4))
    }

    fn build_delay(&self) -> Box<dyn DelayModel> {
        match self.net {
            NetClass::Synchronous => Box::new(Synchronous::new(self.delta)),
            NetClass::SynchronousWorstCase => Box::new(dynareg_net::delay::Fixed::new(self.delta)),
            NetClass::EventuallySynchronous { gst } => {
                Box::new(EventuallySynchronous::with_default_pre(gst, self.delta))
            }
            NetClass::FullyAsynchronous { cap_factor } => Box::new(Asynchronous::new(
                Span::UNIT,
                1.2,
                self.delta.times(cap_factor.max(1)),
            )),
        }
    }

    fn build_churn(&self, stop_at: Time, n: usize) -> ChurnDriver {
        let inner = self.churn.build();
        ChurnDriver::new(
            Box::new(StopAfter { inner, stop_at }),
            self.selector,
            IdSource::starting_at(n as u64),
        )
    }

    fn build_workload(&self, stop_at: Time) -> Box<dyn Workload> {
        if let Some(script) = &self.script {
            return Box::new(script.clone());
        }
        let write_every = self.write_every.unwrap_or(self.delta.times(3));
        if self.keys > 1 {
            Box::new(
                ZipfWorkload::new(
                    ZipfKeys::new(self.keys, self.zipf_exponent),
                    write_every,
                    self.reads_per_tick,
                )
                .stopping_at(stop_at),
            )
        } else {
            let mut load = RateWorkload::new(write_every, self.reads_per_tick).stopping_at(stop_at);
            if let Some(margin) = self.write_quiesce {
                let t = Time::at(stop_at.ticks().saturating_sub(margin.as_ticks()));
                load = load.stopping_writes_at(t);
            }
            Box::new(load)
        }
    }

    /// Runs the spec to completion and checks the result (every key).
    ///
    /// Single-key specs run the solo fast path — raw protocol messages,
    /// byte-identical to the pre-register-space engine; keyed specs run a
    /// [`SpaceOf`] world under Zipf traffic.
    pub fn run(&self) -> RunReport {
        self.dispatch(false, ObsConfig::off())
    }

    /// Runs the spec through the [`crate::RegisterSpace`] multiplexer even
    /// for one key. The equivalence oracle hook: a 1-key `run_spaced()`
    /// must produce the same observable run as `run()` (the property tests
    /// compare their digests), while exercising the `SpaceMsg` wire layer.
    pub fn run_spaced(&self) -> RunReport {
        self.dispatch(true, ObsConfig::off())
    }

    /// Runs the spec with the observability layer on: the returned
    /// report carries [`RunReport::obs`] (op spans with message fates,
    /// timeseries, tick profile). The observed run's event stream is
    /// byte-identical to [`ScenarioSpec::run`]'s — observability never
    /// consumes randomness or reorders events (the digest-identity
    /// property tests pin this).
    pub fn run_observed(&self, obs: ObsConfig) -> RunReport {
        self.dispatch(false, obs)
    }

    /// The loss-tolerance policy every scenario run wraps around joiners:
    /// re-fire a silent join inquiry after `2δ`, doubling up to the retry
    /// budget. On a lossless run the handshake completes before the first
    /// beat can observe silence, so the policy is digest-invisible there
    /// (pinned by the equivalence property tests).
    fn retransmit_config(&self) -> Option<RetransmitConfig> {
        Some(RetransmitConfig::after(self.delta.times(2)))
    }

    fn dispatch(&self, force_space: bool, obs: ObsConfig) -> RunReport {
        assert!(self.keys > 0, "a register space needs at least one key");
        let end = Time::ZERO + self.duration;
        let drain = self.drain.unwrap_or(self.delta.times(12));
        let stop_at = Time::at(
            self.duration
                .as_ticks()
                .saturating_sub(drain.as_ticks())
                .max(1),
        );
        let spaced = force_space || self.keys > 1;
        let shards = self.effective_shards();
        match self.protocol {
            ProtocolChoice::Synchronous => {
                let f = SyncFactory::new(SyncConfig::new(self.delta))
                    .with_retransmit(self.retransmit_config());
                if spaced {
                    self.run_world(
                        SpaceOf::new(f, self.keys).with_shards(self.shard_config()),
                        end,
                        stop_at,
                        obs,
                    )
                } else {
                    self.run_world(f, end, stop_at, obs)
                }
            }
            ProtocolChoice::SynchronousNoWait => {
                let f = SyncFactory::new(SyncConfig::without_join_wait(self.delta))
                    .with_retransmit(self.retransmit_config());
                if spaced {
                    self.run_world(
                        SpaceOf::new(f, self.keys).with_shards(self.shard_config()),
                        end,
                        stop_at,
                        obs,
                    )
                } else {
                    self.run_world(f, end, stop_at, obs)
                }
            }
            ProtocolChoice::EventuallySynchronous | ProtocolChoice::EsAtomic => {
                let mut cfg = if self.protocol == ProtocolChoice::EsAtomic {
                    EsConfig::atomic(self.n)
                } else {
                    EsConfig::new(self.n)
                };
                if self.trace {
                    cfg = cfg.with_notes();
                }
                if shards > 1 {
                    // A sharded join only hears the `≈ n/G` responders of
                    // one shard: size the join quorum to the shard (the
                    // quorum-per-shard liveness trade; module docs in
                    // `dynareg_core::space`). Reads and write acks keep the
                    // full majority.
                    let shard_size = (self.n / shards as usize).max(1);
                    cfg = cfg.with_join_quorum(shard_size / 2 + 1);
                }
                let f = EsFactory::new(cfg).with_retransmit(self.retransmit_config());
                if spaced {
                    self.run_world(
                        SpaceOf::new(f, self.keys).with_shards(self.shard_config()),
                        end,
                        stop_at,
                        obs,
                    )
                } else {
                    self.run_world(f, end, stop_at, obs)
                }
            }
        }
    }

    fn run_world<F>(&self, factory: F, end: Time, stop_at: Time, obs: ObsConfig) -> RunReport
    where
        F: SpaceFactory,
        F::Proc: RegisterSpaceProcess<Val = Val>,
    {
        let protocol = factory.space_name();
        let keys = factory.key_count();
        let shards = self.effective_shards().min(keys.max(1));
        let churn_rate = self.effective_churn_rate();
        let mut world = World::new(
            factory,
            WorldConfig {
                n: self.n,
                initial: 0,
                delay: self.build_delay(),
                churn: self.build_churn(stop_at, self.n),
                workload: self.build_workload(stop_at),
                seed: self.seed,
                trace: self.trace,
                writer_policy: if self.migrating_writer {
                    WriterPolicy::OldestActive
                } else {
                    WriterPolicy::FixedProtected
                },
                writers: self.writers,
            },
        );
        if !self.writer_churns {
            // The whole fixed roster is shielded, exactly as the single
            // writer was.
            for w in 0..self.writers as u64 {
                world.protect(NodeId::from_raw(w));
            }
        }
        if let Some(faults) = self.faults.clone() {
            world.set_faults(faults);
        }
        world.set_obs(obs);
        world.run_until(end);

        let obs_report = world.take_obs_report();
        let (space, presence, metrics, trace, network) = world.into_space_outputs();
        // One source of per-key checking: the verify crate's space report.
        let mut verdicts = SpaceReport::check(&space).keys.into_iter();
        let mut histories = space.into_histories().into_iter();
        let anchor = verdicts.next().expect("anchor key verdict");
        let history = histories.next().expect("anchor key history");
        let extra_keys: Vec<KeyReport> = verdicts
            .zip(histories)
            .map(|(v, history)| KeyReport {
                key: v.key,
                safety: v.regularity,
                atomicity: v.atomicity,
                liveness: v.liveness,
                history,
            })
            .collect();
        let safety = anchor.regularity;
        let atomicity = anchor.atomicity;
        let liveness = anchor.liveness;
        let messages: Vec<(&'static str, u64)> = network.sent_by_label().collect();
        let total_messages = network.total_sent();
        let fault_drops = metrics.counter("net.dropped.fault");
        let delta_overruns = network.delta_overruns();
        let delta_overrun_example = network.first_delta_overrun();
        RunReport {
            protocol,
            n: self.n,
            delta: self.delta,
            churn_rate,
            seed: self.seed,
            safety,
            atomicity,
            liveness,
            metrics,
            history,
            presence,
            messages,
            total_messages,
            fault_drops,
            trace,
            keys,
            shards,
            writers: self.writers,
            extra_keys,
            delta_overruns,
            delta_overrun_example,
            obs: obs_report,
        }
    }
}

/// Builder for a complete simulated run.
///
/// Defaults: no churn, random victim selection, a [`RateWorkload`] writing
/// every `3δ` with one read per tick, duration `300` ticks, drain `12δ`,
/// seed `0`, protected writer, no tracing.
///
/// # Example
///
/// ```
/// use dynareg_testkit::Scenario;
/// use dynareg_sim::Span;
///
/// let report = Scenario::synchronous(10, Span::ticks(3))
///     .duration(Span::ticks(120))
///     .run();
/// assert!(report.safety.is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct Scenario {
    spec: ScenarioSpec,
}

impl Scenario {
    fn base(protocol: ProtocolChoice, net: NetClass, n: usize, delta: Span) -> Scenario {
        assert!(n > 0, "system size must be positive");
        assert!(!delta.is_zero(), "delta must be at least one tick");
        Scenario {
            spec: ScenarioSpec {
                protocol,
                net,
                n,
                delta,
                churn: ChurnChoice::None,
                selector: LeaveSelector::Random,
                duration: Span::ticks(300),
                drain: None,
                seed: 0,
                write_every: None,
                write_quiesce: None,
                reads_per_tick: 1.0,
                writer_churns: false,
                migrating_writer: false,
                trace: false,
                script: None,
                faults: None,
                keys: 1,
                zipf_exponent: 1.0,
                shards: 1,
                writers: 1,
            },
        }
    }

    /// The synchronous protocol on a synchronous network with bound `delta`.
    pub fn synchronous(n: usize, delta: Span) -> Scenario {
        Scenario::base(ProtocolChoice::Synchronous, NetClass::Synchronous, n, delta)
    }

    /// The Figure 3(a) ablation: synchronous protocol *without* the join
    /// wait, on the same network.
    pub fn synchronous_without_join_wait(n: usize, delta: Span) -> Scenario {
        Scenario::base(
            ProtocolChoice::SynchronousNoWait,
            NetClass::Synchronous,
            n,
            delta,
        )
    }

    /// The synchronous protocol configured for bound `delta` but running on
    /// a **fully asynchronous** network (Theorem 2's safety face): actual
    /// delays are heavy-tailed up to `cap_factor · δ`.
    pub fn synchronous_over_async(n: usize, delta: Span, cap_factor: u64) -> Scenario {
        Scenario::base(
            ProtocolChoice::Synchronous,
            NetClass::FullyAsynchronous { cap_factor },
            n,
            delta,
        )
    }

    /// The eventually synchronous protocol; the network stabilizes at
    /// `gst` with post-GST bound `delta`.
    pub fn eventually_synchronous(n: usize, delta: Span, gst: Time) -> Scenario {
        Scenario::base(
            ProtocolChoice::EventuallySynchronous,
            NetClass::EventuallySynchronous { gst },
            n,
            delta,
        )
    }

    /// The ES protocol on a **never-synchronous** network (Theorem 2's
    /// liveness face).
    pub fn es_over_async(n: usize, delta: Span, cap_factor: u64) -> Scenario {
        Scenario::base(
            ProtocolChoice::EventuallySynchronous,
            NetClass::FullyAsynchronous { cap_factor },
            n,
            delta,
        )
    }

    /// The atomic extension (ES + read write-back), network stabilizing at
    /// `gst`.
    pub fn es_atomic(n: usize, delta: Span, gst: Time) -> Scenario {
        Scenario::base(
            ProtocolChoice::EsAtomic,
            NetClass::EventuallySynchronous { gst },
            n,
            delta,
        )
    }

    /// Constant churn at rate `c` (the paper's model).
    pub fn churn_rate(mut self, c: f64) -> Scenario {
        self.spec.churn = if c == 0.0 {
            ChurnChoice::None
        } else {
            ChurnChoice::Constant(c)
        };
        self
    }

    /// Constant churn at `fraction` of the protocol's proven threshold
    /// (`1/(3δ)` for sync, `1/(3δn)` for ES) — `1.0` sits exactly on the
    /// bound, `>1.0` violates it.
    pub fn churn_fraction_of_bound(self, fraction: f64) -> Scenario {
        let threshold = match self.spec.protocol {
            ProtocolChoice::Synchronous | ProtocolChoice::SynchronousNoWait => {
                analysis::sync_churn_threshold(self.spec.delta)
            }
            ProtocolChoice::EventuallySynchronous | ProtocolChoice::EsAtomic => {
                analysis::es_churn_threshold(self.spec.delta, self.spec.n)
            }
        };
        self.churn_rate((fraction * threshold).min(1.0))
    }

    /// Poisson churn with mean rate `c` (extension model).
    pub fn churn_poisson(mut self, c: f64) -> Scenario {
        self.spec.churn = ChurnChoice::Poisson(c);
        self
    }

    /// Any churn-model choice, including the extension models
    /// ([`ChurnChoice::Burst`], [`ChurnChoice::Diurnal`],
    /// [`ChurnChoice::Sessions`], [`ChurnChoice::FlashCrowd`]).
    pub fn churn_choice(mut self, choice: ChurnChoice) -> Scenario {
        self.spec.churn = choice;
        self
    }

    /// Victim selection policy.
    pub fn leave_selector(mut self, selector: LeaveSelector) -> Scenario {
        self.spec.selector = selector;
        self
    }

    /// Total run length.
    pub fn duration(mut self, duration: Span) -> Scenario {
        self.spec.duration = duration;
        self
    }

    /// Drain window: churn and workload stop this long before the end so
    /// in-flight operations can finish (default `12δ`).
    pub fn drain(mut self, drain: Span) -> Scenario {
        self.spec.drain = Some(drain);
        self
    }

    /// Master seed.
    pub fn seed(mut self, seed: u64) -> Scenario {
        self.spec.seed = seed;
        self
    }

    /// Stops the stochastic writes `margin` before the general workload
    /// stop, leaving reads running over a write-quiescent suffix (the
    /// default keeps the legacy behaviour: writes and reads stop
    /// together).
    pub fn quiesce_writes(mut self, margin: Span) -> Scenario {
        self.spec.write_quiesce = Some(margin);
        self
    }

    /// Write period (default `3δ`).
    pub fn write_every(mut self, period: Span) -> Scenario {
        self.spec.write_every = Some(period);
        self
    }

    /// Expected reads per tick (default 1.0).
    pub fn reads_per_tick(mut self, rate: f64) -> Scenario {
        self.spec.reads_per_tick = rate;
        self
    }

    /// Allow churn to evict the designated writer (default: protected).
    pub fn writer_churns(mut self, yes: bool) -> Scenario {
        self.spec.writer_churns = yes;
        self
    }

    /// Writes are issued by the current *oldest active* process instead of
    /// a fixed protected writer; the role migrates as churn evicts its
    /// holder. No process is immortal — required for the churn-threshold
    /// experiments, where a protected writer would serve fresh values
    /// forever and mask the bound.
    pub fn migrating_writer(mut self) -> Scenario {
        self.spec.migrating_writer = true;
        self.spec.writer_churns = true;
        self
    }

    /// Runs a **keyed register space** of `keys` registers instead of the
    /// single paper register: one protocol instance per key per process
    /// behind a shared join handshake, client traffic addressing
    /// `(key, action)` pairs with Zipf-distributed key popularity (see
    /// [`Scenario::zipf`]). `keys == 1` is the classic single-register run.
    ///
    /// # Panics
    /// Panics if `keys` is zero.
    pub fn keys(mut self, keys: u32) -> Scenario {
        assert!(keys > 0, "a register space needs at least one key");
        self.spec.keys = keys;
        self
    }

    /// Zipf key-popularity exponent for keyed runs (`0` uniform, `~1`
    /// classic web/cache skew; default `1.0`). Ignored for 1-key runs.
    pub fn zipf(mut self, exponent: f64) -> Scenario {
        assert!(exponent >= 0.0, "Zipf exponent must be non-negative");
        self.spec.zipf_exponent = exponent;
        self
    }

    /// Shards join replies over `groups` responder groups: each responder
    /// answers a join inquiry only for its own key shard
    /// (`hash(node) mod G`), cutting the per-join state transfer from
    /// `K·n` to `K·n/G` payload entries, at the price of a per-shard
    /// reply-quorum liveness argument (shards still short when the join
    /// timer fires are re-inquired with a full-reply fallback). `1` (the
    /// default) is the legacy full-reply handshake; the group count is
    /// clamped to the key count.
    ///
    /// Responder shards are **hash-assigned**, so their populations are
    /// multinomial around `n/G`: an unlucky (or too-large) `G` can leave
    /// a shard permanently below its quorum, in which case every join
    /// pays the re-inquiry latency and degrades to the legacy full-state
    /// transfer. Watch the `INQUIRY_FULL` message counter — a high count
    /// means the configuration is defeating the payload saving.
    ///
    /// # Panics
    /// Panics if `groups` is zero.
    pub fn join_shards(mut self, groups: u32) -> Scenario {
        assert!(groups > 0, "shard groups must be positive");
        self.spec.shards = groups;
        self
    }

    /// Runs `count` concurrent writers: the roster is the first `count`
    /// bootstrap members (or, with [`Scenario::migrating_writer`], the
    /// `count` oldest active processes), and up to `count` writes may
    /// race on one key while writes to other keys pipeline freely. `1`
    /// (the default) is the paper's single-writer model.
    ///
    /// # Panics
    /// Panics if `count` is zero or exceeds the system size.
    pub fn writers(mut self, count: usize) -> Scenario {
        assert!(
            (1..=self.spec.n).contains(&count),
            "writer roster must have between 1 and n members"
        );
        self.spec.writers = count;
        self
    }

    /// Record a full trace.
    pub fn trace(mut self, yes: bool) -> Scenario {
        self.spec.trace = yes;
        self
    }

    /// Replace the stochastic workload with an exact script.
    pub fn scripted(mut self, script: ScriptedWorkload) -> Scenario {
        self.spec.script = Some(script);
        self
    }

    /// Install a delay-fault adversary.
    pub fn faults(mut self, faults: FaultPlan) -> Scenario {
        self.spec.faults = Some(faults);
        self
    }

    /// Worst-case synchronous delays: every message takes exactly `δ`
    /// instead of uniform `[1, δ]`. This is the adversary the paper's
    /// bounds are stated against; combined with
    /// [`LeaveSelector::ActiveFirst`] it makes the Theorem 1 churn
    /// threshold empirically sharp.
    ///
    /// # Panics
    /// Panics if the scenario's network is not synchronous.
    pub fn worst_case_delays(mut self) -> Scenario {
        assert!(
            matches!(
                self.spec.net,
                NetClass::Synchronous | NetClass::SynchronousWorstCase
            ),
            "worst-case delays only apply to synchronous networks"
        );
        self.spec.net = NetClass::SynchronousWorstCase;
        self
    }

    /// The churn rate this scenario will run with.
    pub fn effective_churn_rate(&self) -> f64 {
        self.spec.effective_churn_rate()
    }

    /// The underlying plain-data spec (read-only).
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// Decomposes the builder into its `Send + Clone` spec, ready to cross
    /// threads (the `dynareg-fleet` entry point).
    pub fn into_spec(self) -> ScenarioSpec {
        self.spec
    }

    /// Runs the scenario to completion and checks the result.
    pub fn run(self) -> RunReport {
        self.spec.run()
    }

    /// Runs the scenario with the observability layer on (see
    /// [`ScenarioSpec::run_observed`]).
    pub fn run_observed(self, obs: ObsConfig) -> RunReport {
        self.spec.run_observed(obs)
    }
}

/// Churn model wrapper that goes quiet at `stop_at` (the drain window).
#[derive(Debug)]
struct StopAfter {
    inner: Box<dyn ChurnModel>,
    stop_at: Time,
}

impl ChurnModel for StopAfter {
    fn refreshes(&mut self, now: Time, n: usize, rng: &mut DetRng) -> usize {
        if now >= self.stop_at {
            0
        } else {
            self.inner.refreshes(now, n, rng)
        }
    }

    fn extra_joins(&mut self, now: Time, n: usize, rng: &mut DetRng) -> usize {
        if now >= self.stop_at {
            0
        } else {
            self.inner.extra_joins(now, n, rng)
        }
    }

    fn nominal_rate(&self) -> Option<f64> {
        self.inner.nominal_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synchronous_scenario_under_bound_is_clean() {
        let report = Scenario::synchronous(15, Span::ticks(3))
            .churn_fraction_of_bound(0.5)
            .duration(Span::ticks(250))
            .seed(1)
            .run();
        assert_eq!(report.protocol, "sync");
        assert!(report.safety.is_ok(), "{}", report.safety);
        assert!(report.liveness.is_ok(), "{}", report.liveness);
        assert!(report.reads_checked() > 20);
        assert!(report.presence.total_arrivals() > 15, "churn ran");
    }

    #[test]
    fn es_scenario_synchronous_from_start_is_clean() {
        let report = Scenario::eventually_synchronous(11, Span::ticks(3), Time::ZERO)
            .churn_fraction_of_bound(0.5)
            .duration(Span::ticks(400))
            .seed(2)
            .run();
        assert_eq!(report.protocol, "es");
        assert!(report.safety.is_ok(), "{}", report.safety);
        assert!(report.liveness.is_ok(), "{}", report.liveness);
    }

    #[test]
    fn atomic_scenario_has_no_inversions() {
        let report = Scenario::es_atomic(9, Span::ticks(2), Time::ZERO)
            .duration(Span::ticks(300))
            .reads_per_tick(2.0)
            .seed(3)
            .run();
        assert_eq!(report.protocol, "es-atomic");
        assert!(report.atomicity.is_ok(), "{}", report.atomicity);
        assert_eq!(report.inversions(), 0);
    }

    #[test]
    fn summary_is_one_line() {
        let report = Scenario::synchronous(5, Span::ticks(2))
            .duration(Span::ticks(60))
            .run();
        let s = report.summary();
        assert!(s.contains("sync"));
        assert!(!s.contains('\n'));
    }

    #[test]
    fn flash_crowd_scenario_grows_population_and_stays_safe() {
        let report = Scenario::synchronous(12, Span::ticks(3))
            .churn_choice(ChurnChoice::FlashCrowd {
                base: 0.02,
                wave_at: 60,
                wave_every: 0,
                wave_joins: 4,
                wave_ticks: 3,
            })
            .duration(Span::ticks(300))
            .seed(9)
            .run();
        assert!(report.safety.is_ok(), "{}", report.safety);
        assert!(report.liveness.is_ok(), "{}", report.liveness);
        // 12 unpaired arrivals on top of the balanced refreshes.
        assert!(
            report.presence.present_count() >= 12 + 12,
            "population grew: {}",
            report.presence.present_count()
        );
    }

    #[test]
    fn extension_churn_choices_report_their_long_run_rate() {
        let burst = Scenario::synchronous(10, Span::ticks(5)).churn_choice(ChurnChoice::Burst {
            on: 0.2,
            on_ticks: 10,
            off: 0.0,
            off_ticks: 40,
        });
        assert!((burst.effective_churn_rate() - 0.04).abs() < 1e-12);
        let sessions =
            Scenario::synchronous(10, Span::ticks(5)).churn_choice(ChurnChoice::Sessions {
                alpha: 1.5,
                min_ticks: 20,
            });
        assert!((sessions.effective_churn_rate() - 1.0 / 60.0).abs() < 1e-12);
    }

    #[test]
    fn effective_churn_rate_reflects_fraction() {
        let s = Scenario::synchronous(10, Span::ticks(5)).churn_fraction_of_bound(1.0);
        assert!((s.effective_churn_rate() - 1.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn spec_is_send_and_clone() {
        fn assert_send_clone<T: Send + Clone>() {}
        assert_send_clone::<ScenarioSpec>();
    }

    #[test]
    fn spec_runs_reproduce_the_builder_run() {
        let build = || {
            Scenario::synchronous(12, Span::ticks(3))
                .churn_fraction_of_bound(0.6)
                .duration(Span::ticks(200))
                .seed(11)
        };
        let via_builder = build().run();
        let spec = build().into_spec();
        // The same spec runs identically on another thread.
        let via_spec = std::thread::spawn(move || spec.run()).join().unwrap();
        assert_eq!(
            format!("{:?}", via_builder.history.ops()),
            format!("{:?}", via_spec.history.ops())
        );
        assert_eq!(via_builder.total_messages, via_spec.total_messages);
        assert_eq!(via_builder.messages, via_spec.messages);
    }

    #[test]
    fn spec_fields_round_trip_through_builder() {
        let spec = Scenario::eventually_synchronous(9, Span::ticks(4), Time::at(50))
            .churn_rate(0.01)
            .reads_per_tick(2.5)
            .seed(77)
            .into_spec();
        assert_eq!(spec.protocol, ProtocolChoice::EventuallySynchronous);
        assert_eq!(
            spec.net,
            NetClass::EventuallySynchronous { gst: Time::at(50) }
        );
        assert_eq!(spec.n, 9);
        assert_eq!(spec.churn, ChurnChoice::Constant(0.01));
        assert_eq!(spec.seed, 77);
    }
}
