//! The deterministic simulation world.
//!
//! [`World`] owns everything a run needs — protocol actors, the network,
//! the churn driver, the workload, the history, the trace — and advances
//! them on a single event queue. Every actor is a
//! [`RegisterSpaceProcess`] — a keyed register space; single-register
//! protocols run as transparent 1-key spaces via the
//! [`crate::SpaceFactory`] blanket impl, byte-identical to driving them
//! directly. The world is the interpreter for the spaces'
//! [`SpaceEffect`] language:
//!
//! | effect | interpretation |
//! |---|---|
//! | `Send` | sample latency, schedule a delivery (dropped if the target leaves first) |
//! | `Broadcast` | one delivery per process present *now* (the timely broadcast snapshot), sharing a single payload |
//! | `SetTimer` | schedule a timer callback |
//! | `JoinComplete` | flip presence to active, complete the join (every key) in the history |
//! | `OpComplete` | complete the read/write in its key's history, free the process |
//!
//! Per time unit the world (1) applies churn decisions — departures first,
//! then fresh joiners, matching the paper's "replaced within the time unit"
//! accounting — and (2) asks the workload for client operations on idle
//! active processes.
//!
//! # Node storage
//!
//! Live actors sit in a dense **slab** (`Vec<Option<Slot>>` plus a free
//! list): every queued delivery and timer carries its target's slot index,
//! so the per-event path is one bounds-checked vector access and a
//! `NodeId` identity check (catching slots recycled to later joiners) —
//! no tree walk. A `NodeId → slot` interning map (with a cheap
//! multiply-xor hasher; node ids are already well-distributed small
//! integers) is consulted only when new work is scheduled. The sorted
//! idle-active roster the workload samples from is maintained
//! incrementally instead of being re-collected every tick.

// `NodeMap` below: a lookup-only interning map on the per-event hot path.
// Probed by node id, never iterated outside an order-insensitive test
// assertion (detlint's unordered-iteration rule guards that).
#[allow(clippy::disallowed_types)]
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::rc::Rc;

use dynareg_churn::ChurnDriver;
use dynareg_core::space::{RegisterSpaceProcess, SpaceEffect};
use dynareg_core::OpOutcome;
use dynareg_net::{Fanout, Network, Presence};
use dynareg_sim::metrics::Metrics;
use dynareg_sim::obs::TickPhase;
use dynareg_sim::trace::{TraceEvent, TraceLog};
use dynareg_sim::{DetRng, EventQueue, NodeId, OpId, RegisterId, Span, Time};
use dynareg_verify::{History, SpaceHistory};

use crate::factory::SpaceFactory;
use crate::obs::{Cause, ObsConfig, ObsReport, WorldObs};
use crate::workload::{KeyedAction, OpAction, Workload};

/// The register value type used by scenarios; histories wrap it in
/// `Option` so the protocol's ⊥ is representable (and flagged as fabricated
/// by the checkers if it ever reaches a client).
pub type Val = u64;

/// World construction parameters.
pub struct WorldConfig {
    /// Initial (and nominal) population size `n`.
    pub n: usize,
    /// The register's initial value (held by all bootstrap members).
    pub initial: Val,
    /// Message latency model (fixes the synchrony class).
    pub delay: Box<dyn dynareg_net::DelayModel>,
    /// Churn decisions.
    pub churn: ChurnDriver,
    /// Client operation source.
    pub workload: Box<dyn Workload>,
    /// Master seed (forked per subsystem).
    pub seed: u64,
    /// Record a full trace (memory-heavy; scenarios default to off).
    pub trace: bool,
    /// Who issues writes.
    pub writer_policy: WriterPolicy,
    /// Writer roster size, and per-key concurrent-write cap: up to this
    /// many writes may race on one key while writes to *other* keys
    /// pipeline freely. `1` is the paper's single-writer model.
    pub writers: usize,
}

impl std::fmt::Debug for WorldConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorldConfig")
            .field("n", &self.n)
            .field("initial", &self.initial)
            .field("seed", &self.seed)
            .field("trace", &self.trace)
            .field("writers", &self.writers)
            .finish_non_exhaustive()
    }
}

/// Event ordering classes within one instant: deliveries fire before
/// timers (so a `wait(2δ)` observes worst-case-latency replies landing at
/// exactly the deadline, as the paper's round-trip bound intends), and the
/// churn/workload tick runs last.
const CLASS_DELIVER: u8 = 0;
const CLASS_TIMER: u8 = 1;
const CLASS_TICK: u8 = 2;

/// Events on the world's queue. Deliveries and timers carry the target's
/// slab slot so delivery is O(1); the `NodeId` doubles as a generation
/// check against slot reuse.
enum Pending<M> {
    /// A unicast delivery, stripped to what delivery needs (the instant
    /// lives in the queue key; keeping the full [`Envelope`] here would
    /// move two redundant timestamps through every wheel bucket).
    Deliver {
        from: NodeId,
        to: NodeId,
        slot: u32,
        label: &'static str,
        /// The network's sequence id for this copy (links the delivery to
        /// its send in the observability layer; inert otherwise).
        seq: u64,
        msg: M,
    },
    /// One recipient's share of a broadcast: the payload lives once inside
    /// the shared [`Fanout`]; `idx` names the recipient.
    Fan {
        fan: Rc<Fanout<M>>,
        idx: u32,
        slot: u32,
    },
    Timer {
        node: NodeId,
        slot: u32,
        tag: u64,
    },
    Tick,
}

/// Who issues writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WriterPolicy {
    /// A fixed designated writer (the first bootstrap member), shielded
    /// from churn — the paper's single-writer reading of §3.
    #[default]
    FixedProtected,
    /// The *oldest active* process writes; when churn evicts it the role
    /// migrates to the next-oldest. Writers are still sequential (one write
    /// in flight), but no process is immortal — the configuration the
    /// churn-threshold experiments need.
    OldestActive,
}

/// What a process is currently executing on one key (per-`(node, key)`
/// sequentiality: at most one client op per key per process). Op ids are
/// unique *per key*, so the key lives in the [`BusyMap`] entry alongside.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Busy {
    Read(OpId),
    Write(OpId),
}

/// The client ops one process has in flight, keyed by register — a small
/// linear-scan vec (a node rarely runs more than a handful of keys at
/// once, and most run zero or one).
#[derive(Debug, Default)]
struct BusyMap(Vec<(RegisterId, Busy)>);

impl BusyMap {
    fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    fn contains(&self, key: RegisterId) -> bool {
        self.0.iter().any(|&(k, _)| k == key)
    }

    fn insert(&mut self, key: RegisterId, busy: Busy) {
        debug_assert!(!self.contains(key), "one op per (node, key)");
        self.0.push((key, busy));
    }

    fn remove(&mut self, key: RegisterId) -> Option<Busy> {
        let i = self.0.iter().position(|&(k, _)| k == key)?;
        Some(self.0.swap_remove(i).1)
    }

    /// The in-flight writes, as `(key, op)` pairs.
    fn writes(&self) -> impl Iterator<Item = (RegisterId, OpId)> + '_ {
        self.0.iter().filter_map(|&(k, b)| match b {
            Busy::Write(op) => Some((k, op)),
            Busy::Read(_) => None,
        })
    }
}

/// One live process in the slab.
struct Slot<P> {
    /// Identity; checked against queued events to detect slot reuse.
    node: NodeId,
    proc_: P,
    /// Mirrors the presence table's active bit for O(1) eligibility checks.
    active: bool,
    /// Per-key join ops of a process still joining (a joiner joins every
    /// register of the space at once), in key order.
    joining: Option<Vec<OpId>>,
    /// Client ops in flight, keyed by register.
    busy: BusyMap,
}

/// Multiply-xor hasher for `NodeId`-keyed maps: node ids are small
/// sequential integers, so a single odd-multiplier mix beats SipHash on
/// the interning path without clustering.
#[derive(Debug, Default, Clone, Copy)]
struct NodeIdHasher(u64);

impl Hasher for NodeIdHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-u64 writes (unused by NodeId's derived Hash).
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0100_0000_01B3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        let mut h = v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 32;
        self.0 = h;
    }
}

#[allow(clippy::disallowed_types)] // lookup-only, see the import note
type NodeMap<V> = HashMap<NodeId, V, BuildHasherDefault<NodeIdHasher>>;

/// The deterministic simulation world for the spaces `F` builds.
///
/// Most users go through [`crate::Scenario`]; `World` is public for tests
/// and experiments needing fine-grained control (scripted fault injection,
/// mid-run probes). `World<SyncFactory>` / `World<EsFactory>` drive the
/// paper's single-register protocols unchanged (1-key spaces);
/// `World<SpaceOf<…>>` drives a keyed register space.
///
/// [`SpaceOf`]: crate::SpaceOf
pub struct World<F: SpaceFactory> {
    factory: F,
    queue: EventQueue<Pending<<F::Proc as RegisterSpaceProcess>::Msg>>,
    /// Dense live-node storage; see the module docs.
    slots: Vec<Option<Slot<F::Proc>>>,
    free_slots: Vec<u32>,
    /// NodeId → slot interning for scheduling-time lookups. Doubles as the
    /// O(1) "is present" set (its keys are exactly the live nodes).
    slot_of: NodeMap<u32>,
    /// The present set with slots, in id order — the same set (and order)
    /// as a broadcast snapshot, so fan-out scheduling zips against it
    /// instead of hashing once per recipient.
    present_slots: Vec<(NodeId, u32)>,
    presence: Presence,
    network: Network,
    churn: ChurnDriver,
    workload: Box<dyn Workload>,
    /// One history per key; 1-key worlds are the single-register case.
    histories: SpaceHistory<Option<Val>>,
    /// Cached key count (== `histories.key_count()`).
    keys: u32,
    trace: TraceLog,
    metrics: Metrics,
    /// Deliveries counted outside [`Metrics`] (a per-event map update is
    /// measurable at 40M+ events); folded into `net.delivered` on
    /// [`World::into_outputs`].
    delivered_msgs: u64,
    /// Reused scratch for `on_message_into` — one buffer for all
    /// deliveries instead of one allocation each.
    effects_buf: Vec<SpaceEffect<<F::Proc as RegisterSpaceProcess>::Msg, Val>>,
    rng_workload: DetRng,
    rng_churn: DetRng,
    /// Active processes with no operation in flight on *any* key, in id
    /// order — maintained incrementally so the per-tick workload never
    /// rescans the population.
    idle_active: Vec<NodeId>,
    /// In-flight write count per key (index = raw key id), each capped at
    /// `writer_cap` — per-key writer occupancy instead of the old
    /// space-global single write slot, so writes to independent keys
    /// pipeline and up to `writers` writes may race on one key.
    key_writes: Vec<u32>,
    /// Maximum concurrent writes per key ([`WorldConfig::writers`]).
    writer_cap: u32,
    /// The first bootstrap member: anchor of the `FixedProtected` roster
    /// and the `OldestActive` fallback when nothing is active.
    writer: NodeId,
    writer_policy: WriterPolicy,
    /// Churn arrivals in join order (for scripted workload targets).
    arrivals: Vec<NodeId>,
    /// Writers shielded from eviction only while a write of theirs is in
    /// flight — the paper's liveness caveat ("invokes write and does not
    /// leave the system for at least δ", Lemma 1; analogous assumption in
    /// Lemma 7). Refcounted per in-flight write; an entry drops (and the
    /// shield lifts) when the node's last write completes or the node
    /// departs.
    temp_write_protection: Vec<(NodeId, u32)>,
    /// The observability collector, absent unless installed via
    /// [`World::set_obs`] — every hook sits behind this `Option`, so an
    /// uninstrumented world pays one predictable branch per hook site and
    /// its event stream (and digest) is untouched.
    obs: Option<Box<WorldObs>>,
    /// Figure-exact membership script: joins at given instants.
    scripted_joins: Vec<Time>,
    /// Figure-exact membership script: named departures.
    scripted_leaves: Vec<(Time, NodeId)>,
    now: Time,
    end: Time,
}

impl<F: SpaceFactory> World<F>
where
    F::Proc: RegisterSpaceProcess<Val = Val>,
{
    /// Builds a world with `config.n` active bootstrap members, every key
    /// of every space holding `config.initial`, and schedules the first
    /// churn/workload tick.
    pub fn new(factory: F, config: WorldConfig) -> World<F> {
        assert!(config.n > 0, "population must be positive");
        assert!(
            (1..=config.n).contains(&config.writers),
            "writer roster must have between 1 and n members"
        );
        let keys = factory.key_count();
        let mut seed_rng = DetRng::seed(config.seed);
        let rng_net = seed_rng.fork(1);
        let rng_churn = seed_rng.fork(2);
        let rng_workload = seed_rng.fork(3);

        let mut presence = Presence::new();
        let mut slots = Vec::with_capacity(config.n);
        let mut slot_of = NodeMap::default();
        let mut present_slots = Vec::with_capacity(config.n);
        let mut idle_active = Vec::with_capacity(config.n);
        for raw in 0..config.n as u64 {
            let id = NodeId::from_raw(raw);
            presence.enter(id, Time::ZERO);
            presence.activate(id, Time::ZERO);
            slot_of.insert(id, slots.len() as u32);
            present_slots.push((id, slots.len() as u32));
            slots.push(Some(Slot {
                node: id,
                proc_: factory.space_bootstrap(id, config.initial),
                active: true,
                joining: None,
                busy: BusyMap::default(),
            }));
            idle_active.push(id);
        }

        let mut queue = EventQueue::new();
        queue.schedule_class(Time::ZERO, CLASS_TICK, Pending::Tick);

        World {
            factory,
            queue,
            slots,
            free_slots: Vec::new(),
            slot_of,
            present_slots,
            presence,
            network: Network::new(config.delay, rng_net),
            churn: config.churn,
            workload: config.workload,
            histories: SpaceHistory::new(keys, Some(config.initial)),
            keys,
            trace: if config.trace {
                TraceLog::enabled()
            } else {
                TraceLog::disabled()
            },
            metrics: Metrics::new(),
            delivered_msgs: 0,
            effects_buf: Vec::new(),
            rng_workload,
            rng_churn,
            idle_active,
            key_writes: vec![0; keys as usize],
            writer_cap: config.writers as u32,
            writer: NodeId::from_raw(0),
            writer_policy: config.writer_policy,
            arrivals: Vec::new(),
            temp_write_protection: Vec::new(),
            obs: None,
            scripted_joins: Vec::new(),
            scripted_leaves: Vec::new(),
            now: Time::ZERO,
            end: Time::MAX,
        }
    }

    /// Scripts a fresh process to enter (and start joining) at `t`,
    /// independent of the churn model. Scripted arrivals are addressable
    /// from a [`crate::ScriptedWorkload`] via their arrival index.
    pub fn schedule_join(&mut self, t: Time) {
        self.scripted_joins.push(t);
    }

    /// Scripts `node` to leave the system at `t` (processed at the start
    /// of that time unit, after deliveries and timers of instant `t` —
    /// so an operation completing locally at `t` still completes).
    pub fn schedule_leave(&mut self, t: Time, node: NodeId) {
        self.scripted_leaves.push((t, node));
    }

    /// Installs a network fault plan (delay adversary).
    pub fn set_faults(&mut self, faults: dynareg_net::FaultPlan) {
        self.network.set_faults(faults);
    }

    /// Installs the observability layer. A fully-off config installs
    /// nothing, leaving the run bit-for-bit what it was without the call;
    /// otherwise spans turn on the network's send log, a flight-recorder
    /// capacity turns the trace into a bounded ring (unless full tracing
    /// was already requested), and the collector starts listening.
    pub fn set_obs(&mut self, cfg: ObsConfig) {
        if cfg.is_off() {
            return;
        }
        if cfg.spans {
            self.network.enable_msg_log();
        }
        if let Some(cap) = cfg.flight_recorder {
            if !self.trace.is_enabled() {
                self.trace = TraceLog::with_capacity_limit(cap);
            }
        }
        self.obs = Some(Box::new(WorldObs::new(cfg)));
    }

    /// Extracts the observability report (spans with resolved message
    /// fates, timeseries, tick profile), detaching the collector. Call
    /// before [`World::into_space_outputs`]; returns `None` if no
    /// observability was installed.
    pub fn take_obs_report(&mut self) -> Option<ObsReport> {
        let obs = self.obs.take()?;
        let log = self.network.take_msg_log();
        Some(obs.into_report(log))
    }

    /// The processes that issue writes this tick under the configured
    /// [`WriterPolicy`], in roster order: the first `writers` bootstrap
    /// ids under `FixedProtected`, or the `writers` oldest active
    /// processes under `OldestActive` (fewer while the active set is
    /// smaller; the bootstrap anchor when nothing is active, so the
    /// roster is never empty).
    pub fn writer_roster(&self) -> Vec<NodeId> {
        match self.writer_policy {
            WriterPolicy::FixedProtected => (0..u64::from(self.writer_cap))
                .map(NodeId::from_raw)
                .collect(),
            WriterPolicy::OldestActive => {
                let mut active: Vec<(Time, NodeId)> = self
                    .presence
                    .active_nodes()
                    .into_iter()
                    .map(|id| (self.presence.record(id).expect("active").entered_at, id))
                    .collect();
                active.sort_unstable();
                let roster: Vec<NodeId> = active
                    .into_iter()
                    .take(self.writer_cap as usize)
                    .map(|(_, id)| id)
                    .collect();
                if roster.is_empty() {
                    vec![self.writer]
                } else {
                    roster
                }
            }
        }
    }

    /// The first roster writer — *the* designated writer of one-writer
    /// configurations (multi-writer callers use [`World::writer_roster`]).
    pub fn writer(&self) -> NodeId {
        self.writer_roster()[0]
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total events (deliveries, timers, ticks) processed so far — the
    /// denominator of the engine's events/sec throughput.
    pub fn events_processed(&self) -> u64 {
        self.queue.delivered()
    }

    /// The live slot for `node`, with the identity check against reuse.
    #[inline]
    fn live_slot(&mut self, node: NodeId, slot: u32) -> Option<&mut Slot<F::Proc>> {
        match self.slots.get_mut(slot as usize) {
            Some(Some(s)) if s.node == node => Some(s),
            _ => None,
        }
    }

    fn idle_insert(&mut self, node: NodeId) {
        if let Err(i) = self.idle_active.binary_search(&node) {
            self.idle_active.insert(i, node);
        }
    }

    fn idle_remove(&mut self, node: NodeId) {
        if let Ok(i) = self.idle_active.binary_search(&node) {
            self.idle_active.remove(i);
        }
    }

    /// Runs the world until (and including) `end`.
    pub fn run_until(&mut self, end: Time) {
        self.end = end;
        if self.obs.as_deref().is_some_and(|o| o.cfg.tick_profile) {
            self.run_until_profiled(end);
            return;
        }
        while let Some(t) = self.queue.peek_time() {
            if t > end {
                break;
            }
            let ev = self.queue.pop().expect("peeked");
            self.now = ev.time;
            match ev.payload {
                Pending::Deliver {
                    from,
                    to,
                    slot,
                    label,
                    seq,
                    msg,
                } => self.handle_delivery(from, to, slot, label, seq, msg),
                Pending::Fan { fan, idx, slot } => self.handle_fan(fan, idx, slot),
                Pending::Timer { node, slot, tag } => self.handle_timer(node, slot, tag),
                Pending::Tick => self.handle_tick(),
            }
        }
        self.now = end;
    }

    /// The profiled twin of the main loop: identical dispatch, plus a
    /// wall-clock stamp around each event class. Kept separate so the
    /// unprofiled path carries no `Instant` reads.
    #[allow(clippy::disallowed_methods)] // profiler timing, outside the simulation clock
    fn run_until_profiled(&mut self, end: Time) {
        use std::time::Instant;
        while let Some(t) = self.queue.peek_time() {
            if t > end {
                break;
            }
            let ev = self.queue.pop().expect("peeked");
            self.now = ev.time;
            match ev.payload {
                Pending::Deliver {
                    from,
                    to,
                    slot,
                    label,
                    seq,
                    msg,
                } => {
                    let t0 = Instant::now(); // detlint: allow(wall-clock) -- TickProfile wall timing, reported out-of-band, never in digests
                    self.handle_delivery(from, to, slot, label, seq, msg);
                    self.profile_add(TickPhase::Deliver, t0.elapsed());
                }
                Pending::Fan { fan, idx, slot } => {
                    let t0 = Instant::now(); // detlint: allow(wall-clock) -- TickProfile wall timing, reported out-of-band, never in digests
                    self.handle_fan(fan, idx, slot);
                    self.profile_add(TickPhase::Deliver, t0.elapsed());
                }
                Pending::Timer { node, slot, tag } => {
                    let t0 = Instant::now(); // detlint: allow(wall-clock) -- TickProfile wall timing, reported out-of-band, never in digests
                    self.handle_timer(node, slot, tag);
                    self.profile_add(TickPhase::Timer, t0.elapsed());
                }
                Pending::Tick => self.handle_tick_profiled(),
            }
        }
        self.now = end;
    }

    #[inline]
    fn profile_add(&mut self, phase: TickPhase, elapsed: std::time::Duration) {
        if let Some(obs) = self.obs.as_deref_mut() {
            obs.profile.add(phase, elapsed);
        }
    }

    fn handle_fan(
        &mut self,
        fan: Rc<Fanout<<F::Proc as RegisterSpaceProcess>::Msg>>,
        idx: u32,
        slot: u32,
    ) {
        let (to, _, seq) = fan.recipients[idx as usize];
        // Clone lazily: a recipient that left in flight never costs a copy.
        if self.live_slot(to, slot).is_none() {
            self.drop_delivery(to, fan.label, seq);
            return;
        }
        let msg = fan.msg.clone();
        self.deliver_to_live_slot(fan.from, to, slot, fan.label, seq, msg);
    }

    fn drop_delivery(&mut self, to: NodeId, label: &'static str, seq: u64) {
        self.network.note_dropped_departed();
        if let Some(obs) = self.obs.as_deref_mut() {
            obs.note_drop_departed(seq, self.now);
        }
        self.trace.record(self.now, TraceEvent::Drop { to, label });
    }

    fn handle_delivery(
        &mut self,
        from: NodeId,
        to: NodeId,
        slot: u32,
        label: &'static str,
        seq: u64,
        msg: <F::Proc as RegisterSpaceProcess>::Msg,
    ) {
        if self.live_slot(to, slot).is_none() {
            self.drop_delivery(to, label, seq);
            return;
        }
        self.deliver_to_live_slot(from, to, slot, label, seq, msg);
    }

    /// Delivery core; the caller has already verified `slot` is live for
    /// `to` (fan deliveries check before cloning the shared payload, so
    /// checking again here would double the hottest lookup in the run).
    fn deliver_to_live_slot(
        &mut self,
        from: NodeId,
        to: NodeId,
        slot: u32,
        label: &'static str,
        seq: u64,
        msg: <F::Proc as RegisterSpaceProcess>::Msg,
    ) {
        let now = self.now;
        if let Some(obs) = self.obs.as_deref_mut() {
            obs.note_delivered(seq, to, label, now);
            // Sends the handler emits inherit this delivery's attribution.
            let op = obs.op_of_seq(seq);
            obs.cause = Cause::Deliver(seq, op);
        }
        // Reuse one effects buffer across all deliveries (the protocols'
        // `on_message_into` fast path): zero allocations per message.
        let mut buf = std::mem::take(&mut self.effects_buf);
        debug_assert!(buf.is_empty());
        self.slots[slot as usize]
            .as_mut()
            .expect("caller verified the slot is live")
            .proc_
            .on_message_into(now, from, msg, &mut buf);
        self.trace
            .record(now, TraceEvent::Deliver { to, from, label });
        self.delivered_msgs += 1;
        self.apply_effects(to, slot, &mut buf);
        buf.clear();
        self.effects_buf = buf;
        if let Some(obs) = self.obs.as_deref_mut() {
            obs.cause = Cause::None;
        }
    }

    fn handle_timer(&mut self, node: NodeId, slot: u32, tag: u64) {
        let now = self.now;
        let track = self.obs.as_deref().is_some_and(|o| o.cfg.spans);
        // The node may have left since setting the timer.
        let Some(s) = self.live_slot(node, slot) else {
            return;
        };
        // Attribute the timer to the node's sole in-flight operation when
        // that is unambiguous (a joiner's anchor join op, or a single busy
        // client op); re-sends it triggers become Refire phases.
        let anchor = if track {
            if let Some(join_ops) = &s.joining {
                Some((RegisterId::ZERO, join_ops[0]))
            } else if s.busy.0.len() == 1 {
                let (key, busy) = s.busy.0[0];
                let op = match busy {
                    Busy::Read(op) | Busy::Write(op) => op,
                };
                Some((key, op))
            } else {
                None
            }
        } else {
            None
        };
        let mut effects = s.proc_.on_timer(now, tag);
        if let Some(obs) = self.obs.as_deref_mut() {
            obs.cause = Cause::Timer(anchor);
        }
        self.apply_effects(node, slot, &mut effects);
        if let Some(obs) = self.obs.as_deref_mut() {
            obs.cause = Cause::None;
        }
    }

    fn handle_tick(&mut self) {
        self.apply_scripted_membership();
        if self.now > Time::ZERO {
            self.apply_churn();
        }
        self.apply_workload();
        self.sample_gauges();
        self.obs_tick_row();
        let next = self.now + Span::UNIT;
        if next <= self.end {
            self.queue.schedule_class(next, CLASS_TICK, Pending::Tick);
        }
    }

    /// The profiled twin of [`World::handle_tick`]: same work, with each
    /// sub-phase (membership, workload, sampling) stamped separately.
    #[allow(clippy::disallowed_methods)] // profiler timing, outside the simulation clock
    fn handle_tick_profiled(&mut self) {
        use std::time::Instant;
        let t0 = Instant::now(); // detlint: allow(wall-clock) -- TickProfile wall timing, reported out-of-band, never in digests
        self.apply_scripted_membership();
        if self.now > Time::ZERO {
            self.apply_churn();
        }
        let t1 = Instant::now(); // detlint: allow(wall-clock) -- TickProfile wall timing, reported out-of-band, never in digests
        self.apply_workload();
        let t2 = Instant::now(); // detlint: allow(wall-clock) -- TickProfile wall timing, reported out-of-band, never in digests
        self.sample_gauges();
        self.obs_tick_row();
        let t3 = Instant::now(); // detlint: allow(wall-clock) -- TickProfile wall timing, reported out-of-band, never in digests
        if let Some(obs) = self.obs.as_deref_mut() {
            obs.profile.add(TickPhase::Churn, t1 - t0);
            obs.profile.add(TickPhase::Workload, t2 - t1);
            obs.profile.add(TickPhase::Sample, t3 - t2);
            obs.profile.ticks += 1;
        }
        let next = self.now + Span::UNIT;
        if next <= self.end {
            self.queue.schedule_class(next, CLASS_TICK, Pending::Tick);
        }
    }

    /// Appends one timeseries row if the recorder is on and the cadence
    /// says this tick is due. Gauges are read-only views of state the run
    /// maintains anyway, so a row costs a handful of loads.
    fn obs_tick_row(&mut self) {
        let Some(obs) = self.obs.as_deref_mut() else {
            return;
        };
        let Some(ts) = obs.timeseries.as_mut() else {
            return;
        };
        let tick = self.now.ticks();
        if !ts.due(tick) {
            return;
        }
        let active = self.presence.active_count() as u64;
        let present = self.presence.present_count() as u64;
        let busy_writers: u64 = self.key_writes.iter().map(|&w| u64::from(w)).sum();
        ts.push_row(
            tick,
            &[
                ("active", active),
                ("present", present),
                ("joining", present - active),
                ("inflight", self.queue.len() as u64),
                ("busy_writers", busy_writers),
                ("delivered", self.delivered_msgs),
                ("fault_drops", self.network.dropped_to_faults()),
                ("inquiry_full", self.network.sent_of("INQUIRY_FULL")),
                ("delta_overruns", self.network.delta_overruns()),
                ("retransmits", self.metrics.counter("join.retransmits")),
            ],
        );
    }

    fn apply_scripted_membership(&mut self) {
        let now = self.now;
        let leaves: Vec<NodeId> = {
            let mut due = Vec::new();
            self.scripted_leaves.retain(|&(t, node)| {
                if t == now {
                    due.push(node);
                    false
                } else {
                    t > now
                }
            });
            due
        };
        for node in leaves {
            if self.presence.is_present(node) {
                self.remove_node(node);
            }
        }
        let joins = {
            let mut count = 0;
            self.scripted_joins.retain(|&t| {
                if t == now {
                    count += 1;
                    false
                } else {
                    t > now
                }
            });
            count
        };
        for _ in 0..joins {
            let id = NodeId::from_raw(1_000_000 + self.arrivals.len() as u64);
            self.spawn_joiner(id);
        }
    }

    fn apply_churn(&mut self) {
        let step = self
            .churn
            .step(&self.presence, self.now, &mut self.rng_churn);
        for victim in step.leaves {
            self.remove_node(victim);
        }
        for id in step.joins {
            self.spawn_joiner(id);
        }
    }

    fn remove_node(&mut self, victim: NodeId) {
        self.presence.leave(victim, self.now);
        self.histories.note_left(victim, self.now);
        let slot_idx = self
            .slot_of
            .remove(&victim)
            .expect("present node has a slot");
        let i = self
            .present_slots
            .binary_search_by_key(&victim, |&(n, _)| n)
            .expect("present node is in the slot roster");
        self.present_slots.remove(i);
        let slot = self.slots[slot_idx as usize]
            .take()
            .expect("interned slot is occupied");
        debug_assert_eq!(slot.node, victim);
        self.free_slots.push(slot_idx);
        if slot.active && slot.busy.is_empty() {
            self.idle_remove(victim);
        }
        // A departing writer abandons *every* write it has in flight:
        // each one frees its key's writer slot (the pending ops stay
        // incomplete-but-excused), so no departure can leave a key's
        // occupancy wedged. Any write-completion shield goes with it —
        // the protection set must never retain a departed id.
        for (key, _op) in slot.busy.writes() {
            let kw = &mut self.key_writes[key.as_raw() as usize];
            debug_assert!(*kw > 0, "an in-flight write occupies its key slot");
            *kw -= 1;
        }
        if let Some(i) = self
            .temp_write_protection
            .iter()
            .position(|&(n, _)| n == victim)
        {
            self.temp_write_protection.remove(i);
            self.churn.unprotect(victim);
        }
        self.trace
            .record(self.now, TraceEvent::Leave { node: victim });
        self.metrics.incr("churn.leaves");
    }

    fn spawn_joiner(&mut self, id: NodeId) {
        // The join is one membership event recorded in every key's history
        // (each key's history is self-contained for the liveness checker);
        // the trace and the protocol see the anchor key's op id.
        let join_ops = self.histories.invoke_join_all(id, self.now);
        let join_op = join_ops[0];
        self.presence.enter(id, self.now);
        self.arrivals.push(id);
        let mut proc_ = self.factory.space_joiner(id, join_op);
        self.trace.record(self.now, TraceEvent::Enter { node: id });
        self.trace.record(
            self.now,
            TraceEvent::Invoke {
                node: id,
                op: join_op,
                label: "join",
            },
        );
        self.metrics.incr("churn.joins");
        if let Some(obs) = self.obs.as_deref_mut() {
            obs.op_invoked(RegisterId::ZERO, join_op, id, "join", self.now);
            obs.cause = Cause::Op(RegisterId::ZERO, join_op);
        }
        let mut effects = proc_.on_enter(self.now);
        let slot = Slot {
            node: id,
            proc_,
            active: false,
            joining: Some(join_ops),
            busy: BusyMap::default(),
        };
        let slot_idx = match self.free_slots.pop() {
            Some(i) => {
                debug_assert!(self.slots[i as usize].is_none());
                self.slots[i as usize] = Some(slot);
                i
            }
            None => {
                self.slots.push(Some(slot));
                (self.slots.len() - 1) as u32
            }
        };
        self.slot_of.insert(id, slot_idx);
        let i = self
            .present_slots
            .binary_search_by_key(&id, |&(n, _)| n)
            .expect_err("fresh id cannot already hold a slot");
        self.present_slots.insert(i, (id, slot_idx));
        self.apply_effects(id, slot_idx, &mut effects);
        if let Some(obs) = self.obs.as_deref_mut() {
            obs.cause = Cause::None;
        }
    }

    fn apply_workload(&mut self) {
        let roster = self.writer_roster();
        // Disjoint field borrows: the availability query reads the slab
        // and occupancy while the workload itself is borrowed mutably.
        let slots = &self.slots;
        let slot_of = &self.slot_of;
        let key_writes = &self.key_writes;
        let cap = self.writer_cap;
        // Denied availability queries are the workload-level contention
        // signal (`workload.write_gated`): the workload declines to emit
        // the write, so `ops.skipped_busy` never sees it. Metrics are
        // outside the event-stream digest, so counting here is free.
        let gated = std::cell::Cell::new(0u64);
        let can_write = |node: NodeId, key: RegisterId| -> bool {
            let free = key_writes
                .get(key.as_raw() as usize)
                .is_some_and(|&w| w < cap)
                && slot_of.get(&node).is_some_and(|&i| {
                    let s = slots[i as usize].as_ref().expect("interned slot");
                    s.active && !s.busy.contains(key)
                });
            if !free {
                gated.set(gated.get() + 1);
            }
            free
        };
        let access = crate::workload::WriteAccess::new(&roster, &can_write);
        let ops = self.workload.tick(
            self.now,
            &self.idle_active,
            &self.arrivals,
            &access,
            &mut self.rng_workload,
        );
        let denied = gated.get();
        if denied > 0 {
            self.metrics.add("workload.write_gated", denied);
        }
        for (node, action) in ops {
            self.invoke(node, action);
        }
    }

    /// Invokes a client operation on a `(register, action)` address. Every
    /// request that cannot start is counted, never silently dropped:
    /// absent or still-joining targets under `workload.skipped`, requests
    /// colliding with an op already in flight on the same `(node, key)` —
    /// or a write finding the key at writer capacity — under
    /// `ops.skipped_busy`. A bare [`OpAction`] addresses the anchor key
    /// `r0`, so single-register call sites read unchanged.
    ///
    /// # Panics
    /// Panics if the addressed key is outside the world's key space.
    pub fn invoke(&mut self, node: NodeId, action: impl Into<KeyedAction>) {
        let KeyedAction { key, action } = action.into();
        assert!(
            key.as_raw() < self.keys,
            "{key} is outside this world's {}-key space",
            self.keys
        );
        let Some(&slot_idx) = self.slot_of.get(&node) else {
            self.metrics.incr("workload.skipped");
            return;
        };
        {
            let s = self.slots[slot_idx as usize]
                .as_ref()
                .expect("interned slot");
            if !s.active {
                self.metrics.incr("workload.skipped");
                return;
            }
            if s.busy.contains(key) {
                self.metrics.incr("ops.skipped_busy");
                return;
            }
        }
        match action {
            OpAction::Read => {
                let op = self.histories.key_mut(key).invoke_read(node, self.now);
                self.set_busy(node, slot_idx, key, Busy::Read(op));
                self.trace.record(
                    self.now,
                    TraceEvent::Invoke {
                        node,
                        op,
                        label: "read",
                    },
                );
                if let Some(obs) = self.obs.as_deref_mut() {
                    obs.op_invoked(key, op, node, "read", self.now);
                    obs.cause = Cause::Op(key, op);
                }
                let now = self.now;
                let mut effects = self.slots[slot_idx as usize]
                    .as_mut()
                    .expect("interned slot")
                    .proc_
                    .on_read(now, key, op);
                self.apply_effects(node, slot_idx, &mut effects);
                if let Some(obs) = self.obs.as_deref_mut() {
                    obs.cause = Cause::None;
                }
            }
            OpAction::Write(value) => {
                let kw = &mut self.key_writes[key.as_raw() as usize];
                if *kw >= self.writer_cap {
                    self.metrics.incr("ops.skipped_busy");
                    return;
                }
                *kw += 1;
                let op = self
                    .histories
                    .key_mut(key)
                    .invoke_write(node, self.now, Some(value));
                self.set_busy(node, slot_idx, key, Busy::Write(op));
                // The paper's liveness statements assume a writer stays
                // until its write returns; shield it for exactly that long
                // (refcounted — a writer pipelining across keys stays
                // shielded until its *last* write returns).
                if let Some(e) = self
                    .temp_write_protection
                    .iter_mut()
                    .find(|&&mut (n, _)| n == node)
                {
                    e.1 += 1;
                } else if !self.churn.protected().contains(&node) {
                    self.churn.protect(node);
                    self.temp_write_protection.push((node, 1));
                }
                self.trace.record(
                    self.now,
                    TraceEvent::Invoke {
                        node,
                        op,
                        label: "write",
                    },
                );
                if let Some(obs) = self.obs.as_deref_mut() {
                    obs.op_invoked(key, op, node, "write", self.now);
                    obs.cause = Cause::Op(key, op);
                }
                let now = self.now;
                let mut effects = self.slots[slot_idx as usize]
                    .as_mut()
                    .expect("interned slot")
                    .proc_
                    .on_write(now, key, op, value);
                self.apply_effects(node, slot_idx, &mut effects);
                if let Some(obs) = self.obs.as_deref_mut() {
                    obs.cause = Cause::None;
                }
            }
        }
    }

    fn set_busy(&mut self, node: NodeId, slot_idx: u32, key: RegisterId, busy: Busy) {
        let s = self.slots[slot_idx as usize]
            .as_mut()
            .expect("interned slot");
        let was_idle = s.busy.is_empty();
        s.busy.insert(key, busy);
        if was_idle {
            self.idle_remove(node);
        }
    }

    /// Drops one unit of the write-completion shield on `node`,
    /// unprotecting it once its last in-flight write has returned.
    fn release_write_protection(&mut self, node: NodeId) {
        if let Some(i) = self
            .temp_write_protection
            .iter()
            .position(|&(n, _)| n == node)
        {
            self.temp_write_protection[i].1 -= 1;
            if self.temp_write_protection[i].1 == 0 {
                self.temp_write_protection.remove(i);
                self.churn.unprotect(node);
            }
        }
    }

    fn apply_effects(
        &mut self,
        node: NodeId,
        slot_idx: u32,
        effects: &mut Vec<SpaceEffect<<F::Proc as RegisterSpaceProcess>::Msg, Val>>,
    ) {
        for effect in effects.drain(..) {
            match effect {
                SpaceEffect::Send { to, msg } => {
                    let label = F::space_msg_label(&msg);
                    // The slab mirrors the present set: an absent key means
                    // the channel carries nothing (counted as dropped, as
                    // `Network::send` would).
                    let Some(&rslot) = self.slot_of.get(&to) else {
                        self.network.note_dropped_departed();
                        continue;
                    };
                    let Some(env) = self.network.send_present(self.now, node, to, label, msg)
                    else {
                        // The fault layer swallowed it (partition or drop
                        // rule) — counted inside the network; a send event
                        // with no delivery instant marks it in the trace.
                        // The attempt consumed a sequence id, so the span
                        // layer still attributes the lost copy.
                        if self.obs.is_some() {
                            if let Some(seq) = self.network.last_seq() {
                                if let Some(obs) = self.obs.as_deref_mut() {
                                    obs.note_send(seq, 1, label, self.now);
                                }
                            }
                        }
                        self.trace.record(
                            self.now,
                            TraceEvent::Send {
                                from: node,
                                to: Some(to),
                                label,
                                deliver_at: None,
                            },
                        );
                        continue;
                    };
                    if let Some(obs) = self.obs.as_deref_mut() {
                        obs.note_send(env.seq, 1, label, self.now);
                    }
                    self.trace.record(
                        self.now,
                        TraceEvent::Send {
                            from: node,
                            to: Some(to),
                            label,
                            deliver_at: Some(env.deliver_at),
                        },
                    );
                    self.queue.schedule_class(
                        env.deliver_at,
                        CLASS_DELIVER,
                        Pending::Deliver {
                            from: env.from,
                            to: env.to,
                            slot: rslot,
                            label: env.label,
                            seq: env.seq,
                            msg: env.msg,
                        },
                    );
                }
                SpaceEffect::Broadcast { msg } => {
                    let label = F::space_msg_label(&msg);
                    // A full re-inquiry wave marks one shard-starvation
                    // round; the counter is outside the digest, so it is
                    // always on (see `RunReport::reinquiry_rounds`).
                    if label == "INQUIRY_FULL" {
                        self.metrics.incr("join.reinquiry_rounds");
                    }
                    self.trace.record(
                        self.now,
                        TraceEvent::Send {
                            from: node,
                            to: None,
                            label,
                            deliver_at: None,
                        },
                    );
                    let obs_first = if self.obs.is_some() {
                        Some(self.network.next_seq())
                    } else {
                        None
                    };
                    let fan =
                        Rc::new(
                            self.network
                                .broadcast(&self.presence, self.now, node, label, msg),
                        );
                    if let Some(first) = obs_first {
                        // Every copy in the snapshot burned a sequence id,
                        // including the ones the fault layer swallowed —
                        // attribute the whole range so lost copies stay
                        // visible to `why_stuck`.
                        let count = self.network.next_seq() - first;
                        if let Some(obs) = self.obs.as_deref_mut() {
                            obs.note_send(first, count, label, self.now);
                        }
                    }
                    // The snapshot is an (id-ordered) subset of the slot
                    // roster — equal when no fault drops thinned it — so a
                    // single merge walk resolves every recipient's slot
                    // without hashing once per recipient.
                    debug_assert!(fan.recipients.len() <= self.present_slots.len());
                    let mut roster = self.present_slots.iter();
                    for (idx, &(to, deliver_at, _seq)) in fan.recipients.iter().enumerate() {
                        let slot = loop {
                            let &(rnode, slot) =
                                roster.next().expect("every fan recipient holds a slot");
                            if rnode == to {
                                break slot;
                            }
                        };
                        self.queue.schedule_class(
                            deliver_at,
                            CLASS_DELIVER,
                            Pending::Fan {
                                fan: Rc::clone(&fan),
                                idx: idx as u32,
                                slot,
                            },
                        );
                    }
                }
                SpaceEffect::SetTimer { delay, tag } => {
                    self.queue.schedule_class(
                        self.now + delay,
                        CLASS_TIMER,
                        Pending::Timer {
                            node,
                            slot: slot_idx,
                            tag,
                        },
                    );
                }
                SpaceEffect::JoinComplete => {
                    // Bootstrap members are active from construction and
                    // complete no join op. A space emits one JoinComplete
                    // when its last key activates; the join completes in
                    // every key's history at once.
                    let s = self.slots[slot_idx as usize]
                        .as_mut()
                        .expect("effects target a live slot");
                    if let Some(join_ops) = s.joining.take() {
                        s.active = true;
                        self.presence.activate(node, self.now);
                        self.histories.complete_join_all(&join_ops, self.now);
                        self.idle_insert(node);
                        if let Some(obs) = self.obs.as_deref_mut() {
                            obs.op_completed(RegisterId::ZERO, join_ops[0], self.now);
                        }
                        self.trace.record(self.now, TraceEvent::Activate { node });
                        self.trace.record(
                            self.now,
                            TraceEvent::Complete {
                                node,
                                op: join_ops[0],
                            },
                        );
                        self.metrics.incr("ops.join_completed");
                    }
                }
                SpaceEffect::OpComplete { key, op, outcome } => {
                    // Key-attributed completion counters and latency
                    // histograms (`ops.read_completed.rK`,
                    // `latency.read.rK`) alongside the space-wide ones.
                    let latency = self
                        .histories
                        .key(key)
                        .get(op)
                        .map(|rec| (self.now - rec.invoked_at).as_ticks());
                    match outcome {
                        OpOutcome::Read(value) => {
                            self.histories
                                .key_mut(key)
                                .complete_read(op, self.now, value);
                            self.metrics.incr("ops.read_completed");
                            self.metrics.incr_keyed("ops.read_completed", key.as_raw());
                            if let Some(latency) = latency {
                                self.metrics
                                    .sample_keyed("latency.read", key.as_raw(), latency);
                            }
                        }
                        OpOutcome::WriteOk => {
                            self.histories.key_mut(key).complete_write(op, self.now);
                            self.metrics.incr("ops.write_completed");
                            self.metrics.incr_keyed("ops.write_completed", key.as_raw());
                            if let Some(latency) = latency {
                                self.metrics
                                    .sample_keyed("latency.write", key.as_raw(), latency);
                            }
                        }
                    }
                    let s = self.slots[slot_idx as usize]
                        .as_mut()
                        .expect("effects target a live slot");
                    let freed = s.busy.remove(key);
                    if s.active && s.busy.is_empty() {
                        self.idle_insert(node);
                    }
                    if let Some(Busy::Write(started)) = freed {
                        debug_assert_eq!(started, op, "a key completes the op it runs");
                        let kw = &mut self.key_writes[key.as_raw() as usize];
                        debug_assert!(*kw > 0, "an in-flight write occupies its key slot");
                        *kw -= 1;
                        self.release_write_protection(node);
                    }
                    if let Some(obs) = self.obs.as_deref_mut() {
                        obs.op_completed(key, op, self.now);
                    }
                    self.trace
                        .record(self.now, TraceEvent::Complete { node, op });
                }
                SpaceEffect::Retransmit => {
                    // Digest-invisible marker: the re-broadcast itself is
                    // the preceding `Broadcast` effect; this arm only
                    // attributes it (always-on counter + obs phase event).
                    self.metrics.incr("join.retransmits");
                    let join_op = self.slots[slot_idx as usize]
                        .as_ref()
                        .and_then(|s| s.joining.as_ref())
                        .map(|ops| ops[0]);
                    if let (Some(op), Some(obs)) = (join_op, self.obs.as_deref_mut()) {
                        obs.op_retransmit(RegisterId::ZERO, op, self.now);
                    }
                }
                SpaceEffect::Note { key, text } => {
                    // Keyed spaces attribute notes to their register; the
                    // 1-key text stays exactly the legacy rendering.
                    let text = if self.keys > 1 && self.trace.is_enabled() {
                        format!("[{key}] {text}")
                    } else {
                        text
                    };
                    self.trace.record(self.now, TraceEvent::Note { node, text });
                }
            }
        }
    }

    fn sample_gauges(&mut self) {
        let active = self.presence.active_count() as u64;
        let present = self.presence.present_count() as u64;
        self.metrics.sample("gauge.active", active);
        self.metrics.sample("gauge.present", present);
        self.metrics.sample("gauge.joining", present - active);
    }

    /// Protects `node` from churn eviction.
    pub fn protect(&mut self, node: NodeId) {
        self.churn.protect(node);
    }

    /// Number of registers in this world's key space.
    pub fn key_count(&self) -> u32 {
        self.keys
    }

    /// The anchor key's recorded history (read-only) — *the* history of a
    /// single-register world. Keyed worlds expose every key via
    /// [`World::space_history`].
    pub fn history(&self) -> &History<Option<Val>> {
        self.histories.key(RegisterId::ZERO)
    }

    /// One key's recorded history (read-only).
    pub fn key_history(&self, key: RegisterId) -> &History<Option<Val>> {
        self.histories.key(key)
    }

    /// The full per-key history space (read-only).
    pub fn space_history(&self) -> &SpaceHistory<Option<Val>> {
        &self.histories
    }

    /// The presence table (read-only).
    pub fn presence(&self) -> &Presence {
        &self.presence
    }

    /// The network (read-only; message statistics).
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Run metrics (read-only). The hot-path delivery counter
    /// (`net.delivered`) is folded in when the world is decomposed via
    /// [`World::into_outputs`].
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The trace log (empty unless tracing was enabled).
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// Decomposes the world into its observable outputs
    /// `(history, presence, metrics, trace, network)` — the single-register
    /// view: the history is the anchor key's (other keys, if any, are
    /// dropped; keyed worlds decompose via
    /// [`World::into_space_outputs`]).
    pub fn into_outputs(self) -> (History<Option<Val>>, Presence, Metrics, TraceLog, Network) {
        let (space, presence, metrics, trace, network) = self.into_space_outputs();
        let history = space
            .into_histories()
            .into_iter()
            .next()
            .expect("a space has at least one key");
        (history, presence, metrics, trace, network)
    }

    /// Decomposes the world into its observable outputs with the full
    /// per-key history space.
    pub fn into_space_outputs(
        mut self,
    ) -> (
        SpaceHistory<Option<Val>>,
        Presence,
        Metrics,
        TraceLog,
        Network,
    ) {
        self.metrics.add("net.delivered", self.delivered_msgs);
        // Fault-induced losses are never silent: the total and the
        // per-rule attribution both land in the metrics (precedent:
        // `ops.skipped_busy`).
        let fault_drops = self.network.dropped_to_faults();
        if fault_drops > 0 {
            self.metrics.add("net.dropped.fault", fault_drops);
        }
        let by_rule: Vec<(&'static str, usize, u64)> = self.network.fault_drops_by_rule().collect();
        for (kind, rule, count) in by_rule {
            if count > 0 {
                let name = match kind {
                    "partition" => "net.dropped.fault.partition",
                    _ => "net.dropped.fault.drop",
                };
                self.metrics.add_keyed(name, rule as u32, count);
            }
        }
        (
            self.histories,
            self.presence,
            self.metrics,
            self.trace,
            self.network,
        )
    }
}

impl<F: SpaceFactory> std::fmt::Debug for World<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("now", &self.now)
            .field("nodes", &self.slot_of.len())
            .field("active", &self.presence.active_count())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factory::{EsFactory, SyncFactory};
    use crate::workload::RateWorkload;
    use dynareg_churn::{ConstantRate, LeaveSelector, NoChurn};
    use dynareg_core::es::EsConfig;
    use dynareg_core::sync::SyncConfig;
    use dynareg_net::delay::Synchronous;
    use dynareg_sim::IdSource;
    use dynareg_verify::{LivenessChecker, RegularityChecker};

    fn sync_world(n: usize, delta: u64, c: f64, seed: u64) -> World<SyncFactory> {
        let churn: Box<dyn dynareg_churn::ChurnModel> = if c == 0.0 {
            Box::new(NoChurn)
        } else {
            Box::new(ConstantRate::new(c))
        };
        let mut world = World::new(
            SyncFactory::new(SyncConfig::new(Span::ticks(delta))),
            WorldConfig {
                n,
                initial: 0,
                delay: Box::new(Synchronous::new(Span::ticks(delta))),
                churn: ChurnDriver::new(
                    churn,
                    LeaveSelector::Random,
                    IdSource::starting_at(n as u64),
                ),
                workload: Box::new(
                    RateWorkload::new(Span::ticks(3 * delta), 1.0).stopping_at(Time::at(180)),
                ),
                seed,
                trace: false,
                writer_policy: WriterPolicy::FixedProtected,
                writers: 1,
            },
        );
        world.protect(NodeId::from_raw(0)); // the writer
        world
    }

    #[test]
    fn static_sync_run_is_regular_and_live() {
        let mut w = sync_world(10, 3, 0.0, 1);
        w.run_until(Time::at(200));
        let report = RegularityChecker::check(w.history());
        assert!(report.is_ok(), "{report}");
        assert!(report.checked_reads > 50, "workload actually ran");
        let live = LivenessChecker::check(w.history());
        assert!(live.is_ok(), "{live}");
        assert_eq!(live.read_latency.max(), Some(0), "sync reads are local");
    }

    #[test]
    fn churning_sync_run_within_bound_is_regular() {
        // δ=3 → threshold 1/9; use c ≈ half of it.
        let mut w = sync_world(20, 3, 0.05, 2);
        w.run_until(Time::at(300));
        assert!(w.presence().total_arrivals() > 20, "churn actually ran");
        let report = RegularityChecker::check(w.history());
        assert!(report.is_ok(), "{report}");
    }

    #[test]
    fn population_stays_constant_under_churn() {
        let mut w = sync_world(20, 3, 0.05, 3);
        w.run_until(Time::at(200));
        assert_eq!(w.presence().present_count(), 20);
        let gauge = w.metrics().histogram("gauge.present").unwrap();
        assert_eq!(gauge.min(), Some(20));
        assert_eq!(gauge.max(), Some(20));
    }

    #[test]
    fn slab_reuses_slots_without_confusing_identities() {
        let mut w = sync_world(20, 3, 0.05, 7);
        w.run_until(Time::at(250));
        // Sustained churn forces slot recycling: the live-slot count stays
        // bounded by the population while arrivals keep growing.
        assert!(w.presence().total_arrivals() > 40, "slots were recycled");
        assert!(
            w.slots.len() <= 20 + w.presence().present_count(),
            "slab stays dense (len {})",
            w.slots.len()
        );
        assert_eq!(
            w.slot_of.len(),
            w.presence().present_count(),
            "interning map mirrors the present set"
        );
        // Every interned slot holds the node it claims to.
        // detlint: allow(unordered-iteration) -- test-only, order-insensitive per-entry assertion
        for (&node, &idx) in &w.slot_of {
            assert_eq!(w.slots[idx as usize].as_ref().unwrap().node, node);
        }
        assert!(RegularityChecker::check(w.history()).is_ok());
    }

    #[test]
    fn idle_active_roster_matches_presence() {
        let mut w = sync_world(15, 3, 0.05, 9);
        w.run_until(Time::at(120));
        // The incremental roster must equal "active and not busy", sorted.
        let mut expect: Vec<NodeId> = w
            .presence()
            .active_nodes()
            .into_iter()
            .filter(|id| {
                let idx = w.slot_of[id] as usize;
                w.slots[idx].as_ref().unwrap().busy.is_empty()
            })
            .collect();
        expect.sort_unstable();
        assert_eq!(w.idle_active, expect);
    }

    #[test]
    fn same_seed_reproduces_identical_history() {
        let run = |seed| {
            let mut w = sync_world(15, 3, 0.05, seed);
            w.run_until(Time::at(150));
            format!("{:?}", w.history().ops())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    fn es_world(n: usize, delta: u64, seed: u64) -> World<EsFactory> {
        let mut world = World::new(
            EsFactory::new(EsConfig::new(n)),
            WorldConfig {
                n,
                initial: 0,
                delay: Box::new(Synchronous::new(Span::ticks(delta))),
                churn: ChurnDriver::new(
                    Box::new(ConstantRate::new(0.002)),
                    LeaveSelector::Random,
                    IdSource::starting_at(n as u64),
                ),
                workload: Box::new(
                    RateWorkload::new(Span::ticks(6 * delta), 0.5).stopping_at(Time::at(350)),
                ),
                seed,
                trace: false,
                writer_policy: WriterPolicy::FixedProtected,
                writers: 1,
            },
        );
        world.protect(NodeId::from_raw(0));
        world
    }

    #[test]
    fn es_run_is_regular_and_reads_cost_a_round_trip() {
        let mut w = es_world(10, 3, 5);
        w.run_until(Time::at(400));
        let report = RegularityChecker::check(w.history());
        assert!(report.is_ok(), "{report}");
        let live = LivenessChecker::check(w.history());
        let min_read = live.read_latency.min().unwrap_or(0);
        assert!(
            min_read >= 1,
            "quorum reads cannot be local (min {min_read})"
        );
        assert!(report.checked_reads > 10);
    }

    #[test]
    fn trace_records_when_enabled() {
        let mut w = World::new(
            SyncFactory::new(SyncConfig::new(Span::ticks(2))),
            WorldConfig {
                n: 3,
                initial: 0,
                delay: Box::new(Synchronous::new(Span::ticks(2))),
                churn: ChurnDriver::new(
                    Box::new(NoChurn),
                    LeaveSelector::Random,
                    IdSource::starting_at(3),
                ),
                workload: Box::new(RateWorkload::new(Span::ticks(4), 1.0)),
                seed: 9,
                trace: true,
                writer_policy: WriterPolicy::FixedProtected,
                writers: 1,
            },
        );
        w.run_until(Time::at(30));
        assert!(!w.trace().is_empty());
        assert!(w.trace().render().contains("broadcast WRITE"));
    }

    #[test]
    fn invoke_on_busy_target_is_counted_skipped_busy() {
        let mut w = sync_world(5, 3, 0.0, 11);
        w.run_until(Time::at(2)); // before the first workload write (t=9)
        w.invoke(NodeId::from_raw(1), OpAction::Write(100));
        // Same (node, key) while the write is in flight (sync writes hold
        // the key for δ): busy, counted, not dropped.
        w.invoke(NodeId::from_raw(1), OpAction::Read);
        // Different node, same key: the key is at writer capacity (1).
        w.invoke(NodeId::from_raw(2), OpAction::Write(101));
        assert_eq!(w.metrics().counter("ops.skipped_busy"), 2);
        assert_eq!(
            w.metrics().counter("workload.skipped"),
            0,
            "busy skips are not conflated with absent/inactive skips"
        );
        w.run_until(Time::at(30));
        assert!(w.metrics().counter("ops.write_completed") >= 1);
    }

    #[test]
    fn departing_writer_frees_its_key_slot_and_shield() {
        use crate::workload::ScriptedWorkload;
        let leaver = NodeId::from_raw(1);
        let script = ScriptedWorkload::new()
            // In flight t=2..5; the leave at t=3 abandons it mid-write.
            .at(Time::at(2), leaver, OpAction::Write(100))
            // A later writer must find the key slot free again.
            .at(Time::at(10), NodeId::from_raw(2), OpAction::Write(101));
        let mut w = World::new(
            SyncFactory::new(SyncConfig::new(Span::ticks(3))),
            WorldConfig {
                n: 5,
                initial: 0,
                delay: Box::new(Synchronous::new(Span::ticks(3))),
                churn: ChurnDriver::new(
                    Box::new(NoChurn),
                    LeaveSelector::Random,
                    IdSource::starting_at(5),
                ),
                workload: Box::new(script),
                seed: 17,
                trace: false,
                writer_policy: WriterPolicy::FixedProtected,
                writers: 1,
            },
        );
        w.schedule_leave(Time::at(3), leaver);
        w.run_until(Time::at(40));
        // The abandoned write freed the key's writer slot and the
        // write-completion shield — the t=10 write went through.
        assert_eq!(w.key_writes[0], 0);
        assert!(!w.churn.protected().contains(&leaver));
        assert!(w.temp_write_protection.is_empty());
        assert_eq!(w.metrics().counter("ops.skipped_busy"), 0);
        assert_eq!(w.metrics().counter("ops.write_completed"), 1);
        let abandoned = w
            .history()
            .writes()
            .find(|rec| rec.node == leaver)
            .expect("the abandoned write was invoked");
        assert!(abandoned.completed_at.is_none());
    }

    #[test]
    fn churned_migrating_writers_never_wedge_key_occupancy() {
        // Unprotected migrating writers under sustained churn: every
        // departure path (random eviction and the scripted leave above)
        // must free per-key write slots, or writes stop for good.
        let mut w = World::new(
            SyncFactory::new(SyncConfig::new(Span::ticks(3))),
            WorldConfig {
                n: 20,
                initial: 0,
                delay: Box::new(Synchronous::new(Span::ticks(3))),
                churn: ChurnDriver::new(
                    Box::new(ConstantRate::new(0.03)),
                    LeaveSelector::Random,
                    IdSource::starting_at(20),
                ),
                workload: Box::new(
                    RateWorkload::new(Span::ticks(6), 0.5).stopping_at(Time::at(300)),
                ),
                seed: 23,
                trace: false,
                writer_policy: WriterPolicy::OldestActive,
                writers: 2,
            },
        );
        w.run_until(Time::at(400));
        assert!(w.presence().total_arrivals() > 40, "churn actually ran");
        let writes = w.metrics().counter("ops.write_completed");
        assert!(
            writes > 40,
            "writes keep flowing across evictions ({writes})"
        );
        assert!(
            w.key_writes.iter().all(|&c| c == 0),
            "no key slot stays occupied at quiescence: {:?}",
            w.key_writes
        );
        assert!(w.temp_write_protection.is_empty());
    }

    #[test]
    fn two_es_writers_race_one_key_and_stay_regular() {
        let mut w = World::new(
            EsFactory::new(EsConfig::new(10)),
            WorldConfig {
                n: 10,
                initial: 0,
                delay: Box::new(Synchronous::new(Span::ticks(3))),
                churn: ChurnDriver::new(
                    Box::new(NoChurn),
                    LeaveSelector::Random,
                    IdSource::starting_at(10),
                ),
                workload: Box::new(
                    RateWorkload::new(Span::ticks(6), 1.0).stopping_at(Time::at(300)),
                ),
                seed: 31,
                trace: false,
                writer_policy: WriterPolicy::FixedProtected,
                writers: 2,
            },
        );
        w.run_until(Time::at(360));
        let h = w.history();
        let writes: Vec<_> = h.writes().collect();
        let overlapping = writes.iter().enumerate().any(|(i, a)| {
            writes[i + 1..]
                .iter()
                .any(|b| a.node != b.node && a.overlaps(b))
        });
        assert!(overlapping, "both writers actually raced the key");
        let report = RegularityChecker::check(h);
        assert!(report.is_ok(), "{report}");
        assert!(report.checked_reads > 20);
    }

    #[test]
    fn delivered_counter_folds_into_outputs() {
        let mut w = sync_world(5, 3, 0.0, 13);
        w.run_until(Time::at(60));
        let events = w.events_processed();
        assert!(events > 60, "ticks plus messages were processed");
        let (_h, _p, metrics, _t, _n) = w.into_outputs();
        assert!(metrics.counter("net.delivered") > 0);
    }
}
