//! Protocol construction for the simulation world.

use dynareg_core::es::{EsConfig, EsMsg, EsRegister};
use dynareg_core::sync::{SyncConfig, SyncMsg, SyncRegister};
use dynareg_core::RegisterProcess;
use dynareg_sim::{NodeId, OpId};

/// How the [`crate::World`] spawns protocol instances.
///
/// A factory fixes the protocol, its configuration and the value type; the
/// world asks it for bootstrap members (initial population, already active)
/// and joiners (churn arrivals, entering via the join protocol).
pub trait ProtocolFactory {
    /// The protocol this factory builds.
    type Proc: RegisterProcess;

    /// A member of the initial population holding `initial`.
    fn bootstrap(
        &self,
        id: NodeId,
        initial: <Self::Proc as RegisterProcess>::Val,
    ) -> Self::Proc;

    /// A fresh arrival about to run `join` (identified as `join_op` in the
    /// history).
    fn joiner(&self, id: NodeId, join_op: OpId) -> Self::Proc;

    /// Short protocol name for reports.
    fn name(&self) -> &'static str;

    /// Trace/statistics label of a message.
    fn msg_label(msg: &<Self::Proc as RegisterProcess>::Msg) -> &'static str;
}

/// Factory for the synchronous protocol (Figures 1–2).
#[derive(Debug, Clone, Copy)]
pub struct SyncFactory {
    /// Protocol configuration (δ and the Figure 3 ablation flag).
    pub config: SyncConfig,
}

impl SyncFactory {
    /// A factory for the given configuration.
    pub fn new(config: SyncConfig) -> SyncFactory {
        SyncFactory { config }
    }
}

impl ProtocolFactory for SyncFactory {
    type Proc = SyncRegister<u64>;

    fn bootstrap(&self, id: NodeId, initial: u64) -> SyncRegister<u64> {
        SyncRegister::new_bootstrap(id, self.config, initial)
    }

    fn joiner(&self, id: NodeId, join_op: OpId) -> SyncRegister<u64> {
        SyncRegister::new_joiner(id, self.config, join_op)
    }

    fn name(&self) -> &'static str {
        if self.config.skip_join_wait {
            "sync-nowait"
        } else {
            "sync"
        }
    }

    fn msg_label(msg: &SyncMsg<u64>) -> &'static str {
        msg.label()
    }
}

/// Factory for the eventually synchronous protocol (Figures 4–6).
#[derive(Debug, Clone, Copy)]
pub struct EsFactory {
    /// Protocol configuration (`n`, atomic write-back flag).
    pub config: EsConfig,
}

impl EsFactory {
    /// A factory for the given configuration.
    pub fn new(config: EsConfig) -> EsFactory {
        EsFactory { config }
    }
}

impl ProtocolFactory for EsFactory {
    type Proc = EsRegister<u64>;

    fn bootstrap(&self, id: NodeId, initial: u64) -> EsRegister<u64> {
        EsRegister::new_bootstrap(id, self.config, initial)
    }

    fn joiner(&self, id: NodeId, join_op: OpId) -> EsRegister<u64> {
        EsRegister::new_joiner(id, self.config, join_op)
    }

    fn name(&self) -> &'static str {
        if self.config.read_write_back {
            "es-atomic"
        } else {
            "es"
        }
    }

    fn msg_label(msg: &EsMsg<u64>) -> &'static str {
        msg.label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynareg_sim::Span;

    #[test]
    fn sync_factory_builds_correct_modes() {
        let f = SyncFactory::new(SyncConfig::new(Span::ticks(3)));
        assert_eq!(f.name(), "sync");
        let b = f.bootstrap(NodeId::from_raw(0), 5);
        assert!(b.is_active());
        assert_eq!(b.local_value(), Some(&5));
        let j = f.joiner(NodeId::from_raw(1), OpId::from_raw(0));
        assert!(!j.is_active());
        let f2 = SyncFactory::new(SyncConfig::without_join_wait(Span::ticks(3)));
        assert_eq!(f2.name(), "sync-nowait");
    }

    #[test]
    fn es_factory_builds_correct_modes() {
        let f = EsFactory::new(EsConfig::new(5));
        assert_eq!(f.name(), "es");
        assert!(f.bootstrap(NodeId::from_raw(0), 5).is_active());
        let f2 = EsFactory::new(EsConfig::atomic(5));
        assert_eq!(f2.name(), "es-atomic");
    }

    #[test]
    fn labels_flow_through() {
        assert_eq!(SyncFactory::msg_label(&SyncMsg::Inquiry), "INQUIRY");
        assert_eq!(EsFactory::msg_label(&EsMsg::Inquiry { r_sn: 0 }), "INQUIRY");
    }
}
