//! Protocol construction for the simulation world.
//!
//! Two layers:
//!
//! * [`ProtocolFactory`] — builds single-register protocol instances
//!   ([`SyncFactory`], [`EsFactory`]); unchanged from the paper's shape.
//! * [`SpaceFactory`] — builds the [`RegisterSpaceProcess`]es the world
//!   actually drives. Every [`ProtocolFactory`] *is* a 1-key
//!   [`SpaceFactory`] (the blanket impl wraps instances in the transparent
//!   [`SoloSpace`] adapter — the pre-redesign wire format), and
//!   [`SpaceOf`] lifts one to a `k`-key [`RegisterSpace`] multiplexer.

use dynareg_core::es::{EsConfig, EsMsg, EsRegister};
use dynareg_core::space::{
    RegisterSpace, RegisterSpaceProcess, RetransmitConfig, ShardConfig, SoloSpace, SpaceMsg,
};
use dynareg_core::sync::{SyncConfig, SyncMsg, SyncRegister};
use dynareg_core::RegisterProcess;
use dynareg_sim::{NodeId, OpId};

/// How the [`crate::World`] spawns protocol instances.
///
/// A factory fixes the protocol, its configuration and the value type; the
/// world asks it for bootstrap members (initial population, already active)
/// and joiners (churn arrivals, entering via the join protocol).
pub trait ProtocolFactory {
    /// The protocol this factory builds.
    type Proc: RegisterProcess;

    /// A member of the initial population holding `initial`.
    fn bootstrap(&self, id: NodeId, initial: <Self::Proc as RegisterProcess>::Val) -> Self::Proc;

    /// A fresh arrival about to run `join` (identified as `join_op` in the
    /// history).
    fn joiner(&self, id: NodeId, join_op: OpId) -> Self::Proc;

    /// Short protocol name for reports.
    fn name(&self) -> &'static str;

    /// Trace/statistics label of a message.
    fn msg_label(msg: &<Self::Proc as RegisterProcess>::Msg) -> &'static str;

    /// Loss-tolerant join retransmission policy the space layer wraps
    /// around built joiners (`None`, the default, disables it — the
    /// paper's reliable-channel behavior).
    fn retransmit(&self) -> Option<RetransmitConfig> {
        None
    }
}

/// How the [`crate::World`] spawns **register-space** instances — the
/// runtime-facing generalization of [`ProtocolFactory`].
///
/// Method names carry a `space_` prefix so the blanket impl below (every
/// protocol factory is a 1-key space factory) never shadows the protocol
/// factory's own `bootstrap`/`joiner`/`name` at call sites.
pub trait SpaceFactory {
    /// The space this factory builds.
    type Proc: RegisterSpaceProcess;

    /// Number of keys every built space owns.
    fn key_count(&self) -> u32;

    /// A member of the initial population, every key holding `initial`.
    fn space_bootstrap(
        &self,
        id: NodeId,
        initial: <Self::Proc as RegisterSpaceProcess>::Val,
    ) -> Self::Proc;

    /// A fresh arrival about to run the (shared) join.
    fn space_joiner(&self, id: NodeId, join_op: OpId) -> Self::Proc;

    /// Short protocol name for reports.
    fn space_name(&self) -> &'static str;

    /// Trace/statistics label of a wire message.
    fn space_msg_label(msg: &<Self::Proc as RegisterSpaceProcess>::Msg) -> &'static str;
}

/// Every protocol factory is a 1-key space factory: instances are wrapped
/// in the transparent [`SoloSpace`] adapter, so the wire format (raw
/// protocol messages, no key tags) and the event stream are byte-identical
/// to driving the protocol directly — this *is* the pre-redesign path.
impl<F: ProtocolFactory> SpaceFactory for F {
    type Proc = SoloSpace<F::Proc>;

    fn key_count(&self) -> u32 {
        1
    }

    fn space_bootstrap(
        &self,
        id: NodeId,
        initial: <F::Proc as RegisterProcess>::Val,
    ) -> SoloSpace<F::Proc> {
        SoloSpace::new(self.bootstrap(id, initial))
    }

    fn space_joiner(&self, id: NodeId, join_op: OpId) -> SoloSpace<F::Proc> {
        SoloSpace::new(self.joiner(id, join_op)).with_retransmit(self.retransmit())
    }

    fn space_name(&self) -> &'static str {
        self.name()
    }

    fn space_msg_label(msg: &<F::Proc as RegisterProcess>::Msg) -> &'static str {
        F::msg_label(msg)
    }
}

/// Lifts a protocol factory to a `keys`-key [`RegisterSpace`] factory: one
/// protocol instance per key per process, multiplexed behind the shared
/// join handshake, `SpaceMsg`-tagged wire traffic.
#[derive(Debug, Clone, Copy)]
pub struct SpaceOf<F> {
    inner: F,
    keys: u32,
    shard: ShardConfig,
}

impl<F> SpaceOf<F> {
    /// A `keys`-key space over `inner`'s protocol, with the legacy
    /// full-reply join handshake.
    ///
    /// # Panics
    /// Panics if `keys` is zero.
    pub fn new(inner: F, keys: u32) -> SpaceOf<F> {
        assert!(keys > 0, "a register space needs at least one key");
        SpaceOf {
            inner,
            keys,
            shard: ShardConfig::legacy(),
        }
    }

    /// Shards join replies over `config.groups` responder groups
    /// (`G = 1` keeps the legacy full-reply handshake; see
    /// [`dynareg_core::space`]).
    pub fn with_shards(mut self, config: ShardConfig) -> SpaceOf<F> {
        self.shard = config;
        self
    }

    /// The configured shard layout (groups are clamped to the key count
    /// when each space is built).
    pub fn shard_config(&self) -> ShardConfig {
        self.shard
    }
}

impl<F: ProtocolFactory> SpaceFactory for SpaceOf<F> {
    type Proc = RegisterSpace<F::Proc>;

    fn key_count(&self) -> u32 {
        self.keys
    }

    fn space_bootstrap(
        &self,
        id: NodeId,
        initial: <F::Proc as RegisterProcess>::Val,
    ) -> RegisterSpace<F::Proc> {
        RegisterSpace::new_bootstrap(
            (0..self.keys)
                .map(|_| self.inner.bootstrap(id, initial.clone()))
                .collect(),
        )
        .with_shards(self.shard)
    }

    fn space_joiner(&self, id: NodeId, join_op: OpId) -> RegisterSpace<F::Proc> {
        RegisterSpace::new_joiner(
            (0..self.keys)
                .map(|_| self.inner.joiner(id, join_op))
                .collect(),
        )
        .with_shards(self.shard)
        .with_retransmit(self.inner.retransmit())
    }

    fn space_name(&self) -> &'static str {
        self.inner.name()
    }

    fn space_msg_label(msg: &SpaceMsg<<F::Proc as RegisterProcess>::Msg>) -> &'static str {
        match msg {
            // A full re-inquiry is the sharded handshake's starvation
            // fallback — only ever sent when `G > 1`, so the distinct
            // label cannot perturb a legacy run's label streams. A high
            // INQUIRY_FULL count is the operational signal that shard
            // quorums keep starving (e.g. `G` too large for `n`) and
            // joins are degrading to the legacy full-state transfer.
            SpaceMsg::JoinAll { full: true, .. } => "INQUIRY_FULL",
            SpaceMsg::Keyed { inner, .. } | SpaceMsg::JoinAll { inner, .. } => F::msg_label(inner),
            SpaceMsg::Batch { .. } => "BATCH",
        }
    }
}

/// Factory for the synchronous protocol (Figures 1–2).
#[derive(Debug, Clone, Copy)]
pub struct SyncFactory {
    /// Protocol configuration (δ and the Figure 3 ablation flag).
    pub config: SyncConfig,
    retransmit: Option<RetransmitConfig>,
}

impl SyncFactory {
    /// A factory for the given configuration (retransmission off).
    pub fn new(config: SyncConfig) -> SyncFactory {
        SyncFactory {
            config,
            retransmit: None,
        }
    }

    /// Wraps built joiners in the space layer's loss-tolerant join
    /// retransmission (see [`RetransmitConfig`]).
    pub fn with_retransmit(mut self, config: Option<RetransmitConfig>) -> SyncFactory {
        self.retransmit = config;
        self
    }
}

impl ProtocolFactory for SyncFactory {
    type Proc = SyncRegister<u64>;

    fn bootstrap(&self, id: NodeId, initial: u64) -> SyncRegister<u64> {
        SyncRegister::new_bootstrap(id, self.config, initial)
    }

    fn joiner(&self, id: NodeId, join_op: OpId) -> SyncRegister<u64> {
        SyncRegister::new_joiner(id, self.config, join_op)
    }

    fn name(&self) -> &'static str {
        if self.config.skip_join_wait {
            "sync-nowait"
        } else {
            "sync"
        }
    }

    fn msg_label(msg: &SyncMsg<u64>) -> &'static str {
        msg.label()
    }

    fn retransmit(&self) -> Option<RetransmitConfig> {
        self.retransmit
    }
}

/// Factory for the eventually synchronous protocol (Figures 4–6).
#[derive(Debug, Clone, Copy)]
pub struct EsFactory {
    /// Protocol configuration (`n`, atomic write-back flag).
    pub config: EsConfig,
    retransmit: Option<RetransmitConfig>,
}

impl EsFactory {
    /// A factory for the given configuration (retransmission off).
    pub fn new(config: EsConfig) -> EsFactory {
        EsFactory {
            config,
            retransmit: None,
        }
    }

    /// Wraps built joiners in the space layer's loss-tolerant join
    /// retransmission (see [`RetransmitConfig`]).
    pub fn with_retransmit(mut self, config: Option<RetransmitConfig>) -> EsFactory {
        self.retransmit = config;
        self
    }
}

impl ProtocolFactory for EsFactory {
    type Proc = EsRegister<u64>;

    fn bootstrap(&self, id: NodeId, initial: u64) -> EsRegister<u64> {
        EsRegister::new_bootstrap(id, self.config, initial)
    }

    fn joiner(&self, id: NodeId, join_op: OpId) -> EsRegister<u64> {
        EsRegister::new_joiner(id, self.config, join_op)
    }

    fn name(&self) -> &'static str {
        if self.config.read_write_back {
            "es-atomic"
        } else {
            "es"
        }
    }

    fn msg_label(msg: &EsMsg<u64>) -> &'static str {
        msg.label()
    }

    fn retransmit(&self) -> Option<RetransmitConfig> {
        self.retransmit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynareg_sim::Span;

    #[test]
    fn sync_factory_builds_correct_modes() {
        let f = SyncFactory::new(SyncConfig::new(Span::ticks(3)));
        assert_eq!(f.name(), "sync");
        let b = f.bootstrap(NodeId::from_raw(0), 5);
        assert!(b.is_active());
        assert_eq!(b.local_value(), Some(&5));
        let j = f.joiner(NodeId::from_raw(1), OpId::from_raw(0));
        assert!(!j.is_active());
        let f2 = SyncFactory::new(SyncConfig::without_join_wait(Span::ticks(3)));
        assert_eq!(f2.name(), "sync-nowait");
    }

    #[test]
    fn es_factory_builds_correct_modes() {
        let f = EsFactory::new(EsConfig::new(5));
        assert_eq!(f.name(), "es");
        assert!(f.bootstrap(NodeId::from_raw(0), 5).is_active());
        let f2 = EsFactory::new(EsConfig::atomic(5));
        assert_eq!(f2.name(), "es-atomic");
    }

    #[test]
    fn labels_flow_through() {
        assert_eq!(SyncFactory::msg_label(&SyncMsg::Inquiry), "INQUIRY");
        assert_eq!(EsFactory::msg_label(&EsMsg::Inquiry { r_sn: 0 }), "INQUIRY");
    }

    #[test]
    fn every_protocol_factory_is_a_one_key_space_factory() {
        let f = SyncFactory::new(SyncConfig::new(Span::ticks(3)));
        assert_eq!(SpaceFactory::key_count(&f), 1);
        assert_eq!(f.space_name(), "sync");
        let b = f.space_bootstrap(NodeId::from_raw(0), 5);
        assert!(b.is_active());
        assert_eq!(b.inner().local_value(), Some(&5));
        // Solo wire labels are the raw protocol labels.
        assert_eq!(
            <SyncFactory as SpaceFactory>::space_msg_label(&SyncMsg::Inquiry),
            "INQUIRY"
        );
    }

    #[test]
    fn space_of_threads_the_shard_config_into_built_spaces() {
        use dynareg_core::space::shard_of_node;
        let f = SpaceOf::new(SyncFactory::new(SyncConfig::new(Span::ticks(3))), 8)
            .with_shards(ShardConfig::new(4).with_quorum(2));
        assert_eq!(f.shard_config().groups, 4);
        let b = f.space_bootstrap(NodeId::from_raw(7), 0);
        assert_eq!(b.shard_config().groups, 4);
        assert_eq!(b.shard_config().quorum, 2);
        assert_eq!(b.responder_shard(), shard_of_node(NodeId::from_raw(7), 4));
        // Groups clamp to the key count at build time.
        let narrow = SpaceOf::new(SyncFactory::new(SyncConfig::new(Span::ticks(3))), 2)
            .with_shards(ShardConfig::new(16));
        assert_eq!(
            narrow
                .space_bootstrap(NodeId::from_raw(0), 0)
                .shard_config()
                .groups,
            2
        );
        // The default is the legacy handshake.
        let legacy = SpaceOf::new(SyncFactory::new(SyncConfig::new(Span::ticks(3))), 2);
        assert_eq!(legacy.shard_config(), ShardConfig::legacy());
    }

    #[test]
    fn space_of_builds_one_instance_per_key() {
        use dynareg_sim::RegisterId;
        let f = SpaceOf::new(SyncFactory::new(SyncConfig::new(Span::ticks(3))), 4);
        assert_eq!(f.key_count(), 4);
        assert_eq!(f.space_name(), "sync");
        let b = f.space_bootstrap(NodeId::from_raw(0), 9);
        assert_eq!(b.key_count(), 4);
        assert!(b.is_active());
        assert_eq!(b.register(RegisterId::from_raw(3)).local_value(), Some(&9));
        let j = f.space_joiner(NodeId::from_raw(7), OpId::from_raw(1));
        assert!(!j.is_active());
        // Space wire labels delegate to the inner protocol; batches are
        // their own label.
        assert_eq!(
            <SpaceOf<SyncFactory> as SpaceFactory>::space_msg_label(&SpaceMsg::JoinAll {
                inner: SyncMsg::<u64>::Inquiry,
                full: false
            }),
            "INQUIRY"
        );
        assert_eq!(
            <SpaceOf<SyncFactory> as SpaceFactory>::space_msg_label(&SpaceMsg::Batch {
                replies: vec![]
            }),
            "BATCH"
        );
    }
}
