//! Multi-seed experiment aggregation.
//!
//! Every experiment in `EXPERIMENTS.md` is a parameter sweep where each
//! cell aggregates several seeded runs. [`run_seeds`] executes the runs
//! (in parallel across OS threads — each run is single-threaded and
//! deterministic, so parallelism cannot perturb results) and [`Aggregate`]
//! summarizes the verdicts.

use std::thread;

use crate::scenario::RunReport;

/// Cross-seed summary of a batch of runs with identical parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Aggregate {
    /// Number of runs.
    pub runs: usize,
    /// Runs with at least one safety (regularity) violation.
    pub unsafe_runs: usize,
    /// Total safety violations across runs.
    pub safety_violations: usize,
    /// Total reads checked across runs.
    pub reads_checked: usize,
    /// Total new/old inversions across runs.
    pub inversions: usize,
    /// Runs with at least one stuck operation (liveness violation).
    pub stuck_runs: usize,
    /// Total stuck operations across runs.
    pub stuck_ops: usize,
    /// Mean read latency (ticks) over all completed reads of all runs.
    pub mean_read_latency: f64,
    /// Mean write latency (ticks).
    pub mean_write_latency: f64,
    /// Mean join latency (ticks).
    pub mean_join_latency: f64,
    /// Mean messages sent per run.
    pub mean_messages: f64,
}

impl Aggregate {
    /// Builds the summary from individual reports.
    pub fn from_reports(reports: &[RunReport]) -> Aggregate {
        let runs = reports.len();
        let mut agg = Aggregate {
            runs,
            unsafe_runs: 0,
            safety_violations: 0,
            reads_checked: 0,
            inversions: 0,
            stuck_runs: 0,
            stuck_ops: 0,
            mean_read_latency: 0.0,
            mean_write_latency: 0.0,
            mean_join_latency: 0.0,
            mean_messages: 0.0,
        };
        let (mut read_sum, mut read_n) = (0.0, 0u64);
        let (mut write_sum, mut write_n) = (0.0, 0u64);
        let (mut join_sum, mut join_n) = (0.0, 0u64);
        let mut msg_sum = 0.0;
        for r in reports {
            if !r.safety.is_ok() {
                agg.unsafe_runs += 1;
            }
            agg.safety_violations += r.safety.violation_count();
            agg.reads_checked += r.safety.checked_reads;
            agg.inversions += r.inversions();
            if !r.liveness.is_ok() {
                agg.stuck_runs += 1;
            }
            agg.stuck_ops += r.liveness.incomplete_stayer_count();
            if let Some(m) = r.liveness.read_latency.mean() {
                read_sum += m * r.liveness.read_latency.count() as f64;
                read_n += r.liveness.read_latency.count();
            }
            if let Some(m) = r.liveness.write_latency.mean() {
                write_sum += m * r.liveness.write_latency.count() as f64;
                write_n += r.liveness.write_latency.count();
            }
            if let Some(m) = r.liveness.join_latency.mean() {
                join_sum += m * r.liveness.join_latency.count() as f64;
                join_n += r.liveness.join_latency.count();
            }
            msg_sum += r.total_messages as f64;
        }
        agg.mean_read_latency = if read_n > 0 {
            read_sum / read_n as f64
        } else {
            0.0
        };
        agg.mean_write_latency = if write_n > 0 {
            write_sum / write_n as f64
        } else {
            0.0
        };
        agg.mean_join_latency = if join_n > 0 {
            join_sum / join_n as f64
        } else {
            0.0
        };
        agg.mean_messages = if runs > 0 { msg_sum / runs as f64 } else { 0.0 };
        agg
    }

    /// Fraction of runs with a safety violation.
    pub fn unsafe_fraction(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.unsafe_runs as f64 / self.runs as f64
        }
    }

    /// Fraction of runs with a liveness violation.
    pub fn stuck_fraction(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.stuck_runs as f64 / self.runs as f64
        }
    }
}

/// Runs `make_run(seed)` for each seed, in parallel across threads, and
/// returns the reports in seed order.
///
/// The closure builds and runs a scenario; since every run is internally
/// deterministic, thread scheduling cannot change any result.
pub fn run_seeds<F>(seeds: std::ops::Range<u64>, make_run: F) -> Vec<RunReport>
where
    F: Fn(u64) -> RunReport + Send + Sync,
{
    thread::scope(|scope| {
        let handles: Vec<_> = seeds
            .clone()
            .map(|seed| {
                let make_run = &make_run;
                scope.spawn(move || make_run(seed))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("run panicked"))
            .collect()
    })
}

/// Convenience: run seeds and aggregate in one call.
pub fn aggregate_seeds<F>(seeds: std::ops::Range<u64>, make_run: F) -> Aggregate
where
    F: Fn(u64) -> RunReport + Send + Sync,
{
    Aggregate::from_reports(&run_seeds(seeds, make_run))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use dynareg_sim::Span;

    fn quick(seed: u64) -> RunReport {
        Scenario::synchronous(8, Span::ticks(2))
            .duration(Span::ticks(80))
            .seed(seed)
            .run()
    }

    #[test]
    fn run_seeds_is_ordered_and_deterministic() {
        let a = run_seeds(0..4, quick);
        let b = run_seeds(0..4, quick);
        assert_eq!(a.len(), 4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.total_messages, y.total_messages);
            assert_eq!(x.reads_checked(), y.reads_checked());
        }
        assert_eq!(a[2].seed, 2);
    }

    #[test]
    fn aggregate_counts_clean_runs() {
        let agg = aggregate_seeds(0..3, quick);
        assert_eq!(agg.runs, 3);
        assert_eq!(agg.unsafe_runs, 0);
        assert_eq!(agg.stuck_runs, 0);
        assert!(agg.reads_checked > 0);
        assert_eq!(agg.unsafe_fraction(), 0.0);
        assert_eq!(agg.mean_read_latency, 0.0, "sync reads are local");
        assert!(agg.mean_messages > 0.0);
    }

    #[test]
    fn empty_aggregate_is_well_defined() {
        let agg = Aggregate::from_reports(&[]);
        assert_eq!(agg.runs, 0);
        assert_eq!(agg.unsafe_fraction(), 0.0);
        assert_eq!(agg.stuck_fraction(), 0.0);
    }
}
