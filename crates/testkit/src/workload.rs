//! Client operation generators.
//!
//! The world asks the workload once per time unit which operations to
//! invoke. Workloads see only *eligible* processes (active, no operation in
//! flight) so they cannot violate the per-process sequentiality the paper
//! assumes.

use dynareg_sim::{DetRng, NodeId, Span, Time};

/// A client operation request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpAction {
    /// Invoke a read.
    Read,
    /// Invoke a write of the given value.
    Write(u64),
}

/// Per-time-unit operation source.
pub trait Workload: std::fmt::Debug {
    /// Operations to invoke at `now`. `idle_actives` are the processes that
    /// may legally accept an invocation (active, idle), in id order;
    /// `arrivals` lists every churn arrival so far in join order (for
    /// scripted targets); `writer_idle` tells whether the designated writer
    /// (`writer`) can accept a write and no other write is in flight.
    fn tick(
        &mut self,
        now: Time,
        idle_actives: &[NodeId],
        arrivals: &[NodeId],
        writer: NodeId,
        writer_idle: bool,
        rng: &mut DetRng,
    ) -> Vec<(NodeId, OpAction)>;

    /// Instant after which the workload stops issuing operations (drain
    /// window); `Time::MAX` if unbounded.
    fn stop_at(&self) -> Time {
        Time::MAX
    }
}

/// Steady stochastic load: the designated writer writes a fresh value every
/// `write_every` ticks; an average of `reads_per_tick` reads (Poisson) land
/// on uniformly random idle active processes.
///
/// Values are drawn from a monotone counter starting at 1, so every write
/// is unique (as the history requires).
#[derive(Debug, Clone)]
pub struct RateWorkload {
    write_every: Span,
    reads_per_tick: f64,
    next_value: u64,
    stop_at: Time,
}

impl RateWorkload {
    /// A workload writing every `write_every` and issuing `reads_per_tick`
    /// expected reads per tick.
    ///
    /// # Panics
    /// Panics if `write_every` is zero or `reads_per_tick` is negative.
    pub fn new(write_every: Span, reads_per_tick: f64) -> RateWorkload {
        assert!(!write_every.is_zero(), "write period must be positive");
        assert!(reads_per_tick >= 0.0, "read rate must be non-negative");
        RateWorkload {
            write_every,
            reads_per_tick,
            next_value: 1,
            stop_at: Time::MAX,
        }
    }

    /// Stops issuing operations at `t` (the scenario's drain start).
    pub fn stopping_at(mut self, t: Time) -> RateWorkload {
        self.stop_at = t;
        self
    }
}

/// Draws `count` distinct elements of `pool` uniformly, in draw order.
///
/// Dense requests (`count` a sizable fraction of the pool) use a partial
/// Fisher–Yates over a copy; sparse ones use rejection sampling, which
/// touches O(count²) ≪ O(|pool|) memory. Deterministic given `rng`.
fn sample_distinct(pool: &[NodeId], count: usize, rng: &mut DetRng) -> Vec<NodeId> {
    debug_assert!(count <= pool.len());
    if count == 0 {
        return Vec::new();
    }
    if count * 4 >= pool.len() {
        let mut copy: Vec<NodeId> = pool.to_vec();
        for k in 0..count {
            let j = k + rng.pick_index(copy.len() - k);
            copy.swap(k, j);
        }
        copy.truncate(count);
        copy
    } else {
        let mut picked_idx: Vec<usize> = Vec::with_capacity(count);
        let mut picked: Vec<NodeId> = Vec::with_capacity(count);
        while picked.len() < count {
            let j = rng.pick_index(pool.len());
            if !picked_idx.contains(&j) {
                picked_idx.push(j);
                picked.push(pool[j]);
            }
        }
        picked
    }
}

impl Workload for RateWorkload {
    fn tick(
        &mut self,
        now: Time,
        idle_actives: &[NodeId],
        _arrivals: &[NodeId],
        writer: NodeId,
        writer_idle: bool,
        rng: &mut DetRng,
    ) -> Vec<(NodeId, OpAction)> {
        if now >= self.stop_at {
            return Vec::new();
        }
        let mut ops = Vec::new();
        // Writer fires on its period (tick 0 excluded: the initial value
        // stands in for "write 0").
        if writer_idle
            && now.ticks() > 0
            && now.ticks().is_multiple_of(self.write_every.as_ticks())
        {
            ops.push((writer, OpAction::Write(self.next_value)));
            self.next_value += 1;
        }
        // Readers: Poisson number of reads over distinct idle actives.
        // Sampling is O(count), not O(population): a full Fisher–Yates
        // shuffle of a 5000-process roster to pick ~10 readers dominated
        // the per-tick cost at scale.
        if !idle_actives.is_empty() && self.reads_per_tick > 0.0 {
            let count = (rng.poisson(self.reads_per_tick) as usize).min(idle_actives.len());
            for node in sample_distinct(idle_actives, count, rng) {
                if node != writer || !ops.iter().any(|(n, _)| *n == node) {
                    ops.push((node, OpAction::Read));
                }
            }
        }
        ops
    }

    fn stop_at(&self) -> Time {
        self.stop_at
    }
}

/// A fully scripted operation timeline, for figure-exact reproductions
/// (e.g. Figure 3's write-concurrent-with-join schedule).
///
/// Targets may be absolute node ids or "the k-th churn arrival", resolved
/// by the world at run time.
#[derive(Debug, Clone, Default)]
pub struct ScriptedWorkload {
    script: Vec<(Time, ScriptTarget, OpAction)>,
}

/// Whom a scripted operation addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScriptTarget {
    /// A concrete process id (useful for bootstrap members `0..n`).
    Node(NodeId),
    /// The `k`-th process that joined through churn (0-based), letting
    /// scripts address churn arrivals without knowing their fresh ids.
    Arrival(usize),
}

impl ScriptedWorkload {
    /// An empty script.
    pub fn new() -> ScriptedWorkload {
        ScriptedWorkload::default()
    }

    /// Schedules `action` on `node` at `t`.
    pub fn at(mut self, t: Time, node: NodeId, action: OpAction) -> ScriptedWorkload {
        self.script.push((t, ScriptTarget::Node(node), action));
        self
    }

    /// Schedules `action` on the `k`-th churn arrival at `t`.
    pub fn at_arrival(mut self, t: Time, k: usize, action: OpAction) -> ScriptedWorkload {
        self.script.push((t, ScriptTarget::Arrival(k), action));
        self
    }

    /// Fires entries due at `now`, resolving targets with `resolve`
    /// (entries whose instant has passed unresolved are dropped).
    fn take_due(
        &mut self,
        now: Time,
        resolve: impl Fn(ScriptTarget) -> Option<NodeId>,
    ) -> Vec<(NodeId, OpAction)> {
        let mut due = Vec::new();
        self.script.retain(|(t, target, action)| {
            if *t == now {
                if let Some(node) = resolve(*target) {
                    due.push((node, action.clone()));
                }
                false
            } else {
                *t > now // drop missed entries too
            }
        });
        due
    }
}

impl Workload for ScriptedWorkload {
    fn tick(
        &mut self,
        now: Time,
        _idle_actives: &[NodeId],
        arrivals: &[NodeId],
        _writer: NodeId,
        _writer_idle: bool,
        _rng: &mut DetRng,
    ) -> Vec<(NodeId, OpAction)> {
        self.take_due(now, |t| match t {
            ScriptTarget::Node(id) => Some(id),
            ScriptTarget::Arrival(k) => arrivals.get(k).copied(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u64) -> NodeId {
        NodeId::from_raw(i)
    }

    #[test]
    fn rate_workload_writes_on_period_with_unique_values() {
        let mut w = RateWorkload::new(Span::ticks(5), 0.0);
        let mut rng = DetRng::seed(1);
        let idle = vec![n(0), n(1)];
        let mut values = Vec::new();
        for t in 0..20 {
            for (node, op) in w.tick(Time::at(t), &idle, &[], n(0), true, &mut rng) {
                assert_eq!(node, n(0));
                if let OpAction::Write(v) = op {
                    values.push(v);
                }
            }
        }
        assert_eq!(values, vec![1, 2, 3]); // t = 5, 10, 15
    }

    #[test]
    fn rate_workload_respects_writer_busy() {
        let mut w = RateWorkload::new(Span::ticks(5), 0.0);
        let mut rng = DetRng::seed(1);
        assert!(w.tick(Time::at(5), &[], &[], n(0), false, &mut rng).is_empty());
        // The skipped value is not burned: next write uses value 1.
        let ops = w.tick(Time::at(10), &[], &[], n(0), true, &mut rng);
        assert_eq!(ops, vec![(n(0), OpAction::Write(1))]);
    }

    #[test]
    fn rate_workload_read_count_tracks_rate() {
        let mut w = RateWorkload::new(Span::ticks(1000), 2.0);
        let mut rng = DetRng::seed(2);
        let idle: Vec<NodeId> = (0..50).map(n).collect();
        let total: usize = (1..500)
            .map(|t| w.tick(Time::at(t), &idle, &[], n(0), false, &mut rng).len())
            .sum();
        let mean = total as f64 / 499.0;
        assert!((mean - 2.0).abs() < 0.3, "mean reads/tick = {mean}");
    }

    #[test]
    fn rate_workload_stops_at_drain() {
        let mut w = RateWorkload::new(Span::ticks(2), 5.0).stopping_at(Time::at(10));
        let mut rng = DetRng::seed(3);
        let idle = vec![n(1)];
        assert!(!w.tick(Time::at(8), &idle, &[], n(0), true, &mut rng).is_empty());
        assert!(w.tick(Time::at(10), &idle, &[], n(0), true, &mut rng).is_empty());
        assert!(w.tick(Time::at(12), &idle, &[], n(0), true, &mut rng).is_empty());
    }

    #[test]
    fn scripted_workload_fires_exactly_once() {
        let mut w = ScriptedWorkload::new()
            .at(Time::at(3), n(1), OpAction::Read)
            .at(Time::at(3), n(2), OpAction::Write(9));
        let mut rng = DetRng::seed(4);
        assert!(w.tick(Time::at(2), &[], &[], n(0), true, &mut rng).is_empty());
        let due = w.tick(Time::at(3), &[], &[], n(0), true, &mut rng);
        assert_eq!(due.len(), 2);
        assert!(w.tick(Time::at(3), &[], &[], n(0), true, &mut rng).is_empty());
    }

    #[test]
    fn scripted_arrival_targets_resolve_via_world_hook() {
        let mut w = ScriptedWorkload::new().at_arrival(Time::at(5), 0, OpAction::Read);
        let due = w.take_due(Time::at(5), |t| match t {
            ScriptTarget::Arrival(0) => Some(n(77)),
            _ => None,
        });
        assert_eq!(due, vec![(n(77), OpAction::Read)]);
    }
}
