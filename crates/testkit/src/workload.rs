//! Client operation generators.
//!
//! The world asks the workload once per time unit which operations to
//! invoke. Readers are drawn from the *idle* roster (active, no operation
//! in flight on any key); writes go through the per-`(node, key)`
//! [`WriteAccess`] query, so a workload can pipeline writes across
//! independent keys and drive several concurrent writers against one key
//! without ever violating per-`(node, key)` sequentiality.
//!
//! Every generated operation addresses a `(RegisterId, action)` pair
//! ([`KeyedAction`]); the single-register workloads target the anchor key
//! `r0`, and [`ZipfWorkload`] spreads load over a keyed register space
//! with Zipf-distributed key popularity.

use dynareg_sim::{DetRng, NodeId, RegisterId, Span, Time};

/// A client operation request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpAction {
    /// Invoke a read.
    Read,
    /// Invoke a write of the given value.
    Write(u64),
}

impl OpAction {
    /// Addresses this action to a specific register of a space.
    pub fn on_key(self, key: RegisterId) -> KeyedAction {
        KeyedAction { key, action: self }
    }
}

/// A client operation request addressed to one register of a space.
///
/// A bare [`OpAction`] converts to the anchor key `r0`, so single-register
/// call sites (`world.invoke(node, OpAction::Read)`) read unchanged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyedAction {
    /// The addressed register.
    pub key: RegisterId,
    /// The action.
    pub action: OpAction,
}

impl From<OpAction> for KeyedAction {
    fn from(action: OpAction) -> KeyedAction {
        KeyedAction {
            key: RegisterId::ZERO,
            action,
        }
    }
}

/// The write-side view the world exposes to a workload for one tick: the
/// designated writer roster plus a per-`(node, key)` availability query.
///
/// `can_write(node, key)` is true when `node` is present, active, has no
/// operation in flight *on that key*, and the key has spare writer
/// occupancy (at most `writers` concurrent writes per key). This replaces
/// the old global `writer_idle` flag, which serialized writes to
/// independent keys against each other.
pub struct WriteAccess<'a> {
    writers: &'a [NodeId],
    can_write: &'a dyn Fn(NodeId, RegisterId) -> bool,
}

impl<'a> WriteAccess<'a> {
    /// A view over `writers` with the given availability query.
    pub fn new(
        writers: &'a [NodeId],
        can_write: &'a dyn Fn(NodeId, RegisterId) -> bool,
    ) -> WriteAccess<'a> {
        WriteAccess { writers, can_write }
    }

    /// The designated writers this tick, in roster order.
    pub fn writers(&self) -> &'a [NodeId] {
        self.writers
    }

    /// Whether `node` may invoke a write on `key` right now.
    pub fn can_write(&self, node: NodeId, key: RegisterId) -> bool {
        (self.can_write)(node, key)
    }
}

impl std::fmt::Debug for WriteAccess<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WriteAccess")
            .field("writers", &self.writers)
            .finish_non_exhaustive()
    }
}

/// Per-time-unit operation source.
pub trait Workload: std::fmt::Debug {
    /// Operations to invoke at `now`. `idle_actives` are the processes that
    /// may legally accept an invocation (active, idle on every key), in id
    /// order; `arrivals` lists every churn arrival so far in join order
    /// (for scripted targets); `access` carries the writer roster and the
    /// per-`(node, key)` write-availability query.
    fn tick(
        &mut self,
        now: Time,
        idle_actives: &[NodeId],
        arrivals: &[NodeId],
        access: &WriteAccess<'_>,
        rng: &mut DetRng,
    ) -> Vec<(NodeId, KeyedAction)>;

    /// Instant after which the workload stops issuing operations (drain
    /// window); `Time::MAX` if unbounded.
    fn stop_at(&self) -> Time {
        Time::MAX
    }
}

/// A Zipf popularity distribution over the keys of a register space:
/// key `i` (0-based) carries weight `1 / (i + 1)^s`. Exponent `0` is
/// uniform; `~1` is the classic web/cache skew.
#[derive(Debug, Clone)]
pub struct ZipfKeys {
    /// Cumulative probabilities, `cdf[i] = P(key ≤ i)`; last entry 1.0.
    cdf: Vec<f64>,
}

impl ZipfKeys {
    /// A distribution over `keys` keys with exponent `s`.
    ///
    /// # Panics
    /// Panics if `keys` is zero or `s` is negative.
    pub fn new(keys: u32, s: f64) -> ZipfKeys {
        assert!(keys > 0, "a register space needs at least one key");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf: Vec<f64> = Vec::with_capacity(keys as usize);
        let mut acc = 0.0;
        for i in 0..keys {
            acc += 1.0 / f64::from(i + 1).powf(s);
            cdf.push(acc);
        }
        for c in &mut cdf {
            *c /= acc;
        }
        ZipfKeys { cdf }
    }

    /// Number of keys.
    pub fn key_count(&self) -> u32 {
        self.cdf.len() as u32
    }

    /// Draws a key (deterministic given `rng`).
    pub fn sample(&self, rng: &mut DetRng) -> RegisterId {
        let u = rng.unit();
        let i = self.cdf.partition_point(|&c| c <= u);
        RegisterId::from_raw(i.min(self.cdf.len() - 1) as u32)
    }
}

/// Steady stochastic load: each designated writer writes a fresh value
/// every `write_every` ticks (skipping writers whose key slot is busy); an
/// average of `reads_per_tick` reads (Poisson) land on uniformly random
/// idle active processes.
///
/// Values are drawn from a monotone counter starting at 1, so every write
/// is unique (as the history requires).
#[derive(Debug, Clone)]
pub struct RateWorkload {
    write_every: Span,
    reads_per_tick: f64,
    next_value: u64,
    stop_at: Time,
    stop_writes_at: Time,
}

impl RateWorkload {
    /// A workload writing every `write_every` and issuing `reads_per_tick`
    /// expected reads per tick.
    ///
    /// # Panics
    /// Panics if `write_every` is zero or `reads_per_tick` is negative.
    pub fn new(write_every: Span, reads_per_tick: f64) -> RateWorkload {
        assert!(!write_every.is_zero(), "write period must be positive");
        assert!(reads_per_tick >= 0.0, "read rate must be non-negative");
        RateWorkload {
            write_every,
            reads_per_tick,
            next_value: 1,
            stop_at: Time::MAX,
            stop_writes_at: Time::MAX,
        }
    }

    /// Stops issuing operations at `t` (the scenario's drain start).
    pub fn stopping_at(mut self, t: Time) -> RateWorkload {
        self.stop_at = t;
        self
    }

    /// Stops issuing **writes** at `t` while reads continue to the general
    /// stop — leaving a write-quiescent read suffix (how the multi-writer
    /// convergence checks observe the settled `(sn, writer)`-max value).
    pub fn stopping_writes_at(mut self, t: Time) -> RateWorkload {
        self.stop_writes_at = t;
        self
    }
}

/// Draws `count` distinct elements of `pool` uniformly, in draw order.
///
/// Dense requests (`count` a sizable fraction of the pool) use a partial
/// Fisher–Yates over a copy; sparse ones use rejection sampling, which
/// touches O(count²) ≪ O(|pool|) memory. Deterministic given `rng`.
fn sample_distinct(pool: &[NodeId], count: usize, rng: &mut DetRng) -> Vec<NodeId> {
    debug_assert!(count <= pool.len());
    if count == 0 {
        return Vec::new();
    }
    if count * 4 >= pool.len() {
        let mut copy: Vec<NodeId> = pool.to_vec();
        for k in 0..count {
            let j = k + rng.pick_index(copy.len() - k);
            copy.swap(k, j);
        }
        copy.truncate(count);
        copy
    } else {
        let mut picked_idx: Vec<usize> = Vec::with_capacity(count);
        let mut picked: Vec<NodeId> = Vec::with_capacity(count);
        while picked.len() < count {
            let j = rng.pick_index(pool.len());
            if !picked_idx.contains(&j) {
                picked_idx.push(j);
                picked.push(pool[j]);
            }
        }
        picked
    }
}

impl Workload for RateWorkload {
    fn tick(
        &mut self,
        now: Time,
        idle_actives: &[NodeId],
        _arrivals: &[NodeId],
        access: &WriteAccess<'_>,
        rng: &mut DetRng,
    ) -> Vec<(NodeId, KeyedAction)> {
        if now >= self.stop_at {
            return Vec::new();
        }
        let mut ops = Vec::new();
        // Writers fire on the period (tick 0 excluded: the initial value
        // stands in for "write 0"); a writer whose anchor-key slot is busy
        // skips the beat without burning a value.
        if now.ticks() > 0
            && now < self.stop_writes_at
            && now.ticks().is_multiple_of(self.write_every.as_ticks())
        {
            for &writer in access.writers() {
                if access.can_write(writer, RegisterId::ZERO) {
                    ops.push((writer, OpAction::Write(self.next_value).into()));
                    self.next_value += 1;
                }
            }
        }
        // Readers: Poisson number of reads over distinct idle actives.
        // Sampling is O(count), not O(population): a full Fisher–Yates
        // shuffle of a 5000-process roster to pick ~10 readers dominated
        // the per-tick cost at scale.
        if !idle_actives.is_empty() && self.reads_per_tick > 0.0 {
            let count = (rng.poisson(self.reads_per_tick) as usize).min(idle_actives.len());
            for node in sample_distinct(idle_actives, count, rng) {
                if !ops.iter().any(|(n, _)| *n == node) {
                    ops.push((node, OpAction::Read.into()));
                }
            }
        }
        ops
    }

    fn stop_at(&self) -> Time {
        self.stop_at
    }
}

/// Steady stochastic load over a **keyed register space**: the same write
/// period / Poisson read shape as [`RateWorkload`], with every operation's
/// key drawn from a [`ZipfKeys`] popularity distribution. Write values come
/// from one global monotone counter, so they are unique per key (as each
/// key's history requires) and globally.
#[derive(Debug, Clone)]
pub struct ZipfWorkload {
    keys: ZipfKeys,
    write_every: Span,
    reads_per_tick: f64,
    next_value: u64,
    stop_at: Time,
}

impl ZipfWorkload {
    /// A workload over `keys.key_count()` registers writing (one Zipf-drawn
    /// key) every `write_every` and issuing `reads_per_tick` expected reads
    /// per tick, each on a Zipf-drawn key.
    ///
    /// # Panics
    /// Panics if `write_every` is zero or `reads_per_tick` is negative.
    pub fn new(keys: ZipfKeys, write_every: Span, reads_per_tick: f64) -> ZipfWorkload {
        assert!(!write_every.is_zero(), "write period must be positive");
        assert!(reads_per_tick >= 0.0, "read rate must be non-negative");
        ZipfWorkload {
            keys,
            write_every,
            reads_per_tick,
            next_value: 1,
            stop_at: Time::MAX,
        }
    }

    /// Stops issuing operations at `t` (the scenario's drain start).
    pub fn stopping_at(mut self, t: Time) -> ZipfWorkload {
        self.stop_at = t;
        self
    }
}

impl Workload for ZipfWorkload {
    fn tick(
        &mut self,
        now: Time,
        idle_actives: &[NodeId],
        _arrivals: &[NodeId],
        access: &WriteAccess<'_>,
        rng: &mut DetRng,
    ) -> Vec<(NodeId, KeyedAction)> {
        if now >= self.stop_at {
            return Vec::new();
        }
        let mut ops = Vec::new();
        if now.ticks() > 0 && now.ticks().is_multiple_of(self.write_every.as_ticks()) {
            // One Zipf draw per writer per beat: a writer blocked on the
            // drawn key (its own in-flight write there, or the key at
            // writer capacity) skips the beat — writes to *other* keys
            // keep flowing, which is exactly the pipelining the per-key
            // query buys. The value counter only advances on issued
            // writes.
            for &writer in access.writers() {
                let key = self.keys.sample(rng);
                if access.can_write(writer, key) {
                    ops.push((writer, OpAction::Write(self.next_value).on_key(key)));
                    self.next_value += 1;
                }
            }
        }
        if !idle_actives.is_empty() && self.reads_per_tick > 0.0 {
            let count = (rng.poisson(self.reads_per_tick) as usize).min(idle_actives.len());
            for node in sample_distinct(idle_actives, count, rng) {
                if !ops.iter().any(|(n, _)| *n == node) {
                    let key = self.keys.sample(rng);
                    ops.push((node, OpAction::Read.on_key(key)));
                }
            }
        }
        ops
    }

    fn stop_at(&self) -> Time {
        self.stop_at
    }
}

/// A fully scripted operation timeline, for figure-exact reproductions
/// (e.g. Figure 3's write-concurrent-with-join schedule).
///
/// Targets may be absolute node ids or "the k-th churn arrival", resolved
/// by the world at run time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScriptedWorkload {
    script: Vec<(Time, ScriptTarget, KeyedAction)>,
}

/// Whom a scripted operation addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScriptTarget {
    /// A concrete process id (useful for bootstrap members `0..n`).
    Node(NodeId),
    /// The `k`-th process that joined through churn (0-based), letting
    /// scripts address churn arrivals without knowing their fresh ids.
    Arrival(usize),
}

impl ScriptedWorkload {
    /// An empty script.
    pub fn new() -> ScriptedWorkload {
        ScriptedWorkload::default()
    }

    /// Schedules `action` on `node` at `t`. Accepts a bare [`OpAction`]
    /// (anchor key `r0`) or a [`KeyedAction`] addressing any key.
    pub fn at(mut self, t: Time, node: NodeId, action: impl Into<KeyedAction>) -> ScriptedWorkload {
        self.script
            .push((t, ScriptTarget::Node(node), action.into()));
        self
    }

    /// Schedules `action` on the `k`-th churn arrival at `t`.
    pub fn at_arrival(
        mut self,
        t: Time,
        k: usize,
        action: impl Into<KeyedAction>,
    ) -> ScriptedWorkload {
        self.script
            .push((t, ScriptTarget::Arrival(k), action.into()));
        self
    }

    /// Fires entries due at `now`, resolving targets with `resolve`
    /// (entries whose instant has passed unresolved are dropped).
    fn take_due(
        &mut self,
        now: Time,
        resolve: impl Fn(ScriptTarget) -> Option<NodeId>,
    ) -> Vec<(NodeId, KeyedAction)> {
        let mut due = Vec::new();
        self.script.retain(|(t, target, action)| {
            if *t == now {
                if let Some(node) = resolve(*target) {
                    due.push((node, action.clone()));
                }
                false
            } else {
                *t > now // drop missed entries too
            }
        });
        due
    }
}

impl Workload for ScriptedWorkload {
    fn tick(
        &mut self,
        now: Time,
        _idle_actives: &[NodeId],
        arrivals: &[NodeId],
        _access: &WriteAccess<'_>,
        _rng: &mut DetRng,
    ) -> Vec<(NodeId, KeyedAction)> {
        self.take_due(now, |t| match t {
            ScriptTarget::Node(id) => Some(id),
            ScriptTarget::Arrival(k) => arrivals.get(k).copied(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u64) -> NodeId {
        NodeId::from_raw(i)
    }

    /// `can_write` always true / always false, as plain fn pointers so the
    /// tests can borrow them as `&dyn Fn`.
    const OPEN: fn(NodeId, RegisterId) -> bool = |_, _| true;
    const SHUT: fn(NodeId, RegisterId) -> bool = |_, _| false;

    #[test]
    fn rate_workload_writes_on_period_with_unique_values() {
        let mut w = RateWorkload::new(Span::ticks(5), 0.0);
        let mut rng = DetRng::seed(1);
        let idle = vec![n(0), n(1)];
        let writers = [n(0)];
        let open = WriteAccess::new(&writers, &OPEN);
        let mut values = Vec::new();
        for t in 0..20 {
            for (node, op) in w.tick(Time::at(t), &idle, &[], &open, &mut rng) {
                assert_eq!(node, n(0));
                assert_eq!(
                    op.key,
                    RegisterId::ZERO,
                    "rate workload targets the anchor key"
                );
                if let OpAction::Write(v) = op.action {
                    values.push(v);
                }
            }
        }
        assert_eq!(values, vec![1, 2, 3]); // t = 5, 10, 15
    }

    #[test]
    fn rate_workload_respects_writer_busy() {
        let mut w = RateWorkload::new(Span::ticks(5), 0.0);
        let mut rng = DetRng::seed(1);
        let writers = [n(0)];
        let shut = WriteAccess::new(&writers, &SHUT);
        let open = WriteAccess::new(&writers, &OPEN);
        assert!(w.tick(Time::at(5), &[], &[], &shut, &mut rng).is_empty());
        // The skipped value is not burned: next write uses value 1.
        let ops = w.tick(Time::at(10), &[], &[], &open, &mut rng);
        assert_eq!(ops, vec![(n(0), OpAction::Write(1).into())]);
    }

    #[test]
    fn rate_workload_drives_every_writer_in_the_roster() {
        let mut w = RateWorkload::new(Span::ticks(5), 0.0);
        let mut rng = DetRng::seed(1);
        let writers = [n(0), n(3)];
        let open = WriteAccess::new(&writers, &OPEN);
        let ops = w.tick(Time::at(5), &[], &[], &open, &mut rng);
        assert_eq!(
            ops,
            vec![
                (n(0), OpAction::Write(1).into()),
                (n(3), OpAction::Write(2).into()),
            ],
            "each roster writer gets its own unique value on the beat"
        );
    }

    #[test]
    fn rate_workload_read_count_tracks_rate() {
        let mut w = RateWorkload::new(Span::ticks(1000), 2.0);
        let mut rng = DetRng::seed(2);
        let idle: Vec<NodeId> = (0..50).map(n).collect();
        let writers = [n(0)];
        let shut = WriteAccess::new(&writers, &SHUT);
        let total: usize = (1..500)
            .map(|t| w.tick(Time::at(t), &idle, &[], &shut, &mut rng).len())
            .sum();
        let mean = total as f64 / 499.0;
        assert!((mean - 2.0).abs() < 0.3, "mean reads/tick = {mean}");
    }

    #[test]
    fn rate_workload_stops_at_drain() {
        let mut w = RateWorkload::new(Span::ticks(2), 5.0).stopping_at(Time::at(10));
        let mut rng = DetRng::seed(3);
        let idle = vec![n(1)];
        let writers = [n(0)];
        let open = WriteAccess::new(&writers, &OPEN);
        assert!(!w.tick(Time::at(8), &idle, &[], &open, &mut rng).is_empty());
        assert!(w.tick(Time::at(10), &idle, &[], &open, &mut rng).is_empty());
        assert!(w.tick(Time::at(12), &idle, &[], &open, &mut rng).is_empty());
    }

    #[test]
    fn scripted_workload_fires_exactly_once() {
        let mut w = ScriptedWorkload::new()
            .at(Time::at(3), n(1), OpAction::Read)
            .at(Time::at(3), n(2), OpAction::Write(9));
        let mut rng = DetRng::seed(4);
        let writers = [n(0)];
        let open = WriteAccess::new(&writers, &OPEN);
        assert!(w.tick(Time::at(2), &[], &[], &open, &mut rng).is_empty());
        let due = w.tick(Time::at(3), &[], &[], &open, &mut rng);
        assert_eq!(due.len(), 2);
        assert!(w.tick(Time::at(3), &[], &[], &open, &mut rng).is_empty());
    }

    #[test]
    fn scripted_arrival_targets_resolve_via_world_hook() {
        let mut w = ScriptedWorkload::new().at_arrival(Time::at(5), 0, OpAction::Read);
        let due = w.take_due(Time::at(5), |t| match t {
            ScriptTarget::Arrival(0) => Some(n(77)),
            _ => None,
        });
        assert_eq!(due, vec![(n(77), OpAction::Read.into())]);
    }

    #[test]
    fn zipf_distribution_is_normalized_and_skewed() {
        let z = ZipfKeys::new(16, 1.0);
        assert_eq!(z.key_count(), 16);
        let mut rng = DetRng::seed(7);
        let mut counts = [0u64; 16];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng).as_raw() as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "every key is reachable");
        assert!(
            counts[0] > 3 * counts[15],
            "key 0 dominates the tail under s=1: {counts:?}"
        );
        // Exponent 0 is uniform: head and tail within noise of each other.
        let u = ZipfKeys::new(16, 0.0);
        let mut ucounts = [0u64; 16];
        for _ in 0..20_000 {
            ucounts[u.sample(&mut rng).as_raw() as usize] += 1;
        }
        let (lo, hi) = (
            *ucounts.iter().min().unwrap() as f64,
            *ucounts.iter().max().unwrap() as f64,
        );
        assert!(hi / lo < 1.5, "uniform keys stay balanced: {ucounts:?}");
    }

    #[test]
    fn zipf_workload_addresses_many_keys_with_unique_values() {
        let mut w = ZipfWorkload::new(ZipfKeys::new(8, 1.0), Span::ticks(2), 3.0);
        let mut rng = DetRng::seed(3);
        let idle: Vec<NodeId> = (0..20).map(n).collect();
        let writers = [n(0)];
        let open = WriteAccess::new(&writers, &OPEN);
        let mut keys_seen = std::collections::BTreeSet::new();
        let mut values = Vec::new();
        for t in 1..200 {
            for (_, op) in w.tick(Time::at(t), &idle, &[], &open, &mut rng) {
                keys_seen.insert(op.key);
                if let OpAction::Write(v) = op.action {
                    values.push(v);
                }
            }
        }
        assert!(keys_seen.len() > 4, "zipf traffic spreads over keys");
        let distinct: std::collections::BTreeSet<u64> = values.iter().copied().collect();
        assert_eq!(
            distinct.len(),
            values.len(),
            "write values are globally unique"
        );
    }

    #[test]
    fn scripted_workload_accepts_keyed_actions() {
        let mut w = ScriptedWorkload::new().at(
            Time::at(2),
            n(1),
            OpAction::Read.on_key(RegisterId::from_raw(5)),
        );
        let mut rng = DetRng::seed(1);
        let writers = [n(0)];
        let open = WriteAccess::new(&writers, &OPEN);
        let due = w.tick(Time::at(2), &[], &[], &open, &mut rng);
        assert_eq!(
            due,
            vec![(n(1), OpAction::Read.on_key(RegisterId::from_raw(5)))]
        );
    }

    #[test]
    fn zipf_workload_pipelines_writes_across_keys_when_one_key_is_busy() {
        // A writer blocked on one key keeps writing other keys: per-key
        // gating must not collapse back into a global writer-idle gate.
        let mut w = ZipfWorkload::new(ZipfKeys::new(8, 1.0), Span::ticks(1), 0.0);
        let mut rng = DetRng::seed(9);
        let writers = [n(0)];
        let hot = RegisterId::ZERO;
        let only_cold: fn(NodeId, RegisterId) -> bool = |_, k| k != RegisterId::ZERO;
        let access = WriteAccess::new(&writers, &only_cold);
        let mut wrote_keys = std::collections::BTreeSet::new();
        let mut values = Vec::new();
        for t in 1..300 {
            for (_, op) in w.tick(Time::at(t), &[], &[], &access, &mut rng) {
                if let OpAction::Write(v) = op.action {
                    wrote_keys.insert(op.key);
                    values.push(v);
                }
            }
        }
        assert!(!wrote_keys.contains(&hot), "blocked key never written");
        assert!(wrote_keys.len() > 2, "writes pipeline onto other keys");
        // Values stay dense: skipped beats do not burn value numbers.
        let expect: Vec<u64> = (1..=values.len() as u64).collect();
        assert_eq!(values, expect);
    }
}
