//! The paper's Safety property, §2.2: *"A read operation returns the last
//! value written before the read invocation, or a value written by a write
//! operation concurrent with it."*

use std::hash::Hash;

use dynareg_sim::Time;

use crate::history::{History, OpKind, OpRecord};
use crate::report::{ConsistencyReport, Violation};

/// Shared sweep-line machinery over a history's totally ordered writes:
/// answers "last write completed strictly before `t`" and "is any write
/// concurrent with `[inv, comp]`" in O(log W) each, after an O(W log W)
/// build. Used by both the regularity and safe checkers.
pub(crate) struct WriteSweep<'h, V> {
    /// Write records addressable by serialization index.
    pub by_index: Vec<&'h OpRecord<V>>,
    /// `(completed_at, index)` for every completed write, sorted by
    /// completion instant (ties by index).
    completions: Vec<(Time, usize)>,
    /// `prefix_max[k]` = max serialization index among `completions[..=k]`
    /// — the paper's "last value written" is the *highest-indexed*
    /// completed write, which completion order alone does not give when a
    /// write was abandoned by a departed writer.
    prefix_max: Vec<usize>,
    /// `suffix_min_inv[k]` = earliest invocation among `completions[k..]`;
    /// invocation times of later-completing writes are what decides
    /// concurrency existence for the safe checker.
    suffix_min_inv: Vec<Time>,
    /// Earliest invocation among never-completed writes (pending writes
    /// are concurrent with everything after their invocation).
    pending_min_inv: Option<Time>,
}

impl<'h, V: Clone + Eq + Hash + std::fmt::Debug> WriteSweep<'h, V> {
    pub fn build(history: &'h History<V>) -> WriteSweep<'h, V> {
        let mut by_index: Vec<&OpRecord<V>> = history.writes().collect();
        by_index.sort_unstable_by_key(|w| match w.kind {
            OpKind::Write { index, .. } => index,
            _ => unreachable!("writes() yields writes"),
        });
        let mut completions: Vec<(Time, usize)> = by_index
            .iter()
            .enumerate()
            .filter_map(|(i, w)| w.completed_at.map(|c| (c, i)))
            .collect();
        completions.sort_unstable();
        let mut prefix_max = Vec::with_capacity(completions.len());
        let mut m = 0;
        for &(_, i) in &completions {
            m = m.max(i);
            prefix_max.push(m);
        }
        let mut suffix_min_inv = vec![Time::MAX; completions.len()];
        let mut inv_min = Time::MAX;
        for (k, &(_, i)) in completions.iter().enumerate().rev() {
            inv_min = inv_min.min(by_index[i].invoked_at);
            suffix_min_inv[k] = inv_min;
        }
        let pending_min_inv = by_index
            .iter()
            .filter(|w| !w.is_complete())
            .map(|w| w.invoked_at)
            .min();
        WriteSweep {
            by_index,
            completions,
            prefix_max,
            suffix_min_inv,
            pending_min_inv,
        }
    }

    /// Serialization index of the last write completed *strictly* before
    /// `t`; `None` stands for the initial value.
    pub fn last_completed_before(&self, t: Time) -> Option<usize> {
        let k = self.completions.partition_point(|&(c, _)| c < t);
        if k == 0 {
            None
        } else {
            Some(self.prefix_max[k - 1])
        }
    }

    /// Whether any write (completed or pending) is concurrent with the
    /// closed interval `[inv, comp]` under [`OpRecord::overlaps`]
    /// semantics.
    pub fn any_concurrent(&self, inv: Time, comp: Time) -> bool {
        if self.pending_min_inv.is_some_and(|w_inv| w_inv <= comp) {
            return true;
        }
        // A completed write overlaps iff it completes at/after `inv` AND
        // was invoked at/before `comp`: among writes completing at or
        // after `inv`, take the earliest invocation.
        let k = self.completions.partition_point(|&(c, _)| c < inv);
        k < self.completions.len() && self.suffix_min_inv[k] <= comp
    }
}

/// Checks a history against **regular register** semantics.
///
/// For each completed read `r` the legal values are:
///
/// 1. the value of the *last* write whose response precedes `r`'s
///    invocation (or the initial value if there is none), and
/// 2. the value of every write concurrent with `r` (a pending write is
///    concurrent with everything after its invocation).
///
/// Values that were never written are *fabricated* and always illegal —
/// even a safe register may only return domain values; our harness catches
/// protocol bugs this way.
///
/// # Example
///
/// ```
/// use dynareg_verify::{History, RegularityChecker};
/// use dynareg_sim::{NodeId, Time};
///
/// let mut h: History<u64> = History::new(0);
/// let w = h.invoke_write(NodeId::from_raw(0), Time::at(1), 10);
/// h.complete_write(w, Time::at(4));
/// // Read concurrent with the write: may return 0 or 10.
/// let r = h.invoke_read(NodeId::from_raw(1), Time::at(2));
/// h.complete_read(r, Time::at(3), 0);
/// assert!(RegularityChecker::check(&h).is_ok());
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct RegularityChecker;

impl RegularityChecker {
    /// Runs the check; the report lists every illegal read.
    ///
    /// Single pass over the reads against a `WriteSweep` of the write
    /// intervals: per read, the last-completed-write index is one binary
    /// search and the concurrency test for the returned value's write is
    /// one O(1) interval overlap — O((R+W) log W) overall, versus the
    /// naive oracle's O(R·W) rescan. Violation *messages* still enumerate
    /// the full legal set (violations are rare; clarity wins there).
    pub fn check<V: Clone + Eq + Hash + std::fmt::Debug>(
        history: &History<V>,
    ) -> ConsistencyReport<V> {
        let sweep = WriteSweep::build(history);
        let mut violations = Vec::new();
        let mut checked = 0;

        for read in history.completed_reads() {
            checked += 1;
            let returned = match &read.kind {
                OpKind::Read { returned: Some(v) } => v,
                _ => unreachable!("completed_reads yields completed reads"),
            };
            let legal = match history.provenance(returned) {
                Err(_) => {
                    violations.push(Violation {
                        read: read.op,
                        node: read.node,
                        returned: returned.clone(),
                        explanation: "fabricated value: never written and not the initial value"
                            .into(),
                    });
                    continue;
                }
                Ok(p) => {
                    let last_before = sweep.last_completed_before(read.invoked_at);
                    p == last_before || p.is_some_and(|i| sweep.by_index[i].overlaps(read))
                }
            };
            if !legal {
                // Rare path: rebuild the naive explanation for the report.
                if let Some(v) = Self::judge(history, &sweep.by_index, read, returned) {
                    violations.push(v);
                }
            }
        }

        ConsistencyReport {
            semantics: "regular",
            checked_reads: checked,
            violations,
            inversions: 0,
        }
    }

    /// The original O(R·W) implementation, retained verbatim as the *test
    /// oracle*: the property suite requires [`RegularityChecker::check`]
    /// to agree with it violation-for-violation on arbitrary histories.
    pub fn check_naive<V: Clone + Eq + Hash + std::fmt::Debug>(
        history: &History<V>,
    ) -> ConsistencyReport<V> {
        let writes: Vec<&OpRecord<V>> = history.writes().collect();
        let mut violations = Vec::new();
        let mut checked = 0;

        for read in history.completed_reads() {
            checked += 1;
            let returned = match &read.kind {
                OpKind::Read { returned: Some(v) } => v,
                _ => unreachable!("completed_reads yields completed reads"),
            };
            if let Some(v) = Self::judge(history, &writes, read, returned) {
                violations.push(v);
            }
        }

        ConsistencyReport {
            semantics: "regular",
            checked_reads: checked,
            violations,
            inversions: 0,
        }
    }

    /// Legal write indices for a read: `None` stands for the initial value.
    pub(crate) fn legal_indices<V: Clone + Eq + Hash + std::fmt::Debug>(
        writes: &[&OpRecord<V>],
        read: &OpRecord<V>,
    ) -> Vec<Option<usize>> {
        let mut legal = Vec::new();
        // Last write completed *strictly* before the read's invocation.
        // Equal instants count as concurrent, matching `OpRecord::overlaps`
        // (closed intervals): a write completing exactly when a read starts
        // contributes via the concurrency rule instead, and its predecessor
        // stays legal ("the last value … before these concurrent writes").
        let last_before = writes
            .iter()
            .filter(|w| w.completed_at.is_some_and(|c| c < read.invoked_at))
            .filter_map(|w| match w.kind {
                OpKind::Write { index, .. } => Some(index),
                _ => None,
            })
            .max();
        legal.push(last_before); // None = initial value
                                 // Writes concurrent with the read.
        for w in writes {
            if w.overlaps(read) {
                if let OpKind::Write { index, .. } = w.kind {
                    legal.push(Some(index));
                }
            }
        }
        legal.sort_unstable();
        legal.dedup();
        legal
    }

    fn judge<V: Clone + Eq + Hash + std::fmt::Debug>(
        history: &History<V>,
        writes: &[&OpRecord<V>],
        read: &OpRecord<V>,
        returned: &V,
    ) -> Option<Violation<V>> {
        let provenance = match history.provenance(returned) {
            Ok(p) => p,
            Err(_) => {
                return Some(Violation {
                    read: read.op,
                    node: read.node,
                    returned: returned.clone(),
                    explanation: "fabricated value: never written and not the initial value".into(),
                });
            }
        };
        let legal = Self::legal_indices(writes, read);
        if legal.contains(&provenance) {
            None
        } else {
            let legal_desc: Vec<String> = legal
                .iter()
                .map(|l| match l {
                    None => "initial".to_string(),
                    Some(i) => format!("write#{i}"),
                })
                .collect();
            let got = match provenance {
                None => "initial".to_string(),
                Some(i) => format!("write#{i}"),
            };
            Some(Violation {
                read: read.op,
                node: read.node,
                returned: returned.clone(),
                explanation: format!(
                    "read [{}..{}] returned {got} but legal values are {{{}}}",
                    read.invoked_at,
                    read.completed_at.expect("completed"),
                    legal_desc.join(", ")
                ),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynareg_sim::{NodeId, Time};

    fn n(i: u64) -> NodeId {
        NodeId::from_raw(i)
    }

    /// w1 = [1,4] → 10, w2 = [6,9] → 20.
    fn two_write_history() -> History<u64> {
        let mut h: History<u64> = History::new(0);
        let w1 = h.invoke_write(n(0), Time::at(1), 10);
        h.complete_write(w1, Time::at(4));
        let w2 = h.invoke_write(n(0), Time::at(6), 20);
        h.complete_write(w2, Time::at(9));
        h
    }

    fn with_read(mut h: History<u64>, inv: u64, comp: u64, value: u64) -> History<u64> {
        let r = h.invoke_read(n(1), Time::at(inv));
        h.complete_read(r, Time::at(comp), value);
        h
    }

    #[test]
    fn read_after_write_must_see_it() {
        let h = with_read(two_write_history(), 10, 11, 20);
        assert!(RegularityChecker::check(&h).is_ok());
        let stale = with_read(two_write_history(), 10, 11, 10);
        let report = RegularityChecker::check(&stale);
        assert_eq!(report.violation_count(), 1);
        assert!(report.violations[0]
            .explanation
            .contains("legal values are {write#1}"));
    }

    #[test]
    fn read_concurrent_with_write_may_see_old_or_new() {
        for value in [10, 20] {
            let h = with_read(two_write_history(), 7, 8, value);
            assert!(
                RegularityChecker::check(&h).is_ok(),
                "value {value} is legal"
            );
        }
        // But not the ancient initial value.
        let h = with_read(two_write_history(), 7, 8, 0);
        assert!(!RegularityChecker::check(&h).is_ok());
    }

    #[test]
    fn read_before_any_write_sees_initial() {
        let mut h: History<u64> = History::new(0);
        let r = h.invoke_read(n(1), Time::at(0));
        h.complete_read(r, Time::at(0), 0);
        assert!(RegularityChecker::check(&h).is_ok());
    }

    #[test]
    fn fabricated_value_is_flagged() {
        let h = with_read(two_write_history(), 10, 11, 999);
        let report = RegularityChecker::check(&h);
        assert_eq!(report.violation_count(), 1);
        assert!(report.violations[0].explanation.contains("fabricated"));
    }

    #[test]
    fn pending_write_is_concurrent_forever() {
        let mut h: History<u64> = History::new(0);
        h.invoke_write(n(0), Time::at(1), 10); // never completes (writer stays? crashed)
        let r = h.invoke_read(n(1), Time::at(100));
        h.complete_read(r, Time::at(101), 10);
        assert!(RegularityChecker::check(&h).is_ok());
        // The initial value is also still legal: no write ever *completed*.
        let r2 = h.invoke_read(n(1), Time::at(102));
        h.complete_read(r2, Time::at(103), 0);
        assert!(RegularityChecker::check(&h).is_ok());
    }

    #[test]
    fn read_spanning_both_writes_accepts_either_but_not_initial() {
        let h = with_read(two_write_history(), 2, 8, 10);
        assert!(RegularityChecker::check(&h).is_ok());
        let h = with_read(two_write_history(), 2, 8, 20);
        assert!(RegularityChecker::check(&h).is_ok());
        // Read invoked at 2 overlaps w1 (concurrent) → initial no longer
        // last-before? Last write completed before t=2: none → initial IS
        // legal via rule 1.
        let h = with_read(two_write_history(), 2, 8, 0);
        assert!(RegularityChecker::check(&h).is_ok());
    }

    #[test]
    fn new_old_inversion_is_legal_for_regular() {
        // r1 = [6,7] returns 20 (new), r2 = [8,8] returns 10 (old, but w2
        // is still concurrent? No: w2 = [6,9], r2 = [8,8] overlaps w2, so 10
        // = value before the concurrent write → legal. This is exactly the
        // §1 inversion figure.
        let h = with_read(two_write_history(), 6, 7, 20);
        let h = with_read(h, 8, 8, 10);
        assert!(RegularityChecker::check(&h).is_ok());
    }

    #[test]
    fn touching_endpoints_count_as_concurrent() {
        // Write completes at 4; read invoked at 4 → w completed_at <= inv,
        // so w is "before" AND overlapping. Both old (if later write) and
        // new legal; with single write, both initial? Check: read [4,5]
        // returning 10 is legal (last-before), returning 0 is not (w1
        // completed at exactly 4 — it is last-before … but also concurrent
        // by our closed-interval overlap, making 0 the value before the
        // concurrent write → legal).
        let mut h: History<u64> = History::new(0);
        let w1 = h.invoke_write(n(0), Time::at(1), 10);
        h.complete_write(w1, Time::at(4));
        let h1 = with_read(h.clone(), 4, 5, 10);
        assert!(RegularityChecker::check(&h1).is_ok());
        let h0 = with_read(h, 4, 5, 0);
        assert!(RegularityChecker::check(&h0).is_ok());
    }

    #[test]
    fn report_counts_all_reads() {
        let mut h = two_write_history();
        for t in [10, 12, 14] {
            let r = h.invoke_read(n(2), Time::at(t));
            h.complete_read(r, Time::at(t + 1), 20);
        }
        let report = RegularityChecker::check(&h);
        assert_eq!(report.checked_reads, 3);
        assert!(report.is_ok());
    }
}
