//! The paper's Safety property, §2.2: *"A read operation returns the last
//! value written before the read invocation, or a value written by a write
//! operation concurrent with it."*

use std::collections::BTreeMap;
use std::hash::Hash;

use dynareg_sim::{NodeId, Time};

use crate::history::{History, OpKind, OpRecord};
use crate::report::{ConsistencyReport, Violation};

/// The hybrid write order `a < b` used by every checker: `a` completed
/// strictly before `b` was invoked (real time), or both were issued by the
/// same node and `a` was invoked first. On a single-writer history this is
/// the total invocation order; with concurrent writers it is the partial
/// order that real time and per-process seriality actually justify —
/// mutually concurrent cross-node writes stay unordered.
pub(crate) fn write_precedes<V>(a: &OpRecord<V>, b: &OpRecord<V>) -> bool {
    if a.completed_at.is_some_and(|c| c < b.invoked_at) {
        return true;
    }
    a.node == b.node && write_index(a) < write_index(b)
}

/// The invocation index of a write record.
pub(crate) fn write_index<V>(w: &OpRecord<V>) -> usize {
    match w.kind {
        OpKind::Write { index, .. } => index,
        _ => unreachable!("not a write record"),
    }
}

/// One node's completed writes in index order, with the suffix-minimum of
/// their completion instants: "does this node complete a later write
/// before `t`" is then two binary-search-free lookups.
struct NodeChain {
    indices: Vec<usize>,
    suffix_min_comp: Vec<Time>,
}

/// Shared sweep-line machinery over a history's writes (ordered by the
/// hybrid relation [`write_precedes`]): answers "is write `i` a legal
/// quiescent value at `t`" and "is any write concurrent with `[inv,
/// comp]`" in O(log W) each, after an O(W log W) build. Used by both the
/// regularity and safe checkers.
pub(crate) struct WriteSweep<'h, V> {
    /// Write records addressable by invocation index.
    pub by_index: Vec<&'h OpRecord<V>>,
    /// `(completed_at, index)` for every completed write, sorted by
    /// completion instant (ties by index).
    completions: Vec<(Time, usize)>,
    /// `prefix_max_inv[k]` = latest invocation among `completions[..=k]` —
    /// a write is real-time-superseded at `t` iff some write invoked after
    /// its completion has itself completed before `t`.
    prefix_max_inv: Vec<Time>,
    /// `suffix_min_inv[k]` = earliest invocation among `completions[k..]`;
    /// invocation times of later-completing writes are what decides
    /// concurrency existence for the safe checker.
    suffix_min_inv: Vec<Time>,
    /// Earliest invocation among never-completed writes (pending writes
    /// are concurrent with everything after their invocation).
    pending_min_inv: Option<Time>,
    /// Per-writer completed-write chains for the same-node clause of
    /// [`write_precedes`].
    node_chains: BTreeMap<NodeId, NodeChain>,
}

impl<'h, V: Clone + Eq + Hash + std::fmt::Debug> WriteSweep<'h, V> {
    pub fn build(history: &'h History<V>) -> WriteSweep<'h, V> {
        let mut by_index: Vec<&OpRecord<V>> = history.writes().collect();
        by_index.sort_unstable_by_key(|w| match w.kind {
            OpKind::Write { index, .. } => index,
            _ => unreachable!("writes() yields writes"),
        });
        let mut completions: Vec<(Time, usize)> = by_index
            .iter()
            .enumerate()
            .filter_map(|(i, w)| w.completed_at.map(|c| (c, i)))
            .collect();
        completions.sort_unstable();
        let mut prefix_max_inv = Vec::with_capacity(completions.len());
        let mut m = Time::ZERO;
        for &(_, i) in &completions {
            m = m.max(by_index[i].invoked_at);
            prefix_max_inv.push(m);
        }
        let mut suffix_min_inv = vec![Time::MAX; completions.len()];
        let mut inv_min = Time::MAX;
        for (k, &(_, i)) in completions.iter().enumerate().rev() {
            inv_min = inv_min.min(by_index[i].invoked_at);
            suffix_min_inv[k] = inv_min;
        }
        let pending_min_inv = by_index
            .iter()
            .filter(|w| !w.is_complete())
            .map(|w| w.invoked_at)
            .min();
        let mut node_chains: BTreeMap<NodeId, NodeChain> = BTreeMap::new();
        for (i, w) in by_index.iter().enumerate() {
            if let Some(c) = w.completed_at {
                let chain = node_chains.entry(w.node).or_insert_with(|| NodeChain {
                    indices: Vec::new(),
                    suffix_min_comp: Vec::new(),
                });
                chain.indices.push(i);
                chain.suffix_min_comp.push(c); // rewritten to suffix-min below
            }
        }
        for chain in node_chains.values_mut() {
            for k in (1..chain.suffix_min_comp.len()).rev() {
                let later = chain.suffix_min_comp[k];
                let here = &mut chain.suffix_min_comp[k - 1];
                *here = (*here).min(later);
            }
        }
        WriteSweep {
            by_index,
            completions,
            prefix_max_inv,
            suffix_min_inv,
            pending_min_inv,
            node_chains,
        }
    }

    /// Whether any write at all completed strictly before `t` — the
    /// initial value is a legal quiescent value iff none did.
    pub fn any_completed_before(&self, t: Time) -> bool {
        self.completions.first().is_some_and(|&(c, _)| c < t)
    }

    /// Whether write `i` is a legal *quiescent* value at instant `t`: it
    /// completed strictly before `t` and no write ordered after it under
    /// [`write_precedes`] also completed strictly before `t`. On a
    /// single-writer history exactly one write satisfies this (the
    /// highest-indexed completed one); concurrent cross-node writes can
    /// leave several unsuperseded.
    pub fn unsuperseded_before(&self, i: usize, t: Time) -> bool {
        let w = self.by_index[i];
        let Some(wc) = w.completed_at else {
            return false;
        };
        if wc >= t {
            return false;
        }
        // Real-time successor: a write invoked after `w` completed, itself
        // completed before `t`. (`w` is in the prefix, but its own
        // invocation precedes `wc`, so it never triggers the comparison.)
        let k = self.completions.partition_point(|&(c, _)| c < t);
        debug_assert!(k > 0, "w itself completed before t");
        if self.prefix_max_inv[k - 1] > wc {
            return false;
        }
        // Same-node successor: a later write by `w`'s node completed
        // before `t`.
        let chain = &self.node_chains[&w.node];
        let pos = chain.indices.partition_point(|&j| j <= i);
        !(pos < chain.indices.len() && chain.suffix_min_comp[pos] < t)
    }

    /// Whether any write (completed or pending) is concurrent with the
    /// closed interval `[inv, comp]` under [`OpRecord::overlaps`]
    /// semantics.
    pub fn any_concurrent(&self, inv: Time, comp: Time) -> bool {
        if self.pending_min_inv.is_some_and(|w_inv| w_inv <= comp) {
            return true;
        }
        // A completed write overlaps iff it completes at/after `inv` AND
        // was invoked at/before `comp`: among writes completing at or
        // after `inv`, take the earliest invocation.
        let k = self.completions.partition_point(|&(c, _)| c < inv);
        k < self.completions.len() && self.suffix_min_inv[k] <= comp
    }
}

/// Checks a history against **regular register** semantics.
///
/// For each completed read `r` the legal values are:
///
/// 1. the value of every write completed before `r`'s invocation that no
///    later write (under the hybrid order `write_precedes`) had already
///    replaced by then — for a single writer that is exactly "the *last*
///    value written before the read invocation", the paper's wording; with
///    concurrent writers every still-current completed write qualifies —
///    or the initial value if no write completed before `r`'s invocation,
///    and
/// 2. the value of every write concurrent with `r` (a pending write is
///    concurrent with everything after its invocation).
///
/// Values that were never written are *fabricated* and always illegal —
/// even a safe register may only return domain values; our harness catches
/// protocol bugs this way.
///
/// # Example
///
/// ```
/// use dynareg_verify::{History, RegularityChecker};
/// use dynareg_sim::{NodeId, Time};
///
/// let mut h: History<u64> = History::new(0);
/// let w = h.invoke_write(NodeId::from_raw(0), Time::at(1), 10);
/// h.complete_write(w, Time::at(4));
/// // Read concurrent with the write: may return 0 or 10.
/// let r = h.invoke_read(NodeId::from_raw(1), Time::at(2));
/// h.complete_read(r, Time::at(3), 0);
/// assert!(RegularityChecker::check(&h).is_ok());
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct RegularityChecker;

impl RegularityChecker {
    /// Runs the check; the report lists every illegal read.
    ///
    /// Single pass over the reads against a `WriteSweep` of the write
    /// intervals: per read, the unsuperseded-before test is two binary
    /// searches and the concurrency test for the returned value's write is
    /// one O(1) interval overlap — O((R+W) log W) overall, versus the
    /// naive oracle's O(R·W²) rescan. Violation *messages* still enumerate
    /// the full legal set (violations are rare; clarity wins there).
    pub fn check<V: Clone + Eq + Hash + std::fmt::Debug>(
        history: &History<V>,
    ) -> ConsistencyReport<V> {
        let sweep = WriteSweep::build(history);
        let mut violations = Vec::new();
        let mut checked = 0;

        for read in history.completed_reads() {
            checked += 1;
            let returned = match &read.kind {
                OpKind::Read { returned: Some(v) } => v,
                _ => unreachable!("completed_reads yields completed reads"),
            };
            let legal = match history.provenance(returned) {
                Err(_) => {
                    violations.push(Violation {
                        read: read.op,
                        node: read.node,
                        returned: returned.clone(),
                        explanation: "fabricated value: never written and not the initial value"
                            .into(),
                    });
                    continue;
                }
                Ok(p) => match p {
                    None => !sweep.any_completed_before(read.invoked_at),
                    Some(i) => {
                        sweep.by_index[i].overlaps(read)
                            || sweep.unsuperseded_before(i, read.invoked_at)
                    }
                },
            };
            if !legal {
                // Rare path: rebuild the naive explanation for the report.
                if let Some(v) = Self::judge(history, &sweep.by_index, read, returned) {
                    violations.push(v);
                }
            }
        }

        ConsistencyReport {
            semantics: "regular",
            checked_reads: checked,
            violations,
            inversions: 0,
        }
    }

    /// The original O(R·W) implementation, retained verbatim as the *test
    /// oracle*: the property suite requires [`RegularityChecker::check`]
    /// to agree with it violation-for-violation on arbitrary histories.
    pub fn check_naive<V: Clone + Eq + Hash + std::fmt::Debug>(
        history: &History<V>,
    ) -> ConsistencyReport<V> {
        let writes: Vec<&OpRecord<V>> = history.writes().collect();
        let mut violations = Vec::new();
        let mut checked = 0;

        for read in history.completed_reads() {
            checked += 1;
            let returned = match &read.kind {
                OpKind::Read { returned: Some(v) } => v,
                _ => unreachable!("completed_reads yields completed reads"),
            };
            if let Some(v) = Self::judge(history, &writes, read, returned) {
                violations.push(v);
            }
        }

        ConsistencyReport {
            semantics: "regular",
            checked_reads: checked,
            violations,
            inversions: 0,
        }
    }

    /// Legal write indices for a read: `None` stands for the initial value.
    pub(crate) fn legal_indices<V: Clone + Eq + Hash + std::fmt::Debug>(
        writes: &[&OpRecord<V>],
        read: &OpRecord<V>,
    ) -> Vec<Option<usize>> {
        let mut legal = Vec::new();
        // Writes completed *strictly* before the read's invocation that no
        // other such write supersedes under the hybrid order. Equal
        // instants count as concurrent, matching `OpRecord::overlaps`
        // (closed intervals): a write completing exactly when a read
        // starts contributes via the concurrency rule instead, and its
        // predecessor stays legal ("the last value … before these
        // concurrent writes"). Single writer: this is {max index}.
        let before: Vec<&&OpRecord<V>> = writes
            .iter()
            .filter(|w| w.completed_at.is_some_and(|c| c < read.invoked_at))
            .collect();
        if before.is_empty() {
            legal.push(None); // initial value
        }
        for w in &before {
            if !before.iter().any(|w2| write_precedes(**w, **w2)) {
                legal.push(Some(write_index(**w)));
            }
        }
        // Writes concurrent with the read.
        for w in writes {
            if w.overlaps(read) {
                if let OpKind::Write { index, .. } = w.kind {
                    legal.push(Some(index));
                }
            }
        }
        legal.sort_unstable();
        legal.dedup();
        legal
    }

    fn judge<V: Clone + Eq + Hash + std::fmt::Debug>(
        history: &History<V>,
        writes: &[&OpRecord<V>],
        read: &OpRecord<V>,
        returned: &V,
    ) -> Option<Violation<V>> {
        let provenance = match history.provenance(returned) {
            Ok(p) => p,
            Err(_) => {
                return Some(Violation {
                    read: read.op,
                    node: read.node,
                    returned: returned.clone(),
                    explanation: "fabricated value: never written and not the initial value".into(),
                });
            }
        };
        let legal = Self::legal_indices(writes, read);
        if legal.contains(&provenance) {
            None
        } else {
            let legal_desc: Vec<String> = legal
                .iter()
                .map(|l| match l {
                    None => "initial".to_string(),
                    Some(i) => format!("write#{i}"),
                })
                .collect();
            let got = match provenance {
                None => "initial".to_string(),
                Some(i) => format!("write#{i}"),
            };
            Some(Violation {
                read: read.op,
                node: read.node,
                returned: returned.clone(),
                explanation: format!(
                    "read [{}..{}] returned {got} but legal values are {{{}}}",
                    read.invoked_at,
                    read.completed_at.expect("completed"),
                    legal_desc.join(", ")
                ),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynareg_sim::{NodeId, Time};

    fn n(i: u64) -> NodeId {
        NodeId::from_raw(i)
    }

    /// w1 = [1,4] → 10, w2 = [6,9] → 20.
    fn two_write_history() -> History<u64> {
        let mut h: History<u64> = History::new(0);
        let w1 = h.invoke_write(n(0), Time::at(1), 10);
        h.complete_write(w1, Time::at(4));
        let w2 = h.invoke_write(n(0), Time::at(6), 20);
        h.complete_write(w2, Time::at(9));
        h
    }

    fn with_read(mut h: History<u64>, inv: u64, comp: u64, value: u64) -> History<u64> {
        let r = h.invoke_read(n(1), Time::at(inv));
        h.complete_read(r, Time::at(comp), value);
        h
    }

    #[test]
    fn read_after_write_must_see_it() {
        let h = with_read(two_write_history(), 10, 11, 20);
        assert!(RegularityChecker::check(&h).is_ok());
        let stale = with_read(two_write_history(), 10, 11, 10);
        let report = RegularityChecker::check(&stale);
        assert_eq!(report.violation_count(), 1);
        assert!(report.violations[0]
            .explanation
            .contains("legal values are {write#1}"));
    }

    #[test]
    fn read_concurrent_with_write_may_see_old_or_new() {
        for value in [10, 20] {
            let h = with_read(two_write_history(), 7, 8, value);
            assert!(
                RegularityChecker::check(&h).is_ok(),
                "value {value} is legal"
            );
        }
        // But not the ancient initial value.
        let h = with_read(two_write_history(), 7, 8, 0);
        assert!(!RegularityChecker::check(&h).is_ok());
    }

    #[test]
    fn read_before_any_write_sees_initial() {
        let mut h: History<u64> = History::new(0);
        let r = h.invoke_read(n(1), Time::at(0));
        h.complete_read(r, Time::at(0), 0);
        assert!(RegularityChecker::check(&h).is_ok());
    }

    #[test]
    fn fabricated_value_is_flagged() {
        let h = with_read(two_write_history(), 10, 11, 999);
        let report = RegularityChecker::check(&h);
        assert_eq!(report.violation_count(), 1);
        assert!(report.violations[0].explanation.contains("fabricated"));
    }

    #[test]
    fn pending_write_is_concurrent_forever() {
        let mut h: History<u64> = History::new(0);
        h.invoke_write(n(0), Time::at(1), 10); // never completes (writer stays? crashed)
        let r = h.invoke_read(n(1), Time::at(100));
        h.complete_read(r, Time::at(101), 10);
        assert!(RegularityChecker::check(&h).is_ok());
        // The initial value is also still legal: no write ever *completed*.
        let r2 = h.invoke_read(n(1), Time::at(102));
        h.complete_read(r2, Time::at(103), 0);
        assert!(RegularityChecker::check(&h).is_ok());
    }

    #[test]
    fn read_spanning_both_writes_accepts_either_but_not_initial() {
        let h = with_read(two_write_history(), 2, 8, 10);
        assert!(RegularityChecker::check(&h).is_ok());
        let h = with_read(two_write_history(), 2, 8, 20);
        assert!(RegularityChecker::check(&h).is_ok());
        // Read invoked at 2 overlaps w1 (concurrent) → initial no longer
        // last-before? Last write completed before t=2: none → initial IS
        // legal via rule 1.
        let h = with_read(two_write_history(), 2, 8, 0);
        assert!(RegularityChecker::check(&h).is_ok());
    }

    #[test]
    fn new_old_inversion_is_legal_for_regular() {
        // r1 = [6,7] returns 20 (new), r2 = [8,8] returns 10 (old, but w2
        // is still concurrent? No: w2 = [6,9], r2 = [8,8] overlaps w2, so 10
        // = value before the concurrent write → legal. This is exactly the
        // §1 inversion figure.
        let h = with_read(two_write_history(), 6, 7, 20);
        let h = with_read(h, 8, 8, 10);
        assert!(RegularityChecker::check(&h).is_ok());
    }

    #[test]
    fn touching_endpoints_count_as_concurrent() {
        // Write completes at 4; read invoked at 4 → w completed_at <= inv,
        // so w is "before" AND overlapping. Both old (if later write) and
        // new legal; with single write, both initial? Check: read [4,5]
        // returning 10 is legal (last-before), returning 0 is not (w1
        // completed at exactly 4 — it is last-before … but also concurrent
        // by our closed-interval overlap, making 0 the value before the
        // concurrent write → legal).
        let mut h: History<u64> = History::new(0);
        let w1 = h.invoke_write(n(0), Time::at(1), 10);
        h.complete_write(w1, Time::at(4));
        let h1 = with_read(h.clone(), 4, 5, 10);
        assert!(RegularityChecker::check(&h1).is_ok());
        let h0 = with_read(h, 4, 5, 0);
        assert!(RegularityChecker::check(&h0).is_ok());
    }

    #[test]
    fn concurrent_cross_node_writes_are_both_legal_until_superseded() {
        // wa = [1,5] by n0 → 10, wb = [2,6] by n1 → 20: mutually
        // concurrent, so *both* stay legal quiescent values after they
        // complete — until a later write supersedes the pair.
        let mut h: History<u64> = History::new(0);
        let wa = h.invoke_write(n(0), Time::at(1), 10);
        let wb = h.invoke_write(n(1), Time::at(2), 20);
        h.complete_write(wa, Time::at(5));
        h.complete_write(wb, Time::at(6));
        for v in [10, 20] {
            let h2 = with_read(h.clone(), 8, 9, v);
            assert!(RegularityChecker::check(&h2).is_ok(), "value {v} legal");
            assert!(RegularityChecker::check_naive(&h2).is_ok());
        }
        let h0 = with_read(h.clone(), 8, 9, 0);
        assert_eq!(RegularityChecker::check(&h0).violation_count(), 1);
        assert_eq!(RegularityChecker::check_naive(&h0).violation_count(), 1);
        // A third write invoked after both completed supersedes both.
        let mut h3 = h;
        let wc = h3.invoke_write(n(0), Time::at(10), 30);
        h3.complete_write(wc, Time::at(11));
        let stale = with_read(h3.clone(), 12, 13, 20);
        assert_eq!(RegularityChecker::check(&stale).violation_count(), 1);
        assert_eq!(RegularityChecker::check_naive(&stale).violation_count(), 1);
        let fresh = with_read(h3, 12, 13, 30);
        assert!(RegularityChecker::check(&fresh).is_ok());
    }

    #[test]
    fn same_node_chain_orders_writes_even_at_touching_instants() {
        // n0 writes 10 over [1,3] then 20 over [3,5]: the second invocation
        // touches the first completion, so real time alone leaves them
        // unordered — the same-node clause of the hybrid order still
        // serializes them, keeping single-writer verdicts unchanged.
        let mut h: History<u64> = History::new(0);
        let w1 = h.invoke_write(n(0), Time::at(1), 10);
        h.complete_write(w1, Time::at(3));
        let w2 = h.invoke_write(n(0), Time::at(3), 20);
        h.complete_write(w2, Time::at(5));
        let stale = with_read(h.clone(), 6, 7, 10);
        assert_eq!(RegularityChecker::check(&stale).violation_count(), 1);
        assert_eq!(RegularityChecker::check_naive(&stale).violation_count(), 1);
        let fresh = with_read(h, 6, 7, 20);
        assert!(RegularityChecker::check(&fresh).is_ok());
    }

    #[test]
    fn report_counts_all_reads() {
        let mut h = two_write_history();
        for t in [10, 12, 14] {
            let r = h.invoke_read(n(2), Time::at(t));
            h.complete_read(r, Time::at(t + 1), 20);
        }
        let report = RegularityChecker::check(&h);
        assert_eq!(report.checked_reads, 3);
        assert!(report.is_ok());
    }
}
