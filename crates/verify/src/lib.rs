//! # dynareg-verify — histories and consistency checkers
//!
//! The paper specifies the register by two properties (§2.2):
//!
//! * **Liveness** — *"If a process invokes a read or a write operation and
//!   does not leave the system, it eventually returns from that operation."*
//! * **Safety** — *"A read operation returns the last value written before
//!   the read invocation, or a value written by a write operation concurrent
//!   with it."*
//!
//! This crate makes both *checkable*: a [`History`] records every join,
//! read and write with its invocation/response instants, and the checkers
//! render verdicts with explainable violations:
//!
//! | checker | semantics | paper reference |
//! |---|---|---|
//! | [`RegularityChecker`] | the Safety property above | §2.2, Theorems 1 & 4 |
//! | [`AtomicityChecker`] | regularity + no new/old inversion | §1 (the inversion figure) |
//! | [`SafeChecker`] | Lamport's *safe* register (weakest) | §1 |
//! | [`LivenessChecker`] | the Liveness property above | §2.2, Theorems 1 & 3 |
//!
//! Histories follow the paper's concurrency structure: **writes are totally
//! ordered** (single writer, or serialized writers as assumed in §5.3); the
//! checkers exploit this for a linear-time legal-value computation.
//!
//! Keyed register spaces generalize the history to one [`History`] per key
//! ([`SpaceHistory`]); every checker runs unchanged per key and
//! [`SpaceReport`] aggregates the verdicts (totals + worst key).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod atomic;
mod history;
mod liveness;
mod regular;
mod report;
mod safe;
mod space;

pub use atomic::AtomicityChecker;
pub use history::{FabricatedValue, History, OpKind, OpRecord};
pub use liveness::{LivenessChecker, LivenessReport};
pub use regular::RegularityChecker;
pub use report::{ConsistencyReport, Violation};
pub use safe::SafeChecker;
pub use space::{KeyVerdict, SpaceHistory, SpaceReport};
