//! Lamport's *safe* register semantics: the weakest rung of the ladder.
//!
//! §1 of the paper: a read **not** concurrent with any write must return the
//! register's current value; a read concurrent with a write may return
//! *anything in the value domain* — even a value never written. The checker
//! therefore only judges quiescent reads.

use std::hash::Hash;

use crate::history::{History, OpKind, OpRecord};
use crate::regular::{write_index, write_precedes, WriteSweep};
use crate::report::{ConsistencyReport, Violation};

/// Checks a history against **safe register** semantics.
///
/// Quiescent reads (no concurrent write) must return a current completed
/// write's value — one no later write (hybrid order, see
/// [`crate::RegularityChecker`]) had replaced by the read's invocation; for
/// a single writer that is exactly the last completed write. The initial
/// value is expected when no write completed yet. Concurrent reads are
/// uncheckable by definition and are skipped (but still counted in
/// `checked_reads`).
#[derive(Debug, Clone, Copy, Default)]
pub struct SafeChecker;

impl SafeChecker {
    /// Runs the check.
    ///
    /// Sweep-line over the write intervals (`WriteSweep`): quiescence is
    /// one binary search per read (does *any* write interval intersect the
    /// read?) and the expected value another — O((R+W) log W) total,
    /// versus the retained [`SafeChecker::check_naive`] oracle's O(R·W).
    pub fn check<V: Clone + Eq + Hash + std::fmt::Debug>(
        history: &History<V>,
    ) -> ConsistencyReport<V> {
        let sweep = WriteSweep::build(history);
        let mut violations = Vec::new();
        let mut checked = 0;

        for read in history.completed_reads() {
            checked += 1;
            let comp = read
                .completed_at
                .expect("completed_reads yields completed reads");
            if sweep.any_concurrent(read.invoked_at, comp) {
                continue; // any value allowed, even fabricated
            }
            let returned = match &read.kind {
                OpKind::Read { returned: Some(v) } => v,
                _ => unreachable!(),
            };
            let legal = match history.provenance(returned) {
                Err(_) => false,
                Ok(None) => !sweep.any_completed_before(read.invoked_at),
                Ok(Some(i)) => sweep.unsuperseded_before(i, read.invoked_at),
            };
            if !legal {
                // Rare path: enumerate the expected set for the report.
                let expected = Self::expected_desc(&sweep.by_index, read);
                violations.push(Self::quiescent_violation(read, returned, expected));
            }
        }

        ConsistencyReport {
            semantics: "safe",
            checked_reads: checked,
            violations,
            inversions: 0,
        }
    }

    /// Human description of the current-value set a quiescent read may
    /// return: the unsuperseded completed writes, or the initial value.
    fn expected_desc<V: Clone + Eq + Hash + std::fmt::Debug>(
        writes: &[&OpRecord<V>],
        read: &OpRecord<V>,
    ) -> String {
        let before: Vec<&&OpRecord<V>> = writes
            .iter()
            .filter(|w| w.completed_at.is_some_and(|c| c < read.invoked_at))
            .collect();
        if before.is_empty() {
            return "initial".to_string();
        }
        let mut idxs: Vec<usize> = before
            .iter()
            .filter(|w| !before.iter().any(|w2| write_precedes(**w, **w2)))
            .map(|w| write_index(**w))
            .collect();
        idxs.sort_unstable();
        match idxs.as_slice() {
            [i] => format!("write#{i}"),
            _ => {
                let names: Vec<String> = idxs.iter().map(|i| format!("write#{i}")).collect();
                format!("one of {{{}}}", names.join(", "))
            }
        }
    }

    fn quiescent_violation<V: Clone>(
        read: &OpRecord<V>,
        returned: &V,
        expected: String,
    ) -> Violation<V> {
        Violation {
            read: read.op,
            node: read.node,
            returned: returned.clone(),
            explanation: format!(
                "quiescent read must return {expected} (no write concurrent with it)"
            ),
        }
    }

    /// The original O(R·W) implementation, retained verbatim as the *test
    /// oracle* for the sweep-line [`SafeChecker::check`].
    pub fn check_naive<V: Clone + Eq + Hash + std::fmt::Debug>(
        history: &History<V>,
    ) -> ConsistencyReport<V> {
        let writes: Vec<&OpRecord<V>> = history.writes().collect();
        let mut violations = Vec::new();
        let mut checked = 0;

        for read in history.completed_reads() {
            checked += 1;
            let concurrent = writes.iter().any(|w| w.overlaps(read));
            if concurrent {
                continue; // any value allowed, even fabricated
            }
            let returned = match &read.kind {
                OpKind::Read { returned: Some(v) } => v,
                _ => unreachable!(),
            };
            let before: Vec<&&OpRecord<V>> = writes
                .iter()
                .filter(|w| w.completed_at.is_some_and(|c| c < read.invoked_at))
                .collect();
            let legal = match history.provenance(returned) {
                Err(_) => false,
                Ok(None) => before.is_empty(),
                Ok(Some(i)) => before.iter().any(|w| {
                    write_index(**w) == i && !before.iter().any(|w2| write_precedes(**w, **w2))
                }),
            };
            if !legal {
                let expected = Self::expected_desc(&writes, read);
                violations.push(Self::quiescent_violation(read, returned, expected));
            }
        }

        ConsistencyReport {
            semantics: "safe",
            checked_reads: checked,
            violations,
            inversions: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynareg_sim::{NodeId, Time};

    fn n(i: u64) -> NodeId {
        NodeId::from_raw(i)
    }

    fn base() -> History<u64> {
        let mut h: History<u64> = History::new(0);
        let w = h.invoke_write(n(0), Time::at(5), 10);
        h.complete_write(w, Time::at(8));
        h
    }

    #[test]
    fn quiescent_read_must_see_current_value() {
        let mut h = base();
        let r = h.invoke_read(n(1), Time::at(9));
        h.complete_read(r, Time::at(10), 10);
        assert!(SafeChecker::check(&h).is_ok());

        let mut h2 = base();
        let r2 = h2.invoke_read(n(1), Time::at(9));
        h2.complete_read(r2, Time::at(10), 0);
        let report = SafeChecker::check(&h2);
        assert_eq!(report.violation_count(), 1);
        assert!(report.violations[0].explanation.contains("quiescent"));
    }

    #[test]
    fn concurrent_read_may_return_garbage() {
        let mut h = base();
        let r = h.invoke_read(n(1), Time::at(6));
        h.complete_read(r, Time::at(7), 424242); // fabricated — fine for safe
        assert!(SafeChecker::check(&h).is_ok());
    }

    #[test]
    fn quiescent_fabricated_value_is_flagged() {
        let mut h = base();
        let r = h.invoke_read(n(1), Time::at(20));
        h.complete_read(r, Time::at(21), 424242);
        assert!(!SafeChecker::check(&h).is_ok());
    }

    #[test]
    fn read_before_all_writes_sees_initial() {
        let mut h = base();
        let r = h.invoke_read(n(1), Time::at(1));
        h.complete_read(r, Time::at(2), 0);
        assert!(SafeChecker::check(&h).is_ok());
    }

    #[test]
    fn quiescent_read_accepts_any_unsuperseded_concurrent_write() {
        // Two cross-node writes overlap each other ([1,5] and [2,6]), then
        // complete: a quiescent read after both may return either value —
        // neither superseded the other — but not the initial value.
        let mut h: History<u64> = History::new(0);
        let wa = h.invoke_write(n(0), Time::at(1), 10);
        let wb = h.invoke_write(n(1), Time::at(2), 20);
        h.complete_write(wa, Time::at(5));
        h.complete_write(wb, Time::at(6));
        for v in [10, 20] {
            let mut h2 = h.clone();
            let r = h2.invoke_read(n(2), Time::at(8));
            h2.complete_read(r, Time::at(9), v);
            assert!(SafeChecker::check(&h2).is_ok(), "value {v} legal");
            assert!(SafeChecker::check_naive(&h2).is_ok());
        }
        let mut h0 = h;
        let r = h0.invoke_read(n(2), Time::at(8));
        h0.complete_read(r, Time::at(9), 0);
        let report = SafeChecker::check(&h0);
        assert_eq!(report.violation_count(), 1);
        assert!(report.violations[0].explanation.contains("one of"));
        assert_eq!(SafeChecker::check_naive(&h0).violation_count(), 1);
    }

    #[test]
    fn checked_reads_counts_concurrent_ones_too() {
        let mut h = base();
        let r1 = h.invoke_read(n(1), Time::at(6));
        h.complete_read(r1, Time::at(7), 5);
        let r2 = h.invoke_read(n(1), Time::at(9));
        h.complete_read(r2, Time::at(10), 10);
        let report = SafeChecker::check(&h);
        assert_eq!(report.checked_reads, 2);
        assert!(report.is_ok());
    }
}
