//! The paper's Liveness property, §2.2: *"If a process invokes a read or a
//! write operation and does not leave the system, it eventually returns from
//! that operation."* (Joins have the analogous guarantee under the
//! protocols' churn assumptions — Lemma 1 and Lemma 5.)

use std::fmt;
use std::hash::Hash;

use dynareg_sim::metrics::Histogram;
use dynareg_sim::OpId;

use crate::history::{History, OpKind};

/// Verdict of a liveness check, with per-operation-kind latency statistics.
#[derive(Debug, Clone, Default)]
pub struct LivenessReport {
    /// Operations that never completed although their invoker never left —
    /// these are genuine liveness violations.
    pub stuck_ops: Vec<OpId>,
    /// Operations that never completed because their invoker left the
    /// system — excused by the specification.
    pub incomplete_leavers: usize,
    /// Completed operations.
    pub completed: usize,
    /// Latency (response − invocation, in ticks) of completed joins.
    pub join_latency: Histogram,
    /// Latency of completed reads.
    pub read_latency: Histogram,
    /// Latency of completed writes.
    pub write_latency: Histogram,
}

impl LivenessReport {
    /// Number of genuine liveness violations.
    pub fn incomplete_stayer_count(&self) -> usize {
        self.stuck_ops.len()
    }

    /// Whether liveness holds: every operation by a process that stayed
    /// completed.
    pub fn is_ok(&self) -> bool {
        self.stuck_ops.is_empty()
    }
}

impl fmt::Display for LivenessReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "liveness: {} ({} completed, {} excused by departure, {} stuck)",
            if self.is_ok() { "OK" } else { "VIOLATED" },
            self.completed,
            self.incomplete_leavers,
            self.stuck_ops.len()
        )?;
        writeln!(f, "  join latency:  {}", self.join_latency)?;
        writeln!(f, "  read latency:  {}", self.read_latency)?;
        write!(f, "  write latency: {}", self.write_latency)
    }
}

/// Checks the Liveness property over a finished run.
#[derive(Debug, Clone, Copy, Default)]
pub struct LivenessChecker;

impl LivenessChecker {
    /// Runs the check. A pending operation counts as *stuck* unless its
    /// invoker is recorded (via [`History::note_left`]) as having left.
    ///
    /// Note for eventually-synchronous runs: operations invoked shortly
    /// before the end of the run may be pending merely because the run was
    /// cut; callers typically stop the workload a few `δ` before the end.
    /// The report does not attempt to distinguish these — the scenario
    /// harness does (it drains in-flight operations before ending).
    pub fn check<V: Clone + Eq + Hash + fmt::Debug>(history: &History<V>) -> LivenessReport {
        let mut report = LivenessReport::default();
        for op in history.ops() {
            match op.completed_at {
                Some(done) => {
                    report.completed += 1;
                    let latency = done - op.invoked_at;
                    match op.kind {
                        OpKind::Join => report.join_latency.record_span(latency),
                        OpKind::Read { .. } => report.read_latency.record_span(latency),
                        OpKind::Write { .. } => report.write_latency.record_span(latency),
                    }
                }
                None => {
                    if history.left_at(op.node).is_some() {
                        report.incomplete_leavers += 1;
                    } else {
                        report.stuck_ops.push(op.op);
                    }
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynareg_sim::{NodeId, Time};

    fn n(i: u64) -> NodeId {
        NodeId::from_raw(i)
    }

    #[test]
    fn completed_ops_feed_latency_histograms() {
        let mut h: History<u64> = History::new(0);
        let j = h.invoke_join(n(1), Time::at(0));
        h.complete_join(j, Time::at(6)); // 3δ with δ=2
        let w = h.invoke_write(n(0), Time::at(10), 5);
        h.complete_write(w, Time::at(12));
        let r = h.invoke_read(n(1), Time::at(13));
        h.complete_read(r, Time::at(13), 5); // local read: zero latency
        let report = LivenessChecker::check(&h);
        assert!(report.is_ok());
        assert_eq!(report.completed, 3);
        assert_eq!(report.join_latency.max(), Some(6));
        assert_eq!(report.write_latency.mean(), Some(2.0));
        assert_eq!(report.read_latency.max(), Some(0));
    }

    #[test]
    fn stuck_stayer_is_a_violation() {
        let mut h: History<u64> = History::new(0);
        let r = h.invoke_read(n(1), Time::at(1));
        let report = LivenessChecker::check(&h);
        assert!(!report.is_ok());
        assert_eq!(report.stuck_ops, vec![r]);
    }

    #[test]
    fn leaver_is_excused() {
        let mut h: History<u64> = History::new(0);
        h.invoke_read(n(1), Time::at(1));
        h.note_left(n(1), Time::at(2));
        let report = LivenessChecker::check(&h);
        assert!(report.is_ok());
        assert_eq!(report.incomplete_leavers, 1);
    }

    #[test]
    fn display_summarizes() {
        let mut h: History<u64> = History::new(0);
        let r = h.invoke_read(n(1), Time::at(1));
        h.complete_read(r, Time::at(1), 0);
        let text = LivenessChecker::check(&h).to_string();
        assert!(text.contains("liveness: OK (1 completed"));
        assert!(text.contains("read latency"));
    }
}
