//! Per-key histories and verdicts for keyed register spaces.
//!
//! A register space is `k` independent registers over one membership
//! substrate, so its observable behaviour is `k` independent [`History`]s:
//! every key's writes are serialized *within that key*, every checker runs
//! unchanged per key, and the space-level verdict aggregates the per-key
//! reports (totals plus the worst key). A 1-key [`SpaceHistory`] is
//! exactly one [`History`] — the single-register path is the anchor-key
//! special case.

use std::fmt;
use std::hash::Hash;

use dynareg_sim::{NodeId, OpId, RegisterId, Time};

use crate::atomic::AtomicityChecker;
use crate::history::{History, OpKind};
use crate::liveness::{LivenessChecker, LivenessReport};
use crate::regular::RegularityChecker;
use crate::report::ConsistencyReport;

/// The recorded behaviour of one run of a `k`-key register space: one
/// [`History`] per key. Joins are membership-level events and appear in
/// *every* key's history (a joiner joins all registers at once), so each
/// per-key history is self-contained for the liveness checker.
#[derive(Debug, Clone)]
pub struct SpaceHistory<V> {
    keys: Vec<History<V>>,
}

impl<V: Clone + Eq + Hash + fmt::Debug> SpaceHistory<V> {
    /// A space of `keys` registers, each initialized to `initial` (the
    /// paper initializes every `register_k` to a common value, §3.3).
    ///
    /// # Panics
    /// Panics if `keys` is zero.
    pub fn new(keys: u32, initial: V) -> SpaceHistory<V> {
        assert!(keys > 0, "a register space needs at least one key");
        SpaceHistory {
            keys: (0..keys).map(|_| History::new(initial.clone())).collect(),
        }
    }

    /// Number of keys.
    pub fn key_count(&self) -> u32 {
        self.keys.len() as u32
    }

    /// The history of one key.
    pub fn key(&self, key: RegisterId) -> &History<V> {
        &self.keys[key.as_raw() as usize]
    }

    /// Mutable access to one key's history (the runtime's append path).
    pub fn key_mut(&mut self, key: RegisterId) -> &mut History<V> {
        &mut self.keys[key.as_raw() as usize]
    }

    /// Iterates `(key, history)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (RegisterId, &History<V>)> + '_ {
        self.keys
            .iter()
            .enumerate()
            .map(|(i, h)| (RegisterId::from_raw(i as u32), h))
    }

    /// Records the invocation of a join in **every** key's history,
    /// returning the per-key op ids in key order.
    pub fn invoke_join_all(&mut self, node: NodeId, t: Time) -> Vec<OpId> {
        self.keys
            .iter_mut()
            .map(|h| h.invoke_join(node, t))
            .collect()
    }

    /// Marks the per-key join ops (as returned by
    /// [`invoke_join_all`](SpaceHistory::invoke_join_all)) complete at `t`.
    ///
    /// # Panics
    /// Panics if `ops` does not carry one op per key.
    pub fn complete_join_all(&mut self, ops: &[OpId], t: Time) {
        assert_eq!(ops.len(), self.keys.len(), "one join op per key");
        for (h, &op) in self.keys.iter_mut().zip(ops) {
            h.complete_join(op, t);
        }
    }

    /// Records that `node` left the system at `t`, in every key's history.
    pub fn note_left(&mut self, node: NodeId, t: Time) {
        for h in &mut self.keys {
            h.note_left(node, t);
        }
    }

    /// Total operations recorded across keys.
    pub fn total_ops(&self) -> usize {
        self.keys.iter().map(|h| h.ops().len()).sum()
    }

    /// Decomposes the space into its per-key histories, in key order.
    pub fn into_histories(self) -> Vec<History<V>> {
        self.keys
    }

    /// Shard-quorum join liveness: a space join is live **iff every shard
    /// answered**, i.e. the space activates all keys atomically, so each
    /// node's join stream — `(node, invoked, completed)` in order — must
    /// be identical in every key's history. A key whose join completed at
    /// a different instant (or not at all) means some shard's quorum was
    /// never folded into the single `JoinComplete`, which the runtime
    /// promises never happens: sharded joiners hold the *whole* join open
    /// until the last shard meets quorum.
    pub fn joins_consistent(&self) -> bool {
        let join_stream = |h: &History<V>| -> Vec<(NodeId, Time, Option<Time>)> {
            h.ops()
                .iter()
                .filter(|r| matches!(r.kind, OpKind::Join))
                .map(|r| (r.node, r.invoked_at, r.completed_at))
                .collect()
        };
        let anchor = join_stream(&self.keys[0]);
        self.keys.iter().skip(1).all(|h| join_stream(h) == anchor)
    }
}

/// The verdicts of one key of a space.
#[derive(Debug, Clone)]
pub struct KeyVerdict<V> {
    /// The key.
    pub key: RegisterId,
    /// Regular-register verdict (the paper's Safety property).
    pub regularity: ConsistencyReport<V>,
    /// Atomic-register verdict (regularity + inversion-freedom).
    pub atomicity: ConsistencyReport<V>,
    /// Liveness verdict and latency statistics.
    pub liveness: LivenessReport,
}

impl<V> KeyVerdict<V> {
    /// Badness order: violations first, then stuck operations (used to
    /// pick the worst key; ties resolve to the lowest key).
    fn badness(&self) -> (usize, usize) {
        (
            self.regularity.violation_count(),
            self.liveness.incomplete_stayer_count(),
        )
    }
}

/// The space-level verdict: per-key reports plus aggregates.
///
/// # Example
///
/// ```
/// use dynareg_verify::{SpaceHistory, SpaceReport};
/// use dynareg_sim::{NodeId, RegisterId, Time};
///
/// let mut space: SpaceHistory<u64> = SpaceHistory::new(2, 0);
/// let w = space
///     .key_mut(RegisterId::from_raw(1))
///     .invoke_write(NodeId::from_raw(0), Time::at(1), 7);
/// space.key_mut(RegisterId::from_raw(1)).complete_write(w, Time::at(3));
/// let report = SpaceReport::check(&space);
/// assert!(report.all_regular() && report.all_live());
/// assert_eq!(report.key_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct SpaceReport<V> {
    /// One verdict per key, in key order.
    pub keys: Vec<KeyVerdict<V>>,
    /// Whether every node's join completed in all keys at one instant —
    /// the shard-quorum liveness invariant ("a join is live iff all shards
    /// answered"); see [`SpaceHistory::joins_consistent`].
    pub joins_consistent: bool,
}

impl<V: Clone + Eq + Hash + fmt::Debug> SpaceReport<V> {
    /// Runs every checker on every key, plus the space-level join
    /// consistency check.
    pub fn check(space: &SpaceHistory<V>) -> SpaceReport<V> {
        SpaceReport {
            keys: space
                .iter()
                .map(|(key, h)| KeyVerdict {
                    key,
                    regularity: RegularityChecker::check(h),
                    atomicity: AtomicityChecker::check(h),
                    liveness: LivenessChecker::check(h),
                })
                .collect(),
            joins_consistent: space.joins_consistent(),
        }
    }
}

impl<V> SpaceReport<V> {
    /// Number of keys checked.
    pub fn key_count(&self) -> u32 {
        self.keys.len() as u32
    }

    /// Whether every key satisfies regularity.
    pub fn all_regular(&self) -> bool {
        self.keys.iter().all(|k| k.regularity.is_ok())
    }

    /// Whether every key satisfies liveness — including the space-level
    /// join invariant (a join is live iff all shards answered, so it must
    /// complete in every key at once).
    pub fn all_live(&self) -> bool {
        self.joins_consistent && self.keys.iter().all(|k| k.liveness.is_ok())
    }

    /// Total reads checked across keys.
    pub fn total_reads_checked(&self) -> usize {
        self.keys.iter().map(|k| k.regularity.checked_reads).sum()
    }

    /// Total regularity violations across keys.
    pub fn total_violations(&self) -> usize {
        self.keys
            .iter()
            .map(|k| k.regularity.violation_count())
            .sum()
    }

    /// Total new/old inversion pairs across keys.
    pub fn total_inversions(&self) -> usize {
        self.keys.iter().map(|k| k.atomicity.inversions).sum()
    }

    /// Total stuck (liveness-violating) operations across keys.
    pub fn total_stuck(&self) -> usize {
        self.keys
            .iter()
            .map(|k| k.liveness.incomplete_stayer_count())
            .sum()
    }

    /// The worst key: most regularity violations, ties broken by stuck
    /// operations, then lowest key.
    ///
    /// # Panics
    /// Panics if the report is empty (a space has ≥ 1 key).
    pub fn worst_key(&self) -> &KeyVerdict<V> {
        self.keys
            .iter()
            .max_by(|a, b| {
                // Equal badness resolves to the LOWER key (`max_by` keeps
                // the later element, so reverse the key order in the tie).
                a.badness().cmp(&b.badness()).then(b.key.cmp(&a.key))
            })
            .expect("a space has at least one key")
    }

    /// One-line aggregate summary: totals per key count plus the worst key.
    pub fn summary(&self) -> String {
        let worst = self.worst_key();
        format!(
            "{} keys: reads={} violations={} inversions={} stuck={} | worst {}: violations={} stuck={}",
            self.key_count(),
            self.total_reads_checked(),
            self.total_violations(),
            self.total_inversions(),
            self.total_stuck(),
            worst.key,
            worst.regularity.violation_count(),
            worst.liveness.incomplete_stayer_count(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u64) -> NodeId {
        NodeId::from_raw(i)
    }

    fn k(i: u32) -> RegisterId {
        RegisterId::from_raw(i)
    }

    #[test]
    fn keys_are_independent_histories() {
        let mut s: SpaceHistory<u64> = SpaceHistory::new(3, 0);
        // The same value may be written to different keys (uniqueness is
        // per key), and write serialization is per key too.
        let w0 = s.key_mut(k(0)).invoke_write(n(0), Time::at(1), 7);
        s.key_mut(k(0)).complete_write(w0, Time::at(2));
        let w2 = s.key_mut(k(2)).invoke_write(n(0), Time::at(3), 7);
        s.key_mut(k(2)).complete_write(w2, Time::at(4));
        assert_eq!(s.key(k(0)).write_count(), 1);
        assert_eq!(s.key(k(1)).write_count(), 0);
        assert_eq!(s.key(k(2)).write_count(), 1);
        assert_eq!(s.total_ops(), 2);
    }

    #[test]
    fn joins_appear_in_every_key() {
        let mut s: SpaceHistory<u64> = SpaceHistory::new(2, 0);
        let ops = s.invoke_join_all(n(9), Time::at(5));
        assert_eq!(ops.len(), 2);
        s.complete_join_all(&ops, Time::at(8));
        for (_, h) in s.iter() {
            assert_eq!(h.ops().len(), 1);
            assert!(h.ops()[0].is_complete());
        }
    }

    #[test]
    fn note_left_excuses_on_every_key() {
        let mut s: SpaceHistory<u64> = SpaceHistory::new(2, 0);
        s.key_mut(k(0)).invoke_read(n(3), Time::at(1));
        s.key_mut(k(1)).invoke_read(n(3), Time::at(1));
        s.note_left(n(3), Time::at(2));
        let report = SpaceReport::check(&s);
        assert!(report.all_live(), "departed reader is excused on both keys");
    }

    #[test]
    fn worst_key_ranks_by_violations_then_stuck() {
        let mut s: SpaceHistory<u64> = SpaceHistory::new(3, 0);
        // Key 1: a fabricated read (regularity violation).
        let r = s.key_mut(k(1)).invoke_read(n(1), Time::at(1));
        s.key_mut(k(1)).complete_read(r, Time::at(2), 999);
        // Key 2: a stuck stayer.
        s.key_mut(k(2)).invoke_read(n(2), Time::at(1));
        let report = SpaceReport::check(&s);
        assert!(!report.all_regular());
        assert!(!report.all_live());
        assert_eq!(report.worst_key().key, k(1));
        assert_eq!(report.total_violations(), 1);
        assert_eq!(report.total_stuck(), 1);
        let summary = report.summary();
        assert!(summary.contains("worst r1"), "{summary}");
    }

    #[test]
    fn worst_key_ties_resolve_to_the_lowest_key() {
        let s: SpaceHistory<u64> = SpaceHistory::new(3, 0);
        let report = SpaceReport::check(&s);
        assert_eq!(report.worst_key().key, k(0), "clean space → anchor key");
    }

    #[test]
    fn join_missing_from_one_key_breaks_consistency_and_liveness() {
        let mut s: SpaceHistory<u64> = SpaceHistory::new(2, 0);
        // A join recorded (and completed) in key 0 only: some shard never
        // answered, yet the runtime claimed completion — the invariant the
        // space-level check exists to catch.
        let op = s.key_mut(k(0)).invoke_join(n(9), Time::at(1));
        s.key_mut(k(0)).complete_join(op, Time::at(4));
        assert!(!s.joins_consistent());
        let report = SpaceReport::check(&s);
        assert!(!report.joins_consistent);
        assert!(
            !report.all_live(),
            "inconsistent joins are a liveness defect"
        );
    }

    #[test]
    fn join_completing_at_different_instants_breaks_consistency() {
        let mut s: SpaceHistory<u64> = SpaceHistory::new(2, 0);
        let ops = s.invoke_join_all(n(9), Time::at(1));
        assert!(s.joins_consistent(), "pending everywhere is consistent");
        s.key_mut(k(0)).complete_join(ops[0], Time::at(3));
        assert!(!s.joins_consistent(), "one shard answered, one did not");
        s.key_mut(k(1)).complete_join(ops[1], Time::at(5));
        assert!(!s.joins_consistent(), "staggered completion is not atomic");
    }

    #[test]
    fn atomic_joins_are_consistent() {
        let mut s: SpaceHistory<u64> = SpaceHistory::new(3, 0);
        let ops = s.invoke_join_all(n(9), Time::at(1));
        s.complete_join_all(&ops, Time::at(4));
        let pending = s.invoke_join_all(n(10), Time::at(6));
        assert!(s.joins_consistent(), "pending in every key is consistent");
        s.complete_join_all(&pending, Time::at(9));
        assert!(s.joins_consistent());
        let report = SpaceReport::check(&s);
        assert!(report.joins_consistent);
        assert!(report.all_live(), "{}", report.summary());
    }

    #[test]
    fn one_key_space_is_a_single_history() {
        let mut s: SpaceHistory<u64> = SpaceHistory::new(1, 0);
        let w = s.key_mut(k(0)).invoke_write(n(0), Time::at(1), 5);
        s.key_mut(k(0)).complete_write(w, Time::at(2));
        let histories = s.into_histories();
        assert_eq!(histories.len(), 1);
        assert_eq!(histories[0].write_count(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one key")]
    fn zero_keys_rejected() {
        let _ = SpaceHistory::<u64>::new(0, 0);
    }
}
