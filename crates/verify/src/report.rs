//! Checker verdicts.

use std::fmt;

use dynareg_sim::{NodeId, OpId, Time};

use crate::history::History;

/// One explained safety violation found by a checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation<V> {
    /// The offending read (or the later read of an inversion pair).
    pub read: OpId,
    /// The process that performed it.
    pub node: NodeId,
    /// The value it returned.
    pub returned: V,
    /// Human-readable explanation citing the legal alternatives.
    pub explanation: String,
}

impl<V: fmt::Debug> fmt::Display for Violation<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} by {} returned {:?}: {}",
            self.read, self.node, self.returned, self.explanation
        )
    }
}

/// Aggregate verdict of a consistency checker over one history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConsistencyReport<V> {
    /// Which semantics was checked ("regular", "atomic", "safe").
    pub semantics: &'static str,
    /// Completed reads examined.
    pub checked_reads: usize,
    /// All violations found, in history order.
    pub violations: Vec<Violation<V>>,
    /// New/old inversion pairs found (atomicity checks only; zero
    /// otherwise). Inversions also appear in `violations`.
    pub inversions: usize,
}

impl<V> ConsistencyReport<V> {
    /// Whether the history satisfies the checked semantics.
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Number of violations.
    pub fn violation_count(&self) -> usize {
        self.violations.len()
    }

    /// Completion times of the violating reads, looked up in `history`.
    ///
    /// Violations only ever cite completed reads, so every entry has a
    /// concrete time. Lets chaos tests attribute bad reads to a fault
    /// window instead of eyeballing a pass/fail verdict.
    pub fn violation_completion_times(&self, history: &History<V>) -> Vec<Time>
    where
        V: Clone + Eq + std::hash::Hash + fmt::Debug,
    {
        self.violations
            .iter()
            .filter_map(|v| history.get(v.read).and_then(|rec| rec.completed_at))
            .collect()
    }

    /// How many violating reads completed inside `[from, until)`.
    pub fn violations_completed_in(&self, history: &History<V>, from: Time, until: Time) -> usize
    where
        V: Clone + Eq + std::hash::Hash + fmt::Debug,
    {
        self.violation_completion_times(history)
            .into_iter()
            .filter(|t| *t >= from && *t < until)
            .count()
    }
}

impl<V: fmt::Debug> fmt::Display for ConsistencyReport<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_ok() {
            write!(
                f,
                "{}: OK ({} reads checked)",
                self.semantics, self.checked_reads
            )
        } else {
            writeln!(
                f,
                "{}: {} violation(s) over {} reads:",
                self.semantics,
                self.violations.len(),
                self.checked_reads
            )?;
            for v in &self.violations {
                writeln!(f, "  - {v}")?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ok_report_displays_compactly() {
        let r: ConsistencyReport<u64> = ConsistencyReport {
            semantics: "regular",
            checked_reads: 12,
            violations: vec![],
            inversions: 0,
        };
        assert!(r.is_ok());
        assert_eq!(r.to_string(), "regular: OK (12 reads checked)");
    }

    #[test]
    fn failing_report_lists_violations() {
        let r = ConsistencyReport {
            semantics: "regular",
            checked_reads: 2,
            violations: vec![Violation {
                read: OpId::from_raw(5),
                node: NodeId::from_raw(1),
                returned: 7u64,
                explanation: "stale: last completed write was 9".into(),
            }],
            inversions: 0,
        };
        assert!(!r.is_ok());
        assert_eq!(r.violation_count(), 1);
        let text = r.to_string();
        assert!(text.contains("op5 by p1 returned 7"));
        assert!(text.contains("stale"));
    }
}
