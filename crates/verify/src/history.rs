//! Operation histories.
//!
//! A [`History`] is the observable behaviour of one run: for every join,
//! read and write, who invoked it, when, when it returned (if it did) and
//! with what value. The simulation runtime appends to the history as
//! operations progress; checkers consume it read-only afterwards.

// Lookup-only acceleration indexes: inserted and probed by key, never
// iterated (detlint's unordered-iteration rule guards that), and
// `value_writer_index` is keyed by the generic `V: Hash` which has no `Ord`
// bound — a BTreeMap cannot back it.
#[allow(clippy::disallowed_types)]
use std::collections::HashMap;
use std::hash::Hash;

use dynareg_sim::{NodeId, OpId, Time};

/// What kind of operation a record describes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpKind<V> {
    /// A `join` operation (returns no value).
    Join,
    /// A `read`; carries the returned value once completed.
    Read {
        /// The value the read returned, `None` while pending.
        returned: Option<V>,
    },
    /// A `write` of the given value.
    Write {
        /// The value written.
        value: V,
        /// Invocation index among all writes (0 = first write invoked).
        /// For a single writer this is the serialization order; with
        /// concurrent writers it only orders each node's own writes (the
        /// checkers use the hybrid real-time ∪ same-node order).
        index: usize,
    },
}

/// One operation in a history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpRecord<V> {
    /// Unique operation id.
    pub op: OpId,
    /// The process that invoked it.
    pub node: NodeId,
    /// Kind and (for completed reads) result.
    pub kind: OpKind<V>,
    /// Invocation instant.
    pub invoked_at: Time,
    /// Response instant; `None` if still pending at end of run.
    pub completed_at: Option<Time>,
}

impl<V> OpRecord<V> {
    /// Whether the operation completed.
    pub fn is_complete(&self) -> bool {
        self.completed_at.is_some()
    }

    /// Whether this record overlaps in real time with `[inv, comp]` of
    /// another operation; pending operations extend to infinity.
    pub fn overlaps(&self, other: &OpRecord<V>) -> bool {
        let self_end_after_other_start = match self.completed_at {
            Some(c) => c >= other.invoked_at,
            None => true,
        };
        let other_end_after_self_start = match other.completed_at {
            Some(c) => c >= self.invoked_at,
            None => true,
        };
        self_end_after_other_start && other_end_after_self_start
    }
}

/// The recorded behaviour of one run.
///
/// # Write ordering
///
/// Each *process's* writes to the register must be serial
/// ([`History::invoke_write`] asserts it); writes by *different* processes
/// may overlap — the multi-writer setting the ES protocol's `(sn, writer)`
/// timestamps serialize. Checkers order writes by the hybrid relation
/// `w < w′ iff w completed before w′ was invoked, or both are by the same
/// node and w was invoked first`; on a single-writer history that relation
/// is exactly the total invocation order, so the classic checks are a
/// special case. Write values must be unique across the run — the paper's
/// proofs make the same no-duplicate assumption ("without loss of
/// generality", Theorem 4) and it is what lets checkers recover the
/// reads-from mapping.
///
/// # Example
///
/// ```
/// use dynareg_verify::History;
/// use dynareg_sim::{NodeId, Time};
///
/// let mut h: History<u64> = History::new(0);
/// let writer = NodeId::from_raw(0);
/// let w = h.invoke_write(writer, Time::at(1), 10);
/// h.complete_write(w, Time::at(5));
/// let r = h.invoke_read(NodeId::from_raw(1), Time::at(6));
/// h.complete_read(r, Time::at(6), 10);
/// assert_eq!(h.completed_reads().count(), 1);
/// ```
#[derive(Debug, Clone)]
#[allow(clippy::disallowed_types)] // lookup-only indexes, see the import note
pub struct History<V> {
    initial: V,
    ops: Vec<OpRecord<V>>,
    index_of: HashMap<OpId, usize>,
    write_count: usize,
    last_write_by_node: HashMap<NodeId, OpId>,
    value_writer_index: HashMap<V, usize>,
    left_at: HashMap<NodeId, Time>,
    next_op: u64,
}

impl<V: Clone + Eq + Hash + std::fmt::Debug> History<V> {
    /// A history over a register whose initial value is `initial` (the
    /// paper initializes every `register_k` to a common value, §3.3).
    #[allow(clippy::disallowed_types)] // lookup-only indexes, see the import note
    pub fn new(initial: V) -> History<V> {
        History {
            initial,
            ops: Vec::new(),
            index_of: HashMap::new(),
            write_count: 0,
            last_write_by_node: HashMap::new(),
            value_writer_index: HashMap::new(),
            left_at: HashMap::new(),
            next_op: 0,
        }
    }

    /// The register's initial value.
    pub fn initial(&self) -> &V {
        &self.initial
    }

    fn fresh_op(&mut self) -> OpId {
        let id = OpId::from_raw(self.next_op);
        self.next_op += 1;
        id
    }

    fn push(&mut self, rec: OpRecord<V>) -> OpId {
        let id = rec.op;
        self.index_of.insert(id, self.ops.len());
        self.ops.push(rec);
        id
    }

    /// Records the invocation of a join by `node` at `t`.
    pub fn invoke_join(&mut self, node: NodeId, t: Time) -> OpId {
        let op = self.fresh_op();
        self.push(OpRecord {
            op,
            node,
            kind: OpKind::Join,
            invoked_at: t,
            completed_at: None,
        })
    }

    /// Records the invocation of a read by `node` at `t`.
    pub fn invoke_read(&mut self, node: NodeId, t: Time) -> OpId {
        let op = self.fresh_op();
        self.push(OpRecord {
            op,
            node,
            kind: OpKind::Read { returned: None },
            invoked_at: t,
            completed_at: None,
        })
    }

    /// Records the invocation of a write of `value` by `node` at `t`.
    ///
    /// # Panics
    ///
    /// Panics if `node`'s own previous write is still pending (a process's
    /// writes to one register are serial; writes by *different* processes
    /// may overlap — the multi-writer setting). Also panics if `value`
    /// repeats an earlier write's value.
    pub fn invoke_write(&mut self, node: NodeId, t: Time, value: V) -> OpId {
        if let Some(&prev) = self.last_write_by_node.get(&node) {
            let rec = self.get(prev).expect("recorded write");
            assert!(
                rec.is_complete(),
                "a process's writes on one register must be serial"
            );
        }
        assert!(
            value != self.initial && !self.value_writer_index.contains_key(&value),
            "write values must be unique (got duplicate {value:?})"
        );
        let index = self.write_count;
        self.write_count += 1;
        self.value_writer_index.insert(value.clone(), index);
        let op = self.fresh_op();
        self.last_write_by_node.insert(node, op);
        self.push(OpRecord {
            op,
            node,
            kind: OpKind::Write { value, index },
            invoked_at: t,
            completed_at: None,
        })
    }

    fn rec_mut(&mut self, op: OpId) -> &mut OpRecord<V> {
        let i = *self.index_of.get(&op).expect("unknown op id");
        &mut self.ops[i]
    }

    /// Marks join `op` complete at `t`.
    ///
    /// # Panics
    /// Panics if `op` is not a pending join.
    pub fn complete_join(&mut self, op: OpId, t: Time) {
        let rec = self.rec_mut(op);
        assert!(matches!(rec.kind, OpKind::Join), "{op} is not a join");
        assert!(rec.completed_at.is_none(), "{op} completed twice");
        assert!(t >= rec.invoked_at);
        rec.completed_at = Some(t);
    }

    /// Marks read `op` complete at `t`, returning `value`.
    ///
    /// # Panics
    /// Panics if `op` is not a pending read.
    pub fn complete_read(&mut self, op: OpId, t: Time, value: V) {
        let rec = self.rec_mut(op);
        match &mut rec.kind {
            OpKind::Read { returned } => {
                assert!(
                    returned.is_none() && rec.completed_at.is_none(),
                    "{op} completed twice"
                );
                *returned = Some(value);
            }
            _ => panic!("{op} is not a read"),
        }
        assert!(t >= rec.invoked_at);
        rec.completed_at = Some(t);
    }

    /// Marks write `op` complete at `t`.
    ///
    /// # Panics
    /// Panics if `op` is not a pending write.
    pub fn complete_write(&mut self, op: OpId, t: Time) {
        let rec = self.rec_mut(op);
        assert!(
            matches!(rec.kind, OpKind::Write { .. }),
            "{op} is not a write"
        );
        assert!(rec.completed_at.is_none(), "{op} completed twice");
        assert!(t >= rec.invoked_at);
        rec.completed_at = Some(t);
    }

    /// Records that `node` left the system at `t` (used by the liveness
    /// checker to excuse its pending operations).
    pub fn note_left(&mut self, node: NodeId, t: Time) {
        self.left_at.entry(node).or_insert(t);
    }

    /// When `node` left, if it did.
    pub fn left_at(&self, node: NodeId) -> Option<Time> {
        self.left_at.get(&node).copied()
    }

    /// All records, in invocation order.
    pub fn ops(&self) -> &[OpRecord<V>] {
        &self.ops
    }

    /// Looks up a record by id.
    pub fn get(&self, op: OpId) -> Option<&OpRecord<V>> {
        self.index_of.get(&op).map(|&i| &self.ops[i])
    }

    /// All write records (complete and pending), in invocation order.
    pub fn writes(&self) -> impl Iterator<Item = &OpRecord<V>> + '_ {
        self.ops
            .iter()
            .filter(|r| matches!(r.kind, OpKind::Write { .. }))
    }

    /// All completed reads.
    pub fn completed_reads(&self) -> impl Iterator<Item = &OpRecord<V>> + '_ {
        self.ops
            .iter()
            .filter(|r| matches!(r.kind, OpKind::Read { .. }) && r.is_complete())
    }

    /// Number of writes ever invoked.
    pub fn write_count(&self) -> usize {
        self.write_count
    }

    /// The invocation index of the write that produced `value`:
    /// `None` for the initial value (conceptually index −1 / "write 0" in
    /// the paper's v₀ convention), `Some(i)` for the i-th write.
    ///
    /// Returns `Err` if `value` was never written nor initial — a read
    /// returning it is a *fabricated value* violation.
    pub fn provenance(&self, value: &V) -> Result<Option<usize>, FabricatedValue> {
        if *value == self.initial {
            Ok(None)
        } else {
            self.value_writer_index
                .get(value)
                .copied()
                .map(Some)
                .ok_or(FabricatedValue)
        }
    }
}

/// Error from [`History::provenance`]: the value was never written and is
/// not the register's initial value, so any read returning it fabricated it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricatedValue;

impl std::fmt::Display for FabricatedValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("value was never written and is not the initial value")
    }
}

impl std::error::Error for FabricatedValue {}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u64) -> NodeId {
        NodeId::from_raw(i)
    }

    #[test]
    fn write_indices_are_serial() {
        let mut h: History<u64> = History::new(0);
        let w1 = h.invoke_write(n(0), Time::at(1), 10);
        h.complete_write(w1, Time::at(2));
        let w2 = h.invoke_write(n(0), Time::at(3), 20);
        h.complete_write(w2, Time::at(4));
        let idx: Vec<usize> = h
            .writes()
            .map(|r| match r.kind {
                OpKind::Write { index, .. } => index,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(idx, vec![0, 1]);
        assert_eq!(h.write_count(), 2);
    }

    #[test]
    #[should_panic(expected = "serial")]
    fn same_node_concurrent_writes_rejected() {
        let mut h: History<u64> = History::new(0);
        h.invoke_write(n(0), Time::at(1), 10);
        h.invoke_write(n(0), Time::at(2), 20); // node 0's write still pending
    }

    #[test]
    fn cross_node_concurrent_writes_allowed() {
        let mut h: History<u64> = History::new(0);
        let w1 = h.invoke_write(n(0), Time::at(1), 10);
        let w2 = h.invoke_write(n(1), Time::at(2), 20); // overlaps w1: fine
        h.complete_write(w2, Time::at(3));
        h.complete_write(w1, Time::at(4));
        assert_eq!(h.write_count(), 2);
    }

    #[test]
    #[should_panic(expected = "unique")]
    fn duplicate_values_rejected() {
        let mut h: History<u64> = History::new(0);
        let w = h.invoke_write(n(0), Time::at(1), 10);
        h.complete_write(w, Time::at(2));
        h.invoke_write(n(0), Time::at(3), 10);
    }

    #[test]
    #[should_panic(expected = "unique")]
    fn writing_the_initial_value_rejected() {
        let mut h: History<u64> = History::new(0);
        h.invoke_write(n(0), Time::at(1), 0);
    }

    #[test]
    fn provenance_resolves_initial_written_and_fabricated() {
        let mut h: History<u64> = History::new(0);
        let w = h.invoke_write(n(0), Time::at(1), 10);
        h.complete_write(w, Time::at(2));
        assert_eq!(h.provenance(&0), Ok(None));
        assert_eq!(h.provenance(&10), Ok(Some(0)));
        assert_eq!(h.provenance(&99), Err(FabricatedValue));
    }

    #[test]
    fn overlap_semantics_with_pending_ops() {
        let a = OpRecord::<u64> {
            op: OpId::from_raw(0),
            node: n(0),
            kind: OpKind::Join,
            invoked_at: Time::at(1),
            completed_at: Some(Time::at(5)),
        };
        let b = OpRecord::<u64> {
            op: OpId::from_raw(1),
            node: n(1),
            kind: OpKind::Join,
            invoked_at: Time::at(5),
            completed_at: None,
        };
        let c = OpRecord::<u64> {
            op: OpId::from_raw(2),
            node: n(2),
            kind: OpKind::Join,
            invoked_at: Time::at(6),
            completed_at: Some(Time::at(9)),
        };
        assert!(a.overlaps(&b), "touching endpoints count as concurrent");
        assert!(!a.overlaps(&c));
        assert!(b.overlaps(&c), "pending op extends forever");
    }

    #[test]
    fn read_completion_stores_value() {
        let mut h: History<u64> = History::new(0);
        let r = h.invoke_read(n(1), Time::at(3));
        h.complete_read(r, Time::at(4), 0);
        let rec = h.get(r).unwrap();
        assert_eq!(rec.kind, OpKind::Read { returned: Some(0) });
        assert_eq!(rec.completed_at, Some(Time::at(4)));
    }

    #[test]
    #[should_panic(expected = "completed twice")]
    fn double_completion_rejected() {
        let mut h: History<u64> = History::new(0);
        let r = h.invoke_read(n(1), Time::at(3));
        h.complete_read(r, Time::at(4), 0);
        h.complete_read(r, Time::at(5), 0);
    }

    #[test]
    fn departures_are_first_wins() {
        let mut h: History<u64> = History::new(0);
        h.note_left(n(4), Time::at(7));
        h.note_left(n(4), Time::at(9));
        assert_eq!(h.left_at(n(4)), Some(Time::at(7)));
        assert_eq!(h.left_at(n(5)), None);
    }
}
