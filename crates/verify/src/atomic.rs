//! Atomic (linearizable) register semantics: regularity **plus** no
//! new/old inversion.
//!
//! The unnumbered figure of the paper's §1 shows the phenomenon: two
//! sequential reads `r₁ → r₂` concurrent with writes `w₁ → w₂` where `r₁`
//! returns `w₂`'s value and `r₂` returns `w₁`'s — legal for a regular
//! register, forbidden for an atomic one. For a single-writer register with
//! totally ordered writes, *regular + inversion-free* is exactly atomic
//! (Lamport 1986), which is what this checker decides. With concurrent
//! writers the scan orders writes by the same hybrid relation the
//! regularity checker uses (real-time precedence ∪ per-node invocation
//! order): a read invokes an inversion when an earlier-completed read had
//! already returned a write that strictly follows the one it returns —
//! mutually concurrent cross-node writes stay unordered, so reads may
//! return them in either order without penalty.

use std::hash::Hash;

use dynareg_sim::Time;

use crate::history::{History, OpKind, OpRecord};
use crate::regular::RegularityChecker;
use crate::report::{ConsistencyReport, Violation};

/// Checks a history against **atomic register** semantics.
///
/// Runs the [`RegularityChecker`] first, then scans for new/old inversions:
/// a pair of reads `r₁`, `r₂` with `r₁` completing before `r₂` is invoked,
/// where `r₂` returns an older write than `r₁`. The scan is `O(R log R)`
/// via a sweep over completion/invocation instants.
#[derive(Debug, Clone, Copy, Default)]
pub struct AtomicityChecker;

impl AtomicityChecker {
    /// Runs the check; inversions are reported as violations on the later
    /// read and tallied in [`ConsistencyReport::inversions`].
    pub fn check<V: Clone + Eq + Hash + std::fmt::Debug>(
        history: &History<V>,
    ) -> ConsistencyReport<V> {
        let mut report = RegularityChecker::check(history);
        report.semantics = "atomic";
        let inversions = Self::find_inversions(history);
        report.inversions = inversions.len();
        report.violations.extend(inversions);
        report
    }

    /// Oracle variant built on [`RegularityChecker::check_naive`]; the
    /// inversion scan is shared (it was already a sweep).
    pub fn check_naive<V: Clone + Eq + Hash + std::fmt::Debug>(
        history: &History<V>,
    ) -> ConsistencyReport<V> {
        let mut report = RegularityChecker::check_naive(history);
        report.semantics = "atomic";
        let inversions = Self::find_inversions(history);
        report.inversions = inversions.len();
        report.violations.extend(inversions);
        report
    }

    /// Counts new/old inversion pairs without running the regularity check
    /// (used by the E1/E10 experiments to quantify inversion frequency).
    pub fn count_inversions<V: Clone + Eq + Hash + std::fmt::Debug>(history: &History<V>) -> usize {
        Self::find_inversions(history).len()
    }

    /// Reads-from index of a completed read: `-1` for the initial value,
    /// `i` for the i-th write, `None` when the value is fabricated (the
    /// regularity checker reports those; the inversion scan skips them).
    fn reads_from_index<V: Clone + Eq + Hash + std::fmt::Debug>(
        history: &History<V>,
        read: &OpRecord<V>,
    ) -> Option<i64> {
        let returned = match &read.kind {
            OpKind::Read { returned: Some(v) } => v,
            _ => return None,
        };
        match history.provenance(returned) {
            Ok(None) => Some(-1),
            Ok(Some(i)) => Some(i as i64),
            Err(_) => None,
        }
    }

    fn find_inversions<V: Clone + Eq + Hash + std::fmt::Debug>(
        history: &History<V>,
    ) -> Vec<Violation<V>> {
        struct ReadView<V> {
            invoked_at: Time,
            completed_at: Time,
            idx: i64,
            op: dynareg_sim::OpId,
            node: dynareg_sim::NodeId,
            returned: V,
        }
        // Writes addressable by invocation index (dense 0..write_count).
        let mut by_index: Vec<&OpRecord<V>> = history.writes().collect();
        by_index.sort_unstable_by_key(|w| match w.kind {
            OpKind::Write { index, .. } => index,
            _ => unreachable!("writes() yields writes"),
        });
        let mut reads: Vec<ReadView<V>> = history
            .completed_reads()
            .filter_map(|r| {
                let idx = Self::reads_from_index(history, r)?;
                let returned = match &r.kind {
                    OpKind::Read { returned: Some(v) } => v.clone(),
                    _ => unreachable!(),
                };
                Some(ReadView {
                    invoked_at: r.invoked_at,
                    completed_at: r.completed_at.expect("completed"),
                    idx,
                    op: r.op,
                    node: r.node,
                    returned,
                })
            })
            .collect();

        // Sweep: for each read in invocation order, no read that *completed
        // strictly before* its invocation may have returned a write that
        // strictly follows (hybrid order) the one this read returns.
        let mut by_completion: Vec<usize> = (0..reads.len()).collect();
        by_completion.sort_by_key(|&i| (reads[i].completed_at, reads[i].op));
        let mut by_invocation: Vec<usize> = (0..reads.len()).collect();
        by_invocation.sort_by_key(|&i| (reads[i].invoked_at, reads[i].op));

        let mut violations = Vec::new();
        // Global max returned index (single-writer clause + the
        // initial-value case); first read to reach it, as old readers of
        // the report expect.
        let mut max_done: i64 = i64::MIN;
        let mut max_done_op = None;
        // Per-writer-node max returned index: the same-node clause of the
        // hybrid order. For a single writer this equals `max_done`.
        let mut node_max: std::collections::BTreeMap<
            dynareg_sim::NodeId,
            (usize, dynareg_sim::OpId),
        > = std::collections::BTreeMap::new();
        // Latest invocation among returned writes: the real-time clause —
        // a returned write invoked after write `w` completed proves `w`
        // was already replaced.
        let mut max_inv: Option<(Time, dynareg_sim::OpId, i64)> = None;
        let mut cp = 0;
        for &ri in &by_invocation {
            let inv = reads[ri].invoked_at;
            while cp < by_completion.len() && reads[by_completion[cp]].completed_at < inv {
                let done = &reads[by_completion[cp]];
                if done.idx > max_done {
                    max_done = done.idx;
                    max_done_op = Some(done.op);
                }
                if done.idx >= 0 {
                    let w = by_index[done.idx as usize];
                    let e = node_max
                        .entry(w.node)
                        .or_insert((done.idx as usize, done.op));
                    if done.idx as usize > e.0 {
                        *e = (done.idx as usize, done.op);
                    }
                    if max_inv.is_none_or(|(t, _, _)| w.invoked_at > t) {
                        max_inv = Some((w.invoked_at, done.op, done.idx));
                    }
                }
                cp += 1;
            }
            let r = &reads[ri];
            let inverted = if r.idx < 0 {
                // Initial value after some read already returned a write.
                (max_done > -1).then(|| (max_done_op.expect("set with max_done"), max_done))
            } else {
                let w = by_index[r.idx as usize];
                let same_node = node_max
                    .get(&w.node)
                    .filter(|&&(j, _)| j > r.idx as usize)
                    .map(|&(j, op)| (op, j as i64));
                same_node.or_else(|| {
                    // Real-time clause: only a *completed* returned write
                    // can have been invoked after; a pending write is
                    // concurrent with everything after its invocation.
                    let c = w.completed_at?;
                    max_inv.filter(|&(t, _, _)| t > c).map(|(_, op, j)| (op, j))
                })
            };
            if let Some((prior_op, prior_idx)) = inverted {
                violations.push(Violation {
                    read: r.op,
                    node: r.node,
                    returned: r.returned.clone(),
                    explanation: format!(
                        "new/old inversion: returned write#{} but {} (completed earlier) \
                         already returned write#{}",
                        r.idx, prior_op, prior_idx
                    ),
                });
            }
        }
        // Keep deterministic order by op id for stable reports.
        violations.sort_by_key(|v| v.read);
        reads.clear();
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynareg_sim::NodeId;

    fn n(i: u64) -> NodeId {
        NodeId::from_raw(i)
    }

    /// w1 = [1,4] → 10, w2 = [6,9] → 20.
    fn two_write_history() -> History<u64> {
        let mut h: History<u64> = History::new(0);
        let w1 = h.invoke_write(n(0), Time::at(1), 10);
        h.complete_write(w1, Time::at(4));
        let w2 = h.invoke_write(n(0), Time::at(6), 20);
        h.complete_write(w2, Time::at(9));
        h
    }

    fn read(h: &mut History<u64>, node: u64, inv: u64, comp: u64, value: u64) {
        let r = h.invoke_read(n(node), Time::at(inv));
        h.complete_read(r, Time::at(comp), value);
    }

    #[test]
    fn paper_figure_inversion_is_caught() {
        // The §1 figure: r1 ends before r2 starts; r1 returns the newer w2,
        // r2 returns the older w1 — regular-legal, atomic-illegal.
        let mut h = two_write_history();
        read(&mut h, 1, 6, 7, 20);
        read(&mut h, 2, 8, 8, 10);
        assert!(RegularityChecker::check(&h).is_ok());
        let report = AtomicityChecker::check(&h);
        assert!(!report.is_ok());
        assert_eq!(report.inversions, 1);
        assert!(report.violations[0]
            .explanation
            .contains("new/old inversion"));
    }

    #[test]
    fn monotone_reads_are_atomic() {
        let mut h = two_write_history();
        read(&mut h, 1, 6, 7, 10);
        read(&mut h, 2, 8, 8, 20);
        read(&mut h, 1, 10, 11, 20);
        let report = AtomicityChecker::check(&h);
        assert!(report.is_ok());
        assert_eq!(report.inversions, 0);
    }

    #[test]
    fn concurrent_reads_may_disagree() {
        // Overlapping reads (neither completes before the other's
        // invocation) can return different orders without inversion.
        let mut h = two_write_history();
        read(&mut h, 1, 6, 8, 20);
        read(&mut h, 2, 7, 8, 10);
        assert_eq!(AtomicityChecker::count_inversions(&h), 0);
    }

    #[test]
    fn inversion_against_initial_value() {
        let mut h = two_write_history();
        read(&mut h, 1, 2, 3, 10); // concurrent with w1, returns new value
        read(&mut h, 2, 3, 3, 0); // wait, 3 !< 3? inv must be strictly after
        read(&mut h, 2, 4, 4, 0); // invoked after r1 completed: stale initial
                                  // r at [3,3]: invoked at 3, r1 completed at 3 — NOT strictly before,
                                  // so no inversion from that pair; r at [4,4] IS an inversion (idx
                                  // -1 < 0) … and also a regularity violation (w1 completed at 4?
                                  // no: w1 completes at 4, read invoked at 4 → w1 is last-before AND
                                  // concurrent; initial is legal for regular — but the inversion
                                  // against r1 stands.)
        let report = AtomicityChecker::check(&h);
        assert_eq!(report.inversions, 1);
    }

    #[test]
    fn atomicity_includes_regularity_violations() {
        let mut h = two_write_history();
        read(&mut h, 1, 10, 11, 999); // fabricated
        let report = AtomicityChecker::check(&h);
        assert!(!report.is_ok());
        assert_eq!(
            report.inversions, 0,
            "fabricated values are not inversion pairs"
        );
    }

    #[test]
    fn concurrent_cross_node_writes_may_be_read_in_either_order() {
        // wa = [1,5] by n0 → 10 and wb = [2,6] by n1 → 20 are mutually
        // concurrent: the hybrid order leaves them unordered, so sequential
        // reads returning 20 then 10 are NOT an inversion.
        let mut h: History<u64> = History::new(0);
        let wa = h.invoke_write(n(0), Time::at(1), 10);
        let wb = h.invoke_write(n(1), Time::at(2), 20);
        h.complete_write(wa, Time::at(5));
        h.complete_write(wb, Time::at(6));
        read(&mut h, 1, 7, 8, 20);
        read(&mut h, 2, 9, 10, 10);
        assert_eq!(AtomicityChecker::count_inversions(&h), 0);
    }

    #[test]
    fn real_time_ordered_cross_node_writes_still_invert() {
        // wa = [1,2] by n0 completes before wb = [4,5] by n1 is invoked:
        // real time orders them even across nodes, so reading 20 then 10
        // sequentially IS an inversion.
        let mut h: History<u64> = History::new(0);
        let wa = h.invoke_write(n(0), Time::at(1), 10);
        h.complete_write(wa, Time::at(2));
        let wb = h.invoke_write(n(1), Time::at(4), 20);
        h.complete_write(wb, Time::at(5));
        read(&mut h, 1, 6, 7, 20);
        read(&mut h, 2, 8, 9, 10);
        let report = AtomicityChecker::check(&h);
        assert_eq!(report.inversions, 1);
        assert!(report
            .violations
            .last()
            .unwrap()
            .explanation
            .contains("new/old inversion"));
    }

    #[test]
    fn many_readers_sweep_scales_and_orders_violations() {
        let mut h = two_write_history();
        // Alternate new/old across sequential reads → every 'old' read after
        // a 'new' read is an inversion. Reads at [t,t] sequential.
        read(&mut h, 1, 6, 6, 20);
        read(&mut h, 2, 7, 7, 10); // inversion
        read(&mut h, 3, 8, 8, 20);
        read(&mut h, 4, 9, 9, 10); // inversion (against earlier 20-reads)
        let report = AtomicityChecker::check(&h);
        assert_eq!(report.inversions, 2);
        let ops: Vec<u64> = report.violations.iter().map(|v| v.read.as_raw()).collect();
        let mut sorted = ops.clone();
        sorted.sort_unstable();
        assert_eq!(ops, sorted, "violations reported in op order");
    }
}
