//! Property tests for the consistency checkers: soundness (legal histories
//! pass) and completeness (specific illegal mutations are caught), over
//! randomly generated schedules.

use dynareg_sim::{NodeId, Time};
use dynareg_verify::{AtomicityChecker, History, RegularityChecker, SafeChecker};
use proptest::prelude::*;

/// Builds an *arbitrary* history — legal or not: serialized writes with
/// random gaps/durations (some abandoned by a departing writer, so they
/// stay pending forever), and reads returning an arbitrary choice among
/// the initial value, any written value, or a fabricated one. Tight time
/// ranges force endpoint collisions, the closed-interval edge cases the
/// sweep/naive equivalence must cover.
fn arbitrary_history(
    writes: &[(u64, u64, u8)], // (gap before invoke, duration, abandon?)
    reads: &[(u64, u64, u8)],  // (invoke offset, duration, value choice)
) -> History<u64> {
    let mut h: History<u64> = History::new(0);
    let mut t = 1u64;
    let mut values: Vec<u64> = Vec::new();
    for (i, &(gap, dur, abandon)) in writes.iter().enumerate() {
        // A fresh writer per write keeps abandonment simple (a departed
        // writer unblocks the next write, as the history rules require).
        let writer = NodeId::from_raw(100 + i as u64);
        t += gap;
        let value = (i as u64 + 1) * 10;
        let w = h.invoke_write(writer, Time::at(t), value);
        if abandon % 4 == 0 {
            h.note_left(writer, Time::at(t)); // never completes
        } else {
            t += dur;
            h.complete_write(w, Time::at(t));
        }
        values.push(value);
    }
    let horizon = t + 12;
    for (j, &(off, dur, choice)) in reads.iter().enumerate() {
        let inv = off % horizon;
        let comp = inv + dur % 6;
        let value = match choice % 8 {
            0 => 0,                                     // initial
            7 => 424_242,                               // fabricated
            c if values.is_empty() => u64::from(c),     // fabricated too
            c => values[usize::from(c) % values.len()], // some write's value
        };
        let r = h.invoke_read(NodeId::from_raw(1 + (j as u64 % 5)), Time::at(inv));
        h.complete_read(r, Time::at(comp), value);
    }
    h
}

/// Builds a history with serialized writes at random instants and reads
/// that each return a *legal* regular value chosen by `pick`: given
/// (index of last write completed before invocation or None, indices of
/// concurrent writes), return the reads-from index.
fn legal_history(
    write_gaps: &[u64],
    reads: &[(u64, u64, usize)], // (invoke offset, duration, choice)
) -> History<u64> {
    let mut h: History<u64> = History::new(0);
    let writer = NodeId::from_raw(0);
    let mut t = 1u64;
    let mut write_spans: Vec<(u64, u64, u64)> = Vec::new(); // (inv, comp, value)
    for (i, gap) in write_gaps.iter().enumerate() {
        t += gap + 1;
        let inv = t;
        let comp = t + 2;
        let value = (i as u64 + 1) * 10;
        let w = h.invoke_write(writer, Time::at(inv), value);
        h.complete_write(w, Time::at(comp));
        write_spans.push((inv, comp, value));
        t = comp;
    }
    let horizon = t + 10;
    for &(off, dur, choice) in reads {
        let inv = off % horizon;
        let comp = inv + dur % 5;
        // Legal values for [inv, comp]: last write completed strictly
        // before inv, plus all overlapping writes.
        let last_before = write_spans
            .iter()
            .filter(|(_, c, _)| *c < inv)
            .max_by_key(|(_, c, _)| *c)
            .map(|&(_, _, v)| v)
            .unwrap_or(0);
        let mut legal: Vec<u64> = vec![last_before];
        for &(wi, wc, v) in &write_spans {
            if wc >= inv && wi <= comp {
                legal.push(v);
            }
        }
        let value = legal[choice % legal.len()];
        let r = h.invoke_read(NodeId::from_raw(1 + (off % 5)), Time::at(inv));
        h.complete_read(r, Time::at(comp), value);
    }
    h
}

proptest! {
    // Bounded case count so CI runtime stays predictable; override with
    // the PROPTEST_CASES environment variable for deeper local runs.
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Soundness: histories constructed to be regular always pass the
    /// regularity checker (and the safe checker, which is weaker).
    #[test]
    fn regular_constructions_pass(
        gaps in prop::collection::vec(0u64..6, 0..8),
        reads in prop::collection::vec((0u64..200, 0u64..5, 0usize..8), 0..40),
    ) {
        let h = legal_history(&gaps, &reads);
        let report = RegularityChecker::check(&h);
        prop_assert!(report.is_ok(), "{report}");
        prop_assert!(SafeChecker::check(&h).is_ok());
    }

    /// Completeness: a read returning a value that was never written is
    /// always caught by regularity; quiescent-fabricated is caught by the
    /// safe checker too.
    #[test]
    fn fabricated_values_are_caught(
        gaps in prop::collection::vec(0u64..6, 1..8),
        offset in 0u64..100,
    ) {
        let mut h = legal_history(&gaps, &[]);
        let far = 1000 + offset; // after all writes: quiescent
        let r = h.invoke_read(NodeId::from_raw(9), Time::at(far));
        h.complete_read(r, Time::at(far + 1), 424_242);
        prop_assert_eq!(RegularityChecker::check(&h).violation_count(), 1);
        prop_assert_eq!(SafeChecker::check(&h).violation_count(), 1);
    }

    /// The sweep-line checkers agree with the retained naive oracles on
    /// arbitrary histories — not just on the ok/err verdict but on the
    /// full reports: same checked-read counts, same violations (reads,
    /// nodes, values, explanations, order) and same inversion tallies.
    #[test]
    fn sweep_checkers_match_naive_oracles(
        writes in prop::collection::vec((0u64..4, 0u64..4, 0u8..8), 0..10),
        reads in prop::collection::vec((0u64..80, 0u64..6, 0u8..8), 0..60),
    ) {
        let h = arbitrary_history(&writes, &reads);
        prop_assert_eq!(RegularityChecker::check(&h), RegularityChecker::check_naive(&h));
        prop_assert_eq!(SafeChecker::check(&h), SafeChecker::check_naive(&h));
        prop_assert_eq!(AtomicityChecker::check(&h), AtomicityChecker::check_naive(&h));
    }

    /// Atomicity implies regularity: any history passing the atomicity
    /// checker passes the regularity checker.
    #[test]
    fn atomicity_implies_regularity(
        gaps in prop::collection::vec(0u64..6, 0..8),
        reads in prop::collection::vec((0u64..200, 0u64..5, 0usize..8), 0..40),
    ) {
        let h = legal_history(&gaps, &reads);
        if AtomicityChecker::check(&h).is_ok() {
            prop_assert!(RegularityChecker::check(&h).is_ok());
        }
    }

    /// The inversion counter is consistent with the atomicity verdict for
    /// regular histories: zero inversions ⇔ atomic-clean (since the
    /// construction is already regular).
    #[test]
    fn inversion_count_matches_atomic_verdict(
        gaps in prop::collection::vec(0u64..6, 0..8),
        reads in prop::collection::vec((0u64..200, 0u64..5, 0usize..8), 0..40),
    ) {
        let h = legal_history(&gaps, &reads);
        let report = AtomicityChecker::check(&h);
        let inversions = AtomicityChecker::count_inversions(&h);
        prop_assert_eq!(report.inversions, inversions);
        prop_assert_eq!(report.is_ok(), inversions == 0);
    }
}
