//! # dynareg-core — regular register protocols for churning systems
//!
//! The primary contribution of Baldoni, Bonomi, Kermarrec & Raynal,
//! *"Implementing a Register in a Dynamic Distributed System"* (ICDCS 2009):
//! two protocols building a **regular register** — Lamport's middle rung
//! between *safe* and *atomic* — in a message-passing system whose
//! membership is refreshed at a constant churn rate `c`.
//!
//! | protocol | module | synchrony | churn assumption | read cost |
//! |---|---|---|---|---|
//! | Figures 1–2 | [`sync`] | synchronous (known `δ`) | `c ≤ 1/(3δ)` | **local, zero latency** |
//! | Figures 4–6 | [`es`] | eventually synchronous | majority active & `c ≤ 1/(3δn)` | one quorum round-trip |
//!
//! Between the two sits the paper's Theorem 2: in a *fully asynchronous*
//! dynamic system no protocol implements a regular register at all — the
//! experiments exercise both protocols under unbounded delays to exhibit the
//! two failure faces (safety loss for timeout-based, liveness loss for
//! quorum-based).
//!
//! ## Architecture: sans-I/O state machines
//!
//! Protocols are implemented as pure state machines behind the
//! [`RegisterProcess`] trait: every input (entering the system, a message, a
//! timer, a client invocation) returns a list of [`Effect`]s (send,
//! broadcast, set timer, complete operation). The simulation runtime in
//! `dynareg-testkit` interprets effects against the network substrate; unit
//! tests interpret them directly. No protocol line touches a clock or a
//! socket.
//!
//! ## Extensions beyond the paper
//!
//! * **Atomic upgrade** ([`es::EsConfig::atomic`]): an ABD-style write-back
//!   phase on reads removes new/old inversions, upgrading the eventually
//!   synchronous register from regular to atomic at the cost of one extra
//!   round-trip per read (§7 asks how to strengthen the abstraction; this is
//!   the classical answer).
//! * **Multi-writer timestamps** ([`es::Timestamp`]): values are ordered by
//!   `(sn, writer-id)` pairs, so *concurrent* writers — which the paper
//!   excludes by assumption (§5.3) and defers to quorum future work (§7) —
//!   serialize deterministically instead of corrupting the register.
//! * **Register spaces** ([`space`]): a keyed multi-register service over
//!   one churn substrate — `k` protocol instances per process behind a
//!   single shared join handshake, every operation addressing a
//!   `(RegisterId, op)` pair (§7 asks for richer objects; this is the
//!   many-registers answer).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod actor;
pub mod es;
pub mod space;
pub mod sync;

pub use actor::{completions, Effect, OpOutcome, RegisterProcess, Value};
pub use space::{
    shard_of_key, shard_of_node, RegisterSpace, RegisterSpaceProcess, ShardConfig, SoloSpace,
    SpaceEffect, SpaceMsg,
};
