//! The sans-I/O protocol interface.
//!
//! A register protocol is a deterministic state machine: inputs are entering
//! the system, message deliveries, timer expiries and client invocations;
//! outputs are [`Effect`]s the runtime interprets. This keeps every paper
//! line unit-testable without a simulator, and makes the protocols reusable
//! over any transport that can honour the effects.

use std::fmt;

use dynareg_sim::{NodeId, OpId, Span, Time};

/// Marker for types storable in the register.
///
/// Blanket-implemented; the bound collects what the protocols and checkers
/// need (cloning into messages, equality for verification, hashing for
/// reads-from maps, debug printing for reports).
pub trait Value: Clone + Eq + std::hash::Hash + fmt::Debug + 'static {}

impl<T: Clone + Eq + std::hash::Hash + fmt::Debug + 'static> Value for T {}

/// Result delivered to the client when an operation completes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpOutcome<V> {
    /// A read returned. `None` is the register's `⊥`: the process never
    /// obtained a value — under the paper's assumptions this cannot reach a
    /// client, and the harness records it as a safety violation when it
    /// does (e.g. beyond the churn bound).
    Read(Option<V>),
    /// A write returned `ok`.
    WriteOk,
}

/// An output of a protocol state machine, interpreted by the runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Effect<M, V> {
    /// Send `msg` point-to-point to `to`.
    Send {
        /// Recipient process.
        to: NodeId,
        /// Payload.
        msg: M,
    },
    /// Broadcast `msg` to every process in the system (the paper's timely
    /// broadcast primitive).
    Broadcast {
        /// Payload.
        msg: M,
    },
    /// Request a timer callback after `delay`, tagged with `tag` (the
    /// protocol's `wait(…)` statements).
    SetTimer {
        /// How long to wait.
        delay: Span,
        /// Protocol-chosen discriminator handed back on expiry.
        tag: u64,
    },
    /// The `join` operation returned `ok`: the process is now *active*
    /// (Definition 1). The runtime flips the presence table.
    JoinComplete,
    /// A client operation returned.
    OpComplete {
        /// The operation.
        op: OpId,
        /// Its result.
        outcome: OpOutcome<V>,
    },
    /// Free-form annotation for traces ("quorum reached", …).
    Note(String),
}

/// A register protocol instance bound to one process.
///
/// # Contract
///
/// * [`on_enter`](RegisterProcess::on_enter) is called exactly once, when
///   the process enters the system; for bootstrap members it returns
///   [`Effect::JoinComplete`] immediately.
/// * The runtime only calls [`on_read`](RegisterProcess::on_read) /
///   [`on_write`](RegisterProcess::on_write) after `JoinComplete`, and never
///   overlaps two operations on the same process — the paper's processes
///   are sequential (§2.1).
/// * Message deliveries may arrive at any moment from entry onward
///   (listening mode).
pub trait RegisterProcess: fmt::Debug {
    /// The protocol's wire message type.
    type Msg: Clone + fmt::Debug;
    /// The register's value type.
    type Val: Value;

    /// This process's identity.
    fn id(&self) -> NodeId;

    /// Whether the join operation has returned.
    fn is_active(&self) -> bool;

    /// Number of distinct join-phase replies gathered so far, while the
    /// join is in flight. `None` (the default) means the protocol does not
    /// expose a count — the space layer's bounded join retransmission
    /// (`RetransmitConfig` in the `space` module) then never intercepts a
    /// join timer on its behalf and treats every silence beat as silent.
    fn join_replies(&self) -> Option<usize> {
        None
    }

    /// The process enters the system and starts its `join` operation.
    fn on_enter(&mut self, now: Time) -> Vec<Effect<Self::Msg, Self::Val>>;

    /// A message from `from` is delivered.
    fn on_message(
        &mut self,
        now: Time,
        from: NodeId,
        msg: Self::Msg,
    ) -> Vec<Effect<Self::Msg, Self::Val>>;

    /// Delivery fast path: appends the effects of a message to `out`
    /// instead of returning a fresh vector. The runtime calls this with a
    /// reused buffer, so protocols that override it (message delivery is
    /// the simulator's hottest edge — tens of millions of calls in a
    /// large-population run) pay zero allocations per delivery. The
    /// default delegates to [`RegisterProcess::on_message`] and stays
    /// correct for every implementation.
    fn on_message_into(
        &mut self,
        now: Time,
        from: NodeId,
        msg: Self::Msg,
        out: &mut Vec<Effect<Self::Msg, Self::Val>>,
    ) {
        out.append(&mut self.on_message(now, from, msg));
    }

    /// A timer set via [`Effect::SetTimer`] with this `tag` expired.
    fn on_timer(&mut self, now: Time, tag: u64) -> Vec<Effect<Self::Msg, Self::Val>>;

    /// The client invokes `read`, identified by `op`.
    fn on_read(&mut self, now: Time, op: OpId) -> Vec<Effect<Self::Msg, Self::Val>>;

    /// The client invokes `write(value)`, identified by `op`.
    fn on_write(
        &mut self,
        now: Time,
        op: OpId,
        value: Self::Val,
    ) -> Vec<Effect<Self::Msg, Self::Val>>;
}

/// Test helper: extracts the completed-operation outcomes from an effect
/// list (used across protocol unit tests).
pub fn completions<M, V: Clone>(effects: &[Effect<M, V>]) -> Vec<(OpId, OpOutcome<V>)> {
    effects
        .iter()
        .filter_map(|e| match e {
            Effect::OpComplete { op, outcome } => Some((*op, outcome.clone())),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completions_extracts_only_op_completes() {
        let effects: Vec<Effect<(), u64>> = vec![
            Effect::Note("x".into()),
            Effect::OpComplete {
                op: OpId::from_raw(3),
                outcome: OpOutcome::Read(Some(7)),
            },
            Effect::SetTimer {
                delay: Span::UNIT,
                tag: 1,
            },
        ];
        let got = completions(&effects);
        assert_eq!(got, vec![(OpId::from_raw(3), OpOutcome::Read(Some(7)))]);
    }

    #[test]
    fn effects_compare_structurally() {
        let a: Effect<u8, u64> = Effect::Broadcast { msg: 1 };
        let b: Effect<u8, u64> = Effect::Broadcast { msg: 1 };
        assert_eq!(a, b);
    }
}
